// Package repro reproduces "The Case for a Structured Approach to
// Managing Unstructured Data" (Doan, Naughton, et al., CIDR 2009) as a
// working Go system: the full Figure 1 architecture — physical layer
// (MapReduce-like cluster), storage layer (versioned snapshot store,
// segment store, relational engine, wiki), processing layer (declarative
// IE+II+HI language with optimizer, schema evolution, uncertainty,
// provenance, semantic debugger), and user layer (keyword search, guided
// structured querying, browsing, alerts, reputation and incentives).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the measured
// results, and examples/ for runnable walkthroughs. The E1-E10 benchmarks
// in bench_test.go regenerate every experiment.
package repro
