// Package repro reproduces "The Case for a Structured Approach to
// Managing Unstructured Data" (Doan, Naughton, et al., CIDR 2009) as a
// working Go system: the full Figure 1 architecture — physical layer
// (MapReduce-like cluster), storage layer (versioned snapshot store,
// segment store, relational engine, wiki), processing layer (declarative
// IE+II+HI language with optimizer, schema evolution, uncertainty,
// provenance, semantic debugger), and user layer (keyword search, guided
// structured querying, browsing, alerts, reputation and incentives).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the measured
// results, and examples/ for runnable walkthroughs. The E1-E10 benchmarks
// in bench_test.go regenerate every experiment.
//
// # Query-path architecture (PR1)
//
// The exploitation modes (keyword → guided reformulation → SQL → browse)
// are the serving hot path, rebuilt around three structures:
//
// Catalog cache. core.System maintains the reformulation catalog (distinct
// entities, attributes, per-attribute qualifier vocabulary) incrementally
// instead of scanning the extracted table per query. Write paths that go
// through core (materialize, CorrectValue) fold their committed rows into
// the cache under System.mu, strictly after their transaction commits;
// write paths that bypass core's row bookkeeping (UQL STORE inside
// Generate, non-SELECT statements through System.SQL) invalidate it, and
// the next Catalog()/AskGuided call rebuilds it with one full scan while
// holding System.mu across scan + install. The assembled catalog and the
// reformulator derived from it are memoized between writes, so a
// read-only streak of AskGuided calls does no per-query catalog work.
// Writes driven at the rdbms.DB handle directly are outside this
// contract; all extracted-table writes must go through System.
//
// Streaming scans. rdbms SELECT pushes the WHERE clause into the scan
// callback for single-table queries: rejected tuples are never retained
// or cloned, and unordered, ungrouped, non-distinct LIMIT queries stop
// the scan as soon as OFFSET+LIMIT rows qualify. Access paths are chosen
// cost-based — among several usable equality predicates, the index
// matching the fewest entries (exact B+tree posting counts) wins; strict
// bounds (>, <) widen to inclusive index ranges and rely on the residual
// filter, which is always evaluated over fetched rows, to drop boundary
// rows. Join, distinct, and group keys use a prefix-free byte encoding
// (length-prefixed strings, numeric values via their float64 image) so
// key building is allocation-free and collision-free.
//
// Task queue. Pending incremental-extraction tasks live in a
// priority-indexed queue (container/heap) with a per-attribute index:
// Demand boosts touch only the demanded attribute's tasks, ExtractPending
// pops highest-priority-first in O(log n), and equal priorities drain
// FIFO in plan order — the same order the previous stable sort produced.
//
// BENCH_PR1.json (written by `go run ./cmd/benchrunner -perfout
// BENCH_PR1.json`) records the measured trajectory point; see ROADMAP.md
// for the numbers.
package repro
