// Package repro reproduces "The Case for a Structured Approach to
// Managing Unstructured Data" (Doan, Naughton, et al., CIDR 2009) as a
// working Go system: the full Figure 1 architecture — physical layer
// (MapReduce-like cluster), storage layer (versioned snapshot store,
// segment store, relational engine, wiki), processing layer (declarative
// IE+II+HI language with optimizer, schema evolution, uncertainty,
// provenance, semantic debugger), and user layer (keyword search, guided
// structured querying, browsing, alerts, reputation and incentives).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the measured
// results, and examples/ for runnable walkthroughs. The E1-E10 benchmarks
// in bench_test.go regenerate every experiment.
//
// # Query-path architecture (PR1)
//
// The exploitation modes (keyword → guided reformulation → SQL → browse)
// are the serving hot path, rebuilt around three structures:
//
// Catalog cache. core.System maintains the reformulation catalog (distinct
// entities, attributes, per-attribute qualifier vocabulary) incrementally
// instead of scanning the extracted table per query. Write paths that go
// through core (materialize, CorrectValue) fold their committed rows into
// the cache under System.mu, strictly after their transaction commits;
// write paths that bypass core's row bookkeeping (UQL STORE inside
// Generate, non-SELECT statements through System.SQL) invalidate it, and
// the next Catalog()/AskGuided call rebuilds it with one full scan while
// holding System.mu across scan + install. The assembled catalog and the
// reformulator derived from it are memoized between writes, so a
// read-only streak of AskGuided calls does no per-query catalog work.
// Writes driven at the rdbms.DB handle directly are outside this
// contract; all extracted-table writes must go through System.
//
// Streaming scans. rdbms SELECT pushes the WHERE clause into the scan
// callback for single-table queries: rejected tuples are never retained
// or cloned, and unordered, ungrouped, non-distinct LIMIT queries stop
// the scan as soon as OFFSET+LIMIT rows qualify. Access paths are chosen
// cost-based — among several usable equality predicates, the index
// matching the fewest entries (exact B+tree posting counts) wins; strict
// bounds (>, <) widen to inclusive index ranges and rely on the residual
// filter, which is always evaluated over fetched rows, to drop boundary
// rows. Join, distinct, and group keys use a prefix-free byte encoding
// (length-prefixed strings, numeric values via their float64 image) so
// key building is allocation-free and collision-free.
//
// Task queue. Pending incremental-extraction tasks live in a
// priority-indexed queue (container/heap) with a per-attribute index:
// Demand boosts touch only the demanded attribute's tasks, ExtractPending
// pops highest-priority-first in O(log n), and equal priorities drain
// FIFO in plan order — the same order the previous stable sort produced.
//
// BENCH_PR1.json (written by `go run ./cmd/benchrunner -perfout
// BENCH_PR1.json`) records the measured trajectory point; see ROADMAP.md
// for the numbers.
//
// # Sorted queries and warm start (PR2)
//
// The sorted-query path was rebuilt end to end, and the warm structures
// PR1 introduced now survive process restarts:
//
// Top-k ORDER BY. An ORDER BY with a LIMIT no longer materializes,
// projects, and stable-sorts every row. Projection keeps a bounded
// max-heap of the OFFSET+LIMIT best rows (O(n log k)): per row it
// evaluates only the ORDER BY keys (select-list aliases resolve to their
// underlying expressions), rows that cannot beat the current worst are
// dropped without cloning, and only survivors are projected. Tie order is
// exactly the stable sort's — key ties break by the row's original
// sequence. Grouped queries reuse the same collector over their groups.
// DISTINCT disqualifies the bound (dedup after truncation could underfill
// the limit) and falls back to the full sort.
//
// Index-order scans. When the single ORDER BY key is an indexed column of
// a single-table, ungrouped, non-distinct LIMIT query, the executor walks
// the B+tree in key order (BTree.GroupedRange, ascending via the leaf
// chain, descending via a pruned reverse descent) and stops after
// OFFSET+LIMIT qualifying rows: no sort runs at all, and the full WHERE
// is evaluated as a residual during the walk. Rows with equal keys are
// fetched in ascending RID order, matching what a heap scan feeds the
// stable sort, so output is byte-identical to full-sort. A usable
// equality access path still wins (a selective posting fetch plus top-k
// beats walking the whole index); a range predicate on the sort column
// folds into the scan bounds. The plan string reports "index order scan".
//
// Warm start. SaveWarmState persists the catalog cache (entities,
// attributes, qualifier vocabularies) and the pending task queue
// (priorities, partitions, documents by title) as one checksummed JSON
// record in the filestore segment store; repeated saves append. Open /
// LoadWarmState restores the newest snapshot so a reopened system serves
// AskGuided with zero table scans and resumes incremental extraction
// where it left off. Staleness is decided by two cheap checks: the
// snapshot's extracted-table row count must match the live table (read
// O(1) from the entity index), and the snapshot's invalidation epoch —
// advanced by every cache change or invalidation — must not be older than
// the live cache's. A refused snapshot just means a cold open: the next
// Catalog() rebuilds by scan.
//
// Incremental reformulator. The reformulator's entity-token index is no
// longer rebuilt whenever the catalog changes: materialized rows feed it
// deltas (AddEntity tokenizes just the new entity; AddAttribute and
// AddQualifier append), and candidate ranking breaks all ties by name
// rather than catalog position, so an incrementally grown reformulator
// answers identically to one rebuilt from the same catalog.
//
// BENCH_PR2.json records the measured PR2 trajectory point.
//
// # Crash-safe durability and recovery (PR3)
//
// The rdbms is now a reopenable on-disk database with a fault-injection
// harness proving its crash safety.
//
// Storage stack. A Device is the durable byte store (file-backed
// FileDevice; crash-simulating MemDevice that separates synced from
// unsynced bytes). DevicePager frames every page on its device as
// [crc32(payload), pageID, payload]: checksums catch corruption and
// misdirected writes at read time, an all-zero frame reads as a valid
// blank page (what an allocated-but-never-synced page becomes after a
// crash), and page-sized writes are assumed power-fail atomic — the
// classic sector-atomicity assumption; the checksum exists to detect
// that assumption breaking, loudly, not to silently repair it. The WAL
// also runs over a Device, and opening one truncates any torn tail
// (half-written frame) back to the last whole record so post-crash
// appends never land after garbage.
//
// Lifecycle. rdbms.OpenDir(dir) wires pager + WAL + buffer pool +
// recovery over dir/data.udb and dir/wal.udb; Close checkpoints and
// releases both. The buffer pool itself enforces the WAL rule (no dirty
// page is written back before the log records describing it are
// durable), and every checkpoint — quiesced by construction — flushes
// pages, then truncates the WAL entirely (Device.Truncate is durable by
// itself, so old-generation records can never resurface), then rewrites
// the catalog; each intermediate crash point is analyzed in
// checkpointLocked. Abort writes compensation records for its physical
// restores, so recovery replays aborted transactions like winners (net
// zero, in global log order) and a commit whose flush failed can be
// durably superseded by its abort.
//
// Recovery by logical materialization. Rather than replaying records
// one at a time against pages whose on-disk state may already reflect
// later operations (which creates hybrid page states that never existed,
// transiently overflows pages, and forces rows off their logged RIDs),
// recovery computes each touched slot's final content directly from the
// log — last resolved (committed or aborted) record's outcome per slot;
// verdict-less in-flight transactions freeze their slots at the state
// just before their first touch — and then writes each page once,
// slot-pinned, compacting as needed. Slotted pages compact in place
// (slot numbers, hence RIDs, never change), which also lets live aborts
// restore before-images on churn-fragmented pages.
//
// Fault harness. FaultInjector + FaultDevice (exposed as NewFaultPager /
// NewFaultWAL) schedule an error, a dropped (lying) fsync, a torn write,
// or a process kill at the Nth mutating I/O, counted globally across the
// pager and WAL. The crash-recovery property suite dry-runs a seeded
// workload to enumerate its injection points, then re-runs it once per
// point — 200+ runs asserted — killing it there, discarding a random
// subset of unsynced writes (MemDevice.Crash), reopening, and checking
// an in-memory oracle: all acknowledged commits visible byte for byte,
// no aborted or in-flight data, in-doubt commits all-or-nothing, page
// checksums clean, state stable across a further close/reopen; every
// fourth point also crashes recovery itself mid-flight first. core
// builds on the same machinery: Config.Dir / core.OpenDir root the
// database and the warm-state snapshots (now guarded by an
// order-independent (entity, attribute, qualifier) content checksum that
// refuses same-row-count divergence) under one directory, and
// System.Close checkpoints both — see examples/quickstart for the full
// close→reopen walkthrough.
//
// BENCH_PR3.json records the measured trajectory point (including the
// new DiskCommit/DiskReopen durability benches), and CI gates every
// tracked bench against it: `go run ./cmd/benchrunner -compare
// BENCH_PR3.json -tolerance 0.25` exits nonzero when any tracked bench
// regresses more than 25%, so earlier wins cannot silently erode.
//
// # Disk-path performance: group commit, index checkpoints, O(1) warm verify (PR4)
//
// PR3 made the disk path safe; PR4 makes it fast without weakening any
// of its guarantees — the fault harness re-proves every one of them at
// every new kill point.
//
// Group commit. The WAL flush is a commit sequencer (leader/follower):
// the first committer needing durability becomes the leader, and —
// when other transactions are in flight — holds a bounded group window
// (a busy-yield that ends as soon as appends quiesce) before capturing
// the whole buffered tail and performing one write+fsync for the batch.
// Committers arriving during that I/O append and wait; one of them
// leads the next batch. Each committer blocks only until the batch
// containing its own record is durable (Commit targets the LSN just
// past its commit record), a lone committer skips the window and pays
// the old single-fsync latency, and 8 concurrent committers amortize to
// ~1 fsync per batch (~8 commits/sync measured; DiskCommitParallel runs
// at ~1/4.5 the per-txn cost of DiskCommit). A simulated crash during a
// leader's I/O poisons the WAL — every waiter gets ErrWALPoisoned
// instead of a fabricated durability verdict, and recovery decides the
// in-doubt commits from what actually reached the device.
//
// Persistent index checkpoints. Checkpoints serialize each changed
// B+tree (keys in order, posting lists verbatim) into a chain of pages
// through the ordinary pager, framed as [magic, checkpoint stamp,
// length, crc32, entries]; the catalog records each chain's head and
// expected stamp. Open bulk-builds the tree from the sorted stream in
// O(n) with zero key comparisons and applies only the WAL tail — the
// per-slot prior→final deltas recovery already computes — instead of
// rebuilding from a full heap scan. Validation replaces write ordering:
// any mismatch (torn page, broken link, stamp from another checkpoint
// generation, checksum failure) falls back to the old full rebuild, so
// a stale or torn chain can never surface through a query; the reopen
// matrix tests (fresh / checkpointed / stale / torn / truncated) and the
// property suite's new kill points inside chain writes prove it.
// Unchanged indexes skip re-serialization (a BTree mutation counter),
// and a reopen that finds an empty log and loads every index skips the
// closing checkpoint entirely — DiskReopenIndexed runs ~12x faster than
// the rebuild path on a 10k-row database.
//
// Checkpoints now write the catalog twice: once before the WAL reset
// (pointing checkpointLSN at the old log's end, with the fresh stamps
// and content hashes) and once after (LSN 0). The fault harness caught
// the gap this closes: a crash between the reset and the single
// post-reset catalog write left the previous catalog's derived metadata
// (content hash, chain stamps) describing an older state, with the log
// that would have reconciled them already empty.
//
// O(1) warm verification. A table can carry an order-independent
// multiset content hash over chosen columns (EnableContentHash):
// committed transactions fold per-row digests in with wrapping
// addition after their commit record is durable (aborts discard their
// delta; physical restores make that exact), checkpoints persist the
// accumulator in the catalog, and recovery adjusts it from the WAL
// tail's before/after images. core enables it over (entity, attribute,
// qualifier), so a fresh process validates a warm-start snapshot
// against the live table in O(1) — LoadWarmState no longer rescans the
// extracted table on disk reopen.
//
// Also in PR4: the ORDER BY + LIMIT bounded top-k heap now runs inside
// the sequential scan callback (rows it rejects are never retained —
// O(k) live memory and ~25% faster on the 10k-row bench, verified
// byte-identical by the 3-path equivalence fuzz); inserts skip
// tombstoned slots whose row lock another transaction still holds
// (the deleting transaction's abort restores its row at that exact
// RID — a latent collision that group commit's real concurrency made
// urgent); and the CI bench gate benchmarks a PR's merge-base and head
// on the same runner instead of comparing against numbers measured on
// another machine. BENCH_PR4.json records the trajectory point.
//
// # Non-quiescing checkpoints via page LSNs (PR5)
//
// PR5 removes the last stop-the-world stall on the disk path: a
// checkpoint used to refuse active transactions outright, so a database
// under sustained traffic could never bound its log or tighten its
// recovery window. Checkpoints are now fuzzy — commits proceed at a
// small bounded overhead while one is in flight (DiskCommitDuringCheckpoint
// runs within ~1.1x of DiskCommit, a bench that previously could not
// run at all) — built on three structural changes.
//
// Page LSNs. The slotted-page header carries the LSN of the last logged
// mutation applied to the page, stamped under the same pin and heap
// mutex that serialize the mutation, so per-page stamps are monotonic
// and a page's content is always exactly "every record with LSN <=
// pageLSN applied" (TestPageLSNTracksLog asserts the stamp equals the
// last record per page). The buffer pool's WAL rule is now precise —
// write-back flushes the log only up to the page's LSN — and each dirty
// frame tracks a conservative recLSN (the first record since it was
// last clean), with written-but-unsynced recLSNs retained until a pager
// sync actually covers them.
//
// Monotonic LSNs and WAL prefix truncation. The WAL carries a
// double-slot header (valid-CRC, higher-sequence slot wins) recording
// the log's base — the logical LSN of its first physical byte — so LSNs
// never reset for the life of the database and page stamps stay
// comparable with log records across every checkpoint. TruncateTo
// replaces the old full reset: the checkpoint computes the horizon
// min(recLSN of pages not yet durably written, firstLSN of active
// transactions, durable end) and discards only the prefix below it. A
// live tail is preserved by a crash-safe copy-down protocol — the move
// is announced in the header (COPYING state, with the previous base)
// before any byte moves, the copy only runs when it cannot overlap its
// source, a terminator frame stops stale bytes from parsing as records,
// and an interrupted copy is redone idempotently at open.
// TestWALPrefixTruncationCrashSafety kills the protocol at every one of
// its I/O steps and checks the surviving records keep their LSNs.
//
// ARIES-style recovery. Redo is physical and gated on pageLSN <
// rec.LSN: every data record from the catalog's replay origin is
// re-applied slot-pinned exactly when the page has not seen it, then
// the page is stamped. Fuzzy checkpoints flush pages mid-traffic, so
// recovery routinely meets pages ahead of the replay origin — the gate
// makes those a no-op instead of the hybrid states that forced PR3's
// logical materialization, and replaying the same tail twice changes
// nothing (TestRedoIdempotent). Losers (no verdict record) are then
// undone newest-first by forcing slots back to their before-images —
// state-idempotent, so recovery crashing mid-undo and re-running
// converges. The per-slot prior→final outcome machine survives from PR3
// only as the delta feed for loaded index chains and persisted content
// hashes.
//
// Fuzzy checkpoint protocol. A checkpoint brackets itself with
// begin/end WAL records (the begin record carries the dirty-page table
// and active-transaction list), flushes dirty pages with the pool lock
// taken per frame — pinned pages are simply skipped and keep holding
// the horizon back — and writes the catalog with the horizon as the new
// replay origin BEFORE truncating, so every crash window recovers from
// a catalog whose origin the surviving log still covers. Derived state
// is the subtle part: index checkpoint chains and content hashes are
// only trustworthy if captured at a moment no transaction was active,
// so each table tracks a mutation counter against its last consistent
// capture (catMut/snapLSN). An idle checkpoint holds the transaction
// admission gate for the brief in-memory serialization and re-captures
// changed tables; a mid-traffic checkpoint instead marks changed
// tables' derived state invalid (chain stamps bumped away from their
// chains, hash flagged) — recovery then rebuilds those by scan, while
// untouched tables keep their loadable chains and O(1)-verifiable
// hashes. The clean close path is unchanged: Close still quiesces, so
// DiskReopenIndexed's bulk-load reopen and LoadWarmState's O(1) verify
// are exactly as fast as PR4 left them. core exposes System.Checkpoint
// so a long-running system can bound its log mid-traffic
// (TestCheckpointDoesNotStallWriters drives corrections and catalog
// reads under a continuous checkpointer).
//
// Proof. The fault harness grew a concurrency-aware suite
// (TestFuzzyCheckpointCrashSuite): three committer goroutines and a
// background checkpointer run against fault-injected devices, and the
// process is killed at every mutating I/O index — landing inside page
// flushes, chain writes, catalog writes, and each WAL-truncation step
// while commits are genuinely in flight. Once a kill fires, every other
// goroutine's next I/O dies too (the injector models the whole process
// dying), then a clean reopen is checked against a per-transaction
// oracle (acked commits fully visible; unacked transactions atomic;
// deleted rows never resurface; no invented rows) plus the
// index-vs-heap and content-hash oracles, under -race. Together with
// the single-threaded property suite (now 776 enumerated kill points,
// >= 700 asserted) the fault suites run 1040+ injection runs. A
// seed-reproducible soak (TestSoakCheckpointerReopen) runs a randomized
// workload against an in-memory shadow model with a live checkpointer
// and periodic close/reopen, asserting byte-identical ORDER BY results
// each phase. The CI coverage gate on internal/rdbms rose from 80% to
// 84% (85.9% measured), and the crash-recovery job's regex includes the
// new suites.
//
// Also in PR5: Options.GroupCommitWindow exposes the group-commit
// straggler window (nil = default 512 yields; explicit zero degenerates
// to solo-commit flushing, asserted by TestGroupCommitZeroWindowSoloCommit),
// and BENCH_PR5.json records the trajectory point with the new
// checkpoint_commit_overhead ratio.
//
// # A crash- and overload-proof serving front end (PR6)
//
// PR6 puts the user layer on the network: cmd/unidbd serves every
// exploitation mode (keyword search, guided queries, SQL, browsing,
// subscriptions, corrections, provenance) over a length-prefixed JSON
// protocol on TCP (internal/server), and cmd/unidb gained -remote to
// drive a daemon with the same subcommands it runs locally. The front
// end is built around four robustness guarantees:
//
//   - Admission control. At most Options.MaxInFlight requests execute
//     concurrently (a non-blocking semaphore: excess requests are shed
//     immediately with a typed "overloaded" error rather than queued),
//     and connections beyond MaxConns are refused at accept with a
//     final overloaded frame. Health requests bypass admission so the
//     daemon stays observable while saturated.
//
//   - Deadlines. context.Context now threads through every public
//     System method, and the storage engine polls it at scan-loop
//     granularity (every 64 rows; Txn.WithContext, DB.ExecCtx), so a
//     request deadline aborts a SELECT mid-scan instead of after it.
//     Each server request runs under a deadline (request-supplied,
//     clamped by MaxRequestTimeout); the unidb -timeout flag feeds the
//     same context locally.
//
//   - Graceful drain. SIGTERM stops accepting, sheds new requests,
//     finishes in-flight ones under DrainTimeout, then System.Close() —
//     now idempotent and concurrent-safe: the first closer drains
//     in-flight operations (late arrivals get core.ErrClosed) and
//     tears down; every other caller shares its verdict. The close
//     checkpoints and snapshots, so the daemon's next life on the same
//     -data directory is the PR5 zero-write warm start — proven by
//     TestDaemonSIGTERMDrain, which SIGTERMs a real re-exec'd daemon
//     process mid-traffic and asserts exit 0 plus byte-identical
//     database files across the warm second life.
//
//   - Connection robustness. Per-connection read/write deadlines, a
//     frame size cap (oversized frames get a typed refusal, then the
//     poisoned stream closes), malformed-JSON rejection that keeps the
//     connection, and per-connection panic recovery. The network fault
//     harness (FaultConn) injects slowloris byte-trickles, mid-frame
//     disconnects, garbage prefixes, half-closes, and mixed attacker
//     swarms — each test asserting a concurrent healthy client keeps
//     being served and no connection leaks.
//
// The durability contract extends to the wire: TestDaemonKill9Durability
// streams acked INSERTs at a daemon, kills it with SIGKILL mid-traffic,
// reopens the directory, and audits that every acked response survived.
// CorrectValue absorbs the strict-2PL upgrade deadlock between racing
// corrections with a bounded retry, and the alert center's delivery
// ledger (Center.History) proves exactly-once notification per
// correction identity under concurrent corrections. perfbench gained a
// sustained-load measurement (256 wire-protocol clients, mixed ops;
// ops/sec plus p50/p99 in BENCH_PR6.json, gated by benchrunner
// -compare), and CI gained a server smoke job: real binaries, mixed
// remote workload, SIGTERM, clean-drain and warm-reopen assertions.
//
// # MVCC snapshot reads behind the View API (PR7)
//
// PR6 left the engine as the bottleneck: every read funneled through
// System.mu and strict-2PL row locks, so reader throughput was flat no
// matter how many cores or connections showed up. PR7 removes the
// blocking from the read path end to end.
//
// Version storage. The engine keeps an LSN-keyed version store
// (internal/rdbms/mvcc.go): the same logged-mutation hooks that feed
// the WAL also append each overwritten or deleted row state to a
// per-RID version chain, stamped with the LSN range it was visible in.
// Writers pay one chain append per mutation; nothing changes in their
// locking or logging. Pending commits register with the WAL append so a
// version becomes visible if and only if its commit record made it to
// the log (publish after group-commit flush, cancel on flush error,
// release on abort).
//
// Visibility rule. DB.BeginSnapshot() pins a snapshot LSN — the highest
// LSN at which every smaller-LSN transaction has either committed or
// aborted (min(pending)-1, else the max committed LSN). A row version
// is visible to the snapshot iff it was committed at or before that
// LSN and not superseded by it. SELECT, index lookups, IndexRange, and
// scans all resolve through the same rule, so a snapshot read takes
// zero LockManager acquisitions (counter-asserted in both the rdbms
// and core test suites) and never waits on writers or other readers.
// One deliberate trade: a snapshot declines the index-order ORDER BY
// streaming path (it cannot hold its visibility set against the live
// B-tree's shape without latching out writers), so ORDER BY + LIMIT on
// the snapshot route falls back to the top-k pushdown scan — identical
// bytes out, no early stop; ROADMAP item 1 tracks restoring it.
//
// GC horizon. Version chains are swept at each checkpoint up to the
// horizon = min(active snapshot LSNs, min(pending)-1): the oldest state
// any live or future snapshot can still demand. An open View therefore
// pins garbage collection but never blocks writers; closing it releases
// the horizon.
//
// The View API (internal/core/view.go) surfaces the snapshot as the
// read contract: System.View(ctx) returns a handle exposing AskGuided,
// KeywordSearch, SQL, Browse, and ExplainFact all answering at one
// LSN (View.LSN()), so a multi-query exploitation session is
// repeatable-read by construction — proven by content-hash oracles and
// a readers-vs-writers-vs-checkpointer race suite. The one-shot System
// read methods are now thin wrappers over a throwaway View, and the
// rest of the public surface went ctx-first and error-returning
// (Generate, PlanIncremental, Demand, ExtractPending,
// MaterializeRelation); Catalog()/CatalogScan() collapsed into
// Catalog(ctx) plus an explicit RefreshCatalog(ctx).
//
// The serving layer sharded to match. The catalog cache and memoized
// reformulator live behind an atomic pointer with RCU-style
// copy-on-invalidate publication: readers take one atomic load on the
// fast path and share a single rebuild per writer invalidation instead
// of paying one each, and System.mu shrank to writer-side coordination.
// The wire protocol gained request IDs: a nonzero ID dispatches the
// request on its own server goroutine and responses are correlated by
// ID, so one connection pipelines without head-of-line blocking (ID 0
// keeps the legacy ordered mode); Client multiplexes concurrent calls
// over one connection via a single reader goroutine routing responses
// by ID.
//
// The headline measurement (perfbench/mixedload.go, BENCH_PR7.json):
// 1/4/8 reader connections running the guided flow against 2 churning
// writers. Before PR7 the sweep was pinned at ~1x; now the 8-reader
// aggregate scales ~4x over 1 reader even on a single-core runner
// (scheduling, not locking, is the remaining ceiling there), and the
// engine-level comparison — 8 snapshot readers vs the old locking read
// path under the same churn — lands around 40x.
//
// # Parallel bulk ingest: cluster fan-out into a COPY-style batch load (PR8)
//
// Generation at corpus scale previously paid the row-at-a-time price:
// per-row WAL records, per-row lock traffic, and O(log n) index inserts.
// PR8 adds System.BulkIngest (internal/core/bulkingest.go): extraction
// fans out over the MapReduce cluster — one map task per document,
// shuffled by entity so each reduce partition delivers entity-contiguous
// runs — and the extracted rows load through a COPY-style batch path in
// the engine (internal/rdbms/bulkload.go).
//
// Batch WAL record format. Two record kinds, LogBatchInsert and
// LogBatchDelete, carry a whole chunk in one record: a row count, then
// per row the 6-byte RID (page u32 | slot u16, little-endian) and the
// length-prefixed encoded tuple. A chunk of up to 32 freshly allocated
// heap pages is filled while the pages stay PINNED and UNLINKED — no
// reader can reach bytes outside the heap chain, and a pinned page
// cannot be flushed before its batch record exists — then one
// LogBatchInsert is appended, the pages are stamped with the batch LSN,
// unpinned, and linked. Each chunk commits as its own transaction
// (group-commit flushed), so a load is a sequence of durable
// all-or-nothing batches. Recovery normalizes batch records into per-row
// records stamped with the batch LSN (expandBatchRecords), so the
// gated-redo/undo machinery applies unchanged — with one addition: rows
// of a batch share an LSN, so the redo gate's decision for a page is
// carried across the batch's sibling rows instead of being re-derived
// from the now-stamped page LSN. A LogBatchDelete with before-images is
// the compensation a failed chunk logs before rolling its rows back.
//
// Atomic visibility. Before a chunk links, its rows register in the
// version store in one lock acquisition (noteBatch) with a dead base
// version; publication appends HEAP-RESIDENT versions (nil tuple — "the
// heap bytes, unchanged since the batch LSN"), so the store retains no
// copy of the loaded rows and a million-row load keeps O(1) version
// memory. A later writer materializes the version from its pre-image
// before first touching the row (noteWrite). Snapshots therefore see
// each batch atomically: invisible below its commit LSN, whole at or
// above it — proven by a mid-load snapshot oracle and a crash suite that
// kills the pipeline at every mutating I/O.
//
// Index build and fence. When every index of the target table is empty
// at BeginBulkLoad, index maintenance is deferred: the load accumulates
// (key, rid) runs, Commit sorts them once and feeds newBTreeFromSorted
// (the PR4 bottom-up builder), and the result swaps in under the index
// latch. Snap readers compensate the not-yet-built indexes through the
// version chains, which the loader's own snapshot pin keeps alive.
// Non-empty indexes are maintained incrementally per chunk. The per-batch
// content-hash delta folds once per chunk (O(1) warm-start verification
// holds), and Commit ends with a checkpoint fence. Also in PR8: the
// precise version-chain retention sweep gained a size trigger
// (sweepTriggerVersions) with geometric re-arm, bounding hot-chain growth
// between checkpoints; cmd/unidb grew an `ingest` subcommand.
//
// The headline measurement (perfbench/ingestload.go, BENCH_PR8.json): a
// 1M-row load on the extracted-table schema with both indexes and the
// content hash enabled, versus the row-at-a-time durable path — ~20x the
// rows/sec on the reference runner, gated in CI alongside the other
// trajectory points.
//
// # Sharded dataspace: entity-hash partitioning with fan-out/merge serving (PR9)
//
// One engine owns one core's worth of read throughput; PR9 splits the
// dataspace across several. shard.ShardedSystem (internal/shard) runs N
// full engines, each owning the entities that hash to it — the same
// FNV-64a cluster.Partition function that shuffles the PR8 bulk-ingest
// fan-out, so a reduce partition lands on exactly one shard and one
// entity never spans two.
//
// Routing and merge. Requests route by what they touch. A query with a
// top-level entity equality runs verbatim on the owning shard. Everything
// else fans out to all shards in parallel and merges:
//
//   - ORDER BY queries push OFFSET+LIMIT to each shard and k-way merge
//     the sorted streams (ties keep the lowest shard index).
//   - Aggregates recombine exactly from per-shard partials (COUNT/SUM
//     add, MIN/MAX fold, AVG from sum+count), mirroring the engine's own
//     aggregate state machine; GROUP BY groups merge by key.
//   - Unordered scans and DISTINCT over the extracted table exploit a
//     structural invariant: the bulk-ingest stream is entity-sorted
//     (cluster output is globally key-sorted, and core.ExtractAll now
//     total-sorts rows — (entity, attribute, qualifier, value, conf) —
//     so the stream is deterministic for any worker count or shuffle
//     width), hence each shard holds an entity-ascending subsequence of
//     the single-engine table. Tagging each shard's stream with its
//     entity and k-way merging on it reconstructs the single-engine scan
//     order byte-exactly; DISTINCT dedups first-seen on the merged
//     stream.
//
// The equivalence oracle (internal/shard/shard_test.go) proves the
// contract the merges exist for: for 1-, 2-, and 4-shard layouts over
// the same corpus, AskGuided, KeywordSearch, Browse, and a 21-query SQL
// matrix (ORDER BY with LIMIT/OFFSET/DESC, aggregates, GROUP BY,
// DISTINCT, unordered scans, entity-routed queries) render byte-identical
// to a single engine. Writes through SQL are typed ErrReadOnly;
// cross-shard JOINs and HAVING are typed ErrUnsupported.
//
// Vector snapshots. ShardedSystem.View pins one PR7 MVCC snapshot per
// shard — a vector of LSNs — so a cross-shard read session is
// repeatable-read on every shard at once: the same query re-run inside
// the view returns the same bytes while concurrent corrections land, and
// a fresh read afterwards sees them.
//
// Degraded serving. A dead shard (engine closed, simulated by
// KillShard) does not take the dataspace down. Fan-out paths return the
// healthy shards' complete answer ALONGSIDE a typed *DegradedError
// naming the dead partitions — provenance of the gap, not silent
// truncation; the partial result is proven to be exactly the full result
// minus the dead shard's rows. Entity-routed requests to a dead shard
// fail typed; keyword search falls to the lowest healthy shard and stays
// complete (every shard indexes the full corpus text).
//
// The wire protocol carries the same contract (internal/server): the
// Server now fronts any Backend (single System or ShardedSystem —
// `unidbd -shards N`), partial results arrive as OK responses with a
// Degraded{down, shards} marker, result-less shard loss maps to the
// typed "degraded" code (client sentinel ErrDegraded), and health
// reports shard topology. The sharded daemon bulk-ingests on first open
// and warm-reopens per-shard subdirectories; a manifest refuses a reopen
// with a different shard count, since entity ownership would silently
// move. The fault suite drives all of it over real sockets with
// concurrent healthy traffic under admission-control deadlines.
//
// The headline measurement (perfbench/shardload.go, BENCH_PR9.json):
// the PR7 mixed guided-flow read sweep against a 4-shard system versus
// one engine, same corpus, same reader counts — sharded throughput
// scales with engines (target >= 2x at 4 shards even on a single-core
// runner, where per-shard LIMIT pushdown shrinks each engine's scan and
// merge work is O(k)).
//
// # Larger-than-RAM serving: scan-resistant buffer pool + segmented WAL (PR10)
//
// Before PR10 the engine's frame cap was advisory in practice — steady
// workloads fit in the pool — and the WAL was one flat device whose
// truncation copied the live tail down. PR10 makes "table much bigger
// than memory" a served configuration with proofs.
//
// Scan-resistant replacement (internal/rdbms/buffer.go). The pool's
// single LRU became a segmented LRU: frames enter a probation queue and
// earn the protected queue (3/4 of capacity) only on resident
// re-reference. Scan paths (heap Scan, recovery, SQL table scans)
// declare themselves via PinScan: scan misses are admitted at probation's
// eviction end and never promote, so a full-table sweep recycles a
// handful of frames instead of flushing the working set. A 2Q-style
// ghost list remembers recently evicted non-scan pages; a miss on a
// remembered page is proven reuse the frame cap hid, and is admitted
// straight to protected — without it, a hot set wider than probation
// cycles forever while stale early promotions squat in protected.
// ErrPoolExhausted (every frame pinned) is a typed capacity refusal the
// server maps to the overloaded wire code, not a 500. BufferStats
// (hits, misses, evictions, scan-bypass, ghost hits, residency) threads
// through core.EngineStats — summed across shards — to unidbd health.
//
// Segmented WAL (internal/rdbms/wal.go, walstore.go). The log is now a
// sequence of fixed-size segments under a manifest (temp + fsync +
// rename + directory fsync). Rotation happens in the group-commit flush
// leader; TruncateTo drops whole prefix segments O(1) — no copy-down,
// no stop-the-world — and recovery walks the manifest's segments in
// order. The checkpoint horizon math is unchanged: a long-running
// transaction pins the horizon, and the space-bound test proves garbage
// below the horizon stays within two segments of slack while prefix
// segments free as commits advance.
//
// The proof harness (largerthanram_test.go, segrotate_test.go): an
// oracle run with the heap ~15x the pool must render byte-identical
// results to an uncapped run across point reads, scans, and ORDER BY,
// with residency never exceeding capacity and post-GC heap growth flat
// across repeated sweeps; the scan-resistance A/B pits the SLRU against
// a flat-LRU build of the same pool (Options.FlatLRU) and requires the
// hot set to survive sweeps only under SLRU; the rotation crash suite
// kills the segment/manifest protocol at every mutating I/O (crash and
// torn-write) and requires every acked commit after reopen; a
// concurrent pin/evict storm hammers a capacity-2 pool with 8 goroutines
// under -race and write faults. CI adds a GOMEMLIMIT=128MiB job — the
// runtime itself enforces the memory bound the oracle claims.
//
// The headline measurement (perfbench/bufferload.go, BENCH_PR10.json):
// a full heap sweep through a pool ~10x smaller than the table, and hot
// point reads interleaved with such sweeps — the hot reads stay at
// in-cache cost with a 1.0 hit rate because the sweeps cannot evict the
// protected set.
package repro
