// Jobsearch reproduces the paper's Section 3.2 incremental best-effort
// scenario: a user comparing cities for a move first extracts only
// monthly temperatures (to compare climates), and only later — when the
// need arises — extracts populations to keep cities above half a million.
// Extraction effort follows demand; queries over the partial structure
// report their coverage honestly.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	corpus, _ := synth.Generate(synth.Config{
		Seed: 21, Cities: 40, People: 10, Filler: 30, MentionsPerPerson: 2,
	})
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Plan extraction of both attributes over 8 corpus partitions, but do
	// not run anything yet: generation is lazy.
	if err := sys.PlanIncremental(context.Background(), "city", []string{"temperature", "population"}, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d extraction tasks; nothing extracted yet\n", sys.PendingTasks())

	// Phase 1: the user only cares about climate. Demand prioritizes
	// temperature tasks; a small budget extracts them first.
	sys.Demand(context.Background(), "temperature", 10)
	n, err := sys.ExtractPending(context.Background(), "city", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 1: ran %d tasks on demand\n", n)
	fmt.Printf("  temperature coverage: %.0f%%\n", sys.Coverage("temperature")*100)
	fmt.Printf("  population  coverage: %.0f%%\n", sys.Coverage("population")*100)

	rs, err := sys.SQL(context.Background(), `SELECT entity, AVG(num) avg_temp FROM extracted
		WHERE attribute = 'temperature'
		GROUP BY entity ORDER BY avg_temp DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwarmest candidate cities (partial structure is already queryable):")
	fmt.Print(rs.String())

	// Phase 2: the user now wants only cities with at least 500k people.
	// Population extraction runs on demand.
	fmt.Println("\nphase 2: user adds a population constraint; extracting populations...")
	if _, err := sys.ExtractPending(context.Background(), "city", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  population coverage: %.0f%%\n", sys.Coverage("population")*100)

	rs, err = sys.SQL(context.Background(), `SELECT t.entity, AVG(t.num) avg_temp
		FROM extracted t JOIN extracted p ON t.entity = p.entity
		WHERE t.attribute = 'temperature' AND p.attribute = 'population' AND p.num >= 500000
		GROUP BY t.entity ORDER BY avg_temp DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwarmest cities with at least 500,000 people:")
	fmt.Print(rs.String())
}
