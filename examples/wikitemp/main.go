// Wikitemp walks through the paper's Section 2 motivating example in
// full: "find the average March-September temperature in Madison,
// Wisconsin". It contrasts what keyword search can do (return pages) with
// what the structured pipeline does (locate the monthly temperatures,
// compute their average), then shows provenance and the semantic
// debugger on a corrupted variant.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/uql"
)

func main() {
	corpus, truth := synth.Generate(synth.Config{
		Seed: 7, Cities: 30, People: 10, Filler: 20,
		MentionsPerPerson: 2, CorruptFrac: 0.1,
	})
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// --- The IR-only attempt -------------------------------------------
	query := "average March September temperature Madison Wisconsin"
	fmt.Printf("QUERY: %q\n\n", query)
	fmt.Println("keyword search (what a 2009 search engine gives you):")
	hits, err := sys.KeywordSearch(context.Background(), query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range hits {
		fmt.Printf("  %d. %-30s %s\n", i+1, h.Title, h.Snippet)
	}
	fmt.Println("  -> the answer is in there, but the engine cannot compute it.")

	// --- Generate structure --------------------------------------------
	if _, err := sys.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted %d (month, temperature) pairs from city pages\n",
		sys.Stats.Counter("uql.store.rows"))

	// --- The structured answer ------------------------------------------
	ans, err := sys.AskGuided(context.Background(), query, 5)
	if err != nil {
		log.Fatal(err)
	}
	top := ans.Candidates[0]
	fmt.Printf("\nguided interpretation: %s\n", top.Form())
	fmt.Printf("SQL: %s\n", top.SQL)
	got, _ := core.AverageFromRows(ans.Answer)
	want := truth.CityTruth("Madison, Wisconsin").AvgTemp(2, 8)
	fmt.Printf("answer: %.2f F (ground truth %.2f F)\n", got, want)

	// --- The semantic debugger -------------------------------------------
	violations, err := sys.SweepSuspicious(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsemantic debugger: %d suspicious values in the corrupted corpus\n", len(violations))
	for i, v := range violations {
		if i >= 4 {
			fmt.Printf("  ... %d more\n", len(violations)-4)
			break
		}
		fmt.Printf("  %s\n", v.String())
	}
	fmt.Printf("(ground truth: %d corruptions injected)\n", len(truth.Corruptions))
}
