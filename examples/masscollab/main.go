// Masscollab demonstrates the paper's mass-collaboration option: a crowd
// of simulated ordinary users (with mixed reliability) curates the
// entity-resolution step of a community portal. Reputation weighting
// makes the reliable curator's vote count more; the incentive manager
// keeps a leaderboard; contributions also flow through the wiki store
// with edit-conflict handling.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/hi"
	"repro/internal/integrate"
	"repro/internal/synth"
	"repro/internal/uql"
)

func main() {
	corpus, truth := synth.Generate(synth.Config{
		Seed: 5, Cities: 10, People: 30, Filler: 10, MentionsPerPerson: 4,
	})

	// Ground truth for simulated users: two page titles co-refer when they
	// belong to the same generated person.
	titleOwner := map[string]int{}
	for _, p := range truth.People {
		for _, m := range p.Mentions {
			titleOwner[m.DocTitle] = p.ID
		}
	}
	oracle := func(q hi.Question) (bool, int) {
		if len(q.Payload) == 2 {
			a, okA := titleOwner[q.Payload[0]]
			b, okB := titleOwner[q.Payload[1]]
			return okA && okB && a == b, 0
		}
		return true, 0
	}

	// A crowd: one diligent curator, several casual users.
	crowdSpec := []struct {
		name string
		err  float64
	}{
		{"curator", 0.02}, {"casual1", 0.25}, {"casual2", 0.25},
		{"casual3", 0.3}, {"driveby", 0.45},
	}
	sys, err := core.New(core.Config{Corpus: corpus})
	if err != nil {
		log.Fatal(err)
	}
	var members []hi.Answerer
	for i, u := range crowdSpec {
		sys.Users.Register(u.name, "pw", "ordinary")
		members = append(members, hi.NewSimulatedAnswerer(u.name, u.err, int64(i+1), oracle))
	}
	// Seed reputations from a calibration round with known answers (the
	// oracle sees "calib" as a self-match, so the truth is always "yes").
	titleOwner["calib"] = -1
	for i := 0; i < 40; i++ {
		q := hi.Question{ID: 1000 + i, Payload: []string{"calib", "calib"}}
		for _, m := range members {
			a := m.Answer(q)
			sys.Users.RecordFeedbackOutcome(a.UserID, a.Yes)
		}
	}
	fmt.Println("reputations after calibration:")
	for _, u := range crowdSpec {
		fmt.Printf("  %-8s weight %.2f\n", u.name, sys.Users.Weight(u.name))
	}

	// Wire the reputation-weighted crowd into the system and run the
	// person pipeline with HI-assisted entity resolution.
	sys.Env.Crowd = hi.NewCrowd(members, sys.Users)
	_, err = sys.Generate(context.Background(), `
		EXTRACT born FROM docs USING person KIND person INTO people;
		RESOLVE people THRESHOLD 0.82 BUDGET 80 INTO resolved;
		STORE resolved INTO TABLE extracted;
	`, uql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquestions asked of the crowd: %d\n", sys.Stats.Counter("uql.resolve.questions"))
	fmt.Printf("rows re-pointed at canonical entities: %d\n", sys.Stats.Counter("uql.resolve.merged"))

	// Score resolution quality against ground truth by pairing the rows
	// before and after RESOLVE (order is preserved).
	before := sys.Env.Relations["people"]
	after := sys.Env.Relations["resolved"]
	p, r, f1 := scoreResolution(before, after, titleOwner)
	fmt.Printf("entity resolution vs truth: precision %.2f, recall %.2f, F1 %.2f\n", p, r, f1)

	// Award contributors and show the leaderboard.
	for _, u := range crowdSpec {
		correct, wrong := sys.Users.Accuracy(u.name)
		sys.Users.Award(u.name, int64(correct-wrong))
	}
	fmt.Println("\nleaderboard:")
	for _, e := range sys.Users.Leaderboard(5) {
		fmt.Printf("  %-8s %4d points (weight %.2f)\n", e.Name, e.Points, e.Weight)
	}

	// Contributions also land in the wiki with optimistic concurrency.
	if err := sys.Wiki.Create("People portal", "Curated people directory.", "curator", "init"); err != nil {
		log.Fatal(err)
	}
	head, _ := sys.Wiki.Read("People portal")
	if _, err := sys.Wiki.Edit("People portal", head.Text+"\nReviewed by the crowd.", "casual1", "note", head.Num); err != nil {
		log.Fatal(err)
	}
	// A stale edit is rejected, not silently merged.
	if _, err := sys.Wiki.Edit("People portal", "clobber", "driveby", "oops", head.Num); err != nil {
		fmt.Printf("\nwiki conflict handled: %v\n", strings.SplitN(err.Error(), ":", 2)[0])
	}
}

// scoreResolution computes pairwise P/R/F1 of predicted title clusters
// (titles sharing a resolved entity) against gold clusters (titles of the
// same generated person).
func scoreResolution(before, after []uql.Row, titleOwner map[string]int) (p, r, f1 float64) {
	titleID := map[string]int{}
	idOf := func(title string) int {
		if id, ok := titleID[title]; ok {
			return id
		}
		id := len(titleID)
		titleID[title] = id
		return id
	}
	predGroups := map[string]map[int]bool{}
	goldGroups := map[int]map[int]bool{}
	for i := range before {
		title := before[i].Entity
		id := idOf(title)
		canon := after[i].Entity
		if predGroups[canon] == nil {
			predGroups[canon] = map[int]bool{}
		}
		predGroups[canon][id] = true
		owner, ok := titleOwner[title]
		if !ok {
			continue
		}
		if goldGroups[owner] == nil {
			goldGroups[owner] = map[int]bool{}
		}
		goldGroups[owner][id] = true
	}
	toClusters := func(groups map[int]bool) []int {
		var out []int
		for id := range groups {
			out = append(out, id)
		}
		return out
	}
	var pred, gold [][]int
	for _, g := range predGroups {
		pred = append(pred, toClusters(g))
	}
	for _, g := range goldGroups {
		gold = append(gold, toClusters(g))
	}
	return integrate.PairwiseF1(pred, gold)
}
