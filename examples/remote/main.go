// Remote: the PR6 serving front end end to end, in one process — start
// a unidbd daemon (the exact code path cmd/unidbd runs) over a durable
// data directory, drive it over TCP with the protocol client that backs
// `unidb -remote`, watch the admission controller shed a request past
// its deadline, then SIGTERM the daemon and observe the graceful-drain
// contract: exit without error, and a warm zero-rebuild second life.
//
// The equivalent shell session against real binaries:
//
//	unidbd -data /tmp/mydb &
//	unidb -remote 127.0.0.1:7407 search temperature Madison
//	unidb -remote 127.0.0.1:7407 sql "SELECT COUNT(*) FROM extracted"
//	unidb -remote 127.0.0.1:7407 -timeout 5s ask average March temperature Madison
//	unidb -remote 127.0.0.1:7407 health
//	kill -TERM %1   # drains in-flight requests, checkpoints, snapshots
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "remote-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. First life: the daemon. RunDaemon is what cmd/unidbd calls —
	// corpus, system over dir, TCP server, signal-driven drain.
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	cfg := server.DaemonConfig{
		Addr:    "127.0.0.1:0",
		DataDir: dir,
		Cities:  20, People: 8, Filler: 12, Seed: 3, Workers: 4,
		Out:   os.Stdout,
		Ready: func(a net.Addr) { addrCh <- a },
	}
	go func() { done <- server.RunDaemon(cfg) }()
	addr := (<-addrCh).String()

	// 2. The wire client (the same one behind `unidb -remote`).
	cli, err := server.Dial(addr, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	hits, err := cli.Search(ctx, "temperature Madison", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch over the wire: %d hits, top %q\n", len(hits), hits[0].Title)

	rs, err := cli.SQL(ctx, "SELECT COUNT(*) FROM extracted")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL over the wire: %s rows extracted\n", rs.Rows[0][0])

	ans, err := cli.Ask(ctx, "average March temperature Madison", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guided answer: %s\n", ans.Candidates[0].Form)

	// 3. Deadlines are server-enforced: a 1ns budget expires before the
	// scan finishes, and the typed error comes back over the wire.
	shortCtx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	_, err = cli.SQL(shortCtx, "SELECT * FROM extracted")
	cancel()
	fmt.Printf("1ns-deadline query refused: %v\n", err)

	h, err := cli.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %d rows, served %d, shed %d\n", h.ExtractedRows, h.Served, h.Shed)

	// 4. Graceful drain: SIGTERM (what an orchestrator sends) makes the
	// daemon stop accepting, finish in-flight work, checkpoint, and
	// snapshot warm state.
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// 5. Second life: same directory, warm zero-rebuild reopen.
	go func() { done <- server.RunDaemon(cfg) }()
	addr = (<-addrCh).String()
	cli2, err := server.Dial(addr, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := cli2.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond life: %d rows back, %d indexes loaded from checkpoint (0 rebuilt: %v)\n",
		h2.ExtractedRows, h2.IndexesLoaded, h2.IndexesRebuilt == 0)
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndone: both lives drained and closed cleanly")
}
