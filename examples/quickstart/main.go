// Quickstart: the minimal end-to-end loop — generate a corpus, run a
// declarative extraction program over a crash-safe on-disk database,
// move from keyword search to a structured answer, then close and
// reopen the same directory to show the extracted structure (and the
// warm catalog over it) surviving a real process-style restart.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/uql"
)

func main() {
	// 1. A Wikipedia-like corpus (the system's unstructured input).
	corpus, _ := synth.Generate(synth.DefaultConfig(1))
	fmt.Printf("corpus: %d documents, %d KiB\n", corpus.Len(), corpus.Bytes()/1024)

	// 2. A durable root: dir/db holds the checksummed page file and WAL,
	// dir/warm the catalog/queue snapshots. Everything below survives in
	// this directory across Close → OpenDir.
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 3. First life: stand up the system; the setup runs only because the
	// directory is fresh, and materializes structure via a declarative IE
	// program.
	sys, rep, err := core.OpenDir(dir, core.Config{Corpus: corpus, Workers: 4}, func(s *core.System) error {
		plan, err := s.Generate(context.Background(), `
			EXTRACT temperature, population FROM docs USING city KIND city INTO facts;
			STORE facts INTO TABLE extracted;
		`, uql.Options{})
		if err != nil {
			return err
		}
		fmt.Println("\nexecution plan:")
		fmt.Println(plan.Explain)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first open: reopened=%v warm=%v, rows materialized: %d\n",
		rep.Reopened, rep.Warm, sys.Stats.Counter("uql.store.rows"))

	// 4. Exploitation, mode 1: plain keyword search (the IR baseline).
	fmt.Println("\nkeyword search: 'average temperature Madison Wisconsin'")
	hits, err := sys.KeywordSearch(context.Background(), "average temperature Madison Wisconsin", 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range hits {
		fmt.Printf("  %d. %s (%.2f)\n", i+1, h.Title, h.Score)
	}

	// 5. Exploitation, mode 2: the same keywords guided into a structured
	// query — the transition keyword search cannot make.
	ans, err := sys.AskGuided(context.Background(), "average temperature Madison Wisconsin", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguided reformulation candidates:")
	for i, c := range ans.Candidates {
		fmt.Printf("  %d. %s\n", i+1, c.Form())
	}
	if avg, ok := core.AverageFromRows(ans.Answer); ok {
		fmt.Printf("\nanswer: the average temperature in Madison is %.1f degrees F\n", avg)
	}

	// 6. Close: checkpoint the database (all pages durable, WAL truncated)
	// and save a warm snapshot. This is the full shutdown a real
	// deployment would run.
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclosed: database checkpointed to disk, warm snapshot saved")

	// 7. Second life: reopen the same directory. The extracted table
	// recovers from the data file — no re-extraction — and the warm
	// snapshot restores the catalog without a rebuild scan.
	sys2, rep2, err := core.OpenDir(dir, core.Config{Corpus: corpus, Workers: 4}, func(s *core.System) error {
		log.Fatal("setup ran on reopen — the database was not recovered")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened: reopened=%v warm=%v (extraction skipped, structure recovered from %s)\n",
		rep2.Reopened, rep2.Warm, dir)

	// 8. Exploitation, mode 3: direct SQL for sophisticated users — served
	// from the recovered on-disk structure.
	rs, err := sys2.SQL(context.Background(), `SELECT entity, num FROM extracted
		WHERE attribute = 'population' AND num > 1000000 ORDER BY num DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncities over one million (via SQL, after reopen):")
	fmt.Print(rs.String())

	if err := sys2.Close(); err != nil {
		log.Fatal(err)
	}
}
