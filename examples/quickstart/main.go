// Quickstart: the minimal end-to-end loop — generate a corpus, run a
// declarative extraction program, and move from keyword search to a
// structured answer.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/uql"
)

func main() {
	// 1. A Wikipedia-like corpus (the system's unstructured input).
	corpus, _ := synth.Generate(synth.DefaultConfig(1))
	fmt.Printf("corpus: %d documents, %d KiB\n", corpus.Len(), corpus.Bytes()/1024)

	// 2. Stand up the end-to-end system.
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Generation: a declarative IE program materializes structure.
	plan, err := sys.Generate(`
		EXTRACT temperature, population FROM docs USING city KIND city INTO facts;
		STORE facts INTO TABLE extracted;
	`, uql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexecution plan:")
	fmt.Println(plan.Explain)
	fmt.Printf("rows materialized: %d\n", sys.Stats.Counter("uql.store.rows"))

	// 4. Exploitation, mode 1: plain keyword search (the IR baseline).
	fmt.Println("\nkeyword search: 'average temperature Madison Wisconsin'")
	for i, h := range sys.KeywordSearch("average temperature Madison Wisconsin", 3) {
		fmt.Printf("  %d. %s (%.2f)\n", i+1, h.Title, h.Score)
	}

	// 5. Exploitation, mode 2: the same keywords guided into a structured
	// query — the transition keyword search cannot make.
	ans, err := sys.AskGuided("average temperature Madison Wisconsin", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguided reformulation candidates:")
	for i, c := range ans.Candidates {
		fmt.Printf("  %d. %s\n", i+1, c.Form())
	}
	if avg, ok := core.AverageFromRows(ans.Answer); ok {
		fmt.Printf("\nanswer: the average temperature in Madison is %.1f degrees F\n", avg)
	}

	// 6. Exploitation, mode 3: direct SQL for sophisticated users.
	rs, err := sys.SQL(`SELECT entity, num FROM extracted
		WHERE attribute = 'population' AND num > 1000000 ORDER BY num DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncities over one million (via SQL):")
	fmt.Print(rs.String())
}
