// Sensors demonstrates the paper's Section 6 generalization: the same
// structured approach applied to a different kind of raw data. Sensor
// logs replace wiki text; the identical end-to-end machinery extracts
// readings, learns their normal range (flagging a faulty sensor), infers
// higher-level events ("someone entered the room") via alert
// subscriptions, and answers structured queries over the result. The
// readings live in a crash-safe on-disk database: the example ends by
// closing it and reopening the directory, querying the recovered data.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/extract"
	"repro/internal/uql"
)

func main() {
	corpus := sensorCorpus(11)
	dir, err := os.MkdirTemp("", "sensors-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sys, _, err := core.OpenDir(dir, core.Config{Corpus: corpus}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Register a domain extractor: "sensor door-3 reported 0.92 at tick 17."
	readingEx, err := extract.NewRegexExtractor(
		"sensor-reading", "reading",
		`sensor (?P<qualifier>[a-z]+-\d+) reported (?P<value>\d+\.\d+) at tick \d+`,
		0.95,
	)
	if err != nil {
		log.Fatal(err)
	}
	sys.Env.Extractors["sensor"] = uql.RegisteredExtractor{
		Pipeline: extract.NewPipeline(readingEx),
		Hints:    map[string]string{"reading": "sensor "},
	}

	// Event inference as a standing query: a door reading above 0.9 means
	// an entry event (the §6 "someone has entered the room").
	if _, err := sys.Subscribe(alert.Subscription{
		User: "security", Attribute: "reading", Op: alert.OpGT, Threshold: 0.9,
	}); err != nil {
		log.Fatal(err)
	}

	// Same generation path as for documents — incremental, demand-driven.
	if err := sys.PlanIncremental(context.Background(), "sensor", []string{"reading"}, 4); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.ExtractPending(context.Background(), "sensor", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d readings from %d log files\n",
		sys.Stats.Counter("core.materialized.rows"), corpus.Len())
	fmt.Printf("entry events inferred (reading > 0.9): %d\n",
		sys.Stats.Counter("core.alerts.fired"))

	// Structured exploitation: busiest sensors.
	rs, err := sys.SQL(context.Background(), `SELECT qualifier, COUNT(*) AS readings, AVG(num) AS avg_reading
		FROM extracted WHERE attribute = 'reading'
		GROUP BY qualifier ORDER BY avg_reading DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-sensor summary (SQL over extracted structure):")
	fmt.Print(rs.String())

	// The semantic debugger spots the faulty sensor's 9.99 readings.
	violations, err := sys.SweepSuspicious(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	faulty := map[string]bool{}
	for _, v := range violations {
		faulty[v.Value] = true
	}
	fmt.Printf("\nsemantic debugger flagged %d suspicious readings: %v\n",
		len(violations), keys(faulty))
	fmt.Println("(sensor hall-9 is broken and reports 9.99)")

	// Durability: checkpoint + close, then reopen the same directory. The
	// readings recover from disk — no re-extraction — and keep answering.
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
	sys2, rep, err := core.OpenDir(dir, core.Config{Corpus: corpus}, nil)
	if err != nil {
		log.Fatal(err)
	}
	rs2, err := sys2.SQL(context.Background(), `SELECT COUNT(*) AS readings FROM extracted WHERE attribute = 'reading'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter close + reopen from %s (reopened=%v warm=%v):\n", dir, rep.Reopened, rep.Warm)
	fmt.Printf("readings recovered from disk: %s\n", rs2.Rows[0][0].String())
	if err := sys2.Close(); err != nil {
		log.Fatal(err)
	}
}

// sensorCorpus builds daily sensor-log "documents": mostly readings in
// [0, 1], with door sensors spiking above 0.9 on entries, and one faulty
// sensor stuck at 9.99.
func sensorCorpus(seed int64) *doc.Corpus {
	rng := rand.New(rand.NewSource(seed))
	sensors := []string{"door-1", "door-2", "door-3", "window-4", "hall-7"}
	corpus := doc.NewCorpus()
	tick := 0
	for day := 0; day < 6; day++ {
		var b strings.Builder
		fmt.Fprintf(&b, "Sensor log day %d\n\n", day)
		for i := 0; i < 60; i++ {
			tick++
			s := sensors[rng.Intn(len(sensors))]
			reading := rng.Float64() * 0.6
			if strings.HasPrefix(s, "door") && rng.Intn(6) == 0 {
				reading = 0.9 + rng.Float64()*0.1 // an entry
			}
			fmt.Fprintf(&b, "sensor %s reported %.2f at tick %d.\n", s, reading, tick)
		}
		if day >= 4 { // the faulty sensor appears late in the trace
			for i := 0; i < 3; i++ {
				tick++
				fmt.Fprintf(&b, "sensor hall-9 reported 9.99 at tick %d.\n", tick)
			}
		}
		corpus.Add(doc.Document{
			Title: fmt.Sprintf("sensor-log-day-%d", day),
			Text:  b.String(),
			Meta:  map[string]string{"kind": "sensorlog"},
		})
	}
	return corpus
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
