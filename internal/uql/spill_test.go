package uql

import (
	"testing"
	"testing/quick"

	"repro/internal/filestore"
	"repro/internal/provenance"
)

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	r := Row{
		Entity: "Madison, Wisconsin", Attribute: "temperature",
		Qualifier: "September", Value: "62.0", Conf: 0.92, Prov: 17,
	}
	got, err := DecodeRow(EncodeRow(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	f := func(e, a, q, v string, conf float64, prov int64) bool {
		r := Row{Entity: e, Attribute: a, Qualifier: q, Value: v, Conf: conf, Prov: provenance.NodeID(prov)}
		got, err := DecodeRow(EncodeRow(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {5, 0, 0, 0, 'a'}, append(EncodeRow(Row{}), 0xFF)} {
		if _, err := DecodeRow(b); err == nil {
			t.Errorf("DecodeRow(%v) should fail", b)
		}
	}
}

func TestSpillAndLoadRelation(t *testing.T) {
	env := NewEnv()
	env.Relations["facts"] = []Row{
		{Entity: "a", Attribute: "x", Value: "1", Conf: 0.5, Prov: 3},
		{Entity: "b", Attribute: "y", Qualifier: "q", Value: "2", Conf: 0.9, Prov: 4},
	}
	store := filestore.New(256)
	n, err := env.SpillRelation("facts", store)
	if err != nil || n != 2 {
		t.Fatalf("spill: %d %v", n, err)
	}
	if store.Count() != 2 {
		t.Fatalf("store count: %d", store.Count())
	}
	// Load into a fresh environment.
	env2 := NewEnv()
	n, err = env2.LoadSpilled("restored", store)
	if err != nil || n != 2 {
		t.Fatalf("load: %d %v", n, err)
	}
	got := env2.Relations["restored"]
	for i, r := range env.Relations["facts"] {
		if got[i] != r {
			t.Fatalf("row %d: %+v != %+v", i, got[i], r)
		}
	}
	// Loading again appends.
	if _, err := env2.LoadSpilled("restored", store); err != nil {
		t.Fatal(err)
	}
	if len(env2.Relations["restored"]) != 4 {
		t.Fatalf("append load: %d rows", len(env2.Relations["restored"]))
	}
	// Unknown relation errors.
	if _, err := env.SpillRelation("ghost", store); err == nil {
		t.Fatal("spill of missing relation should error")
	}
}

func TestSpillSurvivesPersistence(t *testing.T) {
	dir := t.TempDir()
	env := NewEnv()
	env.Relations["r"] = []Row{{Entity: "e", Attribute: "a", Value: "v", Conf: 0.7}}
	store := filestore.New(128)
	if _, err := env.SpillRelation("r", store); err != nil {
		t.Fatal(err)
	}
	if err := store.Persist(dir); err != nil {
		t.Fatal(err)
	}
	re, err := filestore.Open(dir, 128)
	if err != nil {
		t.Fatal(err)
	}
	env2 := NewEnv()
	n, err := env2.LoadSpilled("r", re)
	if err != nil || n != 1 {
		t.Fatalf("load after persist: %d %v", n, err)
	}
	if env2.Relations["r"][0].Value != "v" {
		t.Fatalf("row lost: %+v", env2.Relations["r"])
	}
}
