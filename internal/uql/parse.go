// Package uql implements the paper's declarative IE+II+HI language (the
// heart of the processing layer, Figure 1 Parts I-II): a small language in
// which developers write programs that extract attributes from document
// collections, integrate the results (schema matching, entity
// resolution), route uncertain pieces to humans, and store the final
// structure in the RDBMS. Programs are parsed to an AST, compiled to a
// logical plan, optimized (document prefiltering, early confidence
// filtering, parallel extraction), and executed.
//
// Grammar (statements end with ';'):
//
//	EXTRACT attr [, attr]* FROM docs USING extractor
//	    [MINCONF f] [KIND word] INTO rel ;
//	INTEGRATE srcRel INTO dstRel [THRESHOLD f] ;
//	RESOLVE rel [THRESHOLD f] [BUDGET n] INTO rel2 ;
//	ASK rel [MINCONF f] [BUDGET n] ;
//	STORE rel INTO TABLE name ;
package uql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Stmt is one UQL statement.
type Stmt interface{ uqlStmt() }

// ExtractStmt extracts attributes from a document source.
type ExtractStmt struct {
	Attrs   []string // empty = all attributes the extractor yields
	Source  string   // document source name bound in the Env
	Using   string   // extractor registry name
	MinConf float64  // drop fields below this confidence (0 = keep all)
	Kind    string   // optional doc Meta["kind"] filter
	Into    string   // output relation
}

// IntegrateStmt unifies the attribute names of Src against Dst and unions
// the rows into Dst (schema matching).
type IntegrateStmt struct {
	Src       string
	Dst       string
	Threshold float64 // match acceptance threshold (default 0.7)
}

// ResolveStmt clusters entity names in a relation (entity resolution),
// optionally asking the crowd about borderline pairs, and writes rows with
// canonicalized entities into Into.
type ResolveStmt struct {
	Rel       string
	Threshold float64 // link threshold (default 0.82)
	Budget    int     // max borderline pairs to ask humans (0 = none)
	Into      string
}

// AskStmt routes low-confidence facts in a relation to the crowd and
// applies verdicts as Bayesian confidence updates.
type AskStmt struct {
	Rel     string
	MinConf float64 // facts below this are candidates (default 0.7)
	Budget  int     // max questions (0 = unlimited)
}

// StoreStmt materializes a relation into an RDBMS table.
type StoreStmt struct {
	Rel   string
	Table string
}

func (ExtractStmt) uqlStmt()   {}
func (IntegrateStmt) uqlStmt() {}
func (ResolveStmt) uqlStmt()   {}
func (AskStmt) uqlStmt()       {}
func (StoreStmt) uqlStmt()     {}

// Program is a parsed UQL program.
type Program struct {
	Stmts []Stmt
}

type uqlToken struct {
	text string // keywords uppercased
	kind int    // 0 word, 1 number, 2 symbol
	pos  int
}

const (
	tWord = iota
	tNumber
	tSymbol
	tEOF
)

var uqlKeywords = map[string]bool{
	"EXTRACT": true, "FROM": true, "USING": true, "MINCONF": true,
	"KIND": true, "INTO": true, "INTEGRATE": true, "THRESHOLD": true,
	"RESOLVE": true, "BUDGET": true, "ASK": true, "STORE": true,
	"TABLE": true,
}

func lexUQL(input string) ([]uqlToken, error) {
	var toks []uqlToken
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '#': // comment to end of line
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			if uqlKeywords[strings.ToUpper(word)] {
				word = strings.ToUpper(word)
			}
			toks = append(toks, uqlToken{text: word, kind: tWord, pos: i})
			i = j
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, uqlToken{text: input[i:j], kind: tNumber, pos: i})
			i = j
		case c == ',' || c == ';':
			toks = append(toks, uqlToken{text: string(c), kind: tSymbol, pos: i})
			i++
		default:
			return nil, fmt.Errorf("uql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, uqlToken{kind: tEOF, pos: len(input)})
	return toks, nil
}

// Parse parses a UQL program.
func Parse(input string) (*Program, error) {
	toks, err := lexUQL(input)
	if err != nil {
		return nil, err
	}
	p := &uqlParser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tEOF {
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}
	if len(prog.Stmts) == 0 {
		return nil, fmt.Errorf("uql: empty program")
	}
	return prog, nil
}

type uqlParser struct {
	toks []uqlToken
	pos  int
}

func (p *uqlParser) peek() uqlToken { return p.toks[p.pos] }
func (p *uqlParser) next() uqlToken { t := p.toks[p.pos]; p.pos++; return t }

func (p *uqlParser) errorf(format string, args ...any) error {
	return fmt.Errorf("uql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *uqlParser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tWord || t.text != kw {
		return fmt.Errorf("uql: expected %s, got %q (position %d)", kw, t.text, t.pos)
	}
	return nil
}

func (p *uqlParser) acceptKeyword(kw string) bool {
	if p.peek().kind == tWord && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *uqlParser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tSymbol || t.text != sym {
		return fmt.Errorf("uql: expected %q, got %q (position %d)", sym, t.text, t.pos)
	}
	return nil
}

func (p *uqlParser) expectWord() (string, error) {
	t := p.next()
	if t.kind != tWord {
		return "", fmt.Errorf("uql: expected identifier, got %q (position %d)", t.text, t.pos)
	}
	if uqlKeywords[t.text] {
		return "", fmt.Errorf("uql: keyword %s used as identifier (position %d)", t.text, t.pos)
	}
	return t.text, nil
}

func (p *uqlParser) expectNumber() (float64, error) {
	t := p.next()
	if t.kind != tNumber {
		return 0, fmt.Errorf("uql: expected number, got %q (position %d)", t.text, t.pos)
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("uql: bad number %q", t.text)
	}
	return f, nil
}

func (p *uqlParser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tWord {
		return nil, p.errorf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "EXTRACT":
		return p.parseExtract()
	case "INTEGRATE":
		return p.parseIntegrate()
	case "RESOLVE":
		return p.parseResolve()
	case "ASK":
		return p.parseAsk()
	case "STORE":
		return p.parseStore()
	}
	return nil, p.errorf("unknown statement %q", t.text)
}

func (p *uqlParser) parseExtract() (Stmt, error) {
	p.next() // EXTRACT
	stmt := ExtractStmt{}
	for {
		attr, err := p.expectWord()
		if err != nil {
			return nil, err
		}
		stmt.Attrs = append(stmt.Attrs, attr)
		if p.peek().kind == tSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	// "EXTRACT all FROM ..." means no attribute restriction.
	if len(stmt.Attrs) == 1 && strings.EqualFold(stmt.Attrs[0], "all") {
		stmt.Attrs = nil
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	src, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	stmt.Source = src
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	using, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	stmt.Using = using
	for {
		switch {
		case p.acceptKeyword("MINCONF"):
			f, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			stmt.MinConf = f
		case p.acceptKeyword("KIND"):
			k, err := p.expectWord()
			if err != nil {
				return nil, err
			}
			stmt.Kind = k
		case p.acceptKeyword("INTO"):
			rel, err := p.expectWord()
			if err != nil {
				return nil, err
			}
			stmt.Into = rel
			return stmt, nil
		default:
			return nil, p.errorf("expected MINCONF, KIND, or INTO")
		}
	}
}

func (p *uqlParser) parseIntegrate() (Stmt, error) {
	p.next()
	src, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	dst, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	stmt := IntegrateStmt{Src: src, Dst: dst, Threshold: 0.7}
	if p.acceptKeyword("THRESHOLD") {
		f, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		stmt.Threshold = f
	}
	return stmt, nil
}

func (p *uqlParser) parseResolve() (Stmt, error) {
	p.next()
	rel, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	stmt := ResolveStmt{Rel: rel, Threshold: 0.82}
	for {
		switch {
		case p.acceptKeyword("THRESHOLD"):
			f, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			stmt.Threshold = f
		case p.acceptKeyword("BUDGET"):
			f, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			stmt.Budget = int(f)
		case p.acceptKeyword("INTO"):
			into, err := p.expectWord()
			if err != nil {
				return nil, err
			}
			stmt.Into = into
			return stmt, nil
		default:
			return nil, p.errorf("expected THRESHOLD, BUDGET, or INTO")
		}
	}
}

func (p *uqlParser) parseAsk() (Stmt, error) {
	p.next()
	rel, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	stmt := AskStmt{Rel: rel, MinConf: 0.7}
	for {
		switch {
		case p.acceptKeyword("MINCONF"):
			f, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			stmt.MinConf = f
		case p.acceptKeyword("BUDGET"):
			f, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			stmt.Budget = int(f)
		default:
			return stmt, nil
		}
	}
}

func (p *uqlParser) parseStore() (Stmt, error) {
	p.next()
	rel, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	return StoreStmt{Rel: rel, Table: table}, nil
}
