package uql

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/extract"
	"repro/internal/hi"
	"repro/internal/rdbms"
	"repro/internal/synth"
)

func TestParseFullProgram(t *testing.T) {
	prog, err := Parse(`
		# extract city attributes
		EXTRACT temperature, population FROM docs USING city MINCONF 0.5 KIND city INTO raw;
		INTEGRATE extra INTO raw THRESHOLD 0.8;
		RESOLVE raw THRESHOLD 0.85 BUDGET 10 INTO resolved;
		ASK resolved MINCONF 0.6 BUDGET 5;
		STORE resolved INTO TABLE extracted;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 5 {
		t.Fatalf("got %d statements", len(prog.Stmts))
	}
	ex := prog.Stmts[0].(ExtractStmt)
	if len(ex.Attrs) != 2 || ex.Attrs[0] != "temperature" || ex.MinConf != 0.5 || ex.Kind != "city" || ex.Into != "raw" {
		t.Fatalf("extract: %+v", ex)
	}
	ig := prog.Stmts[1].(IntegrateStmt)
	if ig.Src != "extra" || ig.Dst != "raw" || ig.Threshold != 0.8 {
		t.Fatalf("integrate: %+v", ig)
	}
	rs := prog.Stmts[2].(ResolveStmt)
	if rs.Threshold != 0.85 || rs.Budget != 10 || rs.Into != "resolved" {
		t.Fatalf("resolve: %+v", rs)
	}
	ask := prog.Stmts[3].(AskStmt)
	if ask.MinConf != 0.6 || ask.Budget != 5 {
		t.Fatalf("ask: %+v", ask)
	}
	st := prog.Stmts[4].(StoreStmt)
	if st.Rel != "resolved" || st.Table != "extracted" {
		t.Fatalf("store: %+v", st)
	}
}

func TestParseExtractAll(t *testing.T) {
	prog, err := Parse("EXTRACT all FROM docs USING city INTO raw;")
	if err != nil {
		t.Fatal(err)
	}
	if attrs := prog.Stmts[0].(ExtractStmt).Attrs; attrs != nil {
		t.Fatalf("EXTRACT all should clear attrs: %v", attrs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"EXTRACT FROM docs USING x INTO y;",
		"EXTRACT a FROM docs USING x;",
		"EXTRACT a FROM docs USING x INTO;",
		"STORE r INTO t;", // missing TABLE keyword
		"RESOLVE r;",
		"FROBNICATE x;",
		"EXTRACT a FROM docs USING x INTO y", // missing semicolon
		"EXTRACT a FROM docs USING x MINCONF abc INTO y;",
		"ASK EXTRACT;", // keyword as identifier
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func testEnv(t *testing.T, seed int64, cities, people int) (*Env, *synth.Truth) {
	t.Helper()
	corpus, truth := synth.Generate(synth.Config{
		Seed: seed, Cities: cities, People: people, Filler: 10, MentionsPerPerson: 3,
	})
	env := NewEnv()
	env.Sources["docs"] = corpus
	env.Extractors["city"] = RegisteredExtractor{
		Pipeline: extract.DefaultCityPipeline(),
		Hints: map[string]string{
			"temperature": "average temperature in",
			"population":  "population",
			"founded":     "founded",
		},
	}
	env.Extractors["person"] = RegisteredExtractor{Pipeline: extract.DefaultPersonPipeline()}
	db, err := rdbms.Open(rdbms.NewMemPager(), rdbms.NewMemWAL(), rdbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	env.DB = db
	return env, truth
}

func TestExtractAndStoreEndToEnd(t *testing.T) {
	env, truth := testEnv(t, 9, 10, 3)
	plan, err := Exec(`
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE temps;
	`, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain, "prefilter") {
		t.Fatalf("plan should use prefilter: %s", plan.Explain)
	}
	rows := env.Relations["temps"]
	if len(rows) != 10*12 {
		t.Fatalf("extracted %d temperature rows, want 120", len(rows))
	}
	// The §2 Madison average, computed over the extracted relation.
	sum, n := 0.0, 0
	for _, r := range rows {
		if r.Entity == "Madison, Wisconsin" {
			if f, err := strconv.ParseFloat(r.Value, 64); err == nil {
				sum += f
				n++
			}
		}
	}
	madison := truth.CityTruth("Madison, Wisconsin")
	if n != 12 || !close2(sum/float64(n), madison.AvgTemp(0, 11)) {
		t.Fatalf("madison avg from rows: %v over %d", sum/float64(n), n)
	}
	// Count via SQL.
	rs2, err := env.DB.Exec(`SELECT COUNT(*) FROM temps`)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Rows[0][0].I != 120 {
		t.Fatalf("stored rows: %v", rs2.Rows)
	}
	// Provenance recorded: each row has a lineage chain back to a document.
	r := rows[0]
	srcs := env.Prov.Sources(r.Prov)
	if len(srcs) != 1 {
		t.Fatalf("row sources: %v", srcs)
	}
}

func close2(a, b float64) bool { return a-b < 0.01 && b-a < 0.01 }

func TestPrefilterReducesWork(t *testing.T) {
	env, _ := testEnv(t, 4, 20, 5)
	if _, err := Exec(`EXTRACT temperature FROM docs USING city INTO a;`, env, Options{}); err != nil {
		t.Fatal(err)
	}
	prefiltered := env.Stats.Counter("uql.extract.prefiltered")
	if prefiltered == 0 {
		t.Fatal("prefilter skipped nothing; person/filler docs should be skipped")
	}
	// Ablation: disabling the prefilter processes every document but must
	// return identical rows.
	env2, _ := testEnv(t, 4, 20, 5)
	if _, err := Exec(`EXTRACT temperature FROM docs USING city INTO a;`, env2, Options{NoPrefilter: true}); err != nil {
		t.Fatal(err)
	}
	if len(env.Relations["a"]) != len(env2.Relations["a"]) {
		t.Fatalf("prefilter changed results: %d vs %d", len(env.Relations["a"]), len(env2.Relations["a"]))
	}
	if env2.Stats.Counter("uql.extract.prefiltered") != 0 {
		t.Fatal("ablation still prefiltered")
	}
	if env2.Stats.Counter("uql.extract.docs") <= env.Stats.Counter("uql.extract.docs") {
		t.Fatal("ablation should process more documents")
	}
}

func TestParallelExtractionMatchesSequential(t *testing.T) {
	env, _ := testEnv(t, 6, 15, 5)
	env.Cluster = cluster.New(cluster.Config{Workers: 4})
	if _, err := Exec(`EXTRACT temperature, population FROM docs USING city INTO a;`, env, Options{}); err != nil {
		t.Fatal(err)
	}
	envSeq, _ := testEnv(t, 6, 15, 5)
	if _, err := Exec(`EXTRACT temperature, population FROM docs USING city INTO a;`, envSeq, Options{NoParallel: true}); err != nil {
		t.Fatal(err)
	}
	a, b := env.Relations["a"], envSeq.Relations["a"]
	if len(a) != len(b) {
		t.Fatalf("parallel %d rows vs sequential %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Entity != b[i].Entity || a[i].Value != b[i].Value || a[i].Attribute != b[i].Attribute {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestIntegrateRenamesAttributes(t *testing.T) {
	env := NewEnv()
	env.Relations["left"] = []Row{
		{Entity: "a", Attribute: "address", Value: "Madison, WI", Conf: 0.9},
	}
	env.Relations["right"] = []Row{
		{Entity: "b", Attribute: "location", Value: "Chicago, IL", Conf: 0.9},
	}
	prog, err := Parse(`INTEGRATE right INTO left THRESHOLD 0.7;`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(prog, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(env); err != nil {
		t.Fatal(err)
	}
	left := env.Relations["left"]
	if len(left) != 2 {
		t.Fatalf("union size %d", len(left))
	}
	for _, r := range left {
		if r.Attribute != "address" {
			t.Fatalf("location should be renamed to address: %+v", r)
		}
	}
	if env.Stats.Counter("uql.integrate.renamed") != 1 {
		t.Fatal("rename not counted")
	}
}

func TestResolveUnifiesEntities(t *testing.T) {
	env := NewEnv()
	env.Relations["people"] = []Row{
		{Entity: "David Smith", Attribute: "born", Value: "1962", Conf: 0.9},
		{Entity: "D. Smith", Attribute: "lives", Value: "Madison", Conf: 0.9},
		{Entity: "Sarah Johnson", Attribute: "born", Value: "1970", Conf: 0.9},
	}
	if _, err := Exec(`RESOLVE people THRESHOLD 0.82 INTO resolved;`, env, Options{}); err != nil {
		t.Fatal(err)
	}
	resolved := env.Relations["resolved"]
	entities := map[string]bool{}
	for _, r := range resolved {
		entities[r.Entity] = true
	}
	if entities["D. Smith"] {
		t.Fatalf("D. Smith should be canonicalized: %v", entities)
	}
	if !entities["David Smith"] || !entities["Sarah Johnson"] {
		t.Fatalf("entities: %v", entities)
	}
}

func TestAskRaisesConfidence(t *testing.T) {
	env := NewEnv()
	env.Relations["facts"] = []Row{
		{Entity: "e1", Attribute: "a", Value: "right", Conf: 0.55},
		{Entity: "e2", Attribute: "a", Value: "wrong", Conf: 0.55},
		{Entity: "e3", Attribute: "a", Value: "confident", Conf: 0.95},
	}
	// Oracle: "right"/"confident" are true, "wrong" is false.
	oracle := func(q hi.Question) (bool, int) {
		return !strings.Contains(q.Subject, "wrong"), 0
	}
	members := []hi.Answerer{
		hi.NewSimulatedAnswerer("u1", 0, 1, oracle),
		hi.NewSimulatedAnswerer("u2", 0, 2, oracle),
		hi.NewSimulatedAnswerer("u3", 0, 3, oracle),
	}
	env.Crowd = hi.NewCrowd(members, nil)
	if _, err := Exec(`ASK facts MINCONF 0.7;`, env, Options{}); err != nil {
		t.Fatal(err)
	}
	rows := env.Relations["facts"]
	if rows[0].Conf <= 0.55 {
		t.Fatalf("confirmed fact conf should rise: %v", rows[0].Conf)
	}
	if rows[1].Conf >= 0.55 {
		t.Fatalf("rejected fact conf should fall: %v", rows[1].Conf)
	}
	if rows[2].Conf != 0.95 {
		t.Fatalf("confident fact should not be asked: %v", rows[2].Conf)
	}
	if env.Stats.Counter("uql.ask.questions") != 2 {
		t.Fatalf("questions asked: %d", env.Stats.Counter("uql.ask.questions"))
	}
}

func TestAskBudgetPrioritizesMostUncertain(t *testing.T) {
	env := NewEnv()
	env.Relations["facts"] = []Row{
		{Entity: "near-threshold", Attribute: "a", Value: "v", Conf: 0.69},
		{Entity: "most-uncertain", Attribute: "a", Value: "v", Conf: 0.50},
	}
	oracle := func(hi.Question) (bool, int) { return true, 0 }
	env.Crowd = hi.NewCrowd([]hi.Answerer{hi.NewSimulatedAnswerer("u", 0, 1, oracle)}, nil)
	if _, err := Exec(`ASK facts MINCONF 0.7 BUDGET 1;`, env, Options{}); err != nil {
		t.Fatal(err)
	}
	rows := env.Relations["facts"]
	if rows[1].Conf <= 0.5 && rows[0].Conf != 0.69 {
		t.Fatalf("budget should go to the 0.50 fact first: %+v", rows)
	}
	if rows[0].Conf != 0.69 {
		t.Fatalf("near-threshold fact should be left alone under budget 1: %+v", rows[0])
	}
}

func TestCompileErrors(t *testing.T) {
	env := NewEnv()
	cases := []string{
		`EXTRACT a FROM nowhere USING city INTO x;`,
		`EXTRACT a FROM docs USING ghost INTO x;`,
		`STORE r INTO TABLE t;`, // no DB
	}
	env.Sources["docs"] = nil
	for _, q := range cases {
		prog, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := Compile(prog, env, Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", q)
		}
	}
}

func TestRunErrorsOnMissingRelations(t *testing.T) {
	env := NewEnv()
	for _, q := range []string{
		`RESOLVE ghost INTO out;`,
		`INTEGRATE ghost INTO other;`,
	} {
		if _, err := Exec(q, env, Options{}); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	// ASK without a crowd.
	env.Relations["r"] = []Row{{Entity: "e", Attribute: "a", Value: "v", Conf: 0.1}}
	if _, err := Exec(`ASK r;`, env, Options{}); err == nil {
		t.Error("ASK without crowd should fail")
	}
}

func TestPlanExplain(t *testing.T) {
	env, _ := testEnv(t, 2, 5, 2)
	prog, _ := Parse(`
		EXTRACT temperature FROM docs USING city INTO a;
		STORE a INTO TABLE t;
	`)
	plan, err := Compile(prog, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain, "extract") || !strings.Contains(plan.Explain, "store") {
		t.Fatalf("explain: %s", plan.Explain)
	}
	// Ablated plan explains differently.
	plain, _ := Compile(prog, env, Options{NoPrefilter: true})
	if strings.Contains(plain.Explain, "prefilter") {
		t.Fatalf("ablated explain still mentions prefilter: %s", plain.Explain)
	}
}
