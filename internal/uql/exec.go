package uql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/doc"
	"repro/internal/extract"
	"repro/internal/hi"
	"repro/internal/integrate"
	"repro/internal/monitor"
	"repro/internal/provenance"
	"repro/internal/rdbms"
	"repro/internal/uncertainty"
)

// Row is one tuple of a UQL relation: an uncertain attribute-value
// assertion in entity-attribute-value form, carrying provenance.
type Row struct {
	Entity    string
	Attribute string
	Qualifier string
	Value     string
	Conf      float64
	Prov      provenance.NodeID
}

// Key identifies the assertion (see uncertainty.Fact.Key).
func (r *Row) Key() string { return r.Entity + "\x00" + r.Attribute + "\x00" + r.Qualifier }

// RegisteredExtractor couples a pipeline with per-attribute prefilter
// hints: a document that contains none of the hint substrings for the
// requested attributes cannot produce matches, so the optimizer can skip
// it cheaply.
type RegisteredExtractor struct {
	Pipeline *extract.Pipeline
	// Hints maps attribute -> substring that must appear in a document
	// for that attribute to be extractable.
	Hints map[string]string
}

// Env is the execution context binding names in programs to live objects.
type Env struct {
	Sources    map[string]*doc.Corpus
	Extractors map[string]RegisteredExtractor
	DB         *rdbms.DB
	Crowd      *hi.Crowd // used by ASK and RESOLVE ... BUDGET
	Prov       *provenance.Graph
	Stats      *monitor.Stats
	Cluster    *cluster.Cluster // parallel extraction; nil = sequential

	// Relations holds intermediate results by name.
	Relations map[string][]Row

	docNodes map[doc.DocID]provenance.NodeID
}

// NewEnv returns an environment with empty registries.
func NewEnv() *Env {
	return &Env{
		Sources:    map[string]*doc.Corpus{},
		Extractors: map[string]RegisteredExtractor{},
		Prov:       provenance.NewGraph(),
		Stats:      monitor.NewStats(),
		Relations:  map[string][]Row{},
		docNodes:   map[doc.DocID]provenance.NodeID{},
	}
}

func (e *Env) docNode(d *doc.Document) provenance.NodeID {
	if id, ok := e.docNodes[d.ID]; ok {
		return id
	}
	id := e.Prov.MustAdd(provenance.KindDocument, d.Title, "", 0)
	e.docNodes[d.ID] = id
	return id
}

// Options toggles optimizer rewrites (the E10 ablation knobs).
type Options struct {
	// NoPrefilter disables hint-based document skipping.
	NoPrefilter bool
	// NoEarlyConfFilter applies MINCONF after materializing all fields
	// instead of during extraction.
	NoEarlyConfFilter bool
	// NoParallel forces sequential extraction even when a cluster is set.
	NoParallel bool
}

// Plan is a compiled program: one physical operator per statement plus a
// textual explanation (the reformulator/optimizer output).
type Plan struct {
	ops     []planOp
	Explain string
}

type planOp interface {
	describe() string
	run(env *Env) error
}

// Compile parses nothing — it takes an already-parsed program and produces
// an optimized physical plan against the environment.
func Compile(prog *Program, env *Env, opts Options) (*Plan, error) {
	plan := &Plan{}
	var lines []string
	for _, stmt := range prog.Stmts {
		var op planOp
		switch s := stmt.(type) {
		case ExtractStmt:
			reg, ok := env.Extractors[s.Using]
			if !ok {
				return nil, fmt.Errorf("uql: unknown extractor %q", s.Using)
			}
			if _, ok := env.Sources[s.Source]; !ok {
				return nil, fmt.Errorf("uql: unknown document source %q", s.Source)
			}
			xop := &extractOp{stmt: s, reg: reg}
			// Optimizer: document prefiltering is applicable when every
			// requested attribute has a hint.
			if !opts.NoPrefilter && len(s.Attrs) > 0 {
				hints := make([]string, 0, len(s.Attrs))
				all := true
				for _, a := range s.Attrs {
					h, ok := reg.Hints[a]
					if !ok {
						all = false
						break
					}
					hints = append(hints, h)
				}
				if all {
					xop.prefilter = hints
				}
			}
			xop.earlyConf = !opts.NoEarlyConfFilter && s.MinConf > 0
			xop.parallel = !opts.NoParallel && env.Cluster != nil
			op = xop
		case IntegrateStmt:
			op = &integrateOp{stmt: s}
		case ResolveStmt:
			op = &resolveOp{stmt: s}
		case AskStmt:
			op = &askOp{stmt: s}
		case StoreStmt:
			if env.DB == nil {
				return nil, fmt.Errorf("uql: STORE requires a database in the environment")
			}
			op = &storeOp{stmt: s}
		default:
			return nil, fmt.Errorf("uql: unsupported statement %T", stmt)
		}
		plan.ops = append(plan.ops, op)
		lines = append(lines, op.describe())
	}
	plan.Explain = strings.Join(lines, "\n")
	return plan, nil
}

// Run executes the plan against the environment.
func (p *Plan) Run(env *Env) error {
	for _, op := range p.ops {
		if err := op.run(env); err != nil {
			return err
		}
	}
	return nil
}

// Exec parses, compiles, and runs a program in one call.
func Exec(program string, env *Env, opts Options) (*Plan, error) {
	prog, err := Parse(program)
	if err != nil {
		return nil, err
	}
	plan, err := Compile(prog, env, opts)
	if err != nil {
		return nil, err
	}
	if err := plan.Run(env); err != nil {
		return plan, err
	}
	return plan, nil
}

// --- EXTRACT ------------------------------------------------------------------

type extractOp struct {
	stmt      ExtractStmt
	reg       RegisteredExtractor
	prefilter []string
	earlyConf bool
	parallel  bool
}

func (o *extractOp) describe() string {
	parts := []string{fmt.Sprintf("extract %v from %s using %s", attrsOrAll(o.stmt.Attrs), o.stmt.Source, o.stmt.Using)}
	if len(o.prefilter) > 0 {
		parts = append(parts, fmt.Sprintf("prefilter on %d hints", len(o.prefilter)))
	}
	if o.earlyConf {
		parts = append(parts, fmt.Sprintf("early minconf %.2f", o.stmt.MinConf))
	}
	if o.parallel {
		parts = append(parts, "parallel")
	}
	return strings.Join(parts, " | ")
}

func attrsOrAll(attrs []string) any {
	if len(attrs) == 0 {
		return "all"
	}
	return attrs
}

func (o *extractOp) run(env *Env) error {
	corpus := env.Sources[o.stmt.Source]
	wanted := map[string]bool{}
	for _, a := range o.stmt.Attrs {
		wanted[a] = true
	}
	docs := corpus.Docs()
	var selected []*doc.Document
	for _, d := range docs {
		if o.stmt.Kind != "" && d.Meta["kind"] != o.stmt.Kind {
			continue
		}
		if len(o.prefilter) > 0 && !containsAny(d.Text, o.prefilter) {
			env.Stats.Inc("uql.extract.prefiltered", 1)
			continue
		}
		selected = append(selected, d)
	}
	env.Stats.Inc("uql.extract.docs", int64(len(selected)))

	extractDoc := func(d *doc.Document) ([]extract.Field, error) {
		fields := o.reg.Pipeline.ExtractDoc(d)
		var out []extract.Field
		for _, f := range fields {
			if len(wanted) > 0 && !wanted[f.Attribute] {
				continue
			}
			if o.earlyConf && f.Conf < o.stmt.MinConf {
				continue
			}
			out = append(out, f)
		}
		return out, nil
	}

	var perDoc [][]extract.Field
	var err error
	if o.parallel {
		perDoc, err = cluster.MapOnly(env.Cluster, selected, extractDoc)
		if err != nil {
			return err
		}
	} else {
		for _, d := range selected {
			fs, _ := extractDoc(d)
			perDoc = append(perDoc, fs)
		}
	}

	var rows []Row
	for i, fields := range perDoc {
		d := selected[i]
		for _, f := range fields {
			if !o.earlyConf && o.stmt.MinConf > 0 && f.Conf < o.stmt.MinConf {
				continue
			}
			label := f.Attribute + "=" + f.Value
			if f.Qualifier != "" {
				label = f.Attribute + "[" + f.Qualifier + "]=" + f.Value
			}
			provID := env.Prov.MustAdd(provenance.KindExtraction, label, f.Extractor, f.Conf, env.docNode(d))
			rows = append(rows, Row{
				Entity:    f.Entity,
				Attribute: f.Attribute,
				Qualifier: f.Qualifier,
				Value:     f.Value,
				Conf:      f.Conf,
				Prov:      provID,
			})
		}
	}
	env.Relations[o.stmt.Into] = append(env.Relations[o.stmt.Into], rows...)
	env.Stats.Inc("uql.extract.rows", int64(len(rows)))
	return nil
}

func containsAny(text string, subs []string) bool {
	for _, s := range subs {
		if strings.Contains(text, s) {
			return true
		}
	}
	return false
}

// --- INTEGRATE ----------------------------------------------------------------

type integrateOp struct {
	stmt IntegrateStmt
}

func (o *integrateOp) describe() string {
	return fmt.Sprintf("integrate %s into %s (schema match, threshold %.2f)", o.stmt.Src, o.stmt.Dst, o.stmt.Threshold)
}

func (o *integrateOp) run(env *Env) error {
	src, ok := env.Relations[o.stmt.Src]
	if !ok {
		return fmt.Errorf("uql: unknown relation %q", o.stmt.Src)
	}
	dst := env.Relations[o.stmt.Dst]
	matcher := integrate.NewSchemaMatcher()
	matcher.Threshold = o.stmt.Threshold
	srcAttrs, srcValues := attributeProfile(src)
	dstAttrs, dstValues := attributeProfile(dst)
	rename := map[string]string{}
	for _, m := range matcher.MatchAttributes(srcAttrs, dstAttrs, srcValues, dstValues) {
		if m.A != m.B {
			rename[m.A] = m.B
		}
	}
	for _, r := range src {
		if to, ok := rename[r.Attribute]; ok {
			env.Stats.Inc("uql.integrate.renamed", 1)
			r.Attribute = to
		}
		dst = append(dst, r)
	}
	env.Relations[o.stmt.Dst] = dst
	env.Stats.Inc("uql.integrate.rows", int64(len(src)))
	return nil
}

func attributeProfile(rows []Row) ([]string, map[string][]string) {
	seen := map[string]bool{}
	values := map[string][]string{}
	var attrs []string
	for _, r := range rows {
		if !seen[r.Attribute] {
			seen[r.Attribute] = true
			attrs = append(attrs, r.Attribute)
		}
		if len(values[r.Attribute]) < 50 {
			values[r.Attribute] = append(values[r.Attribute], r.Value)
		}
	}
	sort.Strings(attrs)
	return attrs, values
}

// --- RESOLVE ------------------------------------------------------------------

type resolveOp struct {
	stmt ResolveStmt
}

func (o *resolveOp) describe() string {
	s := fmt.Sprintf("resolve entities in %s (threshold %.2f)", o.stmt.Rel, o.stmt.Threshold)
	if o.stmt.Budget > 0 {
		s += fmt.Sprintf(" with HI budget %d", o.stmt.Budget)
	}
	return s
}

func (o *resolveOp) run(env *Env) error {
	rows, ok := env.Relations[o.stmt.Rel]
	if !ok {
		return fmt.Errorf("uql: unknown relation %q", o.stmt.Rel)
	}
	// Distinct entity surfaces become mentions.
	surfaces := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Entity] {
			seen[r.Entity] = true
			surfaces = append(surfaces, r.Entity)
		}
	}
	sort.Strings(surfaces)
	mentions := make([]integrate.Mention, len(surfaces))
	for i, s := range surfaces {
		mentions[i] = integrate.Mention{ID: i, Surface: s}
	}
	resolver := integrate.NewResolver()
	resolver.Threshold = o.stmt.Threshold

	// Borderline pairs go to the crowd within budget.
	var decisions []integrate.Decision
	if o.stmt.Budget > 0 && env.Crowd != nil {
		pairs := resolver.CandidatePairs(mentions)
		asked := 0
		for _, p := range pairs {
			if asked >= o.stmt.Budget {
				break
			}
			// Ambiguity band around the threshold.
			if p.Score < o.stmt.Threshold-0.22 || p.Score > o.stmt.Threshold+0.1 {
				continue
			}
			q := hi.Question{
				Kind:     hi.QMatch,
				Subject:  hi.MatchSubject(surfaces[p.A], surfaces[p.B]),
				Payload:  []string{surfaces[p.A], surfaces[p.B]},
				Priority: 1 - absFloat(p.Score-o.stmt.Threshold),
			}
			v := env.Crowd.Ask(q)
			decisions = append(decisions, integrate.Decision{A: p.A, B: p.B, Match: v.Yes})
			env.Prov.MustAdd(provenance.KindFeedback,
				fmt.Sprintf("crowd verdict %v on %s", v.Yes, q.Subject), "", v.Support)
			asked++
		}
		env.Stats.Inc("uql.resolve.questions", int64(asked))
	}

	clusters := resolver.Cluster(mentions, decisions)
	canonical := map[string]string{}
	for _, cl := range clusters {
		// Canonical surface: the longest (most informative) name.
		best := surfaces[cl[0]]
		for _, id := range cl {
			if len(surfaces[id]) > len(best) {
				best = surfaces[id]
			}
		}
		for _, id := range cl {
			canonical[surfaces[id]] = best
		}
	}
	out := make([]Row, 0, len(rows))
	renamed := 0
	for _, r := range rows {
		if c := canonical[r.Entity]; c != "" && c != r.Entity {
			r.Entity = c
			renamed++
		}
		out = append(out, r)
	}
	env.Relations[o.stmt.Into] = out
	env.Stats.Inc("uql.resolve.merged", int64(renamed))
	return nil
}

func absFloat(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// --- ASK ----------------------------------------------------------------------

type askOp struct {
	stmt AskStmt
}

func (o *askOp) describe() string {
	return fmt.Sprintf("ask humans about %s below conf %.2f (budget %d)", o.stmt.Rel, o.stmt.MinConf, o.stmt.Budget)
}

func (o *askOp) run(env *Env) error {
	rows, ok := env.Relations[o.stmt.Rel]
	if !ok {
		return fmt.Errorf("uql: unknown relation %q", o.stmt.Rel)
	}
	if env.Crowd == nil {
		return fmt.Errorf("uql: ASK requires a crowd in the environment")
	}
	queue := hi.NewQueue(o.stmt.Budget)
	type target struct{ idx int }
	targets := map[int]target{}
	for i := range rows {
		if rows[i].Conf >= o.stmt.MinConf {
			continue
		}
		q := hi.Question{
			Kind:    hi.QValueCheck,
			Subject: fmt.Sprintf("%s|%s|%s|%s", rows[i].Entity, rows[i].Attribute, rows[i].Qualifier, rows[i].Value),
			// Most uncertain first (closest to 0.5).
			Priority: 1 - absFloat(rows[i].Conf-0.5),
		}
		id := queue.Push(q)
		targets[id] = target{idx: i}
	}
	session := &hi.Session{Queue: queue, Crowd: env.Crowd}
	n := session.Run(0, func(q hi.Question, v hi.Verdict) {
		t := targets[q.ID]
		r := &rows[t.idx]
		reliability := 0.5 + 0.5*v.Support
		r.Conf = uncertainty.BayesUpdate(r.Conf, reliability, v.Yes)
		fb := env.Prov.MustAdd(provenance.KindFeedback,
			fmt.Sprintf("crowd %v (support %.2f) on %s", v.Yes, v.Support, q.Subject), "", v.Support)
		if r.Prov != 0 {
			r.Prov = env.Prov.MustAdd(provenance.KindDerived,
				fmt.Sprintf("%s.%s=%s after feedback", r.Entity, r.Attribute, r.Value),
				"bayes-update", r.Conf, r.Prov, fb)
		}
	})
	env.Relations[o.stmt.Rel] = rows
	env.Stats.Inc("uql.ask.questions", int64(n))
	return nil
}

// --- STORE --------------------------------------------------------------------

type storeOp struct {
	stmt StoreStmt
}

func (o *storeOp) describe() string {
	return fmt.Sprintf("store %s into table %s", o.stmt.Rel, o.stmt.Table)
}

// StoreSchema is the fixed schema of materialized UQL relations. The
// "num" column carries the numeric parse of "value" (NULL when the value
// is not numeric) so that SQL aggregates like AVG(num) work directly over
// extracted attribute-value pairs.
func StoreSchema(table string) rdbms.TableSchema {
	return rdbms.TableSchema{Name: table, Columns: []rdbms.ColumnDef{
		{Name: "entity", Type: rdbms.TString},
		{Name: "attribute", Type: rdbms.TString},
		{Name: "qualifier", Type: rdbms.TString},
		{Name: "value", Type: rdbms.TString},
		{Name: "num", Type: rdbms.TFloat},
		{Name: "conf", Type: rdbms.TFloat},
	}}
}

// NumValue parses a row value into the "num" column's SQL value.
func NumValue(value string) rdbms.Value {
	cleaned := strings.ReplaceAll(value, ",", "")
	if f, err := strconv.ParseFloat(cleaned, 64); err == nil {
		return rdbms.NewFloat(f)
	}
	return rdbms.Null()
}

// StoreRow converts a Row to its table tuple under StoreSchema.
func StoreRow(r Row) rdbms.Tuple {
	return rdbms.Tuple{
		rdbms.NewString(r.Entity),
		rdbms.NewString(r.Attribute),
		rdbms.NewString(r.Qualifier),
		rdbms.NewString(r.Value),
		NumValue(r.Value),
		rdbms.NewFloat(r.Conf),
	}
}

func (o *storeOp) run(env *Env) error {
	rows, ok := env.Relations[o.stmt.Rel]
	if !ok {
		return fmt.Errorf("uql: unknown relation %q", o.stmt.Rel)
	}
	if env.DB.Table(o.stmt.Table) == nil {
		if err := env.DB.CreateTable(StoreSchema(o.stmt.Table)); err != nil {
			return err
		}
	}
	tx := env.DB.Begin()
	for _, r := range rows {
		if _, err := tx.Insert(o.stmt.Table, StoreRow(r)); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	env.Stats.Inc("uql.store.rows", int64(len(rows)))
	return nil
}
