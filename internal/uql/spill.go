package uql

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/filestore"
	"repro/internal/provenance"
)

// Spill support: the paper's storage layer keeps intermediate structured
// data on the file system because the system executes only sequential
// reads and writes over it. SpillRelation writes a relation's rows to an
// append-only segment store; LoadSpilled streams them back. Provenance
// node ids travel with the rows, so lineage survives the round trip
// within a session.

// EncodeRow serializes a row for the segment store.
func EncodeRow(r Row) []byte {
	buf := make([]byte, 0, 64)
	buf = appendLenString(buf, r.Entity)
	buf = appendLenString(buf, r.Attribute)
	buf = appendLenString(buf, r.Qualifier)
	buf = appendLenString(buf, r.Value)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(r.Conf))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Prov))
	buf = append(buf, tmp[:]...)
	return buf
}

// DecodeRow parses a row serialized by EncodeRow.
func DecodeRow(b []byte) (Row, error) {
	var r Row
	var err error
	if r.Entity, b, err = readLenString(b); err != nil {
		return r, err
	}
	if r.Attribute, b, err = readLenString(b); err != nil {
		return r, err
	}
	if r.Qualifier, b, err = readLenString(b); err != nil {
		return r, err
	}
	if r.Value, b, err = readLenString(b); err != nil {
		return r, err
	}
	if len(b) != 16 {
		return r, fmt.Errorf("uql: row encoding has %d trailing bytes, want 16", len(b))
	}
	r.Conf = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
	r.Prov = provenance.NodeID(binary.LittleEndian.Uint64(b[8:16]))
	return r, nil
}

func appendLenString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func readLenString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("uql: short length prefix")
	}
	n := int(binary.LittleEndian.Uint32(b[:4]))
	if len(b) < 4+n {
		return "", nil, fmt.Errorf("uql: short string payload")
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// SpillRelation writes a relation's rows to the segment store and returns
// the number of records appended.
func (e *Env) SpillRelation(name string, store *filestore.Store) (int, error) {
	rows, ok := e.Relations[name]
	if !ok {
		return 0, fmt.Errorf("uql: unknown relation %q", name)
	}
	for _, r := range rows {
		if _, err := store.Append(EncodeRow(r)); err != nil {
			return 0, err
		}
	}
	e.Stats.Inc("uql.spill.rows", int64(len(rows)))
	return len(rows), nil
}

// LoadSpilled streams every record in the store into the named relation
// (appending to any existing rows) and returns the number loaded.
func (e *Env) LoadSpilled(name string, store *filestore.Store) (int, error) {
	var rows []Row
	var decodeErr error
	err := store.Scan(func(_ filestore.RecordID, payload []byte) bool {
		r, err := DecodeRow(payload)
		if err != nil {
			decodeErr = err
			return false
		}
		rows = append(rows, r)
		return true
	})
	if err != nil {
		return 0, err
	}
	if decodeErr != nil {
		return 0, decodeErr
	}
	e.Relations[name] = append(e.Relations[name], rows...)
	e.Stats.Inc("uql.spill.loaded", int64(len(rows)))
	return len(rows), nil
}
