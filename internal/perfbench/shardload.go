package perfbench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/shard"
	"repro/internal/synth"
)

// ShardPoint is one session-count configuration of the sharded sweep:
// N concurrent exploitation sessions, single engine versus N-shard
// system over the identical bulk-ingested table.
type ShardPoint struct {
	Sessions         int     `json:"sessions"`
	SingleOpsPerSec  float64 `json:"single_ops_per_sec"`
	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// ShardLoad is the PR9 headline measurement: the mixed exploitation
// session (guided ask -> entity-routed count -> human correction)
// against one engine versus an entity-hash-sharded system holding the
// same extracted table. The correction is where partitioning pays even
// on one core: the engine's correction path is a first-match table scan
// under 2PL, so routing it to the owning shard scans a table 1/N the
// size — total work, not just wall clock, drops with the shard count —
// while the guided ask fans out and merges byte-identically and the
// routed count stays index-backed on both sides. Cores records the
// parallelism available: on a multi-core runner the fan-out paths scale
// too; on one core the measured gain is pure work reduction.
type ShardLoad struct {
	Shards      int          `json:"shards"`
	Cores       int          `json:"cores"`
	Rows        int          `json:"rows"`
	DurationSec float64      `json:"duration_sec"`
	Points      []ShardPoint `json:"points"`
	// Speedup8S is sharded over single aggregate ops/sec at the 8-session
	// point (the PR9 acceptance ratio).
	Speedup8S float64 `json:"speedup_8s"`
}

// shardTarget is the slice of the serving surface the sweep drives;
// *core.System and *shard.ShardedSystem both satisfy it (the same
// structural fact the server's Backend interface rests on).
type shardTarget interface {
	AskGuided(ctx context.Context, query string, k int) (*core.GuidedAnswer, error)
	SQL(ctx context.Context, query string) (*rdbms.ResultSet, error)
	CorrectValue(ctx context.Context, user, entity, attribute, qualifier, newValue string) error
}

// shardCorpus is the sweep's data shape, shared by both sides so the
// tables are row-identical. Larger than the mixed sweep's corpus: the
// correction scan is the cost partitioning divides, so the table must be
// big enough that scans, not fixed per-op overhead, dominate a session.
func shardCorpus() core.Config {
	corpus, _ := synth.Generate(synth.Config{
		Seed: seed, Cities: 1200, People: 30, Filler: 80, MentionsPerPerson: 2,
	})
	return core.Config{Corpus: corpus, Workers: 4}
}

// sessionEntities samples every strideth city with a July temperature
// fact — the correction targets, spread across the whole entity range so
// the first-match scans average half the (per-engine) table.
func sessionEntities(t shardTarget, stride int) ([]string, error) {
	rs, err := t.SQL(context.Background(),
		"SELECT DISTINCT entity FROM extracted WHERE attribute = 'temperature' AND qualifier = 'July' ORDER BY entity")
	if err != nil {
		return nil, err
	}
	var out []string
	for i, row := range rs.Rows {
		if i%stride == 0 {
			out = append(out, row[0].S)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard sweep: no correction targets sampled")
	}
	return out, nil
}

// runSessions races n closed-loop exploitation sessions against t for
// dur. One iteration is the mixed op sequence — guided ask (fan-out on
// the sharded side), two entity-routed counts, one correction on a
// rotating sampled entity — counted as 4 ops. Corrections write real
// committed updates, so the sweep exercises the read paths under write
// traffic, not against a frozen table.
func runSessions(t shardTarget, entities []string, n int, dur time.Duration) (int64, error) {
	ctx := context.Background()
	var ops int64
	var firstErr atomic.Value
	halt := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-halt:
					return
				default:
				}
				if _, err := t.AskGuided(ctx, guidedQuery, 3); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				for j := 0; j < 2; j++ {
					if _, err := t.SQL(ctx, mixedReadStmt); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
				entity := entities[(s+i)%len(entities)]
				if err := t.CorrectValue(ctx, "sweep", entity, "temperature", "July", "51"); err != nil {
					// Concurrent correction scans can exhaust the engine's
					// bounded deadlock retry under heavy collision (the
					// many-sessions-one-engine regime sharding relieves); a
					// real client would back off and retry, so the sweep
					// drops the op and moves on instead of aborting.
					if !errors.Is(err, rdbms.ErrDeadlock) {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					atomic.AddInt64(&ops, 3)
					continue
				}
				atomic.AddInt64(&ops, 4)
			}
		}(s)
	}
	time.Sleep(dur)
	close(halt)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return 0, err.(error)
	}
	return ops, nil
}

// measureShardSide builds one side's system, runs the session sweep at
// each point, and returns aggregate ops/sec per point (best of two runs,
// as in the mixed sweep).
func measureShardSide(open func() (shardTarget, func() error, error), points []int, dur time.Duration) ([]float64, int, error) {
	// Settle the heap first: this sweep runs after allocation-heavy
	// benches (the 1M-row ingest), and inherited GC pacing would bleed
	// into both sides' closed-loop numbers unevenly.
	runtime.GC()
	t, closeFn, err := open()
	if err != nil {
		return nil, 0, err
	}
	defer closeFn()
	rows := 0
	if rs, err := t.SQL(context.Background(), "SELECT COUNT(*) FROM extracted"); err == nil && len(rs.Rows) == 1 {
		rows = int(rs.Rows[0][0].I)
	}
	entities, err := sessionEntities(t, 7)
	if err != nil {
		return nil, 0, err
	}
	// Warm the published catalog so every point starts from steady state.
	if _, err := t.AskGuided(context.Background(), guidedQuery, 3); err != nil {
		return nil, 0, err
	}
	out := make([]float64, len(points))
	for i, sessions := range points {
		var best int64
		for attempt := 0; attempt < 2; attempt++ {
			ops, err := runSessions(t, entities, sessions, dur)
			if err != nil {
				return nil, 0, fmt.Errorf("shard sweep %d sessions: %w", sessions, err)
			}
			if ops > best {
				best = ops
			}
		}
		out[i] = float64(best) / dur.Seconds()
	}
	return out, rows, nil
}

// MeasureShardedRead runs the sharded-versus-single sweep: the same
// mixed exploitation sessions at 1 and 8 concurrent runners, first
// against one engine, then against a shards-way ShardedSystem bulk-
// ingested from the identical corpus.
func MeasureShardedRead(shards int, dur time.Duration) (ShardLoad, error) {
	points := []int{1, 4, 8}

	single, rows, err := measureShardSide(func() (shardTarget, func() error, error) {
		sys, err := core.New(shardCorpus())
		if err != nil {
			return nil, nil, err
		}
		if _, err := sys.BulkIngest(context.Background(), "city", 0); err != nil {
			sys.Close()
			return nil, nil, err
		}
		return sys, sys.Close, nil
	}, points, dur)
	if err != nil {
		return ShardLoad{}, fmt.Errorf("single side: %w", err)
	}

	sharded, _, err := measureShardSide(func() (shardTarget, func() error, error) {
		ss, err := shard.Open(shard.Config{Shards: shards, System: shardCorpus()})
		if err != nil {
			return nil, nil, err
		}
		if _, err := ss.BulkIngest(context.Background(), "city", 0); err != nil {
			ss.Close()
			return nil, nil, err
		}
		return ss, ss.Close, nil
	}, points, dur)
	if err != nil {
		return ShardLoad{}, fmt.Errorf("sharded side: %w", err)
	}

	load := ShardLoad{
		Shards: shards, Cores: runtime.NumCPU(), Rows: rows, DurationSec: dur.Seconds(),
	}
	for i, sessions := range points {
		p := ShardPoint{Sessions: sessions, SingleOpsPerSec: single[i], ShardedOpsPerSec: sharded[i]}
		if p.SingleOpsPerSec > 0 {
			p.Speedup = p.ShardedOpsPerSec / p.SingleOpsPerSec
		}
		load.Points = append(load.Points, p)
	}
	if last := load.Points[len(load.Points)-1]; last.SingleOpsPerSec > 0 {
		load.Speedup8S = last.ShardedOpsPerSec / last.SingleOpsPerSec
	}
	return load, nil
}
