package perfbench

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/rdbms"
	"repro/internal/uql"
)

// The PR8 headline measurement: COPY-style batched bulk load versus the
// row-at-a-time durable path, on the extracted-table schema with both
// indexes and the content hash enabled — the exact shape System.BulkIngest
// loads through. The bulk side streams ingestRows rows (1M in the
// committed trajectory point) through one BulkLoader in appendChunk-sized
// slices, paying one logged batch record and one group-commit flush per
// chunk plus a deferred sorted index build at the fence. The baseline
// commits one row per transaction — the per-row WAL record + fsync price
// ExtractPending's incremental materialization pays — over enough rows to
// get a stable per-row cost. The ISSUE bar is bulk ≥ 10x baseline rows/sec.
const (
	ingestRows         = 1_000_000
	ingestBaselineRows = 2_000
	ingestSliceRows    = 50_000
)

// IngestLoad is the recorded bulk-ingest measurement.
type IngestLoad struct {
	Rows               int     `json:"rows"`
	Batches            int     `json:"batches"`
	BulkRowsPerSec     float64 `json:"bulk_rows_per_sec"`
	BaselineRows       int     `json:"baseline_rows"`
	BaselineRowsPerSec float64 `json:"baseline_rows_per_sec"`
	// Speedup is BulkRowsPerSec / BaselineRowsPerSec (the ≥10x bar).
	Speedup float64 `json:"speedup"`
}

// ingestDB opens a fresh on-disk database shaped like the extracted
// table: store schema, indexes on entity and attribute, content hash on
// the identity columns.
func ingestDB(dir string) (*rdbms.DB, error) {
	db, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 2048})
	if err != nil {
		return nil, err
	}
	if err := db.CreateTable(uql.StoreSchema("extracted")); err != nil {
		db.Close()
		return nil, err
	}
	for _, col := range []string{"entity", "attribute"} {
		if err := db.CreateIndex("extracted", col); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.EnableContentHash("extracted", []string{"entity", "attribute", "qualifier"}); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// ingestTuple synthesizes row i of the corpus: entity-contiguous runs of
// eight attributes each, the shape the entity-keyed shuffle hands the
// loader.
func ingestTuple(i int) rdbms.Tuple {
	return uql.StoreRow(uql.Row{
		Entity:    fmt.Sprintf("entity-%07d", i/8),
		Attribute: fmt.Sprintf("attr-%d", i%8),
		Qualifier: "bench",
		Value:     fmt.Sprintf("%d", i%997),
		Conf:      0.9,
	})
}

// MeasureBulkIngest times the batched bulk load of rows synthetic rows
// and the row-at-a-time baseline on identical fresh databases.
func MeasureBulkIngest(rows int) (IngestLoad, error) {
	load := IngestLoad{Rows: rows, BaselineRows: ingestBaselineRows}

	dir, err := os.MkdirTemp("", "perfbench-ingest-*")
	if err != nil {
		return load, err
	}
	defer os.RemoveAll(dir)
	db, err := ingestDB(dir)
	if err != nil {
		return load, err
	}
	start := time.Now()
	bl, err := db.BeginBulkLoad("extracted")
	if err != nil {
		db.Close()
		return load, err
	}
	slice := make([]rdbms.Tuple, 0, ingestSliceRows)
	for i := 0; i < rows; i++ {
		slice = append(slice, ingestTuple(i))
		if len(slice) == ingestSliceRows || i == rows-1 {
			if err := bl.Append(context.Background(), slice); err != nil {
				bl.Abort()
				db.Close()
				return load, err
			}
			slice = slice[:0]
		}
	}
	stats, err := bl.Commit(context.Background())
	if err != nil {
		db.Close()
		return load, err
	}
	elapsed := time.Since(start)
	if err := db.Close(); err != nil {
		return load, err
	}
	load.Batches = stats.Batches
	load.BulkRowsPerSec = float64(stats.Rows) / elapsed.Seconds()

	baseDir, err := os.MkdirTemp("", "perfbench-ingest-base-*")
	if err != nil {
		return load, err
	}
	defer os.RemoveAll(baseDir)
	base, err := ingestDB(baseDir)
	if err != nil {
		return load, err
	}
	defer base.Close()
	start = time.Now()
	for i := 0; i < ingestBaselineRows; i++ {
		tx := base.Begin()
		if _, err := tx.Insert("extracted", ingestTuple(i)); err != nil {
			tx.Abort()
			return load, err
		}
		if err := tx.Commit(); err != nil {
			return load, err
		}
	}
	load.BaselineRowsPerSec = float64(ingestBaselineRows) / time.Since(start).Seconds()
	if load.BaselineRowsPerSec > 0 {
		load.Speedup = load.BulkRowsPerSec / load.BaselineRowsPerSec
	}
	return load, nil
}
