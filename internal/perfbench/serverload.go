package perfbench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// ServerLoad is the sustained-throughput measurement of the PR6 serving
// front end: many concurrent connections drive a mixed exploitation
// workload (keyword search, SQL, health) over the wire protocol against
// an in-process unidbd server, and we record what the stack actually
// sustains — served operations per second and client-observed latency
// percentiles — plus how much the admission controller shed to keep it.
type ServerLoad struct {
	Conns     int     `json:"conns"`
	Duration  float64 `json:"duration_sec"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Served    int64   `json:"served"`
	Shed      int64   `json:"shed"`
}

// MeasureServerLoad runs conns client connections against a loopback
// server for dur. Each connection loops a mixed op cycle; overload sheds
// are counted, not fatal (that is the admission controller doing its
// job), and percentiles are computed over served requests.
func MeasureServerLoad(conns int, dur time.Duration) (ServerLoad, error) {
	sys, err := newGuidedSystem()
	if err != nil {
		return ServerLoad{}, err
	}
	defer sys.Close()
	srv := server.New(sys, server.Options{
		MaxInFlight: 128,
		MaxConns:    conns + 16,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServerLoad{}, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()

	type worker struct {
		lat  []time.Duration
		shed int64
		err  error
	}
	workers := make([]worker, conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w *worker, i int) {
			defer wg.Done()
			cli, err := server.Dial(addr, 10*time.Second)
			if err != nil {
				w.err = err
				return
			}
			defer cli.Close()
			ctx := context.Background()
			for op := i; time.Now().Before(deadline); op++ {
				t0 := time.Now()
				var err error
				switch op % 3 {
				case 0:
					_, err = cli.Search(ctx, guidedQuery, 3)
				case 1:
					_, err = cli.SQL(ctx, "SELECT COUNT(*) FROM extracted")
				case 2:
					_, err = cli.Health(ctx)
				}
				if errors.Is(err, server.ErrOverloaded) {
					w.shed++
					continue
				}
				if err != nil {
					w.err = err
					return
				}
				w.lat = append(w.lat, time.Since(t0))
			}
		}(&workers[w], w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	load := ServerLoad{Conns: conns, Duration: elapsed.Seconds()}
	for i := range workers {
		if err := workers[i].err; err != nil {
			return ServerLoad{}, fmt.Errorf("load worker: %w", err)
		}
		all = append(all, workers[i].lat...)
		load.Shed += workers[i].shed
	}
	if len(all) == 0 {
		return ServerLoad{}, fmt.Errorf("no operations completed in %v", dur)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	load.Served = int64(len(all))
	load.OpsPerSec = float64(len(all)) / elapsed.Seconds()
	load.P50Ms = float64(all[len(all)/2]) / float64(time.Millisecond)
	load.P99Ms = float64(all[len(all)*99/100]) / float64(time.Millisecond)
	return load, nil
}
