package perfbench

import (
	"testing"
	"time"
)

// TestMeasureShardedReadSmall exercises the sharded sweep harness at a
// reduced duration (the committed trajectory point runs 4 shards for a
// second per point via benchrunner): both sides of every point must
// produce throughput, and the speedup fields must be populated from the
// final point.
func TestMeasureShardedReadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("two full system builds are slow in -short")
	}
	load, err := MeasureShardedRead(2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if load.Shards != 2 || load.Rows == 0 {
		t.Fatalf("degenerate setup: %+v", load)
	}
	if len(load.Points) != 3 {
		t.Fatalf("points: %+v", load.Points)
	}
	for _, p := range load.Points {
		if p.SingleOpsPerSec <= 0 || p.ShardedOpsPerSec <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
	if load.Speedup8S <= 0 {
		t.Fatalf("speedup not populated: %+v", load)
	}
}
