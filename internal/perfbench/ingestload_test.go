package perfbench

import "testing"

// TestMeasureBulkIngestSmall exercises the measurement harness at a
// reduced row count (the committed trajectory point runs ingestRows=1M
// via benchrunner): both sides must produce throughput numbers and the
// bulk side must span multiple batches.
func TestMeasureBulkIngestSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("durable per-row baseline is slow in -short")
	}
	load, err := MeasureBulkIngest(20000)
	if err != nil {
		t.Fatal(err)
	}
	if load.Rows != 20000 {
		t.Fatalf("rows %d, want 20000", load.Rows)
	}
	if load.Batches < 2 {
		t.Fatalf("only %d batch(es): chunking did not engage", load.Batches)
	}
	if load.BulkRowsPerSec <= 0 || load.BaselineRowsPerSec <= 0 || load.Speedup <= 0 {
		t.Fatalf("degenerate measurement: %+v", load)
	}
}
