// Buffer-pool micro-benchmarks (PR10): the larger-than-RAM serving
// costs. ScanUnderPressure prices a full heap sweep through a pool an
// order of magnitude smaller than the table (every page faults through
// the scan-hinted admission path); HotPointReadUnderScan prices the
// latency a hot point read pays while such sweeps keep running — the
// number the scan-resistant replacement exists to protect. Compare the
// two ns/op against BENCH_PR9.json's unpressured point-read costs; the
// reported hit-rate metric shows the protected working set surviving.
package perfbench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rdbms"
)

const (
	bufRows   = 4000 // ~235 heap pages at ~17 rows/page
	bufFrames = 24   // pool an order of magnitude smaller than the heap
)

// openPressuredDB builds an in-memory DB whose heap is ~10x the buffer
// pool, bulk-loaded with bufRows distinct rows.
func openPressuredDB(b *testing.B) *rdbms.DB {
	b.Helper()
	pager, err := rdbms.NewDevicePager(rdbms.NewMemDevice())
	if err != nil {
		b.Fatal(err)
	}
	wal, err := rdbms.NewWALOn(rdbms.NewMemWALStore())
	if err != nil {
		b.Fatal(err)
	}
	db, err := rdbms.Open(pager, wal, rdbms.Options{BufferPages: bufFrames})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable(rdbms.TableSchema{Name: "kv", Columns: []rdbms.ColumnDef{
		{Name: "k", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TString},
	}}); err != nil {
		b.Fatal(err)
	}
	rows := make([]rdbms.Tuple, bufRows)
	pad := make([]byte, 180)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := range rows {
		rows[i] = rdbms.Tuple{rdbms.NewInt(int64(i)), rdbms.NewString(fmt.Sprintf("v%06d-%s", i, pad))}
	}
	if _, err := db.BulkLoad(context.Background(), "kv", rows); err != nil {
		b.Fatal(err)
	}
	return db
}

// ScanUnderPressure measures one full heap sweep with the pool 10x
// smaller than the table: every page reads through the pager and is
// admitted evict-first, so this is the steady-state cost of analytics
// over a larger-than-RAM table.
func ScanUnderPressure(b *testing.B) {
	db := openPressuredDB(b)
	defer db.Close()
	h := db.Table("kv").Heap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := h.Scan(func(rdbms.RID, rdbms.Tuple) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != bufRows {
			b.Fatalf("scan saw %d rows, want %d", n, bufRows)
		}
	}
}

// HotPointReadUnderScan measures a hot-set point read while full-table
// sweeps keep evicting (one sweep per 256 reads, excluded from the
// timer): the scan-resistant pool keeps the hot pages resident, so the
// measured read is a cache hit, not a pager fault. The achieved hit
// rate over the measured window is reported alongside ns/op.
func HotPointReadUnderScan(b *testing.B) {
	db := openPressuredDB(b)
	defer db.Close()
	h := db.Table("kv").Heap
	var rids []rdbms.RID
	if err := h.Scan(func(rid rdbms.RID, _ rdbms.Tuple) bool { rids = append(rids, rid); return true }); err != nil {
		b.Fatal(err)
	}
	hot := make([]rdbms.RID, 8)
	for i := range hot {
		hot[i] = rids[i*len(rids)/len(hot)]
	}
	for pass := 0; pass < 3; pass++ {
		for _, rid := range hot {
			if _, ok, err := h.Get(rid); err != nil || !ok {
				b.Fatalf("warm get %v: ok=%v err=%v", rid, ok, err)
			}
		}
	}
	start := db.BufferStats()
	var scanHits, scanMisses int64 // pool traffic owed to the sweeps, not the hot reads
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 0 {
			b.StopTimer()
			s0 := db.BufferStats()
			if err := h.Scan(func(rdbms.RID, rdbms.Tuple) bool { return true }); err != nil {
				b.Fatal(err)
			}
			s1 := db.BufferStats()
			scanHits += s1.Hits - s0.Hits
			scanMisses += s1.Misses - s0.Misses
			b.StartTimer()
		}
		if _, ok, err := h.Get(hot[i%len(hot)]); err != nil || !ok {
			b.Fatalf("hot get: ok=%v err=%v", ok, err)
		}
	}
	b.StopTimer()
	end := db.BufferStats()
	hits := end.Hits - start.Hits - scanHits
	misses := end.Misses - start.Misses - scanMisses
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	}
}
