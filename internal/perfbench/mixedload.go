package perfbench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/server"
	"repro/internal/synth"
	"repro/internal/uql"
)

// MixedPoint is one reader-count configuration of the mixed workload:
// N reader connections against the fixed writer fleet, reporting the
// aggregate read throughput those N sustained.
type MixedPoint struct {
	Readers         int     `json:"readers"`
	ReaderOps       int64   `json:"reader_ops"`
	ReaderOpsPerSec float64 `json:"reader_ops_per_sec"`
	WriterOpsPerSec float64 `json:"writer_ops_per_sec"`
}

// MixedLoad is the PR7 headline measurement: N reader clients running
// the guided-query flow against an in-process unidbd server while 2
// writer clients continuously mutate the extracted table. Every read is
// served from an MVCC snapshot View (zero lock-manager acquisitions,
// never queued behind writer locks) and the serving layer dispatches
// each request on its own goroutine, so reader throughput is bounded by
// compute, not by System.mu — before PR7 this sweep was pinned flat
// (~1x) because every read serialized on the big lock and stalled behind
// writer 2PL locks. Points records the 1/4/8-reader sweep; Scaling8x is
// the 8-reader aggregate over the 1-reader figure. Cores records the
// parallelism available to the run, since once blocking is gone the
// scaling ceiling is scheduling, not the MVCC design.
//
// The engine-level comparison rides along, measured in-process at 8
// readers: EngineReadOpsPerSec is 8 goroutines reading through snapshot
// Views, LockedReadOpsPerSec the same read mix through the pre-PR7 path
// (a catalog rebuild scan per query — the pre-RCU cost under continuous
// invalidation — plus a locking transactional SELECT that queues behind
// writer locks). MVCCReadBoost is their ratio: what snapshot reads +
// the RCU-published catalog buy the read path under write churn.
type MixedLoad struct {
	Writers             int          `json:"writers"`
	Cores               int          `json:"cores"`
	DurationSec         float64      `json:"duration_sec"`
	Points              []MixedPoint `json:"points"`
	Scaling8x           float64      `json:"scaling_8x"`
	EngineReadOpsPerSec float64      `json:"engine_read_ops_per_sec"`
	LockedReadOpsPerSec float64      `json:"locked_read_ops_per_sec"`
	MVCCReadBoost       float64      `json:"mvcc_read_boost"`
}

// newMixedSystem builds the mixed-workload system. The corpus is larger
// than newGuidedSystem's so the catalog rebuild — the cost the RCU
// snapshot amortizes across concurrent readers — is a full-table scan of
// real size, while the guided SELECTs stay index-backed (entity index)
// and cheap.
func newMixedSystem() (*core.System, error) {
	corpus, _ := synth.Generate(synth.Config{
		Seed: seed, Cities: 600, People: 30, Filler: 80, MentionsPerPerson: 2,
	})
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
	if err != nil {
		return nil, err
	}
	if _, err := sys.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		return nil, err
	}
	return sys, nil
}

// mixedReadStmt is the structured half of the reader op: index-backed on
// the entity column, so its cost does not grow with the table.
const mixedReadStmt = "SELECT COUNT(*) FROM extracted WHERE entity = 'Madison, Wisconsin'"

// churnStmt returns writer w's next alternating mutation: each writer
// owns a disjoint entity and flips it between present and absent, so the
// extracted table (and with it the catalog epoch) changes continuously
// under the readers without growing.
func churnStmt(w int, present bool) string {
	entity := fmt.Sprintf("Churn-%d", w)
	if present {
		return fmt.Sprintf("DELETE FROM extracted WHERE entity = '%s'", entity)
	}
	return fmt.Sprintf(
		"INSERT INTO extracted VALUES ('%s', 'temperature', 'July', '50', 50.0, 1.0)", entity)
}

// wireWriters starts the writer fleet as wire clients: each loops its
// churn mutation through the server's writer path, retrying transient
// conflicts. Returns a stop func reporting total committed ops.
func wireWriters(addr string, writers int) (stop func() (int64, error)) {
	ctx := context.Background()
	halt := make(chan struct{})
	var ops int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := server.Dial(addr, 10*time.Second)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer cli.Close()
			present := false
			for {
				select {
				case <-halt:
					return
				default:
				}
				if _, err := cli.SQL(ctx, churnStmt(w, present)); err != nil {
					if errors.Is(err, server.ErrConflict) || errors.Is(err, server.ErrOverloaded) {
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				atomic.AddInt64(&ops, 1)
				present = !present
			}
		}(w)
	}
	return func() (int64, error) {
		close(halt)
		wg.Wait()
		if err := firstErr.Load(); err != nil {
			return ops, err.(error)
		}
		return atomic.LoadInt64(&ops), nil
	}
}

// runWireReaders races readers closed-loop client connections against
// the running writer fleet for dur; each reader alternates the guided
// keyword→structured flow with the index-backed structured count, both
// served from snapshot Views. Returns total reader ops completed.
func runWireReaders(addr string, readers int, dur time.Duration) (int64, error) {
	ctx := context.Background()
	var ops int64
	var firstErr atomic.Value
	halt := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := server.Dial(addr, 10*time.Second)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer cli.Close()
			for i := 0; ; i++ {
				select {
				case <-halt:
					return
				default:
				}
				var err error
				if i%2 == 0 {
					_, err = cli.Ask(ctx, guidedQuery, 3)
				} else {
					_, err = cli.SQL(ctx, mixedReadStmt)
				}
				if err != nil {
					if errors.Is(err, server.ErrOverloaded) {
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				atomic.AddInt64(&ops, 1)
			}
		}()
	}
	time.Sleep(dur)
	close(halt)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return 0, err.(error)
	}
	return ops, nil
}

// inprocWriters is wireWriters without the wire: the churn fleet driving
// System.SQL directly, for the engine-level comparison points.
func inprocWriters(sys *core.System, writers int) (stop func() (int64, error)) {
	ctx := context.Background()
	halt := make(chan struct{})
	var ops int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			present := false
			for {
				select {
				case <-halt:
					return
				default:
				}
				if _, err := sys.SQL(ctx, churnStmt(w, present)); err != nil {
					if errors.Is(err, rdbms.ErrDeadlock) {
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				atomic.AddInt64(&ops, 1)
				present = !present
			}
		}(w)
	}
	return func() (int64, error) {
		close(halt)
		wg.Wait()
		if err := firstErr.Load(); err != nil {
			return ops, err.(error)
		}
		return atomic.LoadInt64(&ops), nil
	}
}

// snapshotReadOp is one engine-level reader iteration on the MVCC path:
// open a View (pinning a snapshot LSN), run the guided flow plus the
// structured count at that LSN, close. The catalog it reformulates
// against comes from the RCU-published snapshot, so concurrent readers
// share one rebuild per writer invalidation instead of paying one each.
func snapshotReadOp(sys *core.System) error {
	v, err := sys.View(context.Background())
	if err != nil {
		return err
	}
	defer v.Close()
	if _, err := v.AskGuided(guidedQuery, 3); err != nil {
		return err
	}
	_, err = v.SQL(mixedReadStmt)
	return err
}

// lockedReadOp replays the same read mix the pre-PR7 way: a catalog
// rebuild scan per query (the pre-RCU cost once writers invalidate
// continuously) plus a locking transactional SELECT that takes
// lock-manager acquisitions and queues behind writer 2PL locks.
func lockedReadOp(sys *core.System) error {
	cat, err := sys.RefreshCatalog(context.Background())
	if err != nil {
		return err
	}
	if len(cat.Entities) == 0 {
		return errors.New("empty catalog")
	}
	_, err = sys.DB.Exec(mixedReadStmt)
	return err
}

// runInprocReaders races readers goroutines looping op for dur.
func runInprocReaders(sys *core.System, readers int, dur time.Duration, op func(*core.System) error) (int64, error) {
	var ops int64
	var firstErr atomic.Value
	halt := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-halt:
					return
				default:
				}
				if err := op(sys); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				atomic.AddInt64(&ops, 1)
			}
		}()
	}
	time.Sleep(dur)
	close(halt)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return 0, err.(error)
	}
	return ops, nil
}

// MeasureMixedReadWrite sweeps the mixed workload at 1, 4, and 8 reader
// connections against 2 churning writers (dur per point) over the wire,
// then measures the engine-level 8-reader point in-process on both the
// snapshot path and the pre-PR7 locking path for the MVCC comparison.
func MeasureMixedReadWrite(dur time.Duration) (MixedLoad, error) {
	sys, err := newMixedSystem()
	if err != nil {
		return MixedLoad{}, err
	}
	defer sys.Close()
	// Warm the published catalog so the sweep starts from steady state.
	if _, err := sys.AskGuided(context.Background(), guidedQuery, 3); err != nil {
		return MixedLoad{}, err
	}
	srv := server.New(sys, server.Options{MaxInFlight: 64, MaxConns: 32})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return MixedLoad{}, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()

	const writers = 2
	load := MixedLoad{Writers: writers, Cores: runtime.NumCPU(), DurationSec: dur.Seconds()}
	for _, readers := range []int{1, 4, 8} {
		// Best of two runs per point: a closed-loop throughput sample is
		// vulnerable to one-off interference (GC, the suite's other
		// benches winding down), and the faster run is the one that
		// measured the configuration rather than the noise.
		var best MixedPoint
		for attempt := 0; attempt < 2; attempt++ {
			stopWriters := wireWriters(addr, writers)
			ops, err := runWireReaders(addr, readers, dur)
			wops, werr := stopWriters()
			if err == nil {
				err = werr
			}
			if err != nil {
				return MixedLoad{}, fmt.Errorf("mixed point %dR%dW: %w", readers, writers, err)
			}
			if ops > best.ReaderOps {
				best = MixedPoint{
					Readers:         readers,
					ReaderOps:       ops,
					ReaderOpsPerSec: float64(ops) / dur.Seconds(),
					WriterOpsPerSec: float64(wops) / dur.Seconds(),
				}
			}
		}
		load.Points = append(load.Points, best)
	}
	if p1 := load.Points[0].ReaderOpsPerSec; p1 > 0 {
		load.Scaling8x = load.Points[len(load.Points)-1].ReaderOpsPerSec / p1
	}

	// Engine-level comparison: 8 in-process readers, snapshot Views
	// versus the pre-PR7 locking read path, same writer churn.
	for _, point := range []struct {
		dst *float64
		op  func(*core.System) error
	}{
		{&load.EngineReadOpsPerSec, snapshotReadOp},
		{&load.LockedReadOpsPerSec, lockedReadOp},
	} {
		stopWriters := inprocWriters(sys, writers)
		ops, err := runInprocReaders(sys, 8, dur, point.op)
		_, werr := stopWriters()
		if err == nil {
			err = werr
		}
		if err != nil {
			return MixedLoad{}, fmt.Errorf("engine 8R%dW point: %w", writers, err)
		}
		*point.dst = float64(ops) / dur.Seconds()
	}
	if load.LockedReadOpsPerSec > 0 {
		load.MVCCReadBoost = load.EngineReadOpsPerSec / load.LockedReadOpsPerSec
	}
	return load, nil
}
