package perfbench

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		PR:    3,
		Suite: "durability",
		Results: []Result{
			{Name: "CatalogCache/AskGuidedCached", NsPerOp: 50, AllocsPerOp: 400, BytesPerOp: 9000},
			{Name: "CatalogCache/AskGuidedScanPerQuery", NsPerOp: 700, AllocsPerOp: 7000, BytesPerOp: 90000},
			{Name: "SortedQueries/OrderByFullSort10k", NsPerOp: 19000, AllocsPerOp: 40000, BytesPerOp: 1 << 20},
			{Name: "SortedQueries/OrderByTopK10k", NsPerOp: 2000, AllocsPerOp: 20000, BytesPerOp: 1 << 18},
			{Name: "SortedQueries/OrderByIndexOrder10k", NsPerOp: 20, AllocsPerOp: 86, BytesPerOp: 4096},
			{Name: "WarmStart/CatalogColdRebuild", NsPerOp: 500, AllocsPerOp: 6000, BytesPerOp: 1 << 16},
			{Name: "WarmStart/WarmStartLoad", NsPerOp: 80, AllocsPerOp: 186, BytesPerOp: 1 << 12},
			{Name: "Durability/DiskCommit", NsPerOp: 150000, AllocsPerOp: 30, BytesPerOp: 1500},
			{Name: "Durability/DiskCommitParallel", NsPerOp: 25000, AllocsPerOp: 30, BytesPerOp: 1500},
			{Name: "Durability/DiskReopen", NsPerOp: 20000000, AllocsPerOp: 100000, BytesPerOp: 1 << 24},
			{Name: "Durability/DiskReopenIndexed", NsPerOp: 2000000, AllocsPerOp: 10000, BytesPerOp: 1 << 21},
			{Name: "Ingest/BulkLoad1M", NsPerOp: 2000},
			{Name: "Ingest/RowAtATime", NsPerOp: 30000},
		},
	}
}

func TestFillSpeedups(t *testing.T) {
	rep := sampleReport()
	rep.FillSpeedups()
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(rep.CatalogSpeedup, 14) {
		t.Fatalf("catalog speedup %v, want 14", rep.CatalogSpeedup)
	}
	if !approx(rep.OrderBySpeedup, 9.5) {
		t.Fatalf("order-by speedup %v, want 9.5", rep.OrderBySpeedup)
	}
	if !approx(rep.IndexOrderSpeedup, 950) {
		t.Fatalf("index-order speedup %v, want 950", rep.IndexOrderSpeedup)
	}
	if !approx(rep.WarmStartSpeedup, 6.25) {
		t.Fatalf("warm-start speedup %v, want 6.25", rep.WarmStartSpeedup)
	}
	if !approx(rep.GroupCommitSpeedup, 6) {
		t.Fatalf("group-commit speedup %v, want 6", rep.GroupCommitSpeedup)
	}
	if !approx(rep.IndexedReopenSpeedup, 10) {
		t.Fatalf("indexed-reopen speedup %v, want 10", rep.IndexedReopenSpeedup)
	}
	if !approx(rep.BulkIngestSpeedup, 15) {
		t.Fatalf("bulk-ingest speedup %v, want 15", rep.BulkIngestSpeedup)
	}
}

func TestFillSpeedupsMissingBenchesYieldZero(t *testing.T) {
	rep := Report{Results: []Result{
		{Name: "CatalogCache/AskGuidedScanPerQuery", NsPerOp: 700},
		// No AskGuidedCached denominator, nothing else at all.
	}}
	rep.FillSpeedups()
	if rep.CatalogSpeedup != 0 || rep.OrderBySpeedup != 0 || rep.IndexOrderSpeedup != 0 ||
		rep.WarmStartSpeedup != 0 || rep.GroupCommitSpeedup != 0 || rep.IndexedReopenSpeedup != 0 ||
		rep.BulkIngestSpeedup != 0 {
		t.Fatalf("missing benches should give zero ratios: %+v", rep)
	}
}

func TestCompareToleranceMath(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
		{Name: "Z", NsPerOp: 0}, // degenerate baseline: never gates
	}}
	cur := Report{Results: []Result{
		{Name: "A", NsPerOp: 1250},  // exactly at the 25% gate: allowed
		{Name: "B", NsPerOp: 1251},  // just past: regression
		{Name: "C", NsPerOp: 500},   // improvement: fine
		{Name: "Z", NsPerOp: 99999}, // zero baseline ignored
		{Name: "NEW", NsPerOp: 1e9}, // not in baseline: ignored (suite may grow)
	}}
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	r := regs[0]
	if r.Name != "B" || r.BaselineNs != 1000 || r.CurrentNs != 1251 {
		t.Fatalf("unexpected regression record: %+v", r)
	}
	if math.Abs(r.Ratio-1.251) > 1e-9 {
		t.Fatalf("ratio %v, want 1.251", r.Ratio)
	}
	// Zero tolerance: any slowdown at all regresses.
	if regs := Compare(base, cur, 0); len(regs) != 2 {
		t.Fatalf("tolerance 0: got %d regressions, want 2 (A and B): %+v", len(regs), regs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	rep.FillSpeedups()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", rep, back)
	}
	// The JSON field names are the stable contract with committed
	// BENCH_PR<n>.json baselines — a rename would silently disable the
	// CI gate for old baselines.
	for _, key := range []string{`"ns_per_op"`, `"allocs_per_op"`, `"bytes_per_op"`, `"catalog_speedup"`, `"warm_start_speedup"`, `"group_commit_speedup"`, `"indexed_reopen_speedup"`, `"mixed_load"`, `"scaling_8x"`, `"ingest"`, `"bulk_ingest_speedup"`} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("serialized report missing %s:\n%s", key, buf)
		}
	}
}
