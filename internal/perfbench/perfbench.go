// Package perfbench holds the query-path micro-benchmarks introduced with
// the PR1 performance overhaul, shared by two drivers: bench_test.go runs
// them under `go test -bench` (BenchmarkCatalogCache,
// BenchmarkSelectStreaming), and cmd/benchrunner runs them via
// testing.Benchmark to record a BENCH_PR1.json trajectory point.
//
// Two comparisons matter:
//   - AskGuidedCached vs AskGuidedScanPerQuery: the guided-query hot path
//     served from the incremental catalog cache versus the pre-PR1
//     behavior (full catalog scan per query), replicated here from public
//     System pieces so the baseline stays measurable after the rewrite.
//   - SelectFiltered10k: allocations of a selective WHERE over 10k rows,
//     which the streaming scan answers without cloning rejected tuples.
package perfbench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/reformulate"
	"repro/internal/synth"
	"repro/internal/uql"
)

const (
	seed        = 42
	guidedQuery = "average March September temperature Madison Wisconsin"
)

// newGuidedSystem builds a system with an extracted structure, ready for
// guided queries.
func newGuidedSystem() (*core.System, error) {
	corpus, _ := synth.Generate(synth.Config{
		Seed: seed, Cities: 100, People: 30, Filler: 80, MentionsPerPerson: 2,
	})
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
	if err != nil {
		return nil, err
	}
	if _, err := sys.Generate(`
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		return nil, err
	}
	return sys, nil
}

// AskGuidedCached measures the §3.2 keyword→structured flow on the
// incremental catalog cache: after the first query warms the cache, no
// AskGuided call scans the extracted table.
func AskGuidedCached(b *testing.B) {
	sys, err := newGuidedSystem()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.AskGuided(guidedQuery, 3); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := sys.AskGuided(guidedQuery, 3)
		if err != nil {
			b.Fatal(err)
		}
		if ans.Answer == nil || len(ans.Answer.Rows) == 0 {
			b.Fatal("no answer")
		}
	}
}

// AskGuidedScanPerQuery measures the pre-cache behavior: every query
// rebuilds the catalog with a full table scan (System.CatalogScan), then
// reformulates and executes — exactly what AskGuided did before PR1.
func AskGuidedScanPerQuery(b *testing.B) {
	sys, err := newGuidedSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat, err := sys.CatalogScan()
		if err != nil {
			b.Fatal(err)
		}
		cands := reformulate.New(cat).Candidates(guidedQuery, 3)
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
		rs, err := sys.DB.Exec(cands[0].SQL)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) == 0 {
			b.Fatal("no answer")
		}
	}
}

// selectRows is the table size for the streaming-scan benches.
const selectRows = 10000

// newSelectDB builds an in-memory table of selectRows rows with an
// unindexed float column; about 1% of rows pass the selective predicate.
func newSelectDB() (*rdbms.DB, error) {
	db, err := rdbms.Open(rdbms.NewMemPager(), rdbms.NewMemWAL(), rdbms.Options{BufferPages: 2048})
	if err != nil {
		return nil, err
	}
	schema := rdbms.TableSchema{Name: "metrics", Columns: []rdbms.ColumnDef{
		{Name: "id", Type: rdbms.TInt},
		{Name: "city", Type: rdbms.TString},
		{Name: "val", Type: rdbms.TFloat},
	}}
	if err := db.CreateTable(schema); err != nil {
		return nil, err
	}
	tx := db.Begin()
	for i := 0; i < selectRows; i++ {
		tup := rdbms.Tuple{
			rdbms.NewInt(int64(i)),
			rdbms.NewString(fmt.Sprintf("city-%d", i%97)),
			rdbms.NewFloat(float64(i % 100)),
		}
		if _, err := tx.Insert("metrics", tup); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return db, nil
}

// SelectFiltered10k measures a selective WHERE (1% of 10k rows qualify)
// answered by the streaming seq scan: rejected tuples are filtered inside
// the scan callback and never retained or cloned.
func SelectFiltered10k(b *testing.B) {
	db, err := newSelectDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id, val FROM metrics WHERE val < 1")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != selectRows/100 {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
	}
}

// SelectLimited10k measures early-LIMIT termination: an unordered LIMIT
// stops the scan as soon as enough rows qualify.
func SelectLimited10k(b *testing.B) {
	db, err := newSelectDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id FROM metrics LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != 10 {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
	}
}

// Result is one recorded micro-benchmark.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is a BENCH_PR1.json trajectory point.
type Report struct {
	PR      int      `json:"pr"`
	Suite   string   `json:"suite"`
	Results []Result `json:"results"`
	// CatalogSpeedup is AskGuidedScanPerQuery ns/op divided by
	// AskGuidedCached ns/op (the ≥5x acceptance bar).
	CatalogSpeedup float64 `json:"catalog_speedup"`
}

// RunAll executes every micro-benchmark via testing.Benchmark and
// assembles the trajectory report.
func RunAll() Report {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CatalogCache/AskGuidedCached", AskGuidedCached},
		{"CatalogCache/AskGuidedScanPerQuery", AskGuidedScanPerQuery},
		{"SelectStreaming/Filtered10k", SelectFiltered10k},
		{"SelectStreaming/Limited10k", SelectLimited10k},
	}
	rep := Report{PR: 1, Suite: "query-path"}
	byName := map[string]Result{}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		res := Result{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, res)
		byName[bm.name] = res
	}
	cached := byName["CatalogCache/AskGuidedCached"]
	scan := byName["CatalogCache/AskGuidedScanPerQuery"]
	if cached.NsPerOp > 0 {
		rep.CatalogSpeedup = scan.NsPerOp / cached.NsPerOp
	}
	return rep
}
