// Package perfbench holds the query-path micro-benchmarks introduced with
// the PR1 performance overhaul, extended by the PR2 sorted-query overhaul
// and the PR3 durability work, shared by two drivers: bench_test.go runs
// them under `go test -bench` (BenchmarkCatalogCache,
// BenchmarkSelectStreaming, BenchmarkSortedQueries, BenchmarkDurability),
// and cmd/benchrunner runs them via testing.Benchmark to record a
// BENCH_PR<n>.json trajectory point and to gate CI against regressions
// (-compare).
//
// The comparisons that matter:
//   - AskGuidedCached vs AskGuidedScanPerQuery: the guided-query hot path
//     served from the incremental catalog cache versus the pre-PR1
//     behavior (full catalog scan per query), replicated here from public
//     System pieces so the baseline stays measurable after the rewrite.
//   - SelectFiltered10k: allocations of a selective WHERE over 10k rows,
//     which the streaming scan answers without cloning rejected tuples.
//   - OrderByTopK10k / OrderByIndexOrder10k vs OrderByFullSort10k: the
//     PR2 sorted paths (bounded heap; index-order scan) versus the
//     pre-PR2 cost, which materialized and stable-sorted every row —
//     exactly what ORDER BY without LIMIT still does, so the no-LIMIT
//     query is the measurable stand-in for the old ORDER BY+LIMIT.
//   - WarmStartLoad vs CatalogColdRebuild: restoring the persisted warm
//     catalog + queue snapshot versus the full-table rescan a cold Open
//     pays.
//   - DiskCommit vs DiskCommitParallel: the per-transaction fsync price
//     of durable commit, alone versus with 8 concurrent committers
//     sharing group-commit flush batches (PR4's amortization bar: the
//     concurrent per-txn cost must be ≤ 1/4 of the single-committer
//     cost).
//   - DiskReopen vs DiskReopenIndexed: close→reopen of a checkpointed
//     10k-row database with the index rebuilt from a full heap scan
//     (RebuildIndexes, the pre-PR4 cost kept measurable as the in-run
//     baseline) versus bulk-loaded from its persistent checkpoint chain
//     (the PR4 happy path, asserted via OpenStats).
//   - DiskCommitDuringCheckpoint vs DiskCommit: commit latency with a
//     fuzzy checkpoint permanently in flight versus with none (PR5's
//     non-quiesce bar: commits must proceed at a bounded small multiple,
//     not stall for the checkpoint's duration — pre-PR5 this bench could
//     not run, since Checkpoint refused active transactions outright).
//   - Server/SustainedLoad (PR6): 256 concurrent wire-protocol clients
//     against an in-process unidbd server — served ops/sec plus p50/p99
//     client-observed latency, with admission-control sheds counted
//     (see serverload.go).
//   - MVCC/MixedRead{1,8}R2W (PR7): the mixed read/write sweep — 1/4/8
//     reader connections running the guided flow on MVCC snapshot Views
//     against 2 churning writers, with the 8-vs-1 reader scaling factor
//     and the engine-level snapshot-vs-locking read comparison (see
//     mixedload.go).
package perfbench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/reformulate"
	"repro/internal/synth"
	"repro/internal/uql"
)

const (
	seed        = 42
	guidedQuery = "average March September temperature Madison Wisconsin"
)

// newGuidedSystem builds a system with an extracted structure, ready for
// guided queries.
func newGuidedSystem() (*core.System, error) {
	corpus, _ := synth.Generate(synth.Config{
		Seed: seed, Cities: 100, People: 30, Filler: 80, MentionsPerPerson: 2,
	})
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
	if err != nil {
		return nil, err
	}
	if _, err := sys.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		return nil, err
	}
	return sys, nil
}

// AskGuidedCached measures the §3.2 keyword→structured flow on the
// incremental catalog cache: after the first query warms the cache, no
// AskGuided call scans the extracted table.
func AskGuidedCached(b *testing.B) {
	sys, err := newGuidedSystem()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.AskGuided(context.Background(), guidedQuery, 3); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := sys.AskGuided(context.Background(), guidedQuery, 3)
		if err != nil {
			b.Fatal(err)
		}
		if ans.Answer == nil || len(ans.Answer.Rows) == 0 {
			b.Fatal("no answer")
		}
	}
}

// AskGuidedScanPerQuery measures the pre-cache behavior: every query
// rebuilds the catalog with a full table scan (System.CatalogScan), then
// reformulates and executes — exactly what AskGuided did before PR1.
func AskGuidedScanPerQuery(b *testing.B) {
	sys, err := newGuidedSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat, err := sys.RefreshCatalog(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		cands := reformulate.New(cat).Candidates(guidedQuery, 3)
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
		rs, err := sys.DB.Exec(cands[0].SQL)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) == 0 {
			b.Fatal("no answer")
		}
	}
}

// selectRows is the table size for the streaming-scan benches.
const selectRows = 10000

// newSelectDB builds an in-memory table of selectRows rows with an
// unindexed float column; about 1% of rows pass the selective predicate.
func newSelectDB() (*rdbms.DB, error) {
	db, err := rdbms.Open(rdbms.NewMemPager(), rdbms.NewMemWAL(), rdbms.Options{BufferPages: 2048})
	if err != nil {
		return nil, err
	}
	schema := rdbms.TableSchema{Name: "metrics", Columns: []rdbms.ColumnDef{
		{Name: "id", Type: rdbms.TInt},
		{Name: "city", Type: rdbms.TString},
		{Name: "val", Type: rdbms.TFloat},
	}}
	if err := db.CreateTable(schema); err != nil {
		return nil, err
	}
	tx := db.Begin()
	for i := 0; i < selectRows; i++ {
		tup := rdbms.Tuple{
			rdbms.NewInt(int64(i)),
			rdbms.NewString(fmt.Sprintf("city-%d", i%97)),
			rdbms.NewFloat(float64(i % 100)),
		}
		if _, err := tx.Insert("metrics", tup); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return db, nil
}

// SelectFiltered10k measures a selective WHERE (1% of 10k rows qualify)
// answered by the streaming seq scan: rejected tuples are filtered inside
// the scan callback and never retained or cloned.
func SelectFiltered10k(b *testing.B) {
	db, err := newSelectDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id, val FROM metrics WHERE val < 1")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != selectRows/100 {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
	}
}

// SelectLimited10k measures early-LIMIT termination: an unordered LIMIT
// stops the scan as soon as enough rows qualify.
func SelectLimited10k(b *testing.B) {
	db, err := newSelectDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id FROM metrics LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != 10 {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
	}
}

// newSelectDBIndexed is newSelectDB plus a B+tree index on id, the sort
// column of the index-order benches.
func newSelectDBIndexed() (*rdbms.DB, error) {
	db, err := newSelectDB()
	if err != nil {
		return nil, err
	}
	if err := db.CreateIndex("metrics", "id"); err != nil {
		return nil, err
	}
	return db, nil
}

// OrderByFullSort10k measures ORDER BY with no LIMIT: every row is
// materialized, projected, and stable-sorted. This is the pre-PR2 cost of
// ORDER BY+LIMIT too (the old path sorted everything and truncated), so
// it doubles as the committed baseline the top-k speedup is measured
// against.
func OrderByFullSort10k(b *testing.B) {
	db, err := newSelectDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id, val FROM metrics ORDER BY val")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != selectRows {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
	}
}

// OrderByTopK10k measures ORDER BY+LIMIT on an unindexed sort key: the
// bounded heap retains OFFSET+LIMIT rows and only they are projected.
func OrderByTopK10k(b *testing.B) {
	db, err := newSelectDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id, val FROM metrics ORDER BY val LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != 10 {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
	}
}

// OrderByIndexOrder10k measures ORDER BY+LIMIT when the sort key is an
// indexed column: the scan walks the index in key order and stops after
// LIMIT rows — no sort at all.
func OrderByIndexOrder10k(b *testing.B) {
	db, err := newSelectDBIndexed()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id, val FROM metrics ORDER BY id DESC LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) != 10 {
			b.Fatalf("got %d rows", len(rs.Rows))
		}
		if !strings.Contains(rs.Plan, "index order scan") {
			b.Fatalf("plan %q did not use the index-order path", rs.Plan)
		}
	}
}

// CatalogColdRebuild measures what a cold Open pays on its first guided
// query: a full scan of the extracted table to rebuild the catalog.
func CatalogColdRebuild(b *testing.B) {
	sys, err := newGuidedSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat, err := sys.RefreshCatalog(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(cat.Entities) == 0 {
			b.Fatal("empty catalog")
		}
	}
}

// WarmStartLoad measures restoring the persisted warm snapshot (catalog +
// task queue) in place of that rebuild scan.
func WarmStartLoad(b *testing.B) {
	sys, err := newGuidedSystem()
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "perfbench-warm-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := sys.SaveWarmState(dir); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := sys.LoadWarmState(dir)
		if err != nil {
			b.Fatal(err)
		}
		if !warm {
			b.Fatal("warm snapshot refused")
		}
	}
}

// DiskCommit measures one durable transaction commit — WAL append plus
// fsync — against the crash-safe on-disk database (rdbms.OpenDir), the
// per-transaction price of surviving power loss.
func DiskCommit(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfbench-disk-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(rdbms.TableSchema{Name: "kv", Columns: []rdbms.ColumnDef{
		{Name: "k", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TString},
	}}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("kv", rdbms.Tuple{rdbms.NewInt(int64(i)), rdbms.NewString("payload")}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// DiskCommitParallel measures the amortized per-transaction commit cost
// with 8 concurrent committers: the WAL's group-commit sequencer batches
// their commit records into shared flush batches, so the fleet pays a
// few fsyncs per batch instead of one each. Compare against DiskCommit
// for the amortization factor.
func DiskCommitParallel(b *testing.B) {
	const committers = 8
	dir, err := os.MkdirTemp("", "perfbench-diskpar-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(rdbms.TableSchema{Name: "kv", Columns: []rdbms.ColumnDef{
		{Name: "k", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TString},
	}}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	syncsBefore := db.WALSyncs()
	var next int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i > int64(b.N) {
					return
				}
				tx := db.Begin()
				if _, err := tx.Insert("kv", rdbms.Tuple{rdbms.NewInt(i), rdbms.NewString("payload")}); err != nil {
					firstErr.CompareAndSwap(nil, err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		b.Fatal(err)
	}
	if syncs := db.WALSyncs() - syncsBefore; syncs > 0 {
		b.ReportMetric(float64(b.N)/float64(syncs), "commits/sync")
	}
}

// DiskCommitDuringCheckpoint measures durable commit latency while a
// background goroutine keeps full checkpoints permanently in flight
// (dirtying pages between rounds so every checkpoint has real work).
// Before PR5 this bench could not run at all: Checkpoint refused active
// transactions, so commits and checkpoints were mutually exclusive. The
// acceptance bar is that commits proceed at bounded latency — the
// reported ns/op stays within a small factor of plain DiskCommit rather
// than stalling for a full checkpoint duration — which the Report's
// CheckpointCommitOverhead ratio tracks.
func DiskCommitDuringCheckpoint(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfbench-ckpt-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 2048})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(rdbms.TableSchema{Name: "kv", Columns: []rdbms.ColumnDef{
		{Name: "k", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TString},
	}}); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		b.Fatal(err)
	}
	// A body of rows so checkpoints have pages and index chains to write.
	tx := db.Begin()
	for i := 0; i < selectRows; i++ {
		if _, err := tx.Insert("kv", rdbms.Tuple{rdbms.NewInt(int64(i)), rdbms.NewString("payload")}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	ckptBefore := db.Checkpoints()
	go func() {
		defer wg.Done()
		churn := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Re-dirty a spread of pages, then checkpoint them out again.
			tx := db.Begin()
			for i := 0; i < 64; i++ {
				churn++
				if _, err := tx.Insert("kv", rdbms.Tuple{rdbms.NewInt(-churn), rdbms.NewString("churn")}); err != nil {
					tx.Abort()
					return
				}
			}
			if err := tx.Commit(); err != nil {
				return
			}
			if err := db.Checkpoint(); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("kv", rdbms.Tuple{rdbms.NewInt(int64(selectRows + i)), rdbms.NewString("payload")}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if ckpts := db.Checkpoints() - ckptBefore; ckpts > 0 {
		b.ReportMetric(float64(ckpts), "checkpoints")
	}
}

// reopenDB builds the checkpointed 10k-row indexed database the reopen
// benches cycle against.
func reopenDB(b *testing.B) string {
	b.Helper()
	dir, err := os.MkdirTemp("", "perfbench-reopen-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 1024})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable(rdbms.TableSchema{Name: "kv", Columns: []rdbms.ColumnDef{
		{Name: "k", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TString},
	}}); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < selectRows; i++ {
		if _, err := tx.Insert("kv", rdbms.Tuple{rdbms.NewInt(int64(i)), rdbms.NewString("payload")}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// DiskReopen measures the close→reopen cycle of a checkpointed on-disk
// database holding 10k rows with the index checkpoint load DISABLED
// (catalog load, heap chain walk, empty WAL scan, full index rebuild
// from the heap) — the pre-PR4 reopen cost, kept measurable as the
// committed baseline DiskReopenIndexed's speedup is judged against.
func DiskReopen(b *testing.B) {
	dir := reopenDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 1024, RebuildIndexes: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// DiskReopenIndexed measures the same cycle on the PR4 happy path: the
// index bulk-loads from its persistent checkpoint chain, the WAL tail is
// empty, and recovery writes nothing. The bench fails if the load falls
// back to a rebuild.
func DiskReopenIndexed(b *testing.B) {
	dir := reopenDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := rdbms.OpenDir(dir, rdbms.Options{BufferPages: 1024})
		if err != nil {
			b.Fatal(err)
		}
		if st := re.LastOpenStats(); st.IndexesLoaded != 1 || st.IndexesRebuilt != 0 {
			b.Fatalf("reopen did not load the index checkpoint: %+v", st)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// Result is one recorded micro-benchmark.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is a BENCH_PR<n>.json trajectory point.
type Report struct {
	PR      int      `json:"pr"`
	Suite   string   `json:"suite"`
	Results []Result `json:"results"`
	// CatalogSpeedup is AskGuidedScanPerQuery ns/op divided by
	// AskGuidedCached ns/op (PR1's ≥5x acceptance bar).
	CatalogSpeedup float64 `json:"catalog_speedup"`
	// OrderBySpeedup is OrderByFullSort10k (the pre-PR2 ORDER BY+LIMIT
	// cost) divided by OrderByTopK10k (PR2's ≥5x acceptance bar), and
	// IndexOrderSpeedup the same baseline over OrderByIndexOrder10k.
	OrderBySpeedup    float64 `json:"order_by_speedup"`
	IndexOrderSpeedup float64 `json:"index_order_speedup"`
	// WarmStartSpeedup is CatalogColdRebuild over WarmStartLoad.
	WarmStartSpeedup float64 `json:"warm_start_speedup"`
	// GroupCommitSpeedup is DiskCommit (one committer, one fsync per
	// txn) over DiskCommitParallel (8 committers sharing group-commit
	// batches): the fsync amortization factor (PR4's ≥4x bar).
	GroupCommitSpeedup float64 `json:"group_commit_speedup"`
	// IndexedReopenSpeedup is DiskReopen (full index rebuild from the
	// heap) over DiskReopenIndexed (bulk load from the persistent index
	// checkpoint) — PR4's ≥5x reopen bar, measured in-run on one machine.
	IndexedReopenSpeedup float64 `json:"indexed_reopen_speedup"`
	// CheckpointCommitOverhead is DiskCommitDuringCheckpoint over
	// DiskCommit: the latency cost a commit pays when a fuzzy checkpoint
	// is permanently in flight (PR5's non-quiesce bar — a full quiesce
	// stall would put this at checkpoint-duration / commit-latency, i.e.
	// orders of magnitude; bounded overhead keeps it a small factor).
	CheckpointCommitOverhead float64 `json:"checkpoint_commit_overhead"`
	// ServerLoad is the PR6 sustained-throughput measurement: 256 client
	// connections driving a mixed wire-protocol workload against an
	// in-process unidbd server. Its throughput also lands in Results as
	// Server/SustainedLoad (ns per served op) so the -compare gate tracks
	// serving regressions like any other bench.
	ServerLoad ServerLoad `json:"server_load"`
	// MixedLoad is the PR7 headline: the 1/4/8-reader × 2-writer mixed
	// sweep over MVCC snapshot reads, whose 8-vs-1 scaling factor was
	// pinned at ~1x before PR7 (readers serialized on System.mu). Its
	// 1- and 8-reader throughputs also land in Results as
	// MVCC/MixedRead1R2W and MVCC/MixedRead8R2W (ns per read op) so the
	// -compare gate tracks reader-path regressions.
	MixedLoad MixedLoad `json:"mixed_load"`
	// Ingest is the PR8 headline: the 1M-row COPY-style bulk load (one
	// batch WAL record per chunk, deferred sorted index build, checkpoint
	// fence) versus the row-at-a-time durable commit path, as rows/sec on
	// the extracted-table schema. Both sides land in Results as
	// Ingest/BulkLoad1M and Ingest/RowAtATime (ns per row) so the
	// -compare gate tracks load-path regressions.
	Ingest IngestLoad `json:"ingest"`
	// BulkIngestSpeedup is Ingest.Speedup (bulk over row-at-a-time
	// rows/sec; PR8's ≥10x acceptance bar).
	BulkIngestSpeedup float64 `json:"bulk_ingest_speedup"`
	// ShardLoad is the PR9 headline: mixed exploitation sessions
	// (guided ask, entity-routed counts, a correction) against a 4-shard
	// system versus one engine over the identical table. Both 8-session
	// sides land in Results as Shard/MixedSweepSingle8S and
	// Shard/MixedSweepSharded8S (ns per op) so the -compare gate tracks
	// both serving paths.
	ShardLoad ShardLoad `json:"shard_load"`
	// ShardReadSpeedup is ShardLoad.Speedup8S (sharded over single
	// ops/sec at 8 sessions; PR9's ≥2x acceptance bar).
	ShardReadSpeedup float64 `json:"shard_read_speedup"`
}

// RunAll executes every micro-benchmark via testing.Benchmark and
// assembles the trajectory report.
func RunAll() Report {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CatalogCache/AskGuidedCached", AskGuidedCached},
		{"CatalogCache/AskGuidedScanPerQuery", AskGuidedScanPerQuery},
		{"SelectStreaming/Filtered10k", SelectFiltered10k},
		{"SelectStreaming/Limited10k", SelectLimited10k},
		{"SortedQueries/OrderByFullSort10k", OrderByFullSort10k},
		{"SortedQueries/OrderByTopK10k", OrderByTopK10k},
		{"SortedQueries/OrderByIndexOrder10k", OrderByIndexOrder10k},
		{"WarmStart/CatalogColdRebuild", CatalogColdRebuild},
		{"WarmStart/WarmStartLoad", WarmStartLoad},
		{"Durability/DiskCommit", DiskCommit},
		{"Durability/DiskCommitParallel", DiskCommitParallel},
		{"Durability/DiskCommitDuringCheckpoint", DiskCommitDuringCheckpoint},
		{"Durability/DiskReopen", DiskReopen},
		{"Durability/DiskReopenIndexed", DiskReopenIndexed},
		{"BufferPool/ScanUnderPressure", ScanUnderPressure},
		{"BufferPool/HotPointReadUnderScan", HotPointReadUnderScan},
	}
	rep := Report{PR: 10, Suite: "larger-than-ram"}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		rep.Results = append(rep.Results, Result{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	load, err := MeasureServerLoad(256, 1500*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: server load measurement failed:", err)
	} else {
		rep.ServerLoad = load
		// Gate throughput as aggregate ns per served op (monotone in a
		// throughput drop) and the median client-observed latency; p99 is
		// reported but not gated — too noisy for a 25% tolerance in CI.
		rep.Results = append(rep.Results,
			Result{Name: "Server/SustainedLoad", NsPerOp: 1e9 / load.OpsPerSec},
			Result{Name: "Server/P50Latency", NsPerOp: load.P50Ms * 1e6},
		)
	}
	mixed, err := MeasureMixedReadWrite(time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: mixed read/write measurement failed:", err)
	} else {
		rep.MixedLoad = mixed
		// Gate the reader path at both ends of the sweep as ns per read
		// op; the scaling factor itself is recorded, not gated (it is a
		// ratio of two gated numbers and too noisy for a 25% tolerance).
		if n := len(mixed.Points); n > 0 {
			if one := mixed.Points[0].ReaderOpsPerSec; one > 0 {
				rep.Results = append(rep.Results,
					Result{Name: "MVCC/MixedRead1R2W", NsPerOp: 1e9 / one})
			}
			if eight := mixed.Points[n-1].ReaderOpsPerSec; eight > 0 {
				rep.Results = append(rep.Results,
					Result{Name: "MVCC/MixedRead8R2W", NsPerOp: 1e9 / eight})
			}
		}
	}
	ingest, err := MeasureBulkIngest(ingestRows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: bulk ingest measurement failed:", err)
	} else {
		rep.Ingest = ingest
		// Gate both sides as ns per loaded row (monotone in a throughput
		// drop); the speedup itself is recorded, not gated.
		if ingest.BulkRowsPerSec > 0 {
			rep.Results = append(rep.Results,
				Result{Name: "Ingest/BulkLoad1M", NsPerOp: 1e9 / ingest.BulkRowsPerSec})
		}
		if ingest.BaselineRowsPerSec > 0 {
			rep.Results = append(rep.Results,
				Result{Name: "Ingest/RowAtATime", NsPerOp: 1e9 / ingest.BaselineRowsPerSec})
		}
	}
	shardLoad, err := MeasureShardedRead(4, time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: sharded read measurement failed:", err)
	} else {
		rep.ShardLoad = shardLoad
		// Gate both sides of the 8-session point as ns per op; the
		// speedup itself is recorded, not gated (a ratio of two gated
		// numbers).
		if n := len(shardLoad.Points); n > 0 {
			last := shardLoad.Points[n-1]
			if last.SingleOpsPerSec > 0 {
				rep.Results = append(rep.Results,
					Result{Name: "Shard/MixedSweepSingle8S", NsPerOp: 1e9 / last.SingleOpsPerSec})
			}
			if last.ShardedOpsPerSec > 0 {
				rep.Results = append(rep.Results,
					Result{Name: "Shard/MixedSweepSharded8S", NsPerOp: 1e9 / last.ShardedOpsPerSec})
			}
		}
	}
	rep.FillSpeedups()
	return rep
}

// FillSpeedups recomputes the headline ratios from Results. A missing or
// zero-time denominator yields 0 rather than a division blow-up, so a
// partially populated report stays well formed.
func (rep *Report) FillSpeedups() {
	byName := map[string]Result{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	ratio := func(num, den string) float64 {
		if d := byName[den].NsPerOp; d > 0 {
			return byName[num].NsPerOp / d
		}
		return 0
	}
	rep.CatalogSpeedup = ratio("CatalogCache/AskGuidedScanPerQuery", "CatalogCache/AskGuidedCached")
	rep.OrderBySpeedup = ratio("SortedQueries/OrderByFullSort10k", "SortedQueries/OrderByTopK10k")
	rep.IndexOrderSpeedup = ratio("SortedQueries/OrderByFullSort10k", "SortedQueries/OrderByIndexOrder10k")
	rep.WarmStartSpeedup = ratio("WarmStart/CatalogColdRebuild", "WarmStart/WarmStartLoad")
	rep.GroupCommitSpeedup = ratio("Durability/DiskCommit", "Durability/DiskCommitParallel")
	rep.IndexedReopenSpeedup = ratio("Durability/DiskReopen", "Durability/DiskReopenIndexed")
	rep.CheckpointCommitOverhead = ratio("Durability/DiskCommitDuringCheckpoint", "Durability/DiskCommit")
	rep.BulkIngestSpeedup = ratio("Ingest/RowAtATime", "Ingest/BulkLoad1M")
	rep.ShardReadSpeedup = ratio("Shard/MixedSweepSingle8S", "Shard/MixedSweepSharded8S")
}

// Regression is one tracked bench that slowed past the gate tolerance.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64 // CurrentNs / BaselineNs
}

// Compare gates current against baseline: every bench present in both
// reports regresses when its ns/op exceeds baseline*(1+tolerance).
// Benches only in one report are ignored (the suite may grow), so a
// fresh baseline must be committed alongside new benches.
func Compare(baseline, current Report, tolerance float64) []Regression {
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var regs []Regression
	for _, cur := range current.Results {
		b, ok := base[cur.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if cur.NsPerOp > b.NsPerOp*(1+tolerance) {
			regs = append(regs, Regression{
				Name:       cur.Name,
				BaselineNs: b.NsPerOp,
				CurrentNs:  cur.NsPerOp,
				Ratio:      cur.NsPerOp / b.NsPerOp,
			})
		}
	}
	return regs
}
