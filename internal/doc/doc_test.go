package doc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSpanBasics(t *testing.T) {
	s := Span{Start: 2, End: 7}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if !s.Valid() {
		t.Fatal("span should be valid")
	}
	if (Span{Start: 5, End: 3}).Valid() {
		t.Fatal("inverted span should be invalid")
	}
	if !s.Contains(Span{Start: 3, End: 6}) {
		t.Fatal("expected containment")
	}
	if s.Contains(Span{Start: 1, End: 6}) {
		t.Fatal("unexpected containment")
	}
	if !s.Overlaps(Span{Start: 6, End: 10}) {
		t.Fatal("expected overlap")
	}
	if s.Overlaps(Span{Start: 7, End: 10}) {
		t.Fatal("half-open spans touching at 7 must not overlap")
	}
	if got := s.String(); got != "[2,7)" {
		t.Fatalf("String = %q", got)
	}
}

func TestDocumentSliceClamping(t *testing.T) {
	d := &Document{Text: "hello world"}
	if got := d.Slice(Span{Start: 0, End: 5}); got != "hello" {
		t.Fatalf("Slice = %q", got)
	}
	if got := d.Slice(Span{Start: -3, End: 5}); got != "hello" {
		t.Fatalf("negative start: %q", got)
	}
	if got := d.Slice(Span{Start: 6, End: 100}); got != "world" {
		t.Fatalf("overlong end: %q", got)
	}
	if got := d.Slice(Span{Start: 8, End: 3}); got != "" {
		t.Fatalf("inverted span should be empty, got %q", got)
	}
}

func TestTokenizeWords(t *testing.T) {
	toks := Tokenize("The average temperature in Madison, Wisconsin is 70.5 degrees.")
	var words []string
	for _, tk := range toks {
		words = append(words, tk.Text)
	}
	want := []string{"The", "average", "temperature", "in", "Madison", "Wisconsin", "is", "70.5", "degrees"}
	if len(words) != len(want) {
		t.Fatalf("got %v, want %v", words, want)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, words[i], want[i], words)
		}
	}
}

func TestTokenizeInitials(t *testing.T) {
	toks := Tokenize("D. Smith met David Smith.")
	if len(toks) == 0 || toks[0].Text != "D." {
		t.Fatalf("expected leading initial token 'D.', got %v", toks)
	}
}

func TestTokenizeSpansRoundTrip(t *testing.T) {
	text := "Population 233,209 grew by 1.5-2 percent."
	d := &Document{Text: text}
	for _, tk := range Tokenize(text) {
		if got := d.Slice(tk.Span); got != tk.Text {
			t.Fatalf("span %v slices to %q, token text is %q", tk.Span, got, tk.Text)
		}
	}
}

func TestTokenizeEmptyAndPunct(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("empty text should yield no tokens, got %v", toks)
	}
	if toks := Tokenize("!!! ... ---"); len(toks) != 0 {
		t.Fatalf("punctuation-only text should yield no tokens, got %v", toks)
	}
}

func TestSentences(t *testing.T) {
	text := "Madison is a city. It is in Wisconsin! Is it cold? Yes."
	spans := Sentences(text)
	if len(spans) != 4 {
		t.Fatalf("got %d sentences: %v", len(spans), spans)
	}
	d := &Document{Text: text}
	if got := d.Slice(spans[0]); got != "Madison is a city." {
		t.Fatalf("sentence 0 = %q", got)
	}
	if got := d.Slice(spans[2]); got != "Is it cold?" {
		t.Fatalf("sentence 2 = %q", got)
	}
}

func TestSentencesInitialNotTerminal(t *testing.T) {
	text := "D. Smith wrote this. He lives in Madison."
	spans := Sentences(text)
	if len(spans) != 2 {
		t.Fatalf("initial 'D.' must not end a sentence; got %d spans", len(spans))
	}
	d := &Document{Text: text}
	if got := d.Slice(spans[0]); got != "D. Smith wrote this." {
		t.Fatalf("sentence 0 = %q", got)
	}
}

func TestSentencesParagraphBreak(t *testing.T) {
	text := "First paragraph line\n\nSecond paragraph"
	spans := Sentences(text)
	if len(spans) != 2 {
		t.Fatalf("got %d spans: %v", len(spans), spans)
	}
}

func TestNormalizeTerm(t *testing.T) {
	cases := map[string]string{
		"Madison,":  "madison",
		"WISCONSIN": "wisconsin",
		"70.5":      "70.5",
		"...":       "",
		"D.":        "d",
	}
	for in, want := range cases {
		if got := NormalizeTerm(in); got != want {
			t.Errorf("NormalizeTerm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCorpusAddGet(t *testing.T) {
	c := NewCorpus()
	d1 := c.Add(Document{Title: "Madison, Wisconsin", Text: "abc"})
	d2 := c.Add(Document{Title: "Chicago", Text: "defgh"})
	if d1.ID == d2.ID {
		t.Fatal("IDs must be unique")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Bytes() != 8 {
		t.Fatalf("Bytes = %d, want 8", c.Bytes())
	}
	if got := c.Get(d1.ID); got == nil || got.Title != "Madison, Wisconsin" {
		t.Fatalf("Get returned %v", got)
	}
	if c.Get(DocID(9999)) != nil {
		t.Fatal("missing ID should return nil")
	}
	if got := c.FindByTitle("Chicago"); got == nil || got.ID != d2.ID {
		t.Fatalf("FindByTitle returned %v", got)
	}
	if c.FindByTitle("nope") != nil {
		t.Fatal("FindByTitle should return nil for unknown title")
	}
}

func TestCorpusPartition(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 10; i++ {
		c.Add(Document{Title: strings.Repeat("x", i+1), Text: "t"})
	}
	parts := c.Partition(3)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Fatalf("partitions cover %d docs, want 10", total)
	}
	if len(parts) > 3+1 {
		t.Fatalf("too many partitions: %d", len(parts))
	}
	// Degenerate arguments.
	if got := c.Partition(0); len(got) == 0 {
		t.Fatal("Partition(0) should clamp to 1")
	}
	if got := c.Partition(100); len(got) != 10 {
		t.Fatalf("Partition(100) should clamp to doc count, got %d", len(got))
	}
	empty := NewCorpus()
	if got := empty.Partition(4); len(got) != 0 {
		t.Fatalf("empty corpus should produce no partitions, got %d", len(got))
	}
}

func TestCorpusTitlesSorted(t *testing.T) {
	c := NewCorpus()
	c.Add(Document{Title: "b"})
	c.Add(Document{Title: "a"})
	c.Add(Document{Title: "c"})
	got := c.TitlesSorted()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("TitlesSorted = %v", got)
	}
}

// Property: every token's span slices back to the token text, for arbitrary
// ASCII-ish inputs.
func TestTokenizeSpanProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Constrain to printable ASCII plus whitespace so the property is
		// about tokenizer alignment, not unicode edge handling.
		b := make([]byte, len(raw))
		for i, x := range raw {
			b[i] = ' ' + x%95
		}
		text := string(b)
		d := &Document{Text: text}
		for _, tk := range Tokenize(text) {
			if d.Slice(tk.Span) != tk.Text {
				return false
			}
			if !tk.Span.Valid() || tk.Span.End > len(text) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sentence spans are ordered, non-overlapping, and within bounds.
func TestSentencesSpanProperty(t *testing.T) {
	f := func(raw []byte) bool {
		b := make([]byte, len(raw))
		for i, x := range raw {
			switch x % 13 {
			case 0:
				b[i] = '.'
			case 1:
				b[i] = '\n'
			case 2:
				b[i] = ' '
			default:
				b[i] = 'a' + x%26
			}
		}
		text := string(b)
		spans := Sentences(text)
		prev := 0
		for _, s := range spans {
			if !s.Valid() || s.Start < prev || s.End > len(text) || s.Len() == 0 {
				return false
			}
			prev = s.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
