// Package doc defines the document model shared by every layer of the
// system: documents, character spans, tokens, and corpora. It is the
// "unstructured data" side of the DGE model — everything the extraction
// pipeline consumes is expressed in these types.
package doc

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// DocID identifies a document within a corpus. IDs are assigned by the
// corpus and are stable across snapshots of the same logical document.
type DocID uint64

// Span is a half-open character range [Start, End) into a document's text.
type Span struct {
	Start int
	End   int
}

// Len returns the number of bytes covered by the span.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether s fully contains other.
func (s Span) Contains(other Span) bool {
	return s.Start <= other.Start && other.End <= s.End
}

// Overlaps reports whether the two spans share at least one position.
func (s Span) Overlaps(other Span) bool {
	return s.Start < other.End && other.Start < s.End
}

// Valid reports whether the span is well formed (0 <= Start <= End).
func (s Span) Valid() bool { return 0 <= s.Start && s.Start <= s.End }

func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End) }

// Document is a single unstructured item: a web page, wiki article, email,
// or text file. Title and Source are metadata carried through extraction
// into provenance records.
type Document struct {
	ID     DocID
	Title  string
	Source string // origin URL or path
	Text   string
	Meta   map[string]string
}

// Slice returns the text covered by span, clamped to the document bounds.
func (d *Document) Slice(s Span) string {
	if s.Start < 0 {
		s.Start = 0
	}
	if s.End > len(d.Text) {
		s.End = len(d.Text)
	}
	if s.Start >= s.End {
		return ""
	}
	return d.Text[s.Start:s.End]
}

// Token is a tokenized word with its span in the original text.
type Token struct {
	Text string
	Span Span
}

// Tokenize splits text into word tokens. A token is a maximal run of
// letters/digits (with embedded '.' or '-' kept when flanked by
// alphanumerics, so "D. Smith" yields "D." and "Smith", and "70.5" stays
// whole). Positions refer to byte offsets in the input.
func Tokenize(text string) []Token {
	var toks []Token
	runes := []rune(text)
	// Byte offset tracking: iterate bytes since our corpora are ASCII-heavy
	// but remain correct for multibyte runes.
	byteOff := make([]int, len(runes)+1)
	off := 0
	for i, r := range runes {
		byteOff[i] = off
		off += runeLen(r)
	}
	byteOff[len(runes)] = off

	isWordRune := func(r rune) bool {
		return unicode.IsLetter(r) || unicode.IsDigit(r)
	}
	i := 0
	for i < len(runes) {
		if !isWordRune(runes[i]) {
			i++
			continue
		}
		start := i
		for i < len(runes) {
			r := runes[i]
			if isWordRune(r) {
				i++
				continue
			}
			// Keep '.', '-', ',' inside numbers and abbreviations when the
			// next rune continues the token (e.g. "70.5", "1,024", "D.C").
			if (r == '.' || r == '-' || r == ',' || r == '\'') && i+1 < len(runes) && isWordRune(runes[i+1]) {
				i += 2
				continue
			}
			// Trailing period after a single capital letter is an initial
			// ("D."): keep it attached.
			if r == '.' && i-start == 1 && unicode.IsUpper(runes[start]) {
				i++
			}
			break
		}
		sp := Span{Start: byteOff[start], End: byteOff[i]}
		toks = append(toks, Token{Text: string(runes[start:i]), Span: sp})
	}
	return toks
}

func runeLen(r rune) int {
	switch {
	case r < 0x80:
		return 1
	case r < 0x800:
		return 2
	case r < 0x10000:
		return 3
	default:
		return 4
	}
}

// Sentences splits text into sentence spans using a conservative rule:
// sentences end at '.', '!', '?' or newline boundaries followed by
// whitespace and an uppercase letter (or end of text). Abbreviation-like
// single-capital periods do not terminate sentences.
func Sentences(text string) []Span {
	var out []Span
	start := 0
	rs := []rune(text)
	pos := 0 // byte position
	for i := 0; i < len(rs); i++ {
		r := rs[i]
		w := runeLen(r)
		terminal := false
		switch r {
		case '.', '!', '?':
			// "D. Smith" — single capital before the period is an initial.
			if r == '.' && i >= 1 && unicode.IsUpper(rs[i-1]) && (i < 2 || !unicode.IsLetter(rs[i-2])) {
				terminal = false
			} else if i+1 >= len(rs) {
				terminal = true
			} else if unicode.IsSpace(rs[i+1]) {
				terminal = true
			}
		case '\n':
			if i+1 < len(rs) && rs[i+1] == '\n' {
				terminal = true
			}
		}
		if terminal {
			end := pos + w
			if end > start {
				sp := trimSpan(text, Span{Start: start, End: end})
				if sp.Len() > 0 {
					out = append(out, sp)
				}
			}
			start = pos + w
		}
		pos += w
	}
	if start < len(text) {
		sp := trimSpan(text, Span{Start: start, End: len(text)})
		if sp.Len() > 0 {
			out = append(out, sp)
		}
	}
	return out
}

func trimSpan(text string, s Span) Span {
	for s.Start < s.End && isSpaceByte(text[s.Start]) {
		s.Start++
	}
	for s.End > s.Start && isSpaceByte(text[s.End-1]) {
		s.End--
	}
	return s
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// NormalizeTerm lowercases a token and strips trailing punctuation; it is
// the canonical term form used by the search index and extractors.
func NormalizeTerm(s string) string {
	s = strings.ToLower(s)
	s = strings.TrimFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	return s
}

// Corpus is an in-memory, ordered collection of documents with stable IDs.
// It is safe for concurrent readers once construction is complete.
type Corpus struct {
	docs  []*Document
	byID  map[DocID]*Document
	next  DocID
	bytes int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byID: make(map[DocID]*Document), next: 1}
}

// Add inserts a document, assigning its ID, and returns the stored copy.
func (c *Corpus) Add(d Document) *Document {
	d.ID = c.next
	c.next++
	stored := d
	c.docs = append(c.docs, &stored)
	c.byID[stored.ID] = &stored
	c.bytes += len(stored.Text)
	return &stored
}

// Get returns the document with the given id, or nil.
func (c *Corpus) Get(id DocID) *Document { return c.byID[id] }

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Bytes returns the total text size in bytes.
func (c *Corpus) Bytes() int { return c.bytes }

// Docs returns the documents in insertion order. The returned slice must
// not be modified.
func (c *Corpus) Docs() []*Document { return c.docs }

// FindByTitle returns the first document whose title equals title exactly,
// or nil if none matches.
func (c *Corpus) FindByTitle(title string) *Document {
	for _, d := range c.docs {
		if d.Title == title {
			return d
		}
	}
	return nil
}

// Partition splits the corpus documents into n nearly equal contiguous
// slices, for parallel processing. n must be >= 1.
func (c *Corpus) Partition(n int) [][]*Document {
	if n < 1 {
		n = 1
	}
	if n > len(c.docs) && len(c.docs) > 0 {
		n = len(c.docs)
	}
	parts := make([][]*Document, 0, n)
	if len(c.docs) == 0 {
		return parts
	}
	size := (len(c.docs) + n - 1) / n
	for i := 0; i < len(c.docs); i += size {
		end := i + size
		if end > len(c.docs) {
			end = len(c.docs)
		}
		parts = append(parts, c.docs[i:end])
	}
	return parts
}

// TitlesSorted returns all document titles in lexicographic order; useful
// for deterministic iteration in tests.
func (c *Corpus) TitlesSorted() []string {
	out := make([]string, 0, len(c.docs))
	for _, d := range c.docs {
		out = append(out, d.Title)
	}
	sort.Strings(out)
	return out
}
