package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestWordCount(t *testing.T) {
	c := New(Config{Workers: 4})
	docs := []any{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	mapper := func(item any, emit func(string, any)) error {
		for _, w := range strings.Fields(item.(string)) {
			emit(w, 1)
		}
		return nil
	}
	reducer := func(key string, values []any, emit func(any)) error {
		sum := 0
		for _, v := range values {
			sum += v.(int)
		}
		emit(sum)
		return nil
	}
	pairs, err := c.Run(docs, mapper, reducer, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range pairs {
		counts[p.Key] = p.Value.(int)
	}
	want := map[string]int{"the": 3, "quick": 2, "dog": 2, "brown": 1, "fox": 1, "lazy": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
	// Output is sorted by key.
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key > pairs[i].Key {
			t.Fatal("output not sorted")
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	mapper := func(item any, emit func(string, any)) error {
		n := item.(int)
		emit(fmt.Sprintf("mod%d", n%7), n)
		return nil
	}
	reducer := func(key string, values []any, emit func(any)) error {
		sum := 0
		for _, v := range values {
			sum += v.(int)
		}
		emit(sum)
		return nil
	}
	inputs := make([]any, 200)
	for i := range inputs {
		inputs[i] = i
	}
	var ref []Pair
	for _, workers := range []int{1, 2, 8} {
		c := New(Config{Workers: workers})
		got, err := c.Run(inputs, mapper, reducer, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Key != ref[i].Key || got[i].Value.(int) != ref[i].Value.(int) {
				t.Fatalf("workers=%d: pair %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestFailureInjectionRetries(t *testing.T) {
	c := New(Config{Workers: 4, FailureRate: 0.3, MaxAttempts: 10})
	inputs := make([]any, 100)
	for i := range inputs {
		inputs[i] = i
	}
	mapper := func(item any, emit func(string, any)) error {
		emit("all", 1)
		return nil
	}
	reducer := func(key string, values []any, emit func(any)) error {
		emit(len(values))
		return nil
	}
	pairs, err := c.Run(inputs, mapper, reducer, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Value.(int) != 100 {
		t.Fatalf("with failures injected, result must still be exact: %v", pairs)
	}
	st := c.Stats()
	if st.Failures == 0 || st.Retries == 0 {
		t.Fatalf("expected injected failures, stats = %+v", st)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	c := New(Config{Workers: 2, FailureRate: 1.0, MaxAttempts: 3})
	_, err := c.Run([]any{1}, func(any, func(string, any)) error { return nil },
		func(string, []any, func(any)) error { return nil }, 1)
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("expected ErrTaskFailed, got %v", err)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := New(Config{Workers: 2})
	boom := errors.New("boom")
	_, err := c.Run([]any{1, 2, 3}, func(item any, _ func(string, any)) error {
		if item.(int) == 2 {
			return boom
		}
		return nil
	}, func(string, []any, func(any)) error { return nil }, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("expected map error, got %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	c := New(Config{Workers: 2})
	boom := errors.New("reduce boom")
	_, err := c.Run([]any{1}, func(_ any, emit func(string, any)) error {
		emit("k", 1)
		return nil
	}, func(string, []any, func(any)) error { return boom }, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("expected reduce error, got %v", err)
	}
}

func TestMapOnly(t *testing.T) {
	c := New(Config{Workers: 8})
	inputs := make([]int, 500)
	for i := range inputs {
		inputs[i] = i
	}
	out, err := MapOnly(c, inputs, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapOnlyError(t *testing.T) {
	c := New(Config{Workers: 2})
	boom := errors.New("x")
	_, err := MapOnly(c, []int{1, 2, 3}, func(x int) (int, error) {
		if x == 3 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestMapOnlyWithFailureInjection(t *testing.T) {
	c := New(Config{Workers: 4, FailureRate: 0.4, MaxAttempts: 12})
	inputs := make([]int, 200)
	for i := range inputs {
		inputs[i] = i
	}
	out, err := MapOnly(c, inputs, func(x int) (int, error) { return x + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	c := New(Config{Workers: 4})
	pairs, err := c.Run(nil, func(any, func(string, any)) error { return nil },
		func(string, []any, func(any)) error { return nil }, 0)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty job: %v %v", pairs, err)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := New(Config{})
	if c.Workers() != 4 {
		t.Fatalf("default workers = %d", c.Workers())
	}
}
