// Package cluster implements the paper's physical layer: a Map-Reduce-like
// parallel runtime over a simulated computer cluster. Workers are
// goroutine-backed "nodes"; jobs fan map tasks over input splits, shuffle
// intermediate pairs by partitioned key, and run reduce tasks per
// partition. The runtime supports worker failure injection with task
// re-execution, mirroring the fault model that makes MapReduce suitable
// for the computation-intensive IE/II workloads the paper describes.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pair is an intermediate or final key/value pair.
type Pair struct {
	Key   string
	Value any
}

// MapFunc consumes one input item and emits intermediate pairs.
type MapFunc func(item any, emit func(key string, value any)) error

// ReduceFunc folds all values of one key into output values.
type ReduceFunc func(key string, values []any, emit func(value any)) error

// Config controls a cluster.
type Config struct {
	Workers int // number of worker nodes (default 4)
	// FailureRate is the probability (per task attempt) that a worker
	// "crashes" mid-task; the task is retried on another worker. Injected
	// deterministically from the task counter, not wall-clock randomness.
	FailureRate float64
	// MaxAttempts bounds retries per task (default 4).
	MaxAttempts int
	// StragglerEvery makes every Nth task sleep briefly, simulating slow
	// nodes (0 disables). Used by the speedup experiment to show realistic
	// scaling limits.
	StragglerEvery int
	StragglerDelay time.Duration
}

// Cluster is a simulated compute cluster.
type Cluster struct {
	cfg     Config
	taskSeq atomic.Int64

	statsMu sync.Mutex
	stats   Stats
}

// Stats counts task executions.
type Stats struct {
	MapTasks     int
	ReduceTasks  int
	Failures     int
	Retries      int
	ItemsMapped  int
	PairsShuffed int
}

// New returns a cluster with the given configuration.
func New(cfg Config) *Cluster {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Cluster{cfg: cfg}
}

// Workers returns the configured worker count.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Stats returns a snapshot of execution counters.
func (c *Cluster) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// ErrTaskFailed reports a task that exhausted its retry budget.
var ErrTaskFailed = errors.New("cluster: task exceeded retry budget")

// simulated per-attempt failure: deterministic hash of the attempt number.
func (c *Cluster) attemptFails(taskID int64, attempt int) bool {
	if c.cfg.FailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", taskID, attempt)
	x := float64(h.Sum64()%10000) / 10000.0
	return x < c.cfg.FailureRate
}

// Run executes a MapReduce job: map over inputs, shuffle into partitions,
// reduce each partition. Output pairs are returned sorted by key.
// partitions <= 0 defaults to the worker count.
func (c *Cluster) Run(inputs []any, mapper MapFunc, reducer ReduceFunc, partitions int) ([]Pair, error) {
	if partitions <= 0 {
		partitions = c.cfg.Workers
	}
	inter, err := c.mapPhase(inputs, mapper, partitions)
	if err != nil {
		return nil, err
	}
	return c.reducePhase(inter, reducer)
}

// mapPhase runs map tasks on the worker pool, partitioning emissions.
func (c *Cluster) mapPhase(inputs []any, mapper MapFunc, partitions int) ([]map[string][]any, error) {
	type task struct {
		idx  int
		item any
	}
	tasks := make(chan task, len(inputs))
	for i, in := range inputs {
		tasks <- task{i, in}
	}
	close(tasks)

	// Each worker accumulates its own partitioned output; merged after.
	workerParts := make([][]map[string][]any, c.cfg.Workers)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < c.cfg.Workers; w++ {
		parts := make([]map[string][]any, partitions)
		for p := range parts {
			parts[p] = map[string][]any{}
		}
		workerParts[w] = parts
		wg.Add(1)
		go func(w int, parts []map[string][]any) {
			defer wg.Done()
			for tk := range tasks {
				if firstErr.Load() != nil {
					return
				}
				if err := c.runMapTask(tk.idx, tk.item, mapper, parts, partitions); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w, parts)
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	// Merge worker-local partitions.
	merged := make([]map[string][]any, partitions)
	for p := 0; p < partitions; p++ {
		merged[p] = map[string][]any{}
	}
	shuffled := 0
	for _, parts := range workerParts {
		for p, m := range parts {
			for k, vs := range m {
				merged[p][k] = append(merged[p][k], vs...)
				shuffled += len(vs)
			}
		}
	}
	c.statsMu.Lock()
	c.stats.PairsShuffed += shuffled
	c.statsMu.Unlock()
	return merged, nil
}

func (c *Cluster) runMapTask(idx int, item any, mapper MapFunc, parts []map[string][]any, partitions int) error {
	taskID := c.taskSeq.Add(1)
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if c.cfg.StragglerEvery > 0 && int(taskID)%c.cfg.StragglerEvery == 0 {
			time.Sleep(c.cfg.StragglerDelay)
		}
		if c.attemptFails(taskID, attempt) {
			c.statsMu.Lock()
			c.stats.Failures++
			c.stats.Retries++
			c.statsMu.Unlock()
			continue
		}
		// Buffer emissions so a failed attempt leaves no partial output.
		local := map[string][]any{}
		err := mapper(item, func(key string, value any) {
			local[key] = append(local[key], value)
		})
		if err != nil {
			return fmt.Errorf("cluster: map task %d: %w", idx, err)
		}
		for k, vs := range local {
			p := Partition(k, partitions)
			parts[p][k] = append(parts[p][k], vs...)
		}
		c.statsMu.Lock()
		c.stats.MapTasks++
		c.stats.ItemsMapped++
		c.statsMu.Unlock()
		return nil
	}
	return fmt.Errorf("%w: map task %d", ErrTaskFailed, idx)
}

func (c *Cluster) reducePhase(parts []map[string][]any, reducer ReduceFunc) ([]Pair, error) {
	type result struct {
		pairs []Pair
		err   error
	}
	results := make(chan result, len(parts))
	sem := make(chan struct{}, c.cfg.Workers)
	for _, part := range parts {
		part := part
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			pairs, err := c.runReducePartition(part, reducer)
			results <- result{pairs, err}
		}()
	}
	var out []Pair
	for range parts {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pairs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func (c *Cluster) runReducePartition(part map[string][]any, reducer ReduceFunc) ([]Pair, error) {
	taskID := c.taskSeq.Add(1)
	keys := make([]string, 0, len(part))
	for k := range part {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if c.attemptFails(taskID, attempt) {
			c.statsMu.Lock()
			c.stats.Failures++
			c.stats.Retries++
			c.statsMu.Unlock()
			continue
		}
		var pairs []Pair
		failed := false
		var taskErr error
		for _, k := range keys {
			err := reducer(k, part[k], func(v any) {
				pairs = append(pairs, Pair{Key: k, Value: v})
			})
			if err != nil {
				failed = true
				taskErr = fmt.Errorf("cluster: reduce key %q: %w", k, err)
				break
			}
		}
		if failed {
			return nil, taskErr
		}
		c.statsMu.Lock()
		c.stats.ReduceTasks++
		c.statsMu.Unlock()
		return pairs, nil
	}
	return nil, fmt.Errorf("%w: reduce partition", ErrTaskFailed)
}

func keyHash(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// Partition maps a shuffle key to one of n partitions with the same
// FNV-64a hash the map phase shuffles by. Exported so layers that place
// data by key (the shard router) agree with the extraction shuffle: rows
// reduced into partition p under n partitions land on shard p when the
// shard count equals the shuffle width, and are entity-contiguous either
// way. n <= 1 always yields partition 0.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(keyHash(key) % uint64(n))
}

// MakespanModel parameterizes SimulateMakespan: per-task scheduling
// overhead and a serial fraction (job setup plus result merge) that does
// not parallelize — the Amdahl term that caps speedup.
type MakespanModel struct {
	PerTaskOverhead time.Duration // scheduling/dispatch cost added to every task
	SerialSetup     time.Duration // job submission, split computation
	MergePerTask    time.Duration // serial merge cost per task's output
}

// SimulateMakespan computes the wall-clock a cluster of the given worker
// count would need for tasks with the given costs, using greedy
// least-loaded list scheduling. The host running this reproduction may
// have a single CPU, so measured wall-clock cannot exhibit parallel
// speedup; this simulation substitutes for the multi-node testbed (see
// DESIGN.md) while using *measured* per-task costs as input.
func SimulateMakespan(taskCosts []time.Duration, workers int, m MakespanModel) time.Duration {
	if workers < 1 {
		workers = 1
	}
	loads := make([]time.Duration, workers)
	for _, c := range taskCosts {
		// Least-loaded worker takes the next task.
		best := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		loads[best] += c + m.PerTaskOverhead
	}
	maxLoad := time.Duration(0)
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	serial := m.SerialSetup + time.Duration(len(taskCosts))*m.MergePerTask
	return serial + maxLoad
}

// MapOnly runs just a parallel map over inputs, returning one output per
// input in input order. It is the common fan-out primitive for extraction
// jobs that need no shuffle.
func MapOnly[T, R any](c *Cluster, inputs []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(inputs))
	errs := make([]error, len(inputs))
	tasks := make(chan int, len(inputs))
	for i := range inputs {
		tasks <- i
	}
	close(tasks)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				taskID := c.taskSeq.Add(1)
				var lastErr error
				done := false
				for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
					if c.attemptFails(taskID, attempt) {
						c.statsMu.Lock()
						c.stats.Failures++
						c.stats.Retries++
						c.statsMu.Unlock()
						continue
					}
					r, err := fn(inputs[i])
					if err != nil {
						lastErr = err
						done = true
						break
					}
					out[i] = r
					c.statsMu.Lock()
					c.stats.MapTasks++
					c.statsMu.Unlock()
					done = true
					break
				}
				if !done {
					lastErr = fmt.Errorf("%w: map-only task %d", ErrTaskFailed, i)
				}
				errs[i] = lastErr
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
