// Package schema is the processing layer's schema manager (Figure 1,
// Part IV). Because the paper's DGE model generates structure
// incrementally and best-effort, the schema of the derived structure
// evolves: attributes appear when first extracted, get renamed when
// integration discovers matches, and change type as evidence accumulates.
// This package versions those schemas and migrates extracted relations
// across versions.
package schema

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// FieldType is the inferred type of an attribute.
type FieldType string

const (
	TypeString FieldType = "string"
	TypeInt    FieldType = "int"
	TypeFloat  FieldType = "float"
)

// Attribute is one evolving attribute.
type Attribute struct {
	Name string
	Type FieldType
	// AddedIn is the schema version that introduced the attribute.
	AddedIn int
}

// Version is an immutable schema snapshot.
type Version struct {
	Num        int
	Attributes []Attribute
	// Change describes the evolution step that produced this version.
	Change string
}

// Evolver manages an evolving schema with full version history. Safe for
// concurrent use.
type Evolver struct {
	mu       sync.RWMutex
	name     string
	versions []Version
	renames  map[string]string // old name -> new name (transitively applied)
}

// NewEvolver starts a schema with version 1 and no attributes.
func NewEvolver(name string) *Evolver {
	return &Evolver{
		name:     name,
		versions: []Version{{Num: 1, Change: "initial"}},
		renames:  map[string]string{},
	}
}

// Name returns the schema name.
func (e *Evolver) Name() string { return e.name }

// Current returns the latest version.
func (e *Evolver) Current() Version {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.versions[len(e.versions)-1]
}

// At returns version num, or false.
func (e *Evolver) At(num int) (Version, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if num < 1 || num > len(e.versions) {
		return Version{}, false
	}
	return e.versions[num-1], true
}

// History returns all versions oldest-first.
func (e *Evolver) History() []Version {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]Version(nil), e.versions...)
}

func (e *Evolver) pushLocked(attrs []Attribute, change string) Version {
	v := Version{Num: len(e.versions) + 1, Attributes: attrs, Change: change}
	e.versions = append(e.versions, v)
	return v
}

func cloneAttrs(attrs []Attribute) []Attribute {
	return append([]Attribute(nil), attrs...)
}

// AddAttribute introduces a new attribute (incremental best-effort
// extraction discovers attributes over time).
func (e *Evolver) AddAttribute(name string, t FieldType) (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.versions[len(e.versions)-1]
	for _, a := range cur.Attributes {
		if a.Name == name {
			return Version{}, fmt.Errorf("schema: attribute %s already exists", name)
		}
	}
	attrs := cloneAttrs(cur.Attributes)
	attrs = append(attrs, Attribute{Name: name, Type: t, AddedIn: cur.Num + 1})
	return e.pushLocked(attrs, fmt.Sprintf("add %s:%s", name, t)), nil
}

// RenameAttribute renames an attribute (integration discovered that two
// names mean the same thing and picked a canonical one).
func (e *Evolver) RenameAttribute(oldName, newName string) (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.versions[len(e.versions)-1]
	idx := -1
	for i, a := range cur.Attributes {
		if a.Name == oldName {
			idx = i
		}
		if a.Name == newName {
			return Version{}, fmt.Errorf("schema: attribute %s already exists", newName)
		}
	}
	if idx < 0 {
		return Version{}, fmt.Errorf("schema: no attribute %s", oldName)
	}
	attrs := cloneAttrs(cur.Attributes)
	attrs[idx].Name = newName
	e.renames[oldName] = newName
	return e.pushLocked(attrs, fmt.Sprintf("rename %s -> %s", oldName, newName)), nil
}

// ChangeType retypes an attribute (e.g. "population" seen as strings
// first, then recognized as integers).
func (e *Evolver) ChangeType(name string, t FieldType) (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.versions[len(e.versions)-1]
	idx := -1
	for i, a := range cur.Attributes {
		if a.Name == name {
			idx = i
		}
	}
	if idx < 0 {
		return Version{}, fmt.Errorf("schema: no attribute %s", name)
	}
	if cur.Attributes[idx].Type == t {
		return cur, nil
	}
	attrs := cloneAttrs(cur.Attributes)
	attrs[idx].Type = t
	return e.pushLocked(attrs, fmt.Sprintf("retype %s to %s", name, t)), nil
}

// DropAttribute removes an attribute.
func (e *Evolver) DropAttribute(name string) (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.versions[len(e.versions)-1]
	attrs := make([]Attribute, 0, len(cur.Attributes))
	found := false
	for _, a := range cur.Attributes {
		if a.Name == name {
			found = true
			continue
		}
		attrs = append(attrs, a)
	}
	if !found {
		return Version{}, fmt.Errorf("schema: no attribute %s", name)
	}
	return e.pushLocked(attrs, fmt.Sprintf("drop %s", name)), nil
}

// Canonical maps an attribute name through all recorded renames.
func (e *Evolver) Canonical(name string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	seen := map[string]bool{}
	for {
		next, ok := e.renames[name]
		if !ok || seen[name] {
			return name
		}
		seen[name] = true
		name = next
	}
}

// Record is a loosely-typed extracted record keyed by attribute name.
type Record map[string]string

// Migrate rewrites a record written under an older version to the current
// schema: renamed attributes move to their canonical names, dropped
// attributes are discarded, and values are checked against current types
// (failures keep the value but report it).
func (e *Evolver) Migrate(r Record) (Record, []error) {
	cur := e.Current()
	byName := map[string]FieldType{}
	for _, a := range cur.Attributes {
		byName[a.Name] = a.Type
	}
	out := Record{}
	var errs []error
	// Deterministic iteration for reproducible error lists.
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := r[k]
		name := e.Canonical(k)
		t, ok := byName[name]
		if !ok {
			continue // dropped attribute
		}
		if err := checkType(v, t); err != nil {
			errs = append(errs, fmt.Errorf("schema: %s: %w", name, err))
		}
		out[name] = v
	}
	return out, errs
}

func checkType(v string, t FieldType) error {
	switch t {
	case TypeInt:
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			return fmt.Errorf("%q is not an int", v)
		}
	case TypeFloat:
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("%q is not a float", v)
		}
	}
	return nil
}

// InferType guesses the tightest type for a sample of values.
func InferType(values []string) FieldType {
	if len(values) == 0 {
		return TypeString
	}
	allInt, allFloat := true, true
	for _, v := range values {
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			allInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			allFloat = false
		}
	}
	switch {
	case allInt:
		return TypeInt
	case allFloat:
		return TypeFloat
	default:
		return TypeString
	}
}

// Diff summarizes the evolution steps between two versions.
func (e *Evolver) Diff(from, to int) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if from < 1 || to > len(e.versions) || from > to {
		return nil, fmt.Errorf("schema: bad version range %d..%d", from, to)
	}
	var out []string
	for i := from; i < to; i++ {
		out = append(out, e.versions[i].Change)
	}
	return out, nil
}
