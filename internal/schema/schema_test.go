package schema

import (
	"testing"
)

func TestEvolutionLifecycle(t *testing.T) {
	e := NewEvolver("cities")
	if e.Name() != "cities" || e.Current().Num != 1 {
		t.Fatalf("fresh evolver: %v", e.Current())
	}
	v2, err := e.AddAttribute("temperature", TypeFloat)
	if err != nil || v2.Num != 2 || len(v2.Attributes) != 1 {
		t.Fatalf("add: %v %v", v2, err)
	}
	if _, err := e.AddAttribute("temperature", TypeFloat); err == nil {
		t.Fatal("duplicate add must fail")
	}
	v3, err := e.AddAttribute("location", TypeString)
	if err != nil || v3.Num != 3 {
		t.Fatalf("add 2: %v %v", v3, err)
	}
	// Integration discovered "location" should be "address".
	v4, err := e.RenameAttribute("location", "address")
	if err != nil || v4.Num != 4 {
		t.Fatalf("rename: %v %v", v4, err)
	}
	if _, err := e.RenameAttribute("ghost", "x"); err == nil {
		t.Fatal("rename of missing must fail")
	}
	if _, err := e.RenameAttribute("temperature", "address"); err == nil {
		t.Fatal("rename onto existing must fail")
	}
	if got := e.Canonical("location"); got != "address" {
		t.Fatalf("Canonical(location) = %q", got)
	}
	if got := e.Canonical("never-renamed"); got != "never-renamed" {
		t.Fatalf("Canonical passthrough = %q", got)
	}
	// Retype.
	v5, err := e.ChangeType("temperature", TypeString)
	if err != nil || v5.Num != 5 {
		t.Fatalf("retype: %v %v", v5, err)
	}
	same, err := e.ChangeType("temperature", TypeString)
	if err != nil || same.Num != 5 {
		t.Fatalf("no-op retype should not bump version: %v", same)
	}
	if _, err := e.ChangeType("ghost", TypeInt); err == nil {
		t.Fatal("retype of missing must fail")
	}
	// Drop.
	v6, err := e.DropAttribute("temperature")
	if err != nil || len(v6.Attributes) != 1 {
		t.Fatalf("drop: %v %v", v6, err)
	}
	if _, err := e.DropAttribute("temperature"); err == nil {
		t.Fatal("double drop must fail")
	}
	// History intact.
	hist := e.History()
	if len(hist) != 6 {
		t.Fatalf("history has %d versions", len(hist))
	}
	if v, ok := e.At(3); !ok || len(v.Attributes) != 2 {
		t.Fatalf("At(3): %v %v", v, ok)
	}
	if _, ok := e.At(0); ok {
		t.Fatal("At(0) should fail")
	}
	if _, ok := e.At(99); ok {
		t.Fatal("At(99) should fail")
	}
	diff, err := e.Diff(1, 4)
	if err != nil || len(diff) != 3 || diff[2] != "rename location -> address" {
		t.Fatalf("diff: %v %v", diff, err)
	}
	if _, err := e.Diff(4, 1); err == nil {
		t.Fatal("inverted diff range must fail")
	}
}

func TestRenameChain(t *testing.T) {
	e := NewEvolver("t")
	e.AddAttribute("a", TypeString)
	e.RenameAttribute("a", "b")
	e.RenameAttribute("b", "c")
	if got := e.Canonical("a"); got != "c" {
		t.Fatalf("chained canonical = %q", got)
	}
}

func TestMigrate(t *testing.T) {
	e := NewEvolver("cities")
	e.AddAttribute("location", TypeString)
	e.AddAttribute("population", TypeInt)
	e.AddAttribute("junk", TypeString)
	e.RenameAttribute("location", "address")
	e.DropAttribute("junk")

	rec := Record{"location": "Madison, WI", "population": "233209", "junk": "zzz"}
	out, errs := e.Migrate(rec)
	if len(errs) != 0 {
		t.Fatalf("migrate errors: %v", errs)
	}
	if out["address"] != "Madison, WI" {
		t.Fatalf("rename not applied: %v", out)
	}
	if _, ok := out["junk"]; ok {
		t.Fatal("dropped attribute survived")
	}
	if out["population"] != "233209" {
		t.Fatalf("population: %v", out)
	}
	// Type violation reported but value preserved.
	bad, errs := e.Migrate(Record{"population": "many"})
	if len(errs) != 1 {
		t.Fatalf("expected type error, got %v", errs)
	}
	if bad["population"] != "many" {
		t.Fatal("value should be preserved for HI review")
	}
}

func TestInferType(t *testing.T) {
	if got := InferType([]string{"1", "42", "-7"}); got != TypeInt {
		t.Fatalf("int inference: %v", got)
	}
	if got := InferType([]string{"1.5", "2", "-0.25"}); got != TypeFloat {
		t.Fatalf("float inference: %v", got)
	}
	if got := InferType([]string{"1", "hello"}); got != TypeString {
		t.Fatalf("string inference: %v", got)
	}
	if got := InferType(nil); got != TypeString {
		t.Fatalf("empty inference: %v", got)
	}
}

func TestAddedInVersions(t *testing.T) {
	e := NewEvolver("t")
	e.AddAttribute("a", TypeString)
	e.AddAttribute("b", TypeInt)
	cur := e.Current()
	if cur.Attributes[0].AddedIn != 2 || cur.Attributes[1].AddedIn != 3 {
		t.Fatalf("AddedIn: %+v", cur.Attributes)
	}
}
