package experiments

import (
	"strings"
	"testing"
)

// The experiment suite's shapes are the reproduction's claims; these tests
// pin them at small parameterizations.

func TestE1StructuredAnswersExactly(t *testing.T) {
	res, series, err := RunE1([]int{100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results: %v", res)
	}
	if res[0].KeywordCanAnswer {
		t.Fatal("keyword search must not answer")
	}
	if res[0].StructuredError > 0.01 {
		t.Fatalf("structured error %v", res[0].StructuredError)
	}
	if !strings.Contains(series.String(), "E1") {
		t.Fatal("series rendering")
	}
}

func TestE1RankingAblationFindsMadison(t *testing.T) {
	s, err := E1RankingAblation(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows: %v", s.Rows)
	}
	// BM25 should rank the Madison page first.
	if s.Rows[0][1] != "1" {
		t.Fatalf("BM25 rank: %v", s.Rows[0])
	}
}

func TestE2IncrementalFaster(t *testing.T) {
	res, _, err := RunE2([]int{150}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].SpeedupFactor < 1.0 {
		t.Fatalf("incremental should not be slower: %v", res[0].SpeedupFactor)
	}
	if res[0].CoverageAtAnswer <= 0 {
		t.Fatal("coverage must be reported")
	}
}

func TestE3FeedbackLiftsF1(t *testing.T) {
	res, _, err := RunE3([]int{0, 200}, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].F1 != res[0].Baseline {
		t.Fatalf("budget 0 must equal baseline: %v vs %v", res[0].F1, res[0].Baseline)
	}
	if res[1].F1 <= res[0].F1 {
		t.Fatalf("feedback did not lift F1: %v -> %v", res[0].F1, res[1].F1)
	}
}

func TestE4CrowdOrdering(t *testing.T) {
	res, _, err := RunE4(150, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results: %v", res)
	}
	single, flat, weighted := res[0].F1, res[1].F1, res[2].F1
	if weighted < flat-0.02 {
		t.Fatalf("reputation weighting should not hurt: flat %v, weighted %v", flat, weighted)
	}
	if flat < single-0.05 {
		t.Fatalf("crowd should not be clearly worse than one noisy user: single %v, flat %v", single, flat)
	}
}

func TestE5AccuracyMonotoneInK(t *testing.T) {
	res, _, err := RunE5([]int{1, 3, 10}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Accuracy > res[1].Accuracy || res[1].Accuracy > res[2].Accuracy {
		t.Fatalf("accuracy@k must be monotone: %v", res)
	}
	if res[2].Accuracy < 0.9 {
		t.Fatalf("accuracy@10 too low: %v", res[2].Accuracy)
	}
}

func TestE6SimulatedSpeedup(t *testing.T) {
	res, _, err := RunE6([]int{1, 4}, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Speedup < 2 {
		t.Fatalf("4 workers should give >= 2x simulated speedup, got %v", res[1].Speedup)
	}
	if res[0].Fields != res[1].Fields {
		t.Fatal("worker count must not change extraction output")
	}
}

func TestE7SavingsDecreaseWithChurn(t *testing.T) {
	res, _, err := RunE7([]float64{0.01, 0.2}, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Savings <= res[1].Savings {
		t.Fatalf("low churn must save more: %v vs %v", res[0].Savings, res[1].Savings)
	}
	if res[0].Savings < 5 {
		t.Fatalf("1%% churn savings too low: %v", res[0].Savings)
	}
}

func TestE8ConservedUnderConcurrency(t *testing.T) {
	res, _, err := RunE8([]int{8}, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Conserved {
		t.Fatal("serializability invariant violated")
	}
	if res[0].Throughput <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestE8IndexAblationSpeedup(t *testing.T) {
	s, err := E8IndexAblation([]int{2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 1 {
		t.Fatalf("rows: %v", s.Rows)
	}
}

func TestE9DebuggerCatchesCorruption(t *testing.T) {
	res, _, err := RunE9([]float64{0.1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Recall < 0.95 {
		t.Fatalf("recall %v", res[0].Recall)
	}
	if res[0].Precision < 0.8 {
		t.Fatalf("precision %v", res[0].Precision)
	}
}

func TestE10SameResultsEveryConfig(t *testing.T) {
	res, _, err := RunE10(200, 7)
	if err != nil {
		t.Fatal(err) // RunE10 itself errors when configs diverge
	}
	if len(res) != 5 {
		t.Fatalf("configs: %v", res)
	}
	for _, r := range res[1:] {
		if r.Rows != res[0].Rows {
			t.Fatalf("row counts diverge: %v", res)
		}
	}
	// The no-prefilter config must process more documents.
	if res[1].Docs <= res[0].Docs {
		t.Fatalf("prefilter had no effect: %v vs %v docs", res[0].Docs, res[1].Docs)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{
		ID: "EX", Title: "t", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := s.String()
	for _, want := range []string{"== EX: t ==", "claim: c", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
