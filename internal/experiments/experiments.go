// Package experiments implements the E1-E10 experiment suite from
// DESIGN.md: each function reproduces one claim of the paper as a
// measured result. The benchmark harness (bench_test.go) and the
// benchrunner binary both call into this package, so the printed tables
// and the testing.B benchmarks always agree.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Series is one experiment's output: a header and rows of columns, shaped
// like the table the paper would have printed.
type Series struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
}

// String renders the series as an aligned text table.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", s.ID, s.Title)
	fmt.Fprintf(&b, "claim: %s\n", s.Claim)
	widths := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		widths[i] = len(c)
	}
	for _, row := range s.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(s.Columns)
	for _, row := range s.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1s(v float64) string { return fmt.Sprintf("%.1f", v) }
func d2(v time.Duration) string {
	switch {
	case v >= time.Second:
		return fmt.Sprintf("%.2fs", v.Seconds())
	case v >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(v.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dus", v.Microseconds())
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
