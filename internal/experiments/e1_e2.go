package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/synth"
	"repro/internal/uql"
)

// E1Result is one corpus-size point of experiment E1.
type E1Result struct {
	Docs             int
	KeywordLatency   time.Duration // per query
	PipelineLatency  time.Duration // one-time extract+store
	QueryLatency     time.Duration // per structured query after extraction
	KeywordCanAnswer bool
	StructuredError  float64 // |answer - truth|
}

// RunE1 contrasts keyword search with extract-then-query on the paper's
// §2 question at several corpus sizes.
func RunE1(sizes []int, seed int64) ([]E1Result, *Series, error) {
	var out []E1Result
	s := &Series{
		ID:      "E1",
		Title:   "structured vs keyword answering (§2 Madison query)",
		Claim:   "keyword search returns pages but cannot compute the average; extract-then-query answers exactly",
		Columns: []string{"docs", "kw latency", "kw answers?", "extract once", "sql latency", "abs error"},
	}
	for _, n := range sizes {
		corpus, truth := synth.Generate(synth.Config{
			Seed: seed, Cities: n / 2, People: n / 5, Filler: n - n/2 - (n/5)*2, MentionsPerPerson: 2,
		})
		sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
		if err != nil {
			return nil, nil, err
		}
		query := "average March September temperature Madison Wisconsin"

		t0 := time.Now()
		hits, err := sys.KeywordSearch(context.Background(), query, 10)
		if err != nil {
			return nil, nil, err
		}
		kwLat := time.Since(t0)
		_ = hits

		t0 = time.Now()
		if _, err := sys.Generate(context.Background(), `
			EXTRACT temperature FROM docs USING city KIND city INTO temps;
			STORE temps INTO TABLE extracted;
		`, uql.Options{}); err != nil {
			return nil, nil, err
		}
		pipeLat := time.Since(t0)

		t0 = time.Now()
		ans, err := sys.AskGuided(context.Background(), query, 3)
		if err != nil {
			return nil, nil, err
		}
		qLat := time.Since(t0)
		got, _ := core.AverageFromRows(ans.Answer)
		want := truth.CityTruth("Madison, Wisconsin").AvgTemp(2, 8)
		r := E1Result{
			Docs: corpus.Len(), KeywordLatency: kwLat, PipelineLatency: pipeLat,
			QueryLatency: qLat, KeywordCanAnswer: false,
			StructuredError: math.Abs(got - want),
		}
		out = append(out, r)
		s.Rows = append(s.Rows, []string{
			itoa(r.Docs), d2(r.KeywordLatency), "no", d2(r.PipelineLatency),
			d2(r.QueryLatency), fmt.Sprintf("%.4f", r.StructuredError),
		})
	}
	return out, s, nil
}

// E1RankingAblation compares BM25 with TF-IDF on locating the Madison page
// (a sub-experiment: even the better ranking only finds pages).
func E1RankingAblation(seed int64) (*Series, error) {
	corpus, _ := synth.Generate(synth.Config{Seed: seed, Cities: 50, People: 20, Filler: 40, MentionsPerPerson: 2})
	idx := search.BuildIndex(corpus)
	s := &Series{
		ID:      "E1b",
		Title:   "ranking ablation: BM25 vs TF-IDF (rank of the Madison page)",
		Claim:   "ranking quality moves the right page up, but no ranking computes the answer",
		Columns: []string{"ranking", "rank of Madison", "top-1 title"},
	}
	for _, rk := range []struct {
		name string
		mode search.Ranking
	}{{"BM25", search.BM25}, {"TFIDF", search.TFIDF}} {
		hits := idx.Search("average March September temperature Madison Wisconsin", 20, rk.mode)
		rank := -1
		for i, h := range hits {
			if h.Title == "Madison, Wisconsin" {
				rank = i + 1
				break
			}
		}
		top := "(none)"
		if len(hits) > 0 {
			top = hits[0].Title
		}
		s.Rows = append(s.Rows, []string{rk.name, itoa(rank), top})
	}
	return s, nil
}

// E2Result is one point of the incremental-vs-one-shot experiment.
type E2Result struct {
	Docs             int
	OneShot          time.Duration // extract everything, then answer
	Incremental      time.Duration // extract only what the query demands
	SpeedupFactor    float64
	CoverageAtAnswer float64
}

// RunE2 measures time-to-first-answer for one-shot whole-corpus extraction
// versus demand-driven incremental extraction (§3.2).
func RunE2(sizes []int, seed int64) ([]E2Result, *Series, error) {
	var out []E2Result
	s := &Series{
		ID:      "E2",
		Title:   "incremental best-effort vs one-shot extraction (time to first answer)",
		Claim:   "extracting only the demanded attribute over the demanded partition answers much sooner",
		Columns: []string{"docs", "one-shot", "incremental", "speedup", "coverage@answer"},
	}
	for _, n := range sizes {
		cfg := synth.Config{Seed: seed, Cities: n / 2, People: n / 5, Filler: n - n/2 - (n/5)*2, MentionsPerPerson: 2}

		// One-shot: extract all attributes from all documents, then ask.
		corpus, _ := synth.Generate(cfg)
		sys1, err := core.New(core.Config{Corpus: corpus})
		if err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		if _, err := sys1.Generate(context.Background(), `
			EXTRACT all FROM docs USING city INTO facts;
			STORE facts INTO TABLE extracted;
		`, uql.Options{}); err != nil {
			return nil, nil, err
		}
		if _, err := sys1.AskGuided(context.Background(), "average temperature Madison Wisconsin", 1); err != nil {
			return nil, nil, err
		}
		oneShot := time.Since(t0)

		// Incremental: plan lazily, demand temperature, run the minimum.
		corpus2, _ := synth.Generate(cfg)
		sys2, err := core.New(core.Config{Corpus: corpus2})
		if err != nil {
			return nil, nil, err
		}
		t0 = time.Now()
		if err := sys2.PlanIncremental(context.Background(), "city", []string{"temperature", "population", "founded"}, 16); err != nil {
			return nil, nil, err
		}
		sys2.Demand(context.Background(), "temperature", 10)
		if _, err := sys2.ExtractPending(context.Background(), "city", 16); err != nil {
			return nil, nil, err
		}
		if _, err := sys2.AskGuided(context.Background(), "average temperature Madison Wisconsin", 1); err != nil {
			return nil, nil, err
		}
		incr := time.Since(t0)
		cov := sys2.Coverage("temperature")

		r := E2Result{
			Docs: corpus.Len(), OneShot: oneShot, Incremental: incr,
			SpeedupFactor: float64(oneShot) / float64(incr), CoverageAtAnswer: cov,
		}
		out = append(out, r)
		s.Rows = append(s.Rows, []string{
			itoa(r.Docs), d2(r.OneShot), d2(r.Incremental), f2(r.SpeedupFactor) + "x", f2(r.CoverageAtAnswer),
		})
	}
	return out, s, nil
}
