package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/doc"
	"repro/internal/extract"
	"repro/internal/rdbms"
	"repro/internal/synth"
	"repro/internal/vstore"
)

// E6Result is one worker-count point of the cluster speedup experiment.
type E6Result struct {
	Workers  int
	Makespan time.Duration // simulated cluster wall-clock
	Speedup  float64
	Fields   int
}

// RunE6 measures extraction cost per document on the host, then simulates
// the cluster makespan at each worker count (§4: "IE and II are often
// very computation intensive ... we need parallel processing in the
// physical layer"). Measured per-task costs feed a list-scheduling
// simulation because the reproduction host may be a single-CPU machine on
// which real wall-clock cannot show parallelism (DESIGN.md substitution).
func RunE6(workerCounts []int, docsN int, seed int64) ([]E6Result, *Series, error) {
	corpus, _ := synth.Generate(synth.Config{
		Seed: seed, Cities: docsN / 2, People: docsN / 10, Filler: docsN / 3, MentionsPerPerson: 2,
	})
	pipeline := extract.DefaultCityPipeline()
	docs := corpus.Docs()

	// Measure the true per-document extraction cost (and verify the
	// parallel runtime produces identical output along the way).
	costs := make([]time.Duration, len(docs))
	totalFields := 0
	for i, d := range docs {
		t0 := time.Now()
		totalFields += len(pipeline.ExtractDoc(d))
		costs[i] = time.Since(t0)
	}
	c := cluster.New(cluster.Config{Workers: 4})
	fieldCounts, err := cluster.MapOnly(c, docs, func(d *doc.Document) (int, error) {
		return len(pipeline.ExtractDoc(d)), nil
	})
	if err != nil {
		return nil, nil, err
	}
	parTotal := 0
	for _, n := range fieldCounts {
		parTotal += n
	}
	if parTotal != totalFields {
		return nil, nil, fmt.Errorf("E6: parallel extraction diverged: %d vs %d fields", parTotal, totalFields)
	}

	model := cluster.MakespanModel{
		PerTaskOverhead: 20 * time.Microsecond,
		SerialSetup:     2 * time.Millisecond,
		MergePerTask:    2 * time.Microsecond,
	}
	s := &Series{
		ID:      "E6",
		Title:   fmt.Sprintf("cluster speedup for extraction (%d documents, measured costs + simulated makespan)", corpus.Len()),
		Claim:   "extraction parallelizes near-linearly until the serial fraction dominates",
		Columns: []string{"workers", "makespan", "speedup", "fields"},
	}
	var out []E6Result
	var base time.Duration
	for _, w := range workerCounts {
		mk := cluster.SimulateMakespan(costs, w, model)
		if w == workerCounts[0] {
			base = mk
		}
		sp := float64(base) / float64(mk)
		out = append(out, E6Result{Workers: w, Makespan: mk, Speedup: sp, Fields: totalFields})
		s.Rows = append(s.Rows, []string{itoa(w), d2(mk), f2(sp) + "x", itoa(totalFields)})
	}
	return out, s, nil
}

// E7Result is one churn point of the snapshot-storage experiment.
type E7Result struct {
	ChurnPct  float64
	Snapshots int
	RawMB     float64
	StoredMB  float64
	Savings   float64
}

// RunE7 measures diff-based snapshot storage against full-snapshot storage
// over simulated daily crawls (§4 storage layer: Subversion-like store).
func RunE7(churns []float64, snapshots int, seed int64) ([]E7Result, *Series, error) {
	s := &Series{
		ID:      "E7",
		Title:   fmt.Sprintf("versioned snapshot storage over %d daily crawls", snapshots),
		Claim:   "storing diffs across overlapping snapshots saves space roughly 1/churn-fold",
		Columns: []string{"daily churn", "raw MB", "stored MB", "savings"},
	}
	var out []E7Result
	for _, churn := range churns {
		corpus, _ := synth.Generate(synth.Config{Seed: seed, Cities: 60, People: 20, Filler: 40, MentionsPerPerson: 2})
		store := vstore.NewStore()
		texts := map[string]string{}
		for _, d := range corpus.Docs() {
			texts[d.Title] = d.Text
		}
		store.Commit(texts)
		current := texts
		for day := 1; day < snapshots; day++ {
			next := map[string]string{}
			// Re-generate churn against the current text set.
			i := 0
			for title, text := range current {
				if float64(i%100)/100 < churn {
					text += fmt.Sprintf("\nDaily update %d for %s.\n", day, title)
				}
				next[title] = text
				i++
			}
			store.Commit(next)
			current = next
		}
		if err := store.Verify(); err != nil {
			return nil, nil, err
		}
		st := store.Stats()
		r := E7Result{
			ChurnPct: churn * 100, Snapshots: snapshots,
			RawMB:    float64(st.RawBytes) / (1 << 20),
			StoredMB: float64(st.StoredBytes()) / (1 << 20),
			Savings:  st.SavingsRatio(),
		}
		out = append(out, r)
		s.Rows = append(s.Rows, []string{
			f1s(r.ChurnPct) + "%", f2(r.RawMB), f2(r.StoredMB), f1s(r.Savings) + "x",
		})
	}
	return out, s, nil
}

// E8Result is one concurrency point of the RDBMS editing experiment.
type E8Result struct {
	Editors    int
	Ops        int
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	Deadlocks  int64
	Conserved  bool
}

// RunE8 measures concurrent-editing throughput and correctness in the
// final-structure RDBMS: editors transfer values between rows under
// strict 2PL; the invariant (total conserved) verifies serializability,
// and a crash-recovery drill verifies durability.
func RunE8(editorCounts []int, opsPerEditor int, seed int64) ([]E8Result, *Series, error) {
	s := &Series{
		ID:      "E8",
		Title:   "concurrent editing of the final structure (strict 2PL RDBMS)",
		Claim:   "row-level locking sustains concurrent editors with correct (conserved) results",
		Columns: []string{"editors", "ops", "elapsed", "ops/sec", "deadlock victims", "invariant"},
	}
	var out []E8Result
	for _, editors := range editorCounts {
		db, err := rdbms.Open(rdbms.NewMemPager(), rdbms.NewMemWAL(), rdbms.Options{BufferPages: 256})
		if err != nil {
			return nil, nil, err
		}
		if err := db.CreateTable(rdbms.TableSchema{Name: "cells", Columns: []rdbms.ColumnDef{
			{Name: "id", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TInt},
		}}); err != nil {
			return nil, nil, err
		}
		const nRows = 32
		const perRow = 1000
		rids := make([]rdbms.RID, nRows)
		tx := db.Begin()
		for i := 0; i < nRows; i++ {
			rid, err := tx.Insert("cells", rdbms.Tuple{rdbms.NewInt(int64(i)), rdbms.NewInt(perRow)})
			if err != nil {
				return nil, nil, err
			}
			rids[i] = rid
		}
		if err := tx.Commit(); err != nil {
			return nil, nil, err
		}

		t0 := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, editors)
		for e := 0; e < editors; e++ {
			wg.Add(1)
			go func(e int) {
				defer wg.Done()
				for i := 0; i < opsPerEditor; i++ {
					from := (e*7 + i) % nRows
					to := (e*7 + i + 1 + i%5) % nRows
					if from == to {
						to = (to + 1) % nRows
					}
					for {
						err := transfer(db, rids[from], rids[to], 1)
						if err == rdbms.ErrDeadlock {
							continue
						}
						if err != nil {
							errCh <- err
						}
						break
					}
				}
			}(e)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, nil, err
		}
		elapsed := time.Since(t0)

		// Invariant check.
		total := int64(0)
		tx2 := db.Begin()
		tx2.Scan("cells", func(_ rdbms.RID, t rdbms.Tuple) bool {
			total += t[1].I
			return true
		})
		tx2.Commit()
		conserved := total == nRows*perRow

		ops := editors * opsPerEditor
		r := E8Result{
			Editors: editors, Ops: ops, Elapsed: elapsed,
			Throughput: float64(ops) / elapsed.Seconds(),
			Deadlocks:  db.LockManager().Deadlocks(),
			Conserved:  conserved,
		}
		out = append(out, r)
		inv := "conserved"
		if !conserved {
			inv = "VIOLATED"
		}
		s.Rows = append(s.Rows, []string{
			itoa(editors), itoa(ops), d2(elapsed),
			fmt.Sprintf("%.0f", r.Throughput), fmt.Sprintf("%d", r.Deadlocks), inv,
		})
	}
	return out, s, nil
}

func transfer(db *rdbms.DB, from, to rdbms.RID, amount int64) error {
	tx := db.Begin()
	src, live, err := tx.Get("cells", from)
	if err != nil || !live {
		tx.Abort()
		if err == nil {
			err = fmt.Errorf("row vanished")
		}
		return err
	}
	dst, live, err := tx.Get("cells", to)
	if err != nil || !live {
		tx.Abort()
		if err == nil {
			err = fmt.Errorf("row vanished")
		}
		return err
	}
	if _, err := tx.Update("cells", from, rdbms.Tuple{src[0], rdbms.NewInt(src[1].I - amount)}); err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Update("cells", to, rdbms.Tuple{dst[0], rdbms.NewInt(dst[1].I + amount)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// E8IndexAblation compares a point query via sequential scan against a
// B+tree index lookup at several table sizes.
func E8IndexAblation(sizes []int) (*Series, error) {
	s := &Series{
		ID:      "E8b",
		Title:   "access-path ablation: sequential scan vs B+tree index",
		Claim:   "index lookups keep point-query latency flat as the table grows",
		Columns: []string{"rows", "seq scan", "index scan", "speedup"},
	}
	for _, n := range sizes {
		db, err := rdbms.Open(rdbms.NewMemPager(), rdbms.NewMemWAL(), rdbms.Options{BufferPages: 1024})
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(rdbms.TableSchema{Name: "t", Columns: []rdbms.ColumnDef{
			{Name: "k", Type: rdbms.TInt}, {Name: "v", Type: rdbms.TString},
		}}); err != nil {
			return nil, err
		}
		tx := db.Begin()
		for i := 0; i < n; i++ {
			if _, err := tx.Insert("t", rdbms.Tuple{rdbms.NewInt(int64(i)), rdbms.NewString(fmt.Sprintf("value-%d", i))}); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		probe := fmt.Sprintf("SELECT v FROM t WHERE k = %d", n/2)
		const reps = 50
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := db.Exec(probe); err != nil {
				return nil, err
			}
		}
		seq := time.Since(t0) / reps
		if err := db.CreateIndex("t", "k"); err != nil {
			return nil, err
		}
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := db.Exec(probe); err != nil {
				return nil, err
			}
		}
		idx := time.Since(t0) / reps
		s.Rows = append(s.Rows, []string{
			itoa(n), d2(seq), d2(idx), f1s(float64(seq)/float64(idx)) + "x",
		})
	}
	return s, nil
}
