package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/uql"
)

// E9Result is one corruption-rate point of the semantic-debugger
// experiment.
type E9Result struct {
	CorruptPct float64
	Injected   int
	Flagged    int
	TruePos    int
	Precision  float64
	Recall     float64
}

// RunE9 injects outliers (the paper's 135-degree temperatures) at several
// rates and measures how well the semantic debugger flags them after
// learning ranges from the extracted data itself.
func RunE9(corruptFracs []float64, seed int64) ([]E9Result, *Series, error) {
	s := &Series{
		ID:      "E9",
		Title:   "semantic debugger: flagging injected 135-degree outliers",
		Claim:   "learned range constraints flag corrupted extractions with high precision and recall",
		Columns: []string{"corrupted articles", "injected", "flagged", "true pos", "precision", "recall"},
	}
	var out []E9Result
	for _, frac := range corruptFracs {
		corpus, truth := synth.Generate(synth.Config{
			Seed: seed, Cities: 80, People: 0, Filler: 10, MentionsPerPerson: 1, CorruptFrac: frac,
		})
		sys, err := core.New(core.Config{Corpus: corpus})
		if err != nil {
			return nil, nil, err
		}
		if err := sys.PlanIncremental(context.Background(), "city", []string{"temperature"}, 8); err != nil {
			return nil, nil, err
		}
		if _, err := sys.ExtractPending(context.Background(), "city", 0); err != nil {
			return nil, nil, err
		}
		violations, err := sys.SweepSuspicious(context.Background())
		if err != nil {
			return nil, nil, err
		}
		corrupted := map[string]bool{}
		for _, c := range truth.Corruptions {
			corrupted[c.DocTitle] = true
		}
		flaggedEntities := map[string]bool{}
		for _, v := range violations {
			flaggedEntities[v.Entity] = true
		}
		tp := 0
		for e := range flaggedEntities {
			if corrupted[e] {
				tp++
			}
		}
		precision, recall := 1.0, 1.0
		if len(flaggedEntities) > 0 {
			precision = float64(tp) / float64(len(flaggedEntities))
		}
		if len(corrupted) > 0 {
			recall = float64(tp) / float64(len(corrupted))
		}
		r := E9Result{
			CorruptPct: frac * 100, Injected: len(corrupted),
			Flagged: len(flaggedEntities), TruePos: tp,
			Precision: precision, Recall: recall,
		}
		out = append(out, r)
		s.Rows = append(s.Rows, []string{
			f1s(r.CorruptPct) + "%", itoa(r.Injected), itoa(r.Flagged), itoa(r.TruePos),
			f2(r.Precision), f2(r.Recall),
		})
	}
	return out, s, nil
}

// E10Result is one optimizer-configuration point.
type E10Result struct {
	Config  string
	Elapsed time.Duration
	Docs    int64
	Rows    int64
}

// RunE10 ablates the UQL optimizer's rewrites (document prefiltering,
// early confidence filtering, parallel extraction) on a fixed program,
// verifying that all configurations produce identical output.
func RunE10(docsN int, seed int64) ([]E10Result, *Series, error) {
	s := &Series{
		ID:      "E10",
		Title:   fmt.Sprintf("UQL optimizer ablation (%d-document corpus)", docsN),
		Claim:   "pushing cheap, selective work first (prefilter, early filters, parallelism) cuts pipeline cost without changing results",
		Columns: []string{"configuration", "elapsed", "docs processed", "rows out"},
	}
	program := `
		EXTRACT temperature, population FROM docs USING city MINCONF 0.5 INTO facts;
	`
	configs := []struct {
		name string
		opts uql.Options
		par  int
	}{
		{"full optimizer (4 workers)", uql.Options{}, 4},
		{"no prefilter", uql.Options{NoPrefilter: true}, 4},
		{"no early conf filter", uql.Options{NoEarlyConfFilter: true}, 4},
		{"sequential (1 worker)", uql.Options{NoParallel: true}, 0},
		{"no optimizations at all", uql.Options{NoPrefilter: true, NoEarlyConfFilter: true, NoParallel: true}, 0},
	}
	var out []E10Result
	var wantRows int64 = -1
	for _, cfg := range configs {
		corpus, _ := synth.Generate(synth.Config{
			Seed: seed, Cities: docsN / 2, People: docsN / 10, Filler: docsN / 2, MentionsPerPerson: 2,
		})
		sys, err := core.New(core.Config{Corpus: corpus, Workers: cfg.par})
		if err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		if _, err := sys.Generate(context.Background(), program, cfg.opts); err != nil {
			return nil, nil, err
		}
		elapsed := time.Since(t0)
		rows := int64(len(sys.Env.Relations["facts"]))
		if wantRows == -1 {
			wantRows = rows
		} else if rows != wantRows {
			return nil, nil, fmt.Errorf("E10: config %q changed results: %d rows vs %d", cfg.name, rows, wantRows)
		}
		r := E10Result{
			Config: cfg.name, Elapsed: elapsed,
			Docs: sys.Stats.Counter("uql.extract.docs"), Rows: rows,
		}
		out = append(out, r)
		s.Rows = append(s.Rows, []string{cfg.name, d2(elapsed), fmt.Sprintf("%d", r.Docs), fmt.Sprintf("%d", r.Rows)})
	}
	return out, s, nil
}
