package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hi"
	"repro/internal/integrate"
	"repro/internal/reformulate"
	"repro/internal/synth"
	"repro/internal/users"
)

// erInstance builds an entity-resolution problem from a synthetic corpus:
// mentions (one per person page title) and gold clusters.
func erInstance(seed int64, people, mentionsPer int) ([]integrate.Mention, [][]int, map[string]int) {
	_, truth := synth.Generate(synth.Config{
		Seed: seed, Cities: 3, People: people, Filler: 0, MentionsPerPerson: mentionsPer,
	})
	var mentions []integrate.Mention
	titleOwner := map[string]int{}
	goldGroups := map[int][]int{}
	id := 0
	for _, p := range truth.People {
		for _, m := range p.Mentions {
			mentions = append(mentions, integrate.Mention{ID: id, Surface: m.DocTitle, Context: p.City})
			titleOwner[m.DocTitle] = p.ID
			goldGroups[p.ID] = append(goldGroups[p.ID], id)
			id++
		}
	}
	var gold [][]int
	for _, g := range goldGroups {
		gold = append(gold, g)
	}
	return mentions, gold, titleOwner
}

// E3Result is one feedback-budget point.
type E3Result struct {
	Budget    int
	Precision float64
	Recall    float64
	F1        float64
	Baseline  float64 // automatic-only F1
}

// RunE3 measures how human feedback on borderline match pairs lifts
// entity-resolution quality (§3.2: HI improves II accuracy).
func RunE3(budgets []int, answererError float64, seed int64) ([]E3Result, *Series, error) {
	mentions, gold, titleOwner := erInstance(seed, 40, 4)
	resolver := integrate.NewResolver()

	oracle := func(q hi.Question) (bool, int) {
		if len(q.Payload) != 2 {
			return true, 0
		}
		return titleOwner[q.Payload[0]] == titleOwner[q.Payload[1]], 0
	}
	answerer := hi.NewSimulatedAnswerer("expert", answererError, seed, oracle)

	base := resolver.Cluster(mentions, nil)
	_, _, baseF1 := integrate.PairwiseF1(base, gold)

	s := &Series{
		ID:      "E3",
		Title:   fmt.Sprintf("HI feedback lifts entity-resolution F1 (answerer error %.0f%%, each pair confirmed by 3 answers)", answererError*100),
		Claim:   "reviewing the most ambiguous candidate pairs raises F1 over the automatic baseline",
		Columns: []string{"feedback budget", "precision", "recall", "F1", "auto baseline F1"},
	}
	var out []E3Result
	// Most ambiguous pairs first: the question router orders by distance
	// from the link threshold. A budget of B buys B answers; each decision
	// consumes three (majority vote), because a single wrong "yes" merge
	// propagates transitively and is far more damaging than a skipped
	// question.
	pairs := resolver.CandidatePairs(mentions)
	sortByAmbiguity(pairs, resolver.Threshold)
	for _, budget := range budgets {
		var decisions []integrate.Decision
		answersLeft := budget
		for _, p := range pairs {
			if answersLeft < 3 {
				break
			}
			q := hi.Question{Kind: hi.QMatch, Payload: []string{mentions[p.A].Surface, mentions[p.B].Surface}}
			yes := 0
			for rep := 0; rep < 3; rep++ {
				q.ID = budget*100000 + answersLeft*10 + rep
				if answerer.Answer(q).Yes {
					yes++
				}
			}
			answersLeft -= 3
			decisions = append(decisions, integrate.Decision{A: p.A, B: p.B, Match: yes >= 2})
		}
		pred := resolver.Cluster(mentions, decisions)
		p, r, f1 := integrate.PairwiseF1(pred, gold)
		res := E3Result{Budget: budget, Precision: p, Recall: r, F1: f1, Baseline: baseF1}
		out = append(out, res)
		s.Rows = append(s.Rows, []string{itoa(budget), f2(p), f2(r), f2(f1), f2(baseF1)})
	}
	return out, s, nil
}

// sortByAmbiguity orders candidate pairs by |score - threshold| ascending:
// the pairs the resolver is least sure about come first.
func sortByAmbiguity(pairs []integrate.MatchPair, threshold float64) {
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		return abs(pairs[i].Score-threshold) < abs(pairs[j].Score-threshold)
	})
}

// E4Result is one crowd-configuration point.
type E4Result struct {
	Crowd     string
	F1        float64
	Questions int
}

// RunE4 compares feedback sources at equal question budget: a single
// mid-reliability user, an unweighted crowd, and a reputation-weighted
// crowd (§3.2 mass collaboration).
func RunE4(budget int, seed int64) ([]E4Result, *Series, error) {
	mentions, gold, titleOwner := erInstance(seed, 40, 4)
	resolver := integrate.NewResolver()
	oracle := func(q hi.Question) (bool, int) {
		if len(q.Payload) != 2 {
			return true, 0
		}
		return titleOwner[q.Payload[0]] == titleOwner[q.Payload[1]], 0
	}

	// The crowd shape that stresses aggregation: one diligent curator
	// among four near-coin-flip drive-by users — the realistic long tail
	// of open mass collaboration.
	um := users.NewManager()
	mkCrowd := func(weighted bool) *hi.Crowd {
		errs := []float64{0.05, 0.42, 0.45, 0.42, 0.45}
		var members []hi.Answerer
		for i, e := range errs {
			name := fmt.Sprintf("u%d", i)
			members = append(members, hi.NewSimulatedAnswerer(name, e, seed+int64(i), oracle))
			if weighted {
				um.Register(name, "pw", users.RoleOrdinary)
				// Calibrate reputation to true reliability.
				for j := 0; j < 50; j++ {
					um.RecordFeedbackOutcome(name, float64(j%100)/100 >= e)
				}
			}
		}
		if weighted {
			return hi.NewCrowd(members, um)
		}
		return hi.NewCrowd(members, nil)
	}

	configs := []struct {
		name  string
		crowd *hi.Crowd
	}{
		{"single user (30% error)", hi.NewCrowd([]hi.Answerer{hi.NewSimulatedAnswerer("solo", 0.3, seed, oracle)}, nil)},
		{"crowd of 5, unweighted", mkCrowd(false)},
		{"crowd of 5, reputation-weighted", mkCrowd(true)},
	}

	s := &Series{
		ID:      "E4",
		Title:   fmt.Sprintf("mass collaboration at equal budget (%d questions)", budget),
		Claim:   "a crowd beats a single unreliable user; reputation weighting beats flat voting",
		Columns: []string{"feedback source", "F1", "questions"},
	}
	var out []E4Result
	pairs := resolver.CandidatePairs(mentions)
	sortByAmbiguity(pairs, resolver.Threshold)
	for _, cfg := range configs {
		var decisions []integrate.Decision
		asked := 0
		for _, p := range pairs {
			if asked >= budget {
				break
			}
			q := hi.Question{ID: asked + 1, Kind: hi.QMatch, Payload: []string{mentions[p.A].Surface, mentions[p.B].Surface}}
			v := cfg.crowd.Ask(q)
			decisions = append(decisions, integrate.Decision{A: p.A, B: p.B, Match: v.Yes})
			asked++
		}
		pred := resolver.Cluster(mentions, decisions)
		_, _, f1 := integrate.PairwiseF1(pred, gold)
		out = append(out, E4Result{Crowd: cfg.name, F1: f1, Questions: asked})
		s.Rows = append(s.Rows, []string{cfg.name, f2(f1), itoa(asked)})
	}
	return out, s, nil
}

// E5Result is one k point of reformulation accuracy.
type E5Result struct {
	K        int
	Accuracy float64
	Queries  int
}

// RunE5 measures accuracy@k of keyword -> structured-query reformulation
// over generated queries with known intent (§3.3 recognition over
// generation: the right query need only appear in a short list).
func RunE5(ks []int, seed int64) ([]E5Result, *Series, error) {
	corpus, truth := synth.Generate(synth.Config{Seed: seed, Cities: 30, People: 5, Filler: 10, MentionsPerPerson: 1})
	_ = corpus
	cat := reformulate.Catalog{
		Table:      "extracted",
		Attributes: []string{"temperature", "population", "founded"},
		Qualifiers: map[string][]string{"temperature": synth.Months},
	}
	for _, c := range truth.Cities {
		cat.Entities = append(cat.Entities, c.Title)
	}
	r := reformulate.New(cat)

	// Generated query workload with known intent, including the messy
	// forms real users type: city names without the state (ambiguous when
	// several states share the name), misspelled attributes, and filler
	// words.
	type labelled struct {
		query  string
		agg    reformulate.Aggregate
		attr   string
		entity string
	}
	var workload []labelled
	aggPhrases := []struct {
		agg    reformulate.Aggregate
		phrase string
	}{
		{reformulate.AggAvg, "average"}, {reformulate.AggMax, "highest"}, {reformulate.AggMin, "lowest"},
	}
	typos := map[string]string{
		"temperature": "temprature",
		"population":  "populaton",
	}
	i := 0
	for _, c := range truth.Cities {
		if i >= 80 {
			break
		}
		full := strings.ReplaceAll(c.Title, ",", "")
		nameOnly := c.Name // ambiguous when another state has the same city
		ap := aggPhrases[i%len(aggPhrases)]
		switch i % 4 {
		case 0: // clean fully-qualified query
			workload = append(workload, labelled{
				query: ap.phrase + " temperature " + full,
				agg:   ap.agg, attr: "temperature", entity: c.Title,
			})
		case 1: // city name only (entity ambiguity)
			workload = append(workload, labelled{
				query: ap.phrase + " temperature in " + nameOnly,
				agg:   ap.agg, attr: "temperature", entity: c.Title,
			})
		case 2: // misspelled attribute
			workload = append(workload, labelled{
				query: "what is the " + typos["temperature"] + " of " + full + " please",
				agg:   reformulate.AggNone, attr: "temperature", entity: c.Title,
			})
		default: // population lookup, name only
			workload = append(workload, labelled{
				query: typos["population"] + " of " + nameOnly,
				agg:   reformulate.AggNone, attr: "population", entity: c.Title,
			})
		}
		i++
	}

	s := &Series{
		ID:      "E5",
		Title:   "keyword -> structured reformulation accuracy@k",
		Claim:   "the correct structured query appears in a short candidate list users can recognize",
		Columns: []string{"k", "accuracy@k", "queries"},
	}
	var out []E5Result
	for _, k := range ks {
		hit := 0
		for _, w := range workload {
			for _, c := range r.Candidates(w.query, k) {
				if c.Agg == w.agg && c.Attribute == w.attr && c.Entity == w.entity {
					hit++
					break
				}
			}
		}
		acc := float64(hit) / float64(len(workload))
		out = append(out, E5Result{K: k, Accuracy: acc, Queries: len(workload)})
		s.Rows = append(s.Rows, []string{itoa(k), f2(acc), itoa(len(workload))})
	}
	return out, s, nil
}
