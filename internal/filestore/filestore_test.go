package filestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestAppendRead(t *testing.T) {
	s := New(0)
	id1, err := s.Append([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Append([]byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read(id1); err != nil || string(got) != "hello" {
		t.Fatalf("Read id1 = %q, %v", got, err)
	}
	if got, err := s.Read(id2); err != nil || string(got) != "world" {
		t.Fatalf("Read id2 = %q, %v", got, err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestReadOutOfRange(t *testing.T) {
	s := New(0)
	if _, err := s.Read(RecordID{Segment: 5}); err == nil {
		t.Fatal("expected segment range error")
	}
	if _, err := s.Read(RecordID{Offset: 100}); err == nil {
		t.Fatal("expected offset range error")
	}
}

func TestSegmentRollover(t *testing.T) {
	s := New(64)
	for i := 0; i < 20; i++ {
		if _, err := s.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() < 2 {
		t.Fatalf("expected rollover, segments = %d", s.Segments())
	}
	n := 0
	err := s.Scan(func(id RecordID, p []byte) bool {
		if string(p) != "0123456789" {
			t.Errorf("record %v = %q", id, p)
		}
		n++
		return true
	})
	if err != nil || n != 20 {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	s := New(0)
	// Use a fake giant length via the API guard (can't allocate 256MiB+1 in
	// a unit test comfortably, so check the boundary logic with a crafted
	// slice header is out; just verify the limit constant is enforced by a
	// smaller-scale direct call).
	big := make([]byte, maxRecordBytes+1)
	if _, err := s.Append(big); err == nil {
		t.Fatal("expected oversize rejection")
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Append([]byte{byte(i)})
	}
	n := 0
	s.Scan(func(RecordID, []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestPersistOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New(128)
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{'x'}, i%30))))
		want = append(want, p)
		if _, err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Persist(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, 128)
	if err != nil {
		t.Fatal(err)
	}
	if re.Count() != 50 {
		t.Fatalf("reopened count = %d", re.Count())
	}
	i := 0
	re.Scan(func(id RecordID, p []byte) bool {
		if !bytes.Equal(p, want[i]) {
			t.Errorf("record %d = %q, want %q", i, p, want[i])
		}
		i++
		return true
	})
	if i != 50 {
		t.Fatalf("scanned %d records", i)
	}
}

func TestOpenTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s := New(0)
	s.Append([]byte("complete-1"))
	s.Append([]byte("complete-2"))
	s.Append([]byte("will-be-torn"))
	if err := s.Persist(dir); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the tail of the only segment to simulate a crash
	// mid-append.
	name := filepath.Join(dir, "seg-000000.dat")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Count() != 2 {
		t.Fatalf("torn record should be dropped; count = %d", re.Count())
	}
	// Appends continue to work after recovery.
	if _, err := re.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	if re.Count() != 3 {
		t.Fatalf("post-crash count = %d", re.Count())
	}
}

func TestOpenCorruptMiddleRecordFails(t *testing.T) {
	dir := t.TempDir()
	s := New(0)
	s.Append([]byte("first-record-payload"))
	s.Append([]byte("second-record-payload"))
	if err := s.Persist(dir); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "seg-000000.dat")
	data, _ := os.ReadFile(name)
	data[10] ^= 0xFF // flip a payload byte of the first record
	os.WriteFile(name, data, 0o644)
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("corruption in a non-final record must fail Open")
	}
}

func TestChecksumDetectsInMemoryCorruption(t *testing.T) {
	s := New(0)
	id, _ := s.Append([]byte("payload"))
	// Corrupt the stored payload directly.
	s.segments[0][headerSize] ^= 0xFF
	if _, err := s.Read(id); err != ErrCorrupt {
		t.Fatalf("Read after corruption = %v, want ErrCorrupt", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := New(0)
	id, err := s.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty record = %v, %v", got, err)
	}
}

func TestValidatePrefixTrailingGarbage(t *testing.T) {
	var buf []byte
	var hdr [8]byte
	payload := []byte("ok")
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crcOf(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	buf = append(buf, 0x01, 0x02, 0x03) // garbage < header size
	if _, _, _, err := validatePrefix(buf, false); err == nil {
		t.Fatal("trailing garbage must fail strict validation")
	}
	valid, n, _, err := validatePrefix(buf, true)
	if err != nil || n != 1 || valid != 8+len(payload) {
		t.Fatalf("lenient validation: valid=%d n=%d err=%v", valid, n, err)
	}
}

func crcOf(p []byte) uint32 {
	s := New(0)
	s.Append(p)
	return binary.LittleEndian.Uint32(s.segments[0][4:8])
}

// Property: append N arbitrary payloads, scan returns them in order intact.
func TestAppendScanProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		s := New(256)
		for _, p := range payloads {
			if _, err := s.Append(p); err != nil {
				return false
			}
		}
		i := 0
		err := s.Scan(func(id RecordID, p []byte) bool {
			if !bytes.Equal(p, payloads[i]) {
				return false
			}
			i++
			return true
		})
		return err == nil && i == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendScan(t *testing.T) {
	s := New(1024)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				s.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if s.Count() != 800 {
		t.Fatalf("Count = %d", s.Count())
	}
	n := 0
	if err := s.Scan(func(RecordID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 800 {
		t.Fatalf("scanned %d", n)
	}
}
