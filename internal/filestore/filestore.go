// Package filestore implements an append-only segment store for
// intermediate structured data. The paper's storage layer keeps
// intermediate extraction results in "the file system" because the system
// executes only sequential reads and writes over them; this store models
// that: records are appended to fixed-capacity segments, each record is
// length-prefixed and checksummed, and reads are sequential scans. A store
// can be persisted to and reopened from a directory, and a torn final
// record (from a crash mid-append) is detected and truncated on open.
package filestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCorrupt is returned when a record fails its checksum.
var ErrCorrupt = errors.New("filestore: corrupt record")

// RecordID locates a record: segment index and byte offset within it.
type RecordID struct {
	Segment int
	Offset  int
}

const (
	headerSize     = 8 // 4-byte length + 4-byte CRC32
	defaultSegCap  = 1 << 20
	maxRecordBytes = 1 << 28
)

// Store is an append-only record store split into segments. Appends and
// scans are safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	segments [][]byte
	segCap   int
	count    int
	bytes    int
}

// New returns an in-memory store with the given segment capacity in bytes
// (0 selects the default of 1 MiB).
func New(segCap int) *Store {
	if segCap <= 0 {
		segCap = defaultSegCap
	}
	return &Store{segCap: segCap, segments: [][]byte{make([]byte, 0, segCap)}}
}

// Append writes a record and returns its id.
func (s *Store) Append(payload []byte) (RecordID, error) {
	if len(payload) > maxRecordBytes {
		return RecordID{}, fmt.Errorf("filestore: record of %d bytes exceeds limit", len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	need := headerSize + len(payload)
	seg := len(s.segments) - 1
	if len(s.segments[seg])+need > s.segCap && len(s.segments[seg]) > 0 {
		s.segments = append(s.segments, make([]byte, 0, s.segCap))
		seg++
	}
	id := RecordID{Segment: seg, Offset: len(s.segments[seg])}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	s.segments[seg] = append(s.segments[seg], hdr[:]...)
	s.segments[seg] = append(s.segments[seg], payload...)
	s.count++
	s.bytes += need
	return id, nil
}

// Read returns the payload of the record at id.
func (s *Store) Read(id RecordID) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id.Segment < 0 || id.Segment >= len(s.segments) {
		return nil, fmt.Errorf("filestore: segment %d out of range", id.Segment)
	}
	seg := s.segments[id.Segment]
	return readRecordAt(seg, id.Offset)
}

func readRecordAt(seg []byte, off int) ([]byte, error) {
	if off < 0 || off+headerSize > len(seg) {
		return nil, fmt.Errorf("filestore: offset %d out of range", off)
	}
	n := int(binary.LittleEndian.Uint32(seg[off : off+4]))
	want := binary.LittleEndian.Uint32(seg[off+4 : off+8])
	start := off + headerSize
	if start+n > len(seg) {
		return nil, fmt.Errorf("filestore: truncated record at %d", off)
	}
	payload := seg[start : start+n]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrCorrupt
	}
	out := make([]byte, n)
	copy(out, payload)
	return out, nil
}

// Scan calls fn for every record in append order. If fn returns false the
// scan stops early. Scan holds a read lock for its duration.
func (s *Store) Scan(fn func(id RecordID, payload []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for si, seg := range s.segments {
		off := 0
		for off+headerSize <= len(seg) {
			payload, err := readRecordAt(seg, off)
			if err != nil {
				return err
			}
			if !fn(RecordID{Segment: si, Offset: off}, payload) {
				return nil
			}
			off += headerSize + len(payload)
		}
	}
	return nil
}

// Count returns the number of records.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Bytes returns total stored bytes including headers.
func (s *Store) Bytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Segments returns the number of segments.
func (s *Store) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segments)
}

// Persist writes every segment to dir as numbered files. Existing segment
// files in dir are overwritten.
func (s *Store) Persist(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, seg := range s.segments {
		name := filepath.Join(dir, fmt.Sprintf("seg-%06d.dat", i))
		if err := os.WriteFile(name, seg, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Open loads a store persisted by Persist. A torn trailing record in the
// final segment (simulating a crash during append) is truncated; torn or
// corrupt records elsewhere are an error.
func Open(dir string, segCap int) (*Store, error) {
	if segCap <= 0 {
		segCap = defaultSegCap
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".dat" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	s := &Store{segCap: segCap}
	for idx, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		last := idx == len(names)-1
		valid, n, nbytes, err := validatePrefix(data, last)
		if err != nil {
			return nil, fmt.Errorf("filestore: segment %s: %w", name, err)
		}
		seg := make([]byte, valid, max(segCap, valid))
		copy(seg, data[:valid])
		s.segments = append(s.segments, seg)
		s.count += n
		s.bytes += nbytes
	}
	if len(s.segments) == 0 {
		s.segments = [][]byte{make([]byte, 0, segCap)}
	}
	return s, nil
}

// validatePrefix walks records in seg and returns the byte length of the
// valid prefix, the record count, and total bytes. If allowTorn, a
// truncated or checksum-failing final record is dropped rather than being
// an error.
func validatePrefix(seg []byte, allowTorn bool) (valid, count, nbytes int, err error) {
	off := 0
	for off+headerSize <= len(seg) {
		n := int(binary.LittleEndian.Uint32(seg[off : off+4]))
		want := binary.LittleEndian.Uint32(seg[off+4 : off+8])
		start := off + headerSize
		if n > maxRecordBytes || start+n > len(seg) {
			if allowTorn {
				return off, count, nbytes, nil
			}
			return 0, 0, 0, fmt.Errorf("truncated record at offset %d", off)
		}
		if crc32.ChecksumIEEE(seg[start:start+n]) != want {
			if allowTorn && start+n == len(seg) {
				return off, count, nbytes, nil
			}
			return 0, 0, 0, fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		off = start + n
		count++
		nbytes += headerSize + n
	}
	if off != len(seg) {
		if allowTorn {
			return off, count, nbytes, nil
		}
		return 0, 0, 0, fmt.Errorf("trailing garbage of %d bytes", len(seg)-off)
	}
	return off, count, nbytes, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
