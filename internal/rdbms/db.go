package rdbms

import (
	"fmt"
	"sort"
	"sync"
)

// DB is the database engine facade: catalog, storage, WAL, lock manager,
// and transaction lifecycle. The durability protocol is steal/no-force
// with logical logging: dirty pages may be written back at any time (the
// buffer pool flushes the WAL first, honouring the WAL rule), commits
// force only the log, and recovery redoes committed work after the last
// checkpoint and undoes losers using before-images.
//
// DDL (CREATE TABLE / CREATE INDEX / DROP TABLE) is not logged: each DDL
// statement performs a full quiesced checkpoint, so the catalog is always
// consistent with a checkpoint boundary. Indexes are rebuilt from the
// heap when a database is opened.
type DB struct {
	mu     sync.RWMutex // guards tables map and checkpointing
	pager  Pager
	bp     *BufferPool
	wal    *WAL
	lm     *LockManager
	tables map[string]*Table

	txnMu   sync.Mutex
	nextTxn TxnID
	active  map[TxnID]*Txn

	checkpointLSN LSN
}

// Options configures Open.
type Options struct {
	BufferPages int // buffer pool capacity (default 256)
}

// Open initializes a database over pager and wal. A fresh pager gets a new
// catalog; an existing one is recovered (catalog load, WAL redo/undo,
// index rebuild).
func Open(pager Pager, wal *WAL, opts Options) (*DB, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 256
	}
	db := &DB{
		pager:  pager,
		wal:    wal,
		lm:     NewLockManager(),
		tables: make(map[string]*Table),
		active: make(map[TxnID]*Txn),
	}
	db.bp = NewBufferPool(pagerWithWALRule{pager, wal}, opts.BufferPages)
	if pager.NumPages() == 0 {
		// Fresh database: allocate and write the catalog page.
		id, err := pager.Allocate()
		if err != nil {
			return nil, err
		}
		if id != 0 {
			return nil, fmt.Errorf("rdbms: catalog page allocated as %d, want 0", id)
		}
		if err := db.writeCatalog(); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

// pagerWithWALRule enforces write-ahead logging: any page write first
// forces the WAL, so before-images of every flushed change are durable.
type pagerWithWALRule struct {
	Pager
	wal *WAL
}

func (p pagerWithWALRule) WritePage(id PageID, buf []byte) error {
	if err := p.wal.Flush(); err != nil {
		return err
	}
	return p.Pager.WritePage(id, buf)
}

func (db *DB) writeCatalog() error {
	cat := catalogData{checkpointLSN: db.checkpointLSN}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		ct := catalogTable{schema: t.Schema, firstPage: t.Heap.FirstPage()}
		for col := range t.Indexes {
			ct.indexCols = append(ct.indexCols, col)
		}
		cat.tables = append(cat.tables, ct)
	}
	page, err := encodeCatalog(&cat)
	if err != nil {
		return err
	}
	if err := db.pager.WritePage(0, page); err != nil {
		return err
	}
	return db.pager.Sync()
}

// Checkpoint flushes the WAL and all dirty pages, then records the durable
// LSN in the catalog. It requires a quiesced system (no active
// transactions) so that the checkpoint is a clean recovery boundary.
func (db *DB) Checkpoint() error {
	db.txnMu.Lock()
	n := len(db.active)
	db.txnMu.Unlock()
	if n > 0 {
		return fmt.Errorf("rdbms: checkpoint with %d active transactions", n)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if err := db.wal.Flush(); err != nil {
		return err
	}
	if err := db.bp.Flush(); err != nil {
		return err
	}
	db.checkpointLSN = db.wal.FlushedLSN()
	db.wal.Append(&LogRecord{Kind: LogCheckpoint})
	if err := db.wal.Flush(); err != nil {
		return err
	}
	db.checkpointLSN = db.wal.FlushedLSN()
	return db.writeCatalog()
}

// CreateTable adds a table and checkpoints.
func (db *DB) CreateTable(schema TableSchema) error {
	if len(schema.Columns) == 0 {
		return fmt.Errorf("rdbms: table %s needs at least one column", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if seen[c.Name] {
			return fmt.Errorf("rdbms: duplicate column %s", c.Name)
		}
		seen[c.Name] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Name]; ok {
		return fmt.Errorf("rdbms: table %s already exists", schema.Name)
	}
	heap, err := CreateHeapFile(db.bp)
	if err != nil {
		return err
	}
	db.tables[schema.Name] = &Table{Schema: schema, Heap: heap, Indexes: map[string]*BTree{}}
	return db.checkpointLocked()
}

// DropTable removes a table. Its pages are abandoned (no free-list reuse).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("rdbms: table %s does not exist", name)
	}
	delete(db.tables, name)
	return db.checkpointLocked()
}

// CreateIndex builds a B+tree index on a column and checkpoints.
func (db *DB) CreateIndex(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("rdbms: table %s does not exist", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("rdbms: no column %s in %s", column, table)
	}
	if _, ok := t.Indexes[column]; ok {
		return fmt.Errorf("rdbms: index on %s.%s already exists", table, column)
	}
	idx := NewBTree()
	err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
		idx.Insert(tup[ci], rid)
		return true
	})
	if err != nil {
		return err
	}
	t.Indexes[column] = idx
	return db.checkpointLocked()
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LockManager exposes the lock manager (for tests and diagnostics).
func (db *DB) LockManager() *LockManager { return db.lm }

// BufferStats returns buffer pool hit/miss counters.
func (db *DB) BufferStats() (hits, misses int64) { return db.bp.Stats() }

// Close flushes everything. The database must be quiesced.
func (db *DB) Close() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	return db.pager.Close()
}

// recover loads the catalog and replays the WAL: redo committed work after
// the checkpoint, undo losers, rebuild indexes, and checkpoint.
func (db *DB) recover() error {
	page := make([]byte, PageSize)
	if err := db.pager.ReadPage(0, page); err != nil {
		return err
	}
	cat, err := decodeCatalog(page)
	if err != nil {
		return err
	}
	db.checkpointLSN = cat.checkpointLSN
	for _, ct := range cat.tables {
		heap, err := OpenHeapFile(db.bp, ct.firstPage)
		if err != nil {
			return err
		}
		t := &Table{Schema: ct.schema, Heap: heap, Indexes: map[string]*BTree{}}
		for _, col := range ct.indexCols {
			t.Indexes[col] = NewBTree() // populated after replay
		}
		db.tables[ct.schema.Name] = t
	}

	records, err := db.wal.Records(db.checkpointLSN)
	if err != nil {
		return err
	}
	// Analysis: find winners (committed) and losers.
	committed := map[TxnID]bool{}
	aborted := map[TxnID]bool{}
	var order []*LogRecord
	for _, r := range records {
		switch r.Kind {
		case LogCommit:
			committed[r.Txn] = true
		case LogAbort:
			aborted[r.Txn] = true
		}
		order = append(order, r)
	}
	// Redo committed changes in log order.
	for _, r := range order {
		if !committed[r.Txn] {
			continue
		}
		if err := db.redo(r); err != nil {
			return err
		}
	}
	// Undo losers (neither committed nor aborted — aborted txns already
	// rolled back in memory before any page flush could... no: with steal,
	// an aborted txn's changes were undone by its own Abort path and the
	// undo is reflected in the heap only if those pages flushed. To stay
	// correct we also undo aborted txns' records that lack compensation;
	// since Abort physically restores pages before writing LogAbort, and
	// those restores happened before any later flush, replaying undo for
	// aborted txns is idempotent and safe).
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		if committed[r.Txn] {
			continue
		}
		if err := db.undo(r); err != nil {
			return err
		}
	}
	// Rebuild indexes from heap contents.
	for _, t := range db.tables {
		for col := range t.Indexes {
			ci := t.Schema.ColIndex(col)
			fresh := NewBTree()
			err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
				fresh.Insert(tup[ci], rid)
				return true
			})
			if err != nil {
				return err
			}
			t.Indexes[col] = fresh
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// ensureHeapPage makes sure the page referenced by a log record exists in
// the pager and belongs to the table's heap chain. Pages allocated before
// a crash may never have reached disk; recovery recreates them.
func (db *DB) ensureHeapPage(t *Table, id PageID) error {
	for db.pager.NumPages() <= id {
		if _, err := db.pager.Allocate(); err != nil {
			return err
		}
	}
	if !t.Heap.Contains(id) {
		return t.Heap.Adopt(id)
	}
	return nil
}

// redo re-applies a committed change idempotently.
func (db *DB) redo(r *LogRecord) error {
	t := db.tables[r.Table]
	if t == nil {
		return nil // table dropped after the record was written
	}
	if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
		return nil
	}
	if err := db.ensureHeapPage(t, r.Row.Page); err != nil {
		return err
	}
	switch r.Kind {
	case LogInsert:
		cur, live, err := t.Heap.Get(r.Row)
		if err != nil {
			return err
		}
		if live {
			if tupleEqual(cur, r.After) {
				return nil // already applied
			}
			_, err := t.Heap.Update(r.Row, r.After)
			return err
		}
		return t.Heap.InsertAt(r.Row, r.After)
	case LogDelete:
		_, live, err := t.Heap.Get(r.Row)
		if err != nil {
			return err
		}
		if !live {
			return nil
		}
		_, err = t.Heap.Delete(r.Row)
		return err
	case LogUpdate:
		_, live, err := t.Heap.Get(r.Row)
		if err != nil {
			return err
		}
		if !live {
			return t.Heap.InsertAt(r.Row, r.After)
		}
		_, err = t.Heap.Update(r.Row, r.After)
		return err
	}
	return nil
}

// undo reverses a loser's change idempotently.
func (db *DB) undo(r *LogRecord) error {
	t := db.tables[r.Table]
	if t == nil {
		return nil
	}
	if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
		return nil
	}
	if err := db.ensureHeapPage(t, r.Row.Page); err != nil {
		return err
	}
	switch r.Kind {
	case LogInsert:
		cur, live, err := t.Heap.Get(r.Row)
		if err != nil {
			return err
		}
		if live && tupleEqual(cur, r.After) {
			_, err := t.Heap.Delete(r.Row)
			return err
		}
		return nil
	case LogDelete:
		_, live, err := t.Heap.Get(r.Row)
		if err != nil {
			return err
		}
		if !live {
			return t.Heap.InsertAt(r.Row, r.Before)
		}
		return nil
	case LogUpdate:
		cur, live, err := t.Heap.Get(r.Row)
		if err != nil {
			return err
		}
		if live && tupleEqual(cur, r.After) {
			_, err := t.Heap.Update(r.Row, r.Before)
			return err
		}
		if !live {
			return t.Heap.InsertAt(r.Row, r.Before)
		}
		return nil
	}
	return nil
}

func tupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			return false
		}
		if !Equal(a[i], b[i]) && !(a[i].IsNull() && b[i].IsNull()) {
			return false
		}
	}
	return true
}
