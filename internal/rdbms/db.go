package rdbms

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DB is the database engine facade: catalog, storage, WAL, lock manager,
// and transaction lifecycle. The durability protocol is steal/no-force
// with physiological logging and page LSNs: dirty pages may be written
// back at any time (the buffer pool flushes the WAL up to the page's LSN
// first, honouring the WAL rule), commits force only the log, aborts
// write compensation records for their physical restores, and recovery
// is ARIES-style — physical redo of every logged record gated on
// pageLSN < rec.LSN (idempotent), then state-idempotent undo of loser
// transactions (see recover).
//
// Checkpoints are fuzzy: they run while transactions commit (no quiesce
// stall), bracket themselves with begin/end records carrying the
// dirty-page table, flush what they can (pinned pages simply stay
// dirty), and truncate the WAL at the min(recLSN, active-transaction
// firstLSN) horizon rather than resetting it — LSNs are monotonic for
// the life of the database. Derived state (index checkpoint chains,
// content hashes) is persisted consistently only when the system is
// momentarily idle; a checkpoint taken mid-traffic marks it invalid
// instead, and recovery rebuilds by scan (see Table.catMut).
//
// DDL (CREATE TABLE / CREATE INDEX / DROP TABLE) is not logged: each DDL
// statement performs a checkpoint, so the catalog is always consistent
// with a checkpoint boundary.
type DB struct {
	mu     sync.RWMutex // guards the tables map
	pager  Pager
	bp     *BufferPool
	wal    *WAL
	lm     *LockManager
	vs     *VersionStore
	tables map[string]*Table

	// ckptMu serializes checkpoints and DDL (the only mutators of the
	// tables map and of per-table persistence bookkeeping). It is never
	// held while waiting on transaction progress, so committers keep
	// running under an in-flight checkpoint.
	ckptMu sync.Mutex

	// ownsStorage marks databases built by OpenDir, whose Close also
	// closes the pager and WAL it opened. dirLock is OpenDir's exclusive
	// flock on the directory, released by Close.
	ownsStorage bool
	dirLock     *os.File

	txnMu   sync.Mutex
	nextTxn TxnID
	active  map[TxnID]*Txn

	// checkpointLSN is the recovery replay origin: the WAL-truncation
	// horizon of the last completed checkpoint (persisted in the catalog).
	checkpointLSN LSN
	// checkpointID is a monotonically increasing checkpoint generation
	// counter (persisted in the catalog). Index checkpoint chains are
	// stamped with it; a chain whose stamp disagrees with the catalog
	// belongs to another generation and is rejected at load.
	checkpointID uint64

	rebuildIndexes bool      // Options.RebuildIndexes: skip checkpoint loads
	openStats      OpenStats // what the last recover() did with indexes

	checkpoints int64 // completed checkpoints (diagnostics and tests)
}

// Options configures Open.
type Options struct {
	BufferPages int // buffer pool capacity (default 256)
	// RebuildIndexes disables loading indexes from their checkpoint
	// chains, forcing the legacy full rebuild from the heap (benchmarks
	// and tests of the fallback path).
	RebuildIndexes bool
	// GroupCommitWindow overrides the group-commit leader's straggler
	// wait budget, in scheduler-yield iterations. nil selects
	// DefaultGroupCommitWindow; a pointer to 0 disables the window
	// entirely, degenerating to solo-commit flushing — each leader
	// captures only the records already buffered when it takes over.
	GroupCommitWindow *int
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (default DefaultWALSegmentBytes). Smaller segments reclaim log
	// space at finer granularity under long-running transactions, at the
	// cost of more frequent rotations (one manifest swap + directory
	// sync each).
	WALSegmentBytes int64
	// FlatLRU disables the buffer pool's scan-resistant segmented LRU,
	// reverting to a single recency queue that ignores scan hints. It
	// exists so the larger-than-RAM oracle can demonstrate the policy
	// difference; production opens leave it false.
	FlatLRU bool
}

// OpenStats reports how recovery reconstructed secondary structures.
type OpenStats struct {
	// IndexesLoaded counts indexes restored from a valid checkpoint chain
	// (bulk load + WAL-tail delta); IndexesRebuilt counts fallbacks to
	// the full heap-scan rebuild (missing, stale, torn, or
	// fuzzy-invalidated chains).
	IndexesLoaded  int
	IndexesRebuilt int
}

// LastOpenStats returns the index-reconstruction stats of the recovery
// that opened this database (zero for a freshly created one).
func (db *DB) LastOpenStats() OpenStats { return db.openStats }

// Checkpoints returns how many checkpoints have completed on this handle
// (diagnostics; the non-quiesce bench uses it to prove overlap).
func (db *DB) Checkpoints() int64 {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpoints
}

// DataFileName and WALDirName are the entries OpenDir manages inside its
// directory: the checksummed page file and the WAL segment directory
// (numbered segment files plus their manifest).
const (
	DataFileName = "data.udb"
	WALDirName   = "wal"
)

// OpenDir opens (creating if needed) an on-disk database rooted at dir:
// checksummed pages in dir/data.udb, the segmented write-ahead log under
// dir/wal/. An existing directory is recovered — orphan WAL segments
// collected, torn WAL tail truncated, committed work redone, losers
// undone — and Close checkpoints and releases both, so OpenDir → work →
// Close → OpenDir is the full crash-safe lifecycle.
func OpenDir(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDBDir(dir)
	if err != nil {
		return nil, err
	}
	pager, err := OpenFilePager(filepath.Join(dir, DataFileName))
	if err != nil {
		lock.Close()
		return nil, err
	}
	wal, err := OpenFileWAL(filepath.Join(dir, WALDirName))
	if err != nil {
		pager.Close()
		lock.Close()
		return nil, err
	}
	db, err := Open(pager, wal, opts)
	if err != nil {
		pager.Close()
		wal.Close()
		lock.Close()
		return nil, err
	}
	db.ownsStorage = true
	db.dirLock = lock
	return db, nil
}

// Open initializes a database over pager and wal. A fresh pager gets a new
// catalog; an existing one is recovered (catalog load, WAL redo/undo,
// index restore). The buffer pool enforces the WAL rule for every dirty
// page it writes back.
func Open(pager Pager, wal *WAL, opts Options) (*DB, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 256
	}
	if opts.GroupCommitWindow != nil {
		wal.window = *opts.GroupCommitWindow
	}
	if opts.WALSegmentBytes > 0 {
		wal.SetSegmentTarget(opts.WALSegmentBytes)
	}
	db := &DB{
		pager:          pager,
		wal:            wal,
		lm:             NewLockManager(),
		vs:             newVersionStore(),
		tables:         make(map[string]*Table),
		active:         make(map[TxnID]*Txn),
		rebuildIndexes: opts.RebuildIndexes,
	}
	if opts.FlatLRU {
		db.bp = NewFlatLRUBufferPool(pager, wal, opts.BufferPages)
	} else {
		db.bp = NewBufferPool(pager, wal, opts.BufferPages)
	}
	if pager.NumPages() == 0 {
		// Fresh database: allocate and write the catalog page.
		id, err := pager.Allocate()
		if err != nil {
			return nil, err
		}
		if id != 0 {
			return nil, fmt.Errorf("rdbms: catalog page allocated as %d, want 0", id)
		}
		if err := db.writeCatalog(); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

// writeCatalog persists the catalog page. Per-table derived-state
// metadata (snapLSN, validity, content hash) is written from the values
// the last capture froze (Table.snapLSN / derivedValid / catHash), never
// from live accumulators — a committer folding its hash delta mid-write
// must not leak into a snapshot that claims an older log position.
// Callers hold ckptMu (checkpoints, DDL) or are single-threaded (fresh
// open, recovery).
func (db *DB) writeCatalog() error {
	db.mu.RLock()
	cat := catalogData{checkpointLSN: db.checkpointLSN, checkpointID: db.checkpointID}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		ct := catalogTable{
			schema:       t.Schema,
			firstPage:    t.Heap.FirstPage(),
			snapLSN:      t.snapLSN,
			bornLSN:      t.bornLSN,
			derivedValid: t.derivedValid,
		}
		if t.hashCols != nil {
			ct.hasHash = true
			ct.hashCols = t.hashColNames
			ct.hash = t.catHash
		}
		for col := range t.Indexes {
			ci := catalogIndex{col: col, firstPage: InvalidPage}
			if ip := t.idx[col]; ip != nil {
				ci.firstPage = ip.firstPage
				ci.stamp = ip.stamp
			}
			ct.indexes = append(ct.indexes, ci)
		}
		cat.tables = append(cat.tables, ct)
	}
	db.mu.RUnlock()
	page, err := encodeCatalog(&cat)
	if err != nil {
		return err
	}
	if err := db.pager.WritePage(0, page); err != nil {
		return err
	}
	return db.pager.Sync()
}

// Checkpoint makes everything committed so far durable in the data pages
// and truncates the WAL to the surviving horizon. It is fuzzy — it runs
// while transactions are active and committing, never quiescing them:
//
//  1. a begin-checkpoint record (with the dirty-page table and the
//     active-transaction list) is logged and flushed;
//  2. dirty pages flush incrementally — the pool lock is taken per page
//     and pinned pages are skipped (they stay dirty and simply hold the
//     truncation horizon back), so committers keep pinning, mutating and
//     committing throughout;
//  3. derived state (index chains, content hashes) is captured
//     consistently if the system happens to be idle, or marked invalid
//     for mid-change tables otherwise (recovery then rebuilds by scan);
//  4. an end-checkpoint record is logged and flushed;
//  5. the horizon H = min(flushed end, min recLSN of pages still not
//     durably written, min firstLSN of still-active transactions) is
//     computed: every record below H describes changes that are durably
//     in the pages and belong to resolved transactions;
//  6. the catalog is written with checkpointLSN = H — the new replay
//     origin, valid against the still-untruncated log;
//  7. the WAL prefix before H is discarded (WAL.TruncateTo), bounding
//     log growth without ever resetting LSNs.
//
// A crash between any two steps recovers from the last durable catalog:
// its origin is always at or below every record the surviving pages and
// transactions still need, and redo's page-LSN gating makes replaying
// already-flushed work a no-op.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked is Checkpoint under ckptMu (DDL and recovery call it
// directly).
func (db *DB) checkpointLocked() error {
	// Opportunistic version GC: prune chain history no current or future
	// snapshot can pin (cheap, and keeps an idle system's chains empty).
	db.vs.Sweep()
	if db.checkpointIsNoopLocked() {
		// Nothing to make durable, nothing to truncate, nothing derived to
		// re-capture: the on-disk state already IS the checkpoint. This is
		// the clean reopen→close cycle (and an idle periodic checkpointer),
		// which must not pay a single fsync.
		db.checkpoints++
		return nil
	}
	dpt := db.bp.DirtyPageTable()
	// The begin record needs no flush of its own: the first page
	// write-back (or the end record's flush) forces it out, and recovery
	// never depends on it — the catalog's checkpointLSN is the origin.
	db.wal.Append(&LogRecord{Kind: LogCheckpointBegin, Data: encodeCheckpointInfo(dpt, db.activeTxnInfo())})
	if err := db.bp.Flush(); err != nil {
		return err
	}
	if err := db.captureDerivedState(); err != nil {
		return err
	}
	db.wal.Append(&LogRecord{Kind: LogCheckpointEnd})
	if err := db.wal.Flush(); err != nil {
		return err
	}
	// Horizon sampling order matters: active transactions BEFORE page
	// recLSNs. A transaction always unpins (marking its page dirty)
	// before it leaves db.active, so a committer racing this code is
	// caught by at least one of the two scans — seen as active (its
	// firstLSN bounds h), or already finished with its dirty page (or
	// unsynced write-back) visible to MinRecLSN. Scanning recLSNs first
	// would open a window where a transaction unpins, commits, and
	// leaves db.active between the scans, protected by neither.
	h := db.wal.FlushedLSN()
	if m, ok := db.minActiveFirstLSN(); ok && m < h {
		h = m
	}
	if m, ok := db.bp.MinRecLSN(); ok && m < h {
		h = m
	}
	db.checkpointLSN = h
	if err := db.writeCatalog(); err != nil {
		return err
	}
	if err := db.wal.TruncateTo(h); err != nil {
		return err
	}
	db.checkpoints++
	return nil
}

// checkpointIsNoopLocked reports whether a checkpoint would change
// nothing: the log holds no record past the last checkpoint's horizon
// (segment-granular truncation keeps already-checkpointed bytes of the
// active segment on disk, so "physically empty" is the wrong test), no
// page write is pending or unsynced, no transaction is active, and
// every table's persisted derived state is still a consistent capture
// of its current contents.
func (db *DB) checkpointIsNoopLocked() bool {
	if !db.wal.EmptySince(db.checkpointLSN) || db.bp.HasPendingWrites() {
		return false
	}
	db.txnMu.Lock()
	active := len(db.active)
	db.txnMu.Unlock()
	if active > 0 {
		return false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if t.mut.Load() != t.catMut || !t.derivedValid {
			return false
		}
	}
	return true
}

// activeTxnInfo snapshots (txn, firstLSN) for every active transaction.
func (db *DB) activeTxnInfo() map[TxnID]LSN {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	out := make(map[TxnID]LSN, len(db.active))
	for id, tx := range db.active {
		out[id] = tx.firstLSN
	}
	return out
}

// minActiveFirstLSN returns the smallest BEGIN-record LSN among active
// transactions: the oldest record a crash-time rollback could still need.
func (db *DB) minActiveFirstLSN() (LSN, bool) {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	var m LSN
	found := false
	for _, tx := range db.active {
		if !found || tx.firstLSN < m {
			m, found = tx.firstLSN, true
		}
	}
	return m, found
}

// captureDerivedState persists each table's index chains and content
// hash — consistently when it can prove consistency, invalidating them
// when it cannot:
//
//   - If no transaction is active, it holds the admission gate (txnMu)
//     while serializing the in-memory trees and reading the hash
//     accumulators: new transactions cannot begin and committers cannot
//     finish during the (in-memory, brief) serialization, so the capture
//     is a single consistent cut of all committed state, stamped with
//     the current log position (snapLSN). Chain page I/O happens after
//     the gate releases.
//
//   - Otherwise, tables untouched since their last consistent capture
//     (mut == catMut) keep their chains, hash, and snapLSN — still
//     exactly right, and every later record for them is above snapLSN.
//     Mid-change tables get their derived state marked invalid: chain
//     stamps are bumped away from what the chains carry (so a load after
//     a crash is rejected and the index rebuilt from the heap) and the
//     persisted hash is flagged untrustworthy (recovery recomputes it by
//     scan). No committer ever waits.
func (db *DB) captureDerivedState() error {
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables))
	for n, t := range db.tables {
		tables[n] = t
	}
	db.mu.RUnlock()

	db.checkpointID++
	stamp := db.checkpointID

	type chainJob struct {
		t       *Table
		col     string
		payload []byte
		mut     int64
	}
	var jobs []chainJob
	// tableCapture is a table's consistency metadata frozen under the
	// gate. It is applied only after every chain write lands: marking a
	// table consistent before its chain I/O succeeded would let a later
	// checkpoint skip it as "unchanged" and persist a catalog whose stamp
	// still matches the old on-disk chain — a post-crash recovery would
	// then bulk-load a stale index as trusted.
	type tableCapture struct {
		t    *Table
		m    int64
		hash uint64
	}
	var captures []tableCapture

	db.txnMu.Lock()
	idle := len(db.active) == 0
	snap := db.wal.NextLSN()
	if idle {
		for _, name := range sortedKeys(tables) {
			t := tables[name]
			m := t.mut.Load()
			if m == t.catMut && t.derivedValid {
				continue // chains and hash already describe snapLSN exactly
			}
			for _, col := range sortedKeys(t.Indexes) {
				bt := t.Indexes[col]
				ip := t.idxState(col)
				mut := bt.Mutations()
				if ip.firstPage != InvalidPage && ip.savedMut == mut {
					continue // tree content unchanged since its chain was written
				}
				jobs = append(jobs, chainJob{t: t, col: col, payload: serializeIndex(bt), mut: mut})
			}
			c := tableCapture{t: t, m: m}
			if t.hashCols != nil {
				c.hash = t.hash.Load()
			}
			captures = append(captures, c)
		}
	}
	db.txnMu.Unlock()

	if !idle {
		for _, name := range sortedKeys(tables) {
			t := tables[name]
			m := t.mut.Load()
			if m == t.catMut && t.derivedValid {
				continue // untouched since its last consistent capture: keep it
			}
			t.derivedValid = false
			for _, col := range sortedKeys(t.Indexes) {
				ip := t.idxState(col)
				if ip.firstPage != InvalidPage {
					// The chain bytes stay (their pages are reused by the next
					// consistent capture) but the catalog now expects a stamp
					// they do not carry: a post-crash load is rejected.
					ip.stamp = stamp
					ip.savedMut = -1
				}
			}
		}
		return nil
	}
	// Chain page I/O, outside the gate: committers admitted meanwhile
	// cannot touch these pages (chain pages belong to no heap), and the
	// catalog write that makes the chains reachable follows in
	// checkpointLocked. A failed write aborts the checkpoint with every
	// table's capture unapplied (catMut unchanged), so the next
	// checkpoint re-serializes from scratch; chains already rewritten
	// carry a stamp the durable catalog does not name and are simply
	// rejected at a crash-load.
	for _, job := range jobs {
		ip := job.t.idxState(job.col)
		first, err := db.writeIndexChain(ip.firstPage, stamp, job.payload)
		if err != nil {
			return err
		}
		ip.firstPage = first
		ip.stamp = stamp
		ip.savedMut = job.mut
	}
	for _, c := range captures {
		if c.t.hashCols != nil {
			c.t.catHash = c.hash
		}
		c.t.catMut = c.m
		c.t.snapLSN = snap
		c.t.derivedValid = true
	}
	return nil
}

// CreateTable adds a table and checkpoints.
func (db *DB) CreateTable(schema TableSchema) error {
	if len(schema.Columns) == 0 {
		return fmt.Errorf("rdbms: table %s needs at least one column", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if seen[c.Name] {
			return fmt.Errorf("rdbms: duplicate column %s", c.Name)
		}
		seen[c.Name] = true
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	if _, ok := db.tables[schema.Name]; ok {
		db.mu.Unlock()
		return fmt.Errorf("rdbms: table %s already exists", schema.Name)
	}
	heap, err := CreateHeapFile(db.bp)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	t := &Table{Schema: schema, Heap: heap, Indexes: map[string]*BTree{}}
	t.snapLSN = db.wal.NextLSN()
	t.bornLSN = t.snapLSN
	t.derivedValid = true
	db.tables[schema.Name] = t
	db.mu.Unlock()
	return db.checkpointLocked()
}

// DropTable removes a table. Its pages are abandoned (no free-list reuse).
func (db *DB) DropTable(name string) error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	if _, ok := db.tables[name]; !ok {
		db.mu.Unlock()
		return fmt.Errorf("rdbms: table %s does not exist", name)
	}
	delete(db.tables, name)
	db.mu.Unlock()
	db.vs.dropTable(name)
	return db.checkpointLocked()
}

// CreateIndex builds a B+tree index on a column and checkpoints.
func (db *DB) CreateIndex(table, column string) error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	t, ok := db.tables[table]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("rdbms: table %s does not exist", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("rdbms: no column %s in %s", column, table)
	}
	if _, ok := t.Indexes[column]; ok {
		return fmt.Errorf("rdbms: index on %s.%s already exists", table, column)
	}
	idx := NewBTree()
	err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
		idx.Insert(tup[ci], rid)
		return true
	})
	if err != nil {
		return err
	}
	db.mu.Lock()
	t.Indexes[column] = idx
	// The new index has no chain yet; force the next consistent capture
	// to serialize it even if the table's rows never move again.
	t.noteMutation()
	db.mu.Unlock()
	return db.checkpointLocked()
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LockManager exposes the lock manager (for tests and diagnostics).
func (db *DB) LockManager() *LockManager { return db.lm }

// Versions exposes the MVCC version store (for tests and diagnostics).
func (db *DB) Versions() *VersionStore { return db.vs }

// BufferStats returns a snapshot of the buffer pool's counters and
// occupancy (hit/miss/eviction/scan-bypass; threaded up to unidbd
// health).
func (db *DB) BufferStats() BufferStats { return db.bp.Stats() }

// WALSyncs returns the number of WAL device syncs performed so far: the
// group-commit amortization diagnostic (commits per sync).
func (db *DB) WALSyncs() int64 { return db.wal.Syncs() }

// Close checkpoints (flushing the WAL and all dirty pages, truncating
// the log to its end) and releases the storage this DB owns. The
// database must be quiesced — Close is the one checkpoint entry point
// that still requires it, because releasing the files under live
// transactions would be a caller bug, not a checkpoint concern. After
// Close, OpenDir on the same directory reopens the database from its
// data file alone.
func (db *DB) Close() error {
	db.txnMu.Lock()
	n := len(db.active)
	db.txnMu.Unlock()
	if n > 0 {
		return fmt.Errorf("rdbms: close with %d active transactions", n)
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if err := db.pager.Close(); err != nil {
		return err
	}
	if db.ownsStorage {
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	if db.dirLock != nil {
		return db.dirLock.Close()
	}
	return nil
}

// recover loads the catalog and replays the WAL ARIES-style:
//
//   - Redo: every data record from the catalog's replay origin is
//     re-applied physically, gated on the page LSN — a page already
//     stamped at or past the record's LSN provably reflects it (per-page
//     mutation order is LSN order), so the record is skipped. Fuzzy
//     checkpoints flush pages mid-traffic, so any mix of "page ahead of
//     the log position" and "page behind it" is normal; the gate makes
//     both cases converge, and replaying the same tail twice is a no-op.
//
//   - Undo: transactions with no verdict record lost the crash; their
//     records are walked in reverse and their slots forced back to the
//     before-images. "Set slot to X" is state-idempotent, so recovery
//     crashing mid-undo and re-running converges too. (Transactions
//     aborted before the crash need no undo: their compensation records
//     replayed as part of redo.)
//
//   - Derived state: an index whose catalog entry is marked consistent
//     (captured at snapLSN with no transaction active) bulk-loads from
//     its chain and applies just the tail's per-slot prior→final deltas;
//     anything else — stale, torn, or fuzzy-invalidated — rebuilds from
//     the heap. Content hashes likewise: valid ones delta-adjust from
//     the tail, invalid ones recompute during the rebuild scan.
//
// A reopen that finds an empty tail with every index loaded and every
// hash valid skips the closing checkpoint entirely — the on-disk state
// already is the checkpoint.
func (db *DB) recover() error {
	page := make([]byte, PageSize)
	if err := db.pager.ReadPage(0, page); err != nil {
		return err
	}
	if allZero(page) {
		// The catalog page was allocated but its first write never became
		// durable: the database died before completing initialization, so
		// nothing can have committed. Reinitialize in place, discarding
		// whatever the orphaned WAL holds.
		if err := db.wal.TruncateTo(db.wal.FlushedLSN()); err != nil {
			return err
		}
		return db.writeCatalog()
	}
	cat, err := decodeCatalog(page)
	if err != nil {
		return err
	}
	db.checkpointLSN = cat.checkpointLSN
	db.checkpointID = cat.checkpointID

	records, err := db.wal.Records(db.checkpointLSN)
	if err != nil {
		return err
	}
	// Normalize bulk-load batch records into the per-row records they
	// stand for (stamped with the batch LSN) so the redo/undo/outcome
	// walks below need no batch awareness.
	records, err = expandBatchRecords(records)
	if err != nil {
		return err
	}
	// Per-table tail facts: whether any record touches the table, and the
	// smallest record LSN (the defensive consistency check below).
	touchedMin := map[string]LSN{}
	bornByName := map[string]LSN{}
	for _, ct := range cat.tables {
		bornByName[ct.schema.Name] = ct.bornLSN
	}
	for _, r := range records {
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		if r.LSN < bornByName[r.Table] {
			continue // a dropped previous incarnation's record; ignored throughout
		}
		if cur, ok := touchedMin[r.Table]; !ok || r.LSN < cur {
			touchedMin[r.Table] = r.LSN
		}
	}

	// Build tables; decide per table whether its persisted derived state
	// is usable: the catalog must mark it consistent, and no tail record
	// for the table may predate its snapshot LSN (defense in depth — the
	// capture protocol should make that impossible).
	loadedIdx := map[*Table]map[string]bool{}
	hashOK := map[*Table]bool{}
	for _, ct := range cat.tables {
		heap, err := OpenHeapFile(db.bp, ct.firstPage)
		if err != nil {
			return err
		}
		t := &Table{Schema: ct.schema, Heap: heap, Indexes: map[string]*BTree{}}
		t.snapLSN = ct.snapLSN
		t.bornLSN = ct.bornLSN
		t.derivedValid = ct.derivedValid
		trustDerived := ct.derivedValid
		if minLSN, ok := touchedMin[ct.schema.Name]; ok && minLSN < ct.snapLSN {
			trustDerived = false
		}
		if ct.hasHash {
			cols := make([]int, len(ct.hashCols))
			for i, hc := range ct.hashCols {
				ci := t.Schema.ColIndex(hc)
				if ci < 0 {
					return fmt.Errorf("rdbms: catalog hash column %s missing from %s", hc, ct.schema.Name)
				}
				cols[i] = ci
			}
			t.hashCols = cols
			t.hashColNames = append([]string(nil), ct.hashCols...)
			t.catHash = ct.hash
			t.hash.Store(ct.hash)
			hashOK[t] = trustDerived
		}
		loadedIdx[t] = map[string]bool{}
		for _, ci := range ct.indexes {
			ip := t.idxState(ci.col)
			ip.firstPage = ci.firstPage
			ip.stamp = ci.stamp
			if trustDerived {
				if bt := db.loadIndexCheckpoint(ci); bt != nil {
					t.Indexes[ci.col] = bt
					ip.savedMut = bt.Mutations()
					loadedIdx[t][ci.col] = true
					db.openStats.IndexesLoaded++
					continue
				}
			}
			t.Indexes[ci.col] = NewBTree() // placeholder; rebuilt after replay
			ip.savedMut = -1
			db.openStats.IndexesRebuilt++
		}
		db.tables[ct.schema.Name] = t
	}

	// Analysis: a transaction is resolved if any verdict record survived
	// (an aborted transaction's log carries both its operations and the
	// compensation records Abort wrote while rolling back, so its net
	// outcome is already encoded in its record stream).
	resolved := map[TxnID]bool{}
	for _, r := range records {
		if r.Kind == LogCommit || r.Kind == LogAbort {
			resolved[r.Txn] = true
		}
	}

	// Redo: gated physical replay, in log order, losers included. A
	// record older than its table's bornLSN belongs to a dropped previous
	// incarnation of the name and is skipped everywhere (redo, undo,
	// outcome deltas): replaying it would write ghost rows into — and
	// adopt the old incarnation's pages into — the recreated table.
	// Rows expanded from one batch record share its LSN, and the first
	// row replayed onto a page stamps the page with it — so the page-LSN
	// gate alone would skip every sibling row. The gate decision made for
	// a page at a given LSN therefore carries to the consecutive records
	// with the same (table, page, LSN): siblings of an applied first row
	// are forced in, siblings of a skipped one are skipped (the flush
	// that stamped the page held the whole batch, since batch pages stay
	// pinned until every row is placed).
	type redoPageKey struct {
		table string
		page  PageID
		lsn   LSN
	}
	var lastKey redoPageKey
	var lastApplied bool
	for _, r := range records {
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		t := db.tables[r.Table]
		if t == nil || r.LSN < t.bornLSN {
			continue // table dropped (or recreated) after the record was written
		}
		if err := db.ensureHeapPage(t, r.Row.Page); err != nil {
			return err
		}
		sc := SlotContent{}
		if r.Kind != LogDelete {
			sc = SlotContent{Live: true, Tup: r.After}
		}
		key := redoPageKey{table: r.Table, page: r.Row.Page, lsn: r.LSN}
		if key == lastKey {
			if lastApplied {
				if err := t.Heap.ForceSlot(r.Row, sc, r.LSN); err != nil {
					return err
				}
			}
			continue
		}
		applied, err := t.Heap.RedoSlot(r.Row, sc, r.LSN)
		if err != nil {
			return err
		}
		lastKey, lastApplied = key, applied
	}

	// Undo: roll loser transactions back, newest record first. Undo
	// writes are stamped just below the durable end, so a re-run's redo
	// pass skips everything on those pages (they reflect the whole tail)
	// while records appended after recovery — whose LSNs start at the
	// durable end — still replay.
	undoStamp := db.wal.FlushedLSN()
	if undoStamp > 0 {
		undoStamp--
	}
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		if resolved[r.Txn] {
			continue
		}
		t := db.tables[r.Table]
		if t == nil || r.LSN < t.bornLSN {
			continue
		}
		sc := SlotContent{}
		if r.Kind != LogInsert {
			sc = SlotContent{Live: true, Tup: r.Before}
		}
		if err := t.Heap.ForceSlot(r.Row, sc, undoStamp); err != nil {
			return err
		}
	}

	// Per-slot prior→final outcomes, for the derived-state deltas: the
	// prior is the slot's state at the table's snapshot LSN (what a
	// loaded chain and a valid hash still describe), the final is its
	// post-undo state. The page content itself was already settled by
	// redo+undo above.
	final := map[string]map[RID]*slotOutcome{}
	for _, r := range records {
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		if t := db.tables[r.Table]; t == nil || r.LSN < t.bornLSN {
			continue
		}
		byRID := final[r.Table]
		if byRID == nil {
			byRID = map[RID]*slotOutcome{}
			final[r.Table] = byRID
		}
		st := byRID[r.Row]
		if st == nil {
			st = &slotOutcome{}
			byRID[r.Row] = st
		}
		if !st.priorSet {
			// The first tail record on a slot reveals its snapshot-time
			// content (for a consistency-captured table no record predates
			// the snapshot, so this record's before-image — or, for an
			// insert, the slot's emptiness — is exactly what the chain and
			// hash describe).
			switch r.Kind {
			case LogInsert:
				st.priorLive = false
			case LogDelete, LogUpdate:
				st.priorLive, st.prior = true, r.Before
			}
			st.priorSet = true
		}
		if st.frozen {
			continue // later records on a loser-trailed slot are the same loser's
		}
		if resolved[r.Txn] {
			switch r.Kind {
			case LogInsert, LogUpdate:
				st.live, st.tup = true, r.After
			case LogDelete:
				st.live, st.tup = false, nil
			}
			st.decided = true
		} else {
			// First record of the in-flight loser on this slot: freeze the
			// slot at the state just before it.
			if !st.decided {
				switch r.Kind {
				case LogInsert:
					st.live = false
				case LogDelete, LogUpdate:
					st.live, st.tup = true, r.Before
				}
				st.decided = true
			}
			st.frozen = true
		}
	}

	// Index maintenance: loaded chains take the tail deltas; the rest
	// rebuild from the (now settled) heap. Content hashes ride along —
	// valid ones delta-adjust, invalid ones recompute during the scan.
	allLoaded := true
	allHashesOK := true
	for name, t := range db.tables {
		var touched []RID
		for rid := range final[name] {
			touched = append(touched, rid)
		}
		sort.Slice(touched, func(i, j int) bool { return ridLess(touched[i], touched[j]) })
		needScan := false
		for col := range t.Indexes {
			ci := t.Schema.ColIndex(col)
			if loadedIdx[t][col] {
				idx := t.Indexes[col]
				for _, rid := range touched {
					st := final[name][rid]
					if st.priorLive {
						idx.Delete(st.prior[ci], rid)
					}
					if st.live {
						idx.Insert(st.tup[ci], rid)
					}
				}
				continue
			}
			allLoaded = false
			needScan = true
		}
		if t.hashCols != nil {
			if hashOK[t] {
				var delta uint64
				for _, rid := range touched {
					st := final[name][rid]
					if st.priorLive {
						delta -= t.rowHash(st.prior)
					}
					if st.live {
						delta += t.rowHash(st.tup)
					}
				}
				t.hash.Add(delta)
			} else {
				allHashesOK = false
				needScan = true
			}
		}
		if needScan {
			if err := db.rebuildDerived(t, loadedIdx[t]); err != nil {
				return err
			}
		}
		if len(final[name]) > 0 || needScan {
			// The in-memory state has moved past the persisted snapshot;
			// force the closing checkpoint to re-capture this table.
			t.noteMutation()
		}
	}
	if len(records) == 0 && allLoaded && allHashesOK {
		// Warm reopen: the log is empty, every index came off its chain,
		// every hash is trusted, and nothing was replayed — the on-disk
		// files already are the checkpoint this recovery would write.
		// Skipping it makes the happy reopen O(live data read), with zero
		// writes.
		//
		// allLoaded is also a safety condition, not just an optimization:
		// after ANY failed chain load the closing checkpoint below must
		// run, so the stale chain (whose links may dangle) is rewritten
		// before new allocations can reuse the page ids it points at —
		// see the reuse-safety invariant on chainPages.
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointLocked()
}

// rebuildDerived rescans t's heap once, rebuilding every index that did
// not load from a chain and recomputing the content hash (equal to the
// delta-adjusted value when that was trustworthy, authoritative when it
// was not).
func (db *DB) rebuildDerived(t *Table, loaded map[string]bool) error {
	type rebuild struct {
		name string
		col  int
		bt   *BTree
	}
	var rebuilds []rebuild
	for col := range t.Indexes {
		if loaded[col] {
			continue
		}
		rebuilds = append(rebuilds, rebuild{name: col, col: t.Schema.ColIndex(col), bt: NewBTree()})
	}
	var sum uint64
	err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
		for i := range rebuilds {
			rebuilds[i].bt.Insert(tup[rebuilds[i].col], rid)
		}
		if t.hashCols != nil {
			sum += t.rowHash(tup)
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, rb := range rebuilds {
		t.Indexes[rb.name] = rb.bt
	}
	if t.hashCols != nil {
		t.hash.Store(sum)
	}
	return nil
}

// slotOutcome accumulates one slot's prior (snapshot-time) and final
// (post-recovery) content while walking the log — the delta feed for
// loaded index chains and persisted content hashes.
type slotOutcome struct {
	live    bool
	tup     Tuple
	decided bool // some record has determined this slot's content
	frozen  bool // an in-flight loser touched the slot; no further updates

	// The slot's snapshot-time state, taken from its first tail record:
	// what loaded index checkpoints and persisted content hashes still
	// describe, and therefore the "remove" side of their tail delta.
	prior     Tuple
	priorLive bool
	priorSet  bool
}

// encodeCheckpointInfo serializes the dirty-page table and active
// transaction list carried by a begin-checkpoint record.
func encodeCheckpointInfo(dpt map[PageID]LSN, active map[TxnID]LSN) []byte {
	buf := make([]byte, 0, 8+12*len(dpt)+16*len(active))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(dpt)))
	buf = append(buf, tmp[:4]...)
	pages := make([]PageID, 0, len(dpt))
	for id := range dpt {
		pages = append(pages, id)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, id := range pages {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(id))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(dpt[id]))
		buf = append(buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(active)))
	buf = append(buf, tmp[:4]...)
	txns := make([]TxnID, 0, len(active))
	for id := range active {
		txns = append(txns, id)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	for _, id := range txns {
		binary.LittleEndian.PutUint64(tmp[:], uint64(id))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(active[id]))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// decodeCheckpointInfo parses a begin-checkpoint record's payload.
func decodeCheckpointInfo(data []byte) (dpt map[PageID]LSN, active map[TxnID]LSN, err error) {
	bad := fmt.Errorf("rdbms: truncated checkpoint info")
	if len(data) < 4 {
		return nil, nil, bad
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	off := 4
	dpt = make(map[PageID]LSN, n)
	for i := 0; i < n; i++ {
		if len(data) < off+12 {
			return nil, nil, bad
		}
		id := PageID(binary.LittleEndian.Uint32(data[off : off+4]))
		dpt[id] = LSN(binary.LittleEndian.Uint64(data[off+4 : off+12]))
		off += 12
	}
	if len(data) < off+4 {
		return nil, nil, bad
	}
	n = int(binary.LittleEndian.Uint32(data[off : off+4]))
	off += 4
	active = make(map[TxnID]LSN, n)
	for i := 0; i < n; i++ {
		if len(data) < off+16 {
			return nil, nil, bad
		}
		id := TxnID(binary.LittleEndian.Uint64(data[off : off+8]))
		active[id] = LSN(binary.LittleEndian.Uint64(data[off+8 : off+16]))
		off += 16
	}
	return dpt, active, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ensureHeapPage makes sure the page referenced by a log record exists in
// the pager and belongs to the table's heap chain. Pages allocated before
// a crash may never have reached disk; recovery recreates them.
func (db *DB) ensureHeapPage(t *Table, id PageID) error {
	for db.pager.NumPages() <= id {
		if _, err := db.pager.Allocate(); err != nil {
			return err
		}
	}
	if !t.Heap.Contains(id) {
		return t.Heap.Adopt(id)
	}
	return nil
}

func tupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			return false
		}
		if !Equal(a[i], b[i]) && !(a[i].IsNull() && b[i].IsNull()) {
			return false
		}
	}
	return true
}
