package rdbms

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DB is the database engine facade: catalog, storage, WAL, lock manager,
// and transaction lifecycle. The durability protocol is steal/no-force
// with logical logging: dirty pages may be written back at any time (the
// buffer pool flushes the WAL first, honouring the WAL rule), commits
// force only the log, aborts write compensation records for their
// physical restores, and recovery materializes each touched slot's final
// state from the post-checkpoint log (see recover).
//
// DDL (CREATE TABLE / CREATE INDEX / DROP TABLE) is not logged: each DDL
// statement performs a full quiesced checkpoint, so the catalog is always
// consistent with a checkpoint boundary. Indexes are rebuilt from the
// heap when a database is opened.
type DB struct {
	mu     sync.RWMutex // guards tables map and checkpointing
	pager  Pager
	bp     *BufferPool
	wal    *WAL
	lm     *LockManager
	tables map[string]*Table

	// ownsStorage marks databases built by OpenDir, whose Close also
	// closes the pager and WAL it opened. dirLock is OpenDir's exclusive
	// flock on the directory, released by Close.
	ownsStorage bool
	dirLock     *os.File

	txnMu   sync.Mutex
	nextTxn TxnID
	active  map[TxnID]*Txn

	checkpointLSN LSN
}

// Options configures Open.
type Options struct {
	BufferPages int // buffer pool capacity (default 256)
}

// DataFileName and WALFileName are the files OpenDir manages inside its
// directory.
const (
	DataFileName = "data.udb"
	WALFileName  = "wal.udb"
)

// OpenDir opens (creating if needed) an on-disk database rooted at dir:
// checksummed pages in dir/data.udb, the write-ahead log in dir/wal.udb.
// An existing directory is recovered — torn WAL tail truncated, committed
// work redone, losers undone — and Close checkpoints and releases both
// files, so OpenDir → work → Close → OpenDir is the full crash-safe
// lifecycle.
func OpenDir(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDBDir(dir)
	if err != nil {
		return nil, err
	}
	pager, err := OpenFilePager(filepath.Join(dir, DataFileName))
	if err != nil {
		lock.Close()
		return nil, err
	}
	wal, err := OpenFileWAL(filepath.Join(dir, WALFileName))
	if err != nil {
		pager.Close()
		lock.Close()
		return nil, err
	}
	db, err := Open(pager, wal, opts)
	if err != nil {
		pager.Close()
		wal.Close()
		lock.Close()
		return nil, err
	}
	db.ownsStorage = true
	db.dirLock = lock
	return db, nil
}

// Open initializes a database over pager and wal. A fresh pager gets a new
// catalog; an existing one is recovered (catalog load, WAL redo/undo,
// index rebuild). The buffer pool enforces the WAL rule for every dirty
// page it writes back.
func Open(pager Pager, wal *WAL, opts Options) (*DB, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 256
	}
	db := &DB{
		pager:  pager,
		wal:    wal,
		lm:     NewLockManager(),
		tables: make(map[string]*Table),
		active: make(map[TxnID]*Txn),
	}
	db.bp = NewBufferPool(pager, wal, opts.BufferPages)
	if pager.NumPages() == 0 {
		// Fresh database: allocate and write the catalog page.
		id, err := pager.Allocate()
		if err != nil {
			return nil, err
		}
		if id != 0 {
			return nil, fmt.Errorf("rdbms: catalog page allocated as %d, want 0", id)
		}
		if err := db.writeCatalog(); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) writeCatalog() error {
	cat := catalogData{checkpointLSN: db.checkpointLSN}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		ct := catalogTable{schema: t.Schema, firstPage: t.Heap.FirstPage()}
		for col := range t.Indexes {
			ct.indexCols = append(ct.indexCols, col)
		}
		cat.tables = append(cat.tables, ct)
	}
	page, err := encodeCatalog(&cat)
	if err != nil {
		return err
	}
	if err := db.pager.WritePage(0, page); err != nil {
		return err
	}
	return db.pager.Sync()
}

// Checkpoint flushes the WAL and all dirty pages, then records the durable
// LSN in the catalog. It requires a quiesced system (no active
// transactions) so that the checkpoint is a clean recovery boundary.
func (db *DB) Checkpoint() error {
	db.txnMu.Lock()
	n := len(db.active)
	db.txnMu.Unlock()
	if n > 0 {
		return fmt.Errorf("rdbms: checkpoint with %d active transactions", n)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked makes the checkpoint durable in three ordered steps,
// each of which leaves a recoverable state if the next is lost to a
// crash: (1) flush the WAL and every dirty page — the data files now hold
// all committed work; (2) reset (truncate) the WAL, which is safe because
// step 1 made the log redundant, and which bounds log growth at every
// checkpoint; (3) write the catalog with checkpointLSN 0. A crash between
// 2 and 3 leaves a catalog LSN pointing past the now-empty log, which a
// recovery scan reads as "no records" — correct, since the pages are
// complete.
func (db *DB) checkpointLocked() error {
	if err := db.wal.Flush(); err != nil {
		return err
	}
	if err := db.bp.Flush(); err != nil {
		return err
	}
	if err := db.wal.Reset(); err != nil {
		return err
	}
	db.checkpointLSN = 0
	return db.writeCatalog()
}

// CreateTable adds a table and checkpoints.
func (db *DB) CreateTable(schema TableSchema) error {
	if len(schema.Columns) == 0 {
		return fmt.Errorf("rdbms: table %s needs at least one column", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if seen[c.Name] {
			return fmt.Errorf("rdbms: duplicate column %s", c.Name)
		}
		seen[c.Name] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Name]; ok {
		return fmt.Errorf("rdbms: table %s already exists", schema.Name)
	}
	heap, err := CreateHeapFile(db.bp)
	if err != nil {
		return err
	}
	db.tables[schema.Name] = &Table{Schema: schema, Heap: heap, Indexes: map[string]*BTree{}}
	return db.checkpointLocked()
}

// DropTable removes a table. Its pages are abandoned (no free-list reuse).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("rdbms: table %s does not exist", name)
	}
	delete(db.tables, name)
	return db.checkpointLocked()
}

// CreateIndex builds a B+tree index on a column and checkpoints.
func (db *DB) CreateIndex(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("rdbms: table %s does not exist", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("rdbms: no column %s in %s", column, table)
	}
	if _, ok := t.Indexes[column]; ok {
		return fmt.Errorf("rdbms: index on %s.%s already exists", table, column)
	}
	idx := NewBTree()
	err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
		idx.Insert(tup[ci], rid)
		return true
	})
	if err != nil {
		return err
	}
	t.Indexes[column] = idx
	return db.checkpointLocked()
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LockManager exposes the lock manager (for tests and diagnostics).
func (db *DB) LockManager() *LockManager { return db.lm }

// BufferStats returns buffer pool hit/miss counters.
func (db *DB) BufferStats() (hits, misses int64) { return db.bp.Stats() }

// Close checkpoints (flushing the WAL and all dirty pages, then resetting
// the log) and releases the storage this DB owns. The database must be
// quiesced. After Close, OpenDir on the same directory reopens the
// database from its data file alone.
func (db *DB) Close() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if err := db.pager.Close(); err != nil {
		return err
	}
	if db.ownsStorage {
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	if db.dirLock != nil {
		return db.dirLock.Close()
	}
	return nil
}

// recover loads the catalog and replays the WAL: redo committed work after
// the checkpoint, undo losers, rebuild indexes, and checkpoint.
func (db *DB) recover() error {
	page := make([]byte, PageSize)
	if err := db.pager.ReadPage(0, page); err != nil {
		return err
	}
	if allZero(page) {
		// The catalog page was allocated but its first write never became
		// durable: the database died before completing initialization, so
		// nothing can have committed. Reinitialize in place, discarding
		// whatever the orphaned WAL holds.
		if err := db.wal.Reset(); err != nil {
			return err
		}
		return db.writeCatalog()
	}
	cat, err := decodeCatalog(page)
	if err != nil {
		return err
	}
	db.checkpointLSN = cat.checkpointLSN
	for _, ct := range cat.tables {
		heap, err := OpenHeapFile(db.bp, ct.firstPage)
		if err != nil {
			return err
		}
		t := &Table{Schema: ct.schema, Heap: heap, Indexes: map[string]*BTree{}}
		for _, col := range ct.indexCols {
			t.Indexes[col] = NewBTree() // populated after replay
		}
		db.tables[ct.schema.Name] = t
	}

	records, err := db.wal.Records(db.checkpointLSN)
	if err != nil {
		return err
	}
	// Analysis: a transaction is resolved if any verdict record survived
	// (an aborted transaction's log carries both its operations and the
	// compensation records Abort wrote while rolling back, so its net
	// outcome is already encoded in its record stream).
	resolved := map[TxnID]bool{}
	for _, r := range records {
		if r.Kind == LogCommit || r.Kind == LogAbort {
			resolved[r.Txn] = true
		}
	}
	// Logical state materialization. Replaying records one at a time
	// against pages whose on-disk state may already reflect *later*
	// operations creates hybrid page states that never existed in any
	// execution — transiently overflowing pages and forcing rows to move
	// off their logged RIDs, which corrupts every subsequent RID-targeted
	// replay decision. Instead, compute each touched slot's final
	// post-recovery content directly from the log, then write every page
	// once:
	//   - a slot's final content is the outcome of the last resolved
	//     record that touched it (strict 2PL serializes per-slot record
	//     streams, so "last" is well defined);
	//   - a verdict-less transaction (in flight at the crash) still held
	//     its locks, so its records are the slot's trailing suffix; the
	//     slot reverts to the state just before that suffix — the prior
	//     resolved outcome, or the loser's own first before-image when
	//     the whole post-checkpoint stream belongs to it;
	//   - untouched slots keep their on-disk content (covered by the
	//     checkpoint).
	// The materialized page state is one a live execution would have
	// reached by aborting the losers at crash time, so it always fits
	// its page (after compaction) and no row ever changes RID.
	final := map[string]map[RID]*slotOutcome{}
	for _, r := range records {
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		if db.tables[r.Table] == nil {
			continue // table dropped after the record was written
		}
		byRID := final[r.Table]
		if byRID == nil {
			byRID = map[RID]*slotOutcome{}
			final[r.Table] = byRID
		}
		st := byRID[r.Row]
		if st == nil {
			st = &slotOutcome{}
			byRID[r.Row] = st
		}
		if st.frozen {
			continue // later records on a loser-trailed slot are the same loser's
		}
		if resolved[r.Txn] {
			switch r.Kind {
			case LogInsert, LogUpdate:
				st.live, st.tup = true, r.After
			case LogDelete:
				st.live, st.tup = false, nil
			}
			st.decided = true
		} else {
			// First record of the in-flight loser on this slot: freeze the
			// slot at the state just before it.
			if !st.decided {
				switch r.Kind {
				case LogInsert:
					st.live = false
				case LogDelete, LogUpdate:
					st.live, st.tup = true, r.Before
				}
				st.decided = true
			}
			st.frozen = true
		}
	}
	for _, name := range sortedKeys(final) {
		t := db.tables[name]
		byPage := map[PageID]map[uint16]SlotContent{}
		for rid, st := range final[name] {
			if byPage[rid.Page] == nil {
				byPage[rid.Page] = map[uint16]SlotContent{}
			}
			byPage[rid.Page][rid.Slot] = SlotContent{Live: st.live, Tup: st.tup}
		}
		pages := make([]PageID, 0, len(byPage))
		for pid := range byPage {
			pages = append(pages, pid)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, pid := range pages {
			if err := db.ensureHeapPage(t, pid); err != nil {
				return err
			}
			if err := t.Heap.MaterializeSlots(pid, byPage[pid]); err != nil {
				return err
			}
		}
	}
	// Rebuild indexes from heap contents.
	for _, t := range db.tables {
		for col := range t.Indexes {
			ci := t.Schema.ColIndex(col)
			fresh := NewBTree()
			err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
				fresh.Insert(tup[ci], rid)
				return true
			})
			if err != nil {
				return err
			}
			t.Indexes[col] = fresh
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// slotOutcome accumulates one slot's final post-recovery content while
// walking the log.
type slotOutcome struct {
	live    bool
	tup     Tuple
	decided bool // some record has determined this slot's content
	frozen  bool // an in-flight loser touched the slot; no further updates
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ensureHeapPage makes sure the page referenced by a log record exists in
// the pager and belongs to the table's heap chain. Pages allocated before
// a crash may never have reached disk; recovery recreates them.
func (db *DB) ensureHeapPage(t *Table, id PageID) error {
	for db.pager.NumPages() <= id {
		if _, err := db.pager.Allocate(); err != nil {
			return err
		}
	}
	if !t.Heap.Contains(id) {
		return t.Heap.Adopt(id)
	}
	return nil
}

func tupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			return false
		}
		if !Equal(a[i], b[i]) && !(a[i].IsNull() && b[i].IsNull()) {
			return false
		}
	}
	return true
}
