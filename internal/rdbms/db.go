package rdbms

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DB is the database engine facade: catalog, storage, WAL, lock manager,
// and transaction lifecycle. The durability protocol is steal/no-force
// with logical logging: dirty pages may be written back at any time (the
// buffer pool flushes the WAL first, honouring the WAL rule), commits
// force only the log, aborts write compensation records for their
// physical restores, and recovery materializes each touched slot's final
// state from the post-checkpoint log (see recover).
//
// DDL (CREATE TABLE / CREATE INDEX / DROP TABLE) is not logged: each DDL
// statement performs a full quiesced checkpoint, so the catalog is always
// consistent with a checkpoint boundary. Indexes are rebuilt from the
// heap when a database is opened.
type DB struct {
	mu     sync.RWMutex // guards tables map and checkpointing
	pager  Pager
	bp     *BufferPool
	wal    *WAL
	lm     *LockManager
	tables map[string]*Table

	// ownsStorage marks databases built by OpenDir, whose Close also
	// closes the pager and WAL it opened. dirLock is OpenDir's exclusive
	// flock on the directory, released by Close.
	ownsStorage bool
	dirLock     *os.File

	txnMu   sync.Mutex
	nextTxn TxnID
	active  map[TxnID]*Txn

	checkpointLSN LSN
	// checkpointID is a monotonically increasing checkpoint generation
	// counter (persisted in the catalog). Index checkpoint chains are
	// stamped with it; a chain whose stamp disagrees with the catalog
	// belongs to another generation and is rejected at load.
	checkpointID uint64

	rebuildIndexes bool      // Options.RebuildIndexes: skip checkpoint loads
	openStats      OpenStats // what the last recover() did with indexes
}

// Options configures Open.
type Options struct {
	BufferPages int // buffer pool capacity (default 256)
	// RebuildIndexes disables loading indexes from their checkpoint
	// chains, forcing the legacy full rebuild from the heap (benchmarks
	// and tests of the fallback path).
	RebuildIndexes bool
}

// OpenStats reports how recovery reconstructed secondary structures.
type OpenStats struct {
	// IndexesLoaded counts indexes restored from a valid checkpoint chain
	// (bulk load + WAL-tail delta); IndexesRebuilt counts fallbacks to
	// the full heap-scan rebuild (missing, stale, or torn chains).
	IndexesLoaded  int
	IndexesRebuilt int
}

// LastOpenStats returns the index-reconstruction stats of the recovery
// that opened this database (zero for a freshly created one).
func (db *DB) LastOpenStats() OpenStats { return db.openStats }

// DataFileName and WALFileName are the files OpenDir manages inside its
// directory.
const (
	DataFileName = "data.udb"
	WALFileName  = "wal.udb"
)

// OpenDir opens (creating if needed) an on-disk database rooted at dir:
// checksummed pages in dir/data.udb, the write-ahead log in dir/wal.udb.
// An existing directory is recovered — torn WAL tail truncated, committed
// work redone, losers undone — and Close checkpoints and releases both
// files, so OpenDir → work → Close → OpenDir is the full crash-safe
// lifecycle.
func OpenDir(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDBDir(dir)
	if err != nil {
		return nil, err
	}
	pager, err := OpenFilePager(filepath.Join(dir, DataFileName))
	if err != nil {
		lock.Close()
		return nil, err
	}
	wal, err := OpenFileWAL(filepath.Join(dir, WALFileName))
	if err != nil {
		pager.Close()
		lock.Close()
		return nil, err
	}
	db, err := Open(pager, wal, opts)
	if err != nil {
		pager.Close()
		wal.Close()
		lock.Close()
		return nil, err
	}
	db.ownsStorage = true
	db.dirLock = lock
	return db, nil
}

// Open initializes a database over pager and wal. A fresh pager gets a new
// catalog; an existing one is recovered (catalog load, WAL redo/undo,
// index rebuild). The buffer pool enforces the WAL rule for every dirty
// page it writes back.
func Open(pager Pager, wal *WAL, opts Options) (*DB, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 256
	}
	db := &DB{
		pager:          pager,
		wal:            wal,
		lm:             NewLockManager(),
		tables:         make(map[string]*Table),
		active:         make(map[TxnID]*Txn),
		rebuildIndexes: opts.RebuildIndexes,
	}
	db.bp = NewBufferPool(pager, wal, opts.BufferPages)
	if pager.NumPages() == 0 {
		// Fresh database: allocate and write the catalog page.
		id, err := pager.Allocate()
		if err != nil {
			return nil, err
		}
		if id != 0 {
			return nil, fmt.Errorf("rdbms: catalog page allocated as %d, want 0", id)
		}
		if err := db.writeCatalog(); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) writeCatalog() error {
	cat := catalogData{checkpointLSN: db.checkpointLSN, checkpointID: db.checkpointID}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		ct := catalogTable{schema: t.Schema, firstPage: t.Heap.FirstPage()}
		if t.hashCols != nil {
			ct.hasHash = true
			ct.hashCols = t.hashColNames
			ct.hash = t.hash.Load()
		}
		for col := range t.Indexes {
			ci := catalogIndex{col: col, firstPage: InvalidPage}
			if ip := t.idx[col]; ip != nil {
				ci.firstPage = ip.firstPage
				ci.stamp = ip.stamp
			}
			ct.indexes = append(ct.indexes, ci)
		}
		cat.tables = append(cat.tables, ct)
	}
	page, err := encodeCatalog(&cat)
	if err != nil {
		return err
	}
	if err := db.pager.WritePage(0, page); err != nil {
		return err
	}
	return db.pager.Sync()
}

// Checkpoint flushes the WAL and all dirty pages, then records the durable
// LSN in the catalog. It requires a quiesced system (no active
// transactions) so that the checkpoint is a clean recovery boundary.
func (db *DB) Checkpoint() error {
	db.txnMu.Lock()
	n := len(db.active)
	db.txnMu.Unlock()
	if n > 0 {
		return fmt.Errorf("rdbms: checkpoint with %d active transactions", n)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked makes the checkpoint durable in five ordered steps,
// each of which leaves a recoverable state if the next is lost to a
// crash: (1) flush the WAL and every dirty page — the data files now
// hold all committed work; (2) serialize changed indexes into their
// stamped checkpoint chains (a chain that fails to persist whole is
// rejected by its CRC/stamp at load and the index rebuilt, so no
// ordering against the catalog is required); (3) write the catalog with
// the fresh chain stamps and content-hash accumulators, pointing
// checkpointLSN at the current end of the log — a replay origin with an
// empty suffix; (4) reset (truncate) the WAL, which is safe because
// step 1 made the log redundant, and which bounds log growth at every
// checkpoint; (5) rewrite the catalog with checkpointLSN 0.
//
// Step 3 exists for the derived metadata: a crash between 4 and 5 used
// to leave the previous catalog — whose content hash and chain stamps
// describe an older table state — alongside a log the reset had already
// emptied, so the WAL-tail adjustment that normally reconciles them had
// nothing to replay (the fault harness caught the content hash going
// stale exactly there). With the pre-reset catalog in place, every
// crash window pairs a catalog with a log whose post-checkpointLSN
// suffix is exactly the work the catalog has not seen: full log before
// step 3, empty suffix (LSN at old log end, or 0) afterwards.
func (db *DB) checkpointLocked() error {
	if err := db.wal.Flush(); err != nil {
		return err
	}
	if err := db.bp.Flush(); err != nil {
		return err
	}
	if err := db.writeIndexCheckpoints(); err != nil {
		return err
	}
	db.checkpointLSN = db.wal.FlushedLSN()
	if err := db.writeCatalog(); err != nil {
		return err
	}
	if err := db.wal.Reset(); err != nil {
		return err
	}
	db.checkpointLSN = 0
	return db.writeCatalog()
}

// CreateTable adds a table and checkpoints.
func (db *DB) CreateTable(schema TableSchema) error {
	if len(schema.Columns) == 0 {
		return fmt.Errorf("rdbms: table %s needs at least one column", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if seen[c.Name] {
			return fmt.Errorf("rdbms: duplicate column %s", c.Name)
		}
		seen[c.Name] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Name]; ok {
		return fmt.Errorf("rdbms: table %s already exists", schema.Name)
	}
	heap, err := CreateHeapFile(db.bp)
	if err != nil {
		return err
	}
	db.tables[schema.Name] = &Table{Schema: schema, Heap: heap, Indexes: map[string]*BTree{}}
	return db.checkpointLocked()
}

// DropTable removes a table. Its pages are abandoned (no free-list reuse).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("rdbms: table %s does not exist", name)
	}
	delete(db.tables, name)
	return db.checkpointLocked()
}

// CreateIndex builds a B+tree index on a column and checkpoints.
func (db *DB) CreateIndex(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("rdbms: table %s does not exist", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("rdbms: no column %s in %s", column, table)
	}
	if _, ok := t.Indexes[column]; ok {
		return fmt.Errorf("rdbms: index on %s.%s already exists", table, column)
	}
	idx := NewBTree()
	err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
		idx.Insert(tup[ci], rid)
		return true
	})
	if err != nil {
		return err
	}
	t.Indexes[column] = idx
	return db.checkpointLocked()
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LockManager exposes the lock manager (for tests and diagnostics).
func (db *DB) LockManager() *LockManager { return db.lm }

// BufferStats returns buffer pool hit/miss counters.
func (db *DB) BufferStats() (hits, misses int64) { return db.bp.Stats() }

// WALSyncs returns the number of WAL device syncs performed so far: the
// group-commit amortization diagnostic (commits per sync).
func (db *DB) WALSyncs() int64 { return db.wal.Syncs() }

// Close checkpoints (flushing the WAL and all dirty pages, then resetting
// the log) and releases the storage this DB owns. The database must be
// quiesced. After Close, OpenDir on the same directory reopens the
// database from its data file alone.
func (db *DB) Close() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if err := db.pager.Close(); err != nil {
		return err
	}
	if db.ownsStorage {
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	if db.dirLock != nil {
		return db.dirLock.Close()
	}
	return nil
}

// recover loads the catalog and replays the WAL: redo committed work
// after the checkpoint, undo losers, restore indexes (from their
// checkpoint chains plus the WAL tail when possible, by full heap
// rebuild otherwise), adjust content hashes, and checkpoint. A reopen
// that finds an empty log and loads every index skips the closing
// checkpoint entirely — the on-disk state is already exactly the
// checkpoint.
func (db *DB) recover() error {
	page := make([]byte, PageSize)
	if err := db.pager.ReadPage(0, page); err != nil {
		return err
	}
	if allZero(page) {
		// The catalog page was allocated but its first write never became
		// durable: the database died before completing initialization, so
		// nothing can have committed. Reinitialize in place, discarding
		// whatever the orphaned WAL holds.
		if err := db.wal.Reset(); err != nil {
			return err
		}
		return db.writeCatalog()
	}
	cat, err := decodeCatalog(page)
	if err != nil {
		return err
	}
	db.checkpointLSN = cat.checkpointLSN
	db.checkpointID = cat.checkpointID
	// loadedIdx marks indexes restored from a checkpoint chain; the rest
	// are rebuilt from the heap after replay.
	loadedIdx := map[*Table]map[string]bool{}
	for _, ct := range cat.tables {
		heap, err := OpenHeapFile(db.bp, ct.firstPage)
		if err != nil {
			return err
		}
		t := &Table{Schema: ct.schema, Heap: heap, Indexes: map[string]*BTree{}}
		if ct.hasHash {
			cols := make([]int, len(ct.hashCols))
			for i, hc := range ct.hashCols {
				ci := t.Schema.ColIndex(hc)
				if ci < 0 {
					return fmt.Errorf("rdbms: catalog hash column %s missing from %s", hc, ct.schema.Name)
				}
				cols[i] = ci
			}
			t.hashCols = cols
			t.hashColNames = append([]string(nil), ct.hashCols...)
			t.hash.Store(ct.hash)
		}
		loadedIdx[t] = map[string]bool{}
		for _, ci := range ct.indexes {
			ip := t.idxState(ci.col)
			ip.firstPage = ci.firstPage
			ip.stamp = ci.stamp
			if bt := db.loadIndexCheckpoint(ci); bt != nil {
				t.Indexes[ci.col] = bt
				ip.savedMut = bt.Mutations()
				loadedIdx[t][ci.col] = true
				db.openStats.IndexesLoaded++
				continue
			}
			t.Indexes[ci.col] = NewBTree() // placeholder; rebuilt after replay
			ip.savedMut = -1
			db.openStats.IndexesRebuilt++
		}
		db.tables[ct.schema.Name] = t
	}

	records, err := db.wal.Records(db.checkpointLSN)
	if err != nil {
		return err
	}
	// Analysis: a transaction is resolved if any verdict record survived
	// (an aborted transaction's log carries both its operations and the
	// compensation records Abort wrote while rolling back, so its net
	// outcome is already encoded in its record stream).
	resolved := map[TxnID]bool{}
	for _, r := range records {
		if r.Kind == LogCommit || r.Kind == LogAbort {
			resolved[r.Txn] = true
		}
	}
	// Logical state materialization. Replaying records one at a time
	// against pages whose on-disk state may already reflect *later*
	// operations creates hybrid page states that never existed in any
	// execution — transiently overflowing pages and forcing rows to move
	// off their logged RIDs, which corrupts every subsequent RID-targeted
	// replay decision. Instead, compute each touched slot's final
	// post-recovery content directly from the log, then write every page
	// once:
	//   - a slot's final content is the outcome of the last resolved
	//     record that touched it (strict 2PL serializes per-slot record
	//     streams, so "last" is well defined);
	//   - a verdict-less transaction (in flight at the crash) still held
	//     its locks, so its records are the slot's trailing suffix; the
	//     slot reverts to the state just before that suffix — the prior
	//     resolved outcome, or the loser's own first before-image when
	//     the whole post-checkpoint stream belongs to it;
	//   - untouched slots keep their on-disk content (covered by the
	//     checkpoint).
	// The materialized page state is one a live execution would have
	// reached by aborting the losers at crash time, so it always fits
	// its page (after compaction) and no row ever changes RID.
	final := map[string]map[RID]*slotOutcome{}
	for _, r := range records {
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		if db.tables[r.Table] == nil {
			continue // table dropped after the record was written
		}
		byRID := final[r.Table]
		if byRID == nil {
			byRID = map[RID]*slotOutcome{}
			final[r.Table] = byRID
		}
		st := byRID[r.Row]
		if st == nil {
			st = &slotOutcome{}
			byRID[r.Row] = st
		}
		if !st.priorSet {
			// The first post-checkpoint record on a slot reveals its
			// checkpoint-time content (checkpoints quiesce, so no record
			// predates the slot's first toucher): an insert means the slot
			// was dead, a delete/update carries the before-image. Loaded
			// index checkpoints and persisted content hashes describe that
			// state; the prior image is what their WAL-tail delta removes.
			switch r.Kind {
			case LogInsert:
				st.priorLive = false
			case LogDelete, LogUpdate:
				st.priorLive, st.prior = true, r.Before
			}
			st.priorSet = true
		}
		if st.frozen {
			continue // later records on a loser-trailed slot are the same loser's
		}
		if resolved[r.Txn] {
			switch r.Kind {
			case LogInsert, LogUpdate:
				st.live, st.tup = true, r.After
			case LogDelete:
				st.live, st.tup = false, nil
			}
			st.decided = true
		} else {
			// First record of the in-flight loser on this slot: freeze the
			// slot at the state just before it.
			if !st.decided {
				switch r.Kind {
				case LogInsert:
					st.live = false
				case LogDelete, LogUpdate:
					st.live, st.tup = true, r.Before
				}
				st.decided = true
			}
			st.frozen = true
		}
	}
	for _, name := range sortedKeys(final) {
		t := db.tables[name]
		byPage := map[PageID]map[uint16]SlotContent{}
		for rid, st := range final[name] {
			if byPage[rid.Page] == nil {
				byPage[rid.Page] = map[uint16]SlotContent{}
			}
			byPage[rid.Page][rid.Slot] = SlotContent{Live: st.live, Tup: st.tup}
		}
		pages := make([]PageID, 0, len(byPage))
		for pid := range byPage {
			pages = append(pages, pid)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, pid := range pages {
			if err := db.ensureHeapPage(t, pid); err != nil {
				return err
			}
			if err := t.Heap.MaterializeSlots(pid, byPage[pid]); err != nil {
				return err
			}
		}
	}
	// Index maintenance. A checkpoint-loaded index reflects the
	// checkpoint-time heap; the touched slots' prior→final transitions
	// are exactly the delta the WAL tail applies to it. Indexes that
	// could not be loaded rebuild from the heap as before.
	allLoaded := true
	for name, t := range db.tables {
		var touched []RID
		for rid := range final[name] {
			touched = append(touched, rid)
		}
		sort.Slice(touched, func(i, j int) bool { return ridLess(touched[i], touched[j]) })
		for col := range t.Indexes {
			ci := t.Schema.ColIndex(col)
			if loadedIdx[t][col] {
				idx := t.Indexes[col]
				for _, rid := range touched {
					st := final[name][rid]
					if st.priorLive {
						idx.Delete(st.prior[ci], rid)
					}
					if st.live {
						idx.Insert(st.tup[ci], rid)
					}
				}
				continue
			}
			allLoaded = false
			fresh := NewBTree()
			err := t.Heap.Scan(func(rid RID, tup Tuple) bool {
				fresh.Insert(tup[ci], rid)
				return true
			})
			if err != nil {
				return err
			}
			t.Indexes[col] = fresh
		}
	}
	// Content hashes: the catalog holds each table's checkpoint-time
	// digest; fold in the touched slots' prior→final deltas so the
	// in-memory accumulator describes the recovered (committed) state.
	for name, slots := range final {
		t := db.tables[name]
		if t.hashCols == nil {
			continue
		}
		var delta uint64
		for _, st := range slots {
			if st.priorLive {
				delta -= t.rowHash(st.prior)
			}
			if st.live {
				delta += t.rowHash(st.tup)
			}
		}
		t.hash.Add(delta)
	}
	if len(records) == 0 && db.checkpointLSN == 0 && allLoaded {
		// Warm reopen: the log is empty, every index came off its chain,
		// and nothing was replayed — the on-disk files already are the
		// checkpoint this recovery would write. Skipping it makes the
		// happy reopen O(live data read), with zero writes.
		//
		// allLoaded is also a safety condition, not just an optimization:
		// after ANY failed chain load the closing checkpoint below must
		// run, so the stale chain (whose links may dangle) is rewritten
		// before new allocations can reuse the page ids it points at —
		// see the reuse-safety invariant on chainPages.
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// slotOutcome accumulates one slot's final post-recovery content while
// walking the log.
type slotOutcome struct {
	live    bool
	tup     Tuple
	decided bool // some record has determined this slot's content
	frozen  bool // an in-flight loser touched the slot; no further updates

	// The slot's checkpoint-time state, taken from its first
	// post-checkpoint record: what loaded index checkpoints and persisted
	// content hashes still describe, and therefore the "remove" side of
	// their WAL-tail delta.
	prior     Tuple
	priorLive bool
	priorSet  bool
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ensureHeapPage makes sure the page referenced by a log record exists in
// the pager and belongs to the table's heap chain. Pages allocated before
// a crash may never have reached disk; recovery recreates them.
func (db *DB) ensureHeapPage(t *Table, id PageID) error {
	for db.pager.NumPages() <= id {
		if _, err := db.pager.Allocate(); err != nil {
			return err
		}
	}
	if !t.Heap.Contains(id) {
		return t.Heap.Adopt(id)
	}
	return nil
}

func tupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			return false
		}
		if !Equal(a[i], b[i]) && !(a[i].IsNull() && b[i].IsNull()) {
			return false
		}
	}
	return true
}
