package rdbms

import (
	"sync"
	"testing"
	"time"
)

func TestLockModeCompatibility(t *testing.T) {
	// Standard multi-granularity matrix (no SIX).
	cases := []struct {
		a, b LockMode
		want bool
	}{
		{LockIS, LockIS, true}, {LockIS, LockIX, true}, {LockIS, LockShared, true}, {LockIS, LockExclusive, false},
		{LockIX, LockIS, true}, {LockIX, LockIX, true}, {LockIX, LockShared, false}, {LockIX, LockExclusive, false},
		{LockShared, LockIS, true}, {LockShared, LockIX, false}, {LockShared, LockShared, true}, {LockShared, LockExclusive, false},
		{LockExclusive, LockIS, false}, {LockExclusive, LockIX, false}, {LockExclusive, LockShared, false}, {LockExclusive, LockExclusive, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.want {
			t.Errorf("compatible(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLockCovers(t *testing.T) {
	if !covers(LockExclusive, LockShared) || !covers(LockExclusive, LockIX) {
		t.Fatal("X covers everything")
	}
	if !covers(LockShared, LockIS) {
		t.Fatal("S covers IS")
	}
	if covers(LockShared, LockIX) {
		t.Fatal("S does not cover IX")
	}
	if covers(LockIS, LockShared) {
		t.Fatal("IS does not cover S")
	}
	if upgraded(LockShared, LockIX) != LockExclusive {
		t.Fatal("S+IX should escalate to X")
	}
}

func TestLockSharedConcurrent(t *testing.T) {
	lm := NewLockManager()
	key := TableLock("t")
	if err := lm.Acquire(1, key, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, key, LockShared); err != nil {
		t.Fatal(err)
	}
	if !lm.Held(1, key, LockShared) || !lm.Held(2, key, LockShared) {
		t.Fatal("both should hold S")
	}
}

func TestLockExclusiveBlocks(t *testing.T) {
	lm := NewLockManager()
	key := RowLock("t", RID{Page: 1, Slot: 1})
	if err := lm.Acquire(1, key, LockExclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- lm.Acquire(2, key, LockExclusive)
	}()
	select {
	case <-acquired:
		t.Fatal("second X should block")
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
	if !lm.Held(2, key, LockExclusive) {
		t.Fatal("txn 2 should hold the lock now")
	}
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager()
	key := RowLock("t", RID{Page: 1, Slot: 1})
	if err := lm.Acquire(1, key, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, key, LockExclusive); err != nil {
		t.Fatal(err)
	}
	if !lm.Held(1, key, LockExclusive) {
		t.Fatal("upgrade failed")
	}
}

func TestLockReentrant(t *testing.T) {
	lm := NewLockManager()
	key := TableLock("t")
	for i := 0; i < 3; i++ {
		if err := lm.Acquire(1, key, LockIX); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager()
	a := RowLock("t", RID{Page: 1, Slot: 1})
	b := RowLock("t", RID{Page: 1, Slot: 2})
	if err := lm.Acquire(1, a, LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, b, LockExclusive); err != nil {
		t.Fatal(err)
	}
	// Txn 1 waits for b (held by 2).
	errCh := make(chan error, 1)
	go func() { errCh <- lm.Acquire(1, b, LockExclusive) }()
	time.Sleep(20 * time.Millisecond)
	// Txn 2 requesting a would close the cycle: must get ErrDeadlock.
	err := lm.Acquire(2, a, LockExclusive)
	if err != ErrDeadlock {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	if lm.Deadlocks() != 1 {
		t.Fatalf("deadlock count = %d", lm.Deadlocks())
	}
	// Victim aborts; txn 1 proceeds.
	lm.ReleaseAll(2)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("txn 1 never acquired after victim released")
	}
	lm.ReleaseAll(1)
}

func TestIntentModesAllowDisjointRows(t *testing.T) {
	lm := NewLockManager()
	tbl := TableLock("t")
	// Two writers on different rows coexist via IX.
	if err := lm.Acquire(1, tbl, LockIX); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, tbl, LockIX); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, RowLock("t", RID{Page: 1, Slot: 1}), LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, RowLock("t", RID{Page: 1, Slot: 2}), LockExclusive); err != nil {
		t.Fatal(err)
	}
	// A table scanner (S) must block while writers hold IX.
	done := make(chan error, 1)
	go func() { done <- lm.Acquire(3, tbl, LockShared) }()
	select {
	case <-done:
		t.Fatal("S table lock should block against IX holders")
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllWakesAllWaiters(t *testing.T) {
	lm := NewLockManager()
	key := TableLock("t")
	if err := lm.Acquire(1, key, LockExclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for i := TxnID(2); i <= 6; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			errs <- lm.Acquire(id, key, LockShared)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	lm.ReleaseAll(1)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
