package rdbms

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomizedCrashRecovery drives the engine through random workloads
// of interleaved transactions, crashes at a random point (losing the
// unflushed WAL tail and whatever pages the buffer pool happened to have
// written), recovers, and verifies that the surviving state is exactly
// the set of committed changes. This is the durability property the
// whole storage design exists for; it runs across many seeds.
func TestRandomizedCrashRecovery(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashScenario(t, seed)
		})
	}
}

func runCrashScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pager := NewMemPager()
	wal := NewMemWAL()
	db, err := Open(pager, wal, Options{BufferPages: 4 + rng.Intn(12)}) // tiny pool forces steals
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}

	// expected tracks the committed state by key.
	expected := map[int64]string{}
	rids := map[int64]RID{}

	nTxns := 5 + rng.Intn(15)
	for i := 0; i < nTxns; i++ {
		tx := db.Begin()
		// Buffer the txn's local effects; apply to expected only on commit.
		local := map[int64]*string{} // nil string pointer = deleted
		ops := 1 + rng.Intn(8)
		aborted := false
		for j := 0; j < ops; j++ {
			k := int64(rng.Intn(20))
			switch rng.Intn(3) {
			case 0: // insert or update
				v := fmt.Sprintf("s%d-t%d-o%d-%s", seed, i, j, pad(rng.Intn(120)))
				if rid, ok := rids[k]; ok && currentlyLive(expected, local, k) {
					newRID, err := tx.Update("kv", rid, Tuple{NewInt(k), NewString(v)})
					if err != nil {
						t.Fatalf("update: %v", err)
					}
					rids[k] = newRID
				} else {
					rid, err := tx.Insert("kv", Tuple{NewInt(k), NewString(v)})
					if err != nil {
						t.Fatalf("insert: %v", err)
					}
					rids[k] = rid
				}
				vv := v
				local[k] = &vv
			case 1: // delete if live
				if rid, ok := rids[k]; ok && currentlyLive(expected, local, k) {
					if err := tx.Delete("kv", rid); err != nil {
						t.Fatalf("delete: %v", err)
					}
					local[k] = nil
				}
			case 2: // read (exercises locks)
				if rid, ok := rids[k]; ok {
					if _, _, err := tx.Get("kv", rid); err != nil {
						t.Fatalf("get: %v", err)
					}
				}
			}
		}
		switch rng.Intn(4) {
		case 0: // abort explicitly
			if err := tx.Abort(); err != nil {
				t.Fatalf("abort: %v", err)
			}
			aborted = true
		case 1: // leave in-flight (lost at crash) with 25% probability,
			// but only for the final transaction so later txns don't block.
			if i == nTxns-1 {
				aborted = true // its effects must not survive
				break
			}
			fallthrough
		default:
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
		}
		if !aborted {
			for k, v := range local {
				if v == nil {
					delete(expected, k)
				} else {
					expected[k] = *v
				}
			}
		}
		// Occasionally checkpoint (only when nothing is in flight).
		if rng.Intn(5) == 0 && !inFlight(db) {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
		// Occasionally flush dirty pages without checkpointing, simulating
		// background writeback (steal).
		if rng.Intn(3) == 0 {
			if err := db.bp.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
		}
	}

	// Crash: lose the unflushed WAL tail, reopen.
	wal.DropUnflushed()
	re, err := Open(pager, wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	got := map[int64]string{}
	tx := re.Begin()
	err = tx.Scan("kv", func(_ RID, tup Tuple) bool {
		got[tup[0].I] = tup[1].S
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	if len(got) != len(expected) {
		t.Fatalf("after recovery: %d rows, want %d\n got: %v\nwant: %v", len(got), len(expected), keysOfMap(got), keysOfMap(expected))
	}
	for k, v := range expected {
		if got[k] != v {
			t.Fatalf("key %d = %q, want %q", k, got[k], v)
		}
	}
}

func currentlyLive(committed map[int64]string, local map[int64]*string, k int64) bool {
	if v, ok := local[k]; ok {
		return v != nil
	}
	_, ok := committed[k]
	return ok
}

func inFlight(db *DB) bool {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	return len(db.active) > 0
}

func pad(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'x'
	}
	return string(b)
}

func keysOfMap(m map[int64]string) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
