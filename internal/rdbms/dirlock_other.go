//go:build !unix

package rdbms

import "os"

// lockDBDir is a no-op on platforms without flock: concurrent opens of
// the same directory are not detected there.
func lockDBDir(dir string) (*os.File, error) { return nil, nil }
