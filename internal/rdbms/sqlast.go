package rdbms

import "strings"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Schema TableSchema
}

// CreateIndexStmt is CREATE INDEX ON table (column).
type CreateIndexStmt struct {
	Table  string
	Column string
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Table string
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty = schema order
	Rows    [][]Expr
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE pred].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr // nil = all rows
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE pred].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is a SELECT with optional join, filter, grouping, ordering.
type SelectStmt struct {
	Exprs     []SelectExpr
	Distinct  bool
	From      string
	FromAlias string
	Join      *JoinClause
	Where     Expr
	GroupBy   []ColumnRef
	Having    Expr
	OrderBy   []OrderKey
	Limit     int // -1 = none
	Offset    int
}

// SelectExpr is one output expression with an optional alias. A Star
// expands to all columns.
type SelectExpr struct {
	Expr  Expr
	Alias string
	Star  bool
}

// JoinClause is INNER JOIN table [alias] ON left = right.
type JoinClause struct {
	Table string
	Alias string
	Left  ColumnRef
	Right ColumnRef
}

// OrderKey is one ORDER BY expression.
type OrderKey struct {
	Expr Expr
	Desc bool
}

func (CreateTableStmt) stmt() {}
func (CreateIndexStmt) stmt() {}
func (DropTableStmt) stmt()   {}
func (InsertStmt) stmt()      {}
func (UpdateStmt) stmt()      {}
func (DeleteStmt) stmt()      {}
func (SelectStmt) stmt()      {}

// Expr is a SQL expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// ColumnRef names a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders t.c or c.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// BinaryExpr applies Op to Left and Right. Ops: = != < <= > >= AND OR
// + - * / LIKE.
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is x BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
}

// AggExpr is COUNT(*) / COUNT(x) / SUM / AVG / MIN / MAX.
type AggExpr struct {
	Func string // COUNT, SUM, AVG, MIN, MAX (uppercase)
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (Literal) expr()     {}
func (ColumnRef) expr()   {}
func (BinaryExpr) expr()  {}
func (UnaryExpr) expr()   {}
func (IsNullExpr) expr()  {}
func (BetweenExpr) expr() {}
func (AggExpr) expr()     {}

// exprString renders an expression for error messages and column headers.
func exprString(e Expr) string {
	switch x := e.(type) {
	case Literal:
		if x.Val.Type == TString {
			return "'" + x.Val.S + "'"
		}
		return x.Val.String()
	case ColumnRef:
		return x.String()
	case BinaryExpr:
		return exprString(x.Left) + " " + x.Op + " " + exprString(x.Right)
	case UnaryExpr:
		return x.Op + " " + exprString(x.X)
	case IsNullExpr:
		if x.Not {
			return exprString(x.X) + " IS NOT NULL"
		}
		return exprString(x.X) + " IS NULL"
	case BetweenExpr:
		return exprString(x.X) + " BETWEEN " + exprString(x.Lo) + " AND " + exprString(x.Hi)
	case AggExpr:
		if x.Star {
			return x.Func + "(*)"
		}
		return x.Func + "(" + exprString(x.Arg) + ")"
	}
	return "?"
}

// hasAgg reports whether e contains an aggregate call.
func hasAgg(e Expr) bool {
	switch x := e.(type) {
	case AggExpr:
		return true
	case BinaryExpr:
		return hasAgg(x.Left) || hasAgg(x.Right)
	case UnaryExpr:
		return hasAgg(x.X)
	case IsNullExpr:
		return hasAgg(x.X)
	case BetweenExpr:
		return hasAgg(x.X) || hasAgg(x.Lo) || hasAgg(x.Hi)
	}
	return false
}

// likeMatch implements SQL LIKE with % and _ wildcards (case-insensitive,
// which suits keyword-derived predicates over extracted text).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(s[1:], p[1:])
	}
}
