package rdbms

import (
	"reflect"
	"testing"
)

// TestDeparseSelectRoundTrip parses a corpus of SELECTs, deparses each,
// reparses the rendering, and requires the two ASTs to be structurally
// identical — the contract the shard layer's query rewrites rest on.
func TestDeparseSelectRoundTrip(t *testing.T) {
	cases := []string{
		`SELECT * FROM extracted`,
		`SELECT entity, value FROM extracted WHERE attribute = 'temperature'`,
		`SELECT DISTINCT entity FROM extracted ORDER BY entity DESC LIMIT 5 OFFSET 2`,
		`SELECT e.entity AS who, f.value v FROM extracted e JOIN facts f ON e.entity = f.entity`,
		`SELECT value FROM t WHERE a = 'it''s' AND (b < 3 OR c > 4.5)`,
		`SELECT value FROM t WHERE NOT (a = 1 AND b = 2)`,
		`SELECT value FROM t WHERE x IS NOT NULL AND y IS NULL`,
		`SELECT value FROM t WHERE num BETWEEN 1 AND 10 ORDER BY num ASC, entity`,
		`SELECT COUNT(*), SUM(num), AVG(num), MIN(value), MAX(value) FROM t`,
		`SELECT entity, COUNT(*) AS n FROM t GROUP BY entity HAVING COUNT(*) > 1`,
		`SELECT num + 2 * 3 FROM t`,
		`SELECT (num + 2) * 3 FROM t`,
		`SELECT num - (2 - 1) FROM t WHERE -num < 5`,
		`SELECT value FROM t WHERE name LIKE '%son%'`,
		`SELECT value FROM t WHERE flag = TRUE OR other = FALSE OR thing = NULL`,
		`SELECT value FROM t WHERE f = 2.0 AND g = 0.125`,
		`SELECT value FROM t LIMIT 0`,
		`SELECT value FROM t OFFSET 3`,
		`SELECT a.b FROM t a WHERE a.b != 'x' ORDER BY a.b`,
	}
	for _, src := range cases {
		st1, err := ParseSQL(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		sel1, ok := st1.(SelectStmt)
		if !ok {
			t.Fatalf("%q: not a select", src)
		}
		out := DeparseSelect(&sel1)
		st2, err := ParseSQL(out)
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, out, err)
		}
		sel2 := st2.(SelectStmt)
		if !reflect.DeepEqual(sel1, sel2) {
			t.Fatalf("round trip diverged:\n  in:  %q\n  out: %q\n  ast1: %#v\n  ast2: %#v", src, out, sel1, sel2)
		}
	}
}

// TestDeparseSelectExecutes runs original and deparsed forms of queries
// against the same data and requires byte-identical result sets.
func TestDeparseSelectExecutes(t *testing.T) {
	db := newTestDB(t)
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE t (entity STRING, num INT, val STRING)`)
	mustExec(`INSERT INTO t VALUES ('a', 1, 'x'), ('b', 2, 'y'), ('a', 3, 'it''s'), ('c', 2, 'z')`)
	queries := []string{
		`SELECT entity, num FROM t WHERE num >= 2 ORDER BY num DESC, entity LIMIT 2`,
		`SELECT entity, COUNT(*) AS n FROM t GROUP BY entity`,
		`SELECT DISTINCT num FROM t ORDER BY num`,
		`SELECT val FROM t WHERE val = 'it''s'`,
	}
	for _, q := range queries {
		st, err := ParseSQL(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		sel := st.(SelectStmt)
		rs1, err := db.Exec(q)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		dq := DeparseSelect(&sel)
		rs2, err := db.Exec(dq)
		if err != nil {
			t.Fatalf("exec deparsed %q: %v", dq, err)
		}
		if !reflect.DeepEqual(rs1, rs2) {
			t.Fatalf("results diverged for %q vs %q:\n%v\n%v", q, dq, rs1, rs2)
		}
	}
}
