package rdbms

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Tests for the on-disk lifecycle: OpenDir → work → Close → OpenDir,
// checksummed page frames, WAL torn-tail truncation, and log truncation
// at checkpoints.

func TestOpenDirLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TString}, {Name: "v", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "v"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 200; i++ {
		if _, err := tx.Insert("kv", Tuple{NewString(fmt.Sprintf("key%03d", i)), NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: everything back, index functional.
	db2, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	n, sum := 0, int64(0)
	if err := tx2.Scan("kv", func(_ RID, tup Tuple) bool { n++; sum += tup[1].I; return true }); err != nil {
		t.Fatal(err)
	}
	rids, err := tx2.IndexLookup("kv", "v", NewInt(77))
	if err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if n != 200 || sum != 199*200/2 {
		t.Fatalf("reopened: n=%d sum=%d", n, sum)
	}
	if len(rids) != 1 {
		t.Fatalf("index after reopen: %d rids", len(rids))
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirExclusiveLock(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, Options{BufferPages: 16}); err == nil {
		t.Fatal("second OpenDir on a held directory must fail")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock releases with Close: the directory opens again.
	db2, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirKilledWithoutClose(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})
	tx := db.Begin()
	for i := 0; i < 50; i++ {
		tx.Insert("t", Tuple{NewInt(int64(i))})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// In-flight transaction at the "kill": must not survive.
	tx2 := db.Begin()
	tx2.Insert("t", Tuple{NewInt(999)})
	// No Close, no Abort: simulate the process dying. The OS releases a
	// dead process's flock; in-process we drop it by hand.
	if db.dirLock != nil {
		db.dirLock.Close()
	}
	// The files hold whatever the commits forced out; reopen must
	// recover from the WAL.
	db2, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	tx3 := db2.Begin()
	n, sum := 0, int64(0)
	tx3.Scan("t", func(_ RID, tup Tuple) bool { n++; sum += tup[0].I; return true })
	tx3.Commit()
	if n != 50 || sum != 49*50/2 {
		t.Fatalf("after kill+recover: n=%d sum=%d", n, sum)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	store := NewMemWALStore()
	w, err := NewWALOn(store)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(&LogRecord{Kind: LogBegin, Txn: 1})
	w.Append(&LogRecord{Kind: LogCommit, Txn: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tear the active segment directly (OpenSegment returns the same
	// device the WAL appends to).
	dev, err := store.OpenSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	valid, _ := dev.Size()
	// A torn flush: half a frame of garbage beyond the valid records.
	dev.WriteAt([]byte{9, 9, 9, 9, 9, 9, 9, 9, 1, 2, 3}, valid)
	dev.Sync()

	w2, err := NewWALOn(store)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := dev.Size(); got != valid {
		t.Fatalf("torn tail not truncated: size %d, want %d", got, valid)
	}
	recs, err := w2.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Kind != LogCommit {
		t.Fatalf("records after truncation: %v", recs)
	}
	// Appends land where the garbage was and stay readable.
	w2.Append(&LogRecord{Kind: LogBegin, Txn: 2})
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, _ = w2.Records(0)
	if len(recs) != 3 || recs[2].Txn != 2 {
		t.Fatalf("append after truncation: %v", recs)
	}
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TString}}})
	tx := db.Begin()
	for i := 0; i < 40; i++ {
		tx.Insert("t", Tuple{NewString(fmt.Sprintf("row-%03d", i))})
	}
	tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of page 1's payload.
	path := filepath.Join(dir, DataFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := pageFrameSize + pageFrameHeader + 2000
	raw[off] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, Options{BufferPages: 16}); !errors.Is(err, ErrPageChecksum) {
		t.Fatalf("corrupted page opened without checksum error: %v", err)
	}
}

func TestPageChecksumDetectsMisdirectedWrite(t *testing.T) {
	dev := NewMemDevice()
	p, err := NewDevicePager(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, PageSize)
	copy(buf, "destined for page 2")
	if err := p.WritePage(2, buf); err != nil {
		t.Fatal(err)
	}
	// Simulate the frame landing at page 1's offset (a misdirected write).
	frame := make([]byte, pageFrameSize)
	dev.ReadAt(frame, 2*pageFrameSize)
	dev.WriteAt(frame, 1*pageFrameSize)
	if err := p.ReadPage(1, buf); !errors.Is(err, ErrPageChecksum) {
		t.Fatalf("misdirected write read back without error: %v", err)
	}
	if err := p.ReadPage(2, buf); err != nil {
		t.Fatalf("page 2 should still verify: %v", err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	// Small segments so the workload spans several and the checkpoint has
	// whole prefix segments to delete.
	db, err := OpenDir(dir, Options{BufferPages: 16, WALSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})
	tx := db.Begin()
	for i := 0; i < 500; i++ {
		tx.Insert("t", Tuple{NewInt(int64(i))})
	}
	tx.Commit()
	before, err := db.wal.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("expected a non-empty WAL before checkpoint")
	}
	if db.wal.SegmentCount() < 2 {
		t.Fatalf("workload should span segments, got %d", db.wal.SegmentCount())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A quiescent checkpoint's horizon is the end of the log, so every
	// sealed prefix segment is deleted — only the active segment remains
	// (LSNs stay monotonic: the manifest records its start offset).
	if got := db.wal.SegmentCount(); got != 1 {
		t.Fatalf("WAL not truncated at checkpoint: %d segments, want 1", got)
	}
	after, err := db.wal.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("checkpoint reclaimed no WAL space: %d -> %d bytes", before, after)
	}
	// Post-checkpoint work still recovers after a kill (drop the flock by
	// hand, as the OS would for a dead process).
	tx2 := db.Begin()
	tx2.Insert("t", Tuple{NewInt(1000)})
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.dirLock != nil {
		db.dirLock.Close()
	}
	db2, err := OpenDir(dir, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tx3 := db2.Begin()
	tx3.Scan("t", func(RID, Tuple) bool { n++; return true })
	tx3.Commit()
	if n != 501 {
		t.Fatalf("after checkpoint+kill: %d rows, want 501", n)
	}
	db2.Close()
}

func TestSlottedPageCompaction(t *testing.T) {
	data := make([]byte, PageSize)
	p := newSlottedPage(data)
	big := make([]byte, 900)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	var slots []uint16
	for {
		s, ok := p.insert(big, nil)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 4 {
		t.Fatalf("only %d records fit", len(slots))
	}
	// Delete every other record: freeStart space is gone, but half the
	// payload bytes are reclaimable.
	for i := 0; i < len(slots); i += 2 {
		if !p.del(slots[i]) {
			t.Fatalf("del slot %d", slots[i])
		}
	}
	s, ok := p.insert(big, nil)
	if !ok {
		t.Fatal("insert after deletes should compact and succeed")
	}
	// Survivors are intact after compaction.
	for i := 1; i < len(slots); i += 2 {
		rec, ok := p.read(slots[i])
		if !ok || string(rec) != string(big) {
			t.Fatalf("slot %d corrupted by compaction", slots[i])
		}
	}
	if rec, ok := p.read(s); !ok || string(rec) != string(big) {
		t.Fatal("new record corrupted")
	}
}
