package rdbms

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates SQL token kinds.
type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkSymbol // ( ) , ; * = < > <= >= != . + - /
)

type sqlToken struct {
	kind tokKind
	text string // keywords uppercased; idents as written
	pos  int
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"DROP": true, "ON": true, "JOIN": true, "INNER": true, "LEFT": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"GROUP": true, "HAVING": true, "AS": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "NULL": true, "TRUE": true,
	"FALSE": true, "INT": true, "INTEGER": true, "FLOAT": true, "DOUBLE": true,
	"STRING": true, "TEXT": true, "VARCHAR": true, "BOOL": true, "BOOLEAN": true,
	"BIGINT": true, "REAL": true, "LIKE": true, "IS": true, "DISTINCT": true,
	"BETWEEN": true, "OFFSET": true,
}

// lexSQL tokenizes a SQL string.
func lexSQL(input string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string at %d", i)
			}
			toks = append(toks, sqlToken{kind: tkString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i
			dots := 0
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				if input[j] == '.' {
					dots++
					if dots > 1 {
						break
					}
				}
				j++
			}
			toks = append(toks, sqlToken{kind: tkNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if sqlKeywords[upper] {
				toks = append(toks, sqlToken{kind: tkKeyword, text: upper, pos: i})
			} else {
				toks = append(toks, sqlToken{kind: tkIdent, text: word, pos: i})
			}
			i = j
		case strings.ContainsRune("(),;*=.+-/", c):
			toks = append(toks, sqlToken{kind: tkSymbol, text: string(c), pos: i})
			i++
		case c == '<' || c == '>' || c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, sqlToken{kind: tkSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '<' && i+1 < n && input[i+1] == '>' {
				toks = append(toks, sqlToken{kind: tkSymbol, text: "!=", pos: i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sql: stray '!' at %d", i)
			} else {
				toks = append(toks, sqlToken{kind: tkSymbol, text: string(c), pos: i})
				i++
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, sqlToken{kind: tkEOF, pos: n})
	return toks, nil
}
