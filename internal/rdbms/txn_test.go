package rdbms

import (
	"fmt"
	"sync"
	"testing"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(NewMemPager(), NewMemWAL(), Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustCreateCities(t *testing.T, db *DB) {
	t.Helper()
	err := db.CreateTable(TableSchema{Name: "cities", Columns: []ColumnDef{
		{Name: "name", Type: TString},
		{Name: "state", Type: TString},
		{Name: "pop", Type: TInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxnInsertGetCommit(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, err := tx.Insert("cities", Tuple{NewString("Madison"), NewString("WI"), NewInt(233209)})
	if err != nil {
		t.Fatal(err)
	}
	got, live, err := tx.Get("cities", rid)
	if err != nil || !live {
		t.Fatalf("get: %v %v", live, err)
	}
	if got[0].S != "Madison" {
		t.Fatalf("got %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Visible to a new transaction.
	tx2 := db.Begin()
	got, live, _ = tx2.Get("cities", rid)
	if !live || got[2].I != 233209 {
		t.Fatalf("post-commit get: %v %v", got, live)
	}
	tx2.Commit()
}

func TestTxnAbortRollsBack(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, _ := tx.Insert("cities", Tuple{NewString("Ghost"), NewString("XX"), NewInt(1)})
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	_, live, _ := tx2.Get("cities", rid)
	if live {
		t.Fatal("aborted insert still visible")
	}
	n := 0
	tx2.Scan("cities", func(RID, Tuple) bool { n++; return true })
	if n != 0 {
		t.Fatalf("table should be empty, has %d rows", n)
	}
	tx2.Commit()
}

func TestTxnAbortRestoresUpdateAndDelete(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	r1, _ := tx.Insert("cities", Tuple{NewString("A"), NewString("WI"), NewInt(10)})
	r2, _ := tx.Insert("cities", Tuple{NewString("B"), NewString("WI"), NewInt(20)})
	tx.Commit()

	tx2 := db.Begin()
	if _, err := tx2.Update("cities", r1, Tuple{NewString("A"), NewString("WI"), NewInt(999)}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete("cities", r2); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()

	tx3 := db.Begin()
	got, live, _ := tx3.Get("cities", r1)
	if !live || got[2].I != 10 {
		t.Fatalf("update not rolled back: %v", got)
	}
	got, live, _ = tx3.Get("cities", r2)
	if !live || got[2].I != 20 {
		t.Fatalf("delete not rolled back: %v live=%v", got, live)
	}
	tx3.Commit()
}

func TestTxnDoneErrors(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	tx.Commit()
	if _, err := tx.Insert("cities", Tuple{NewString("x"), NewString("y"), NewInt(1)}); err != ErrTxnDone {
		t.Fatalf("expected ErrTxnDone, got %v", err)
	}
	if err := tx.Commit(); err != ErrTxnDone {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); err != ErrTxnDone {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestTxnSchemaValidation(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Insert("cities", Tuple{NewInt(1), NewString("y"), NewInt(1)}); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := tx.Insert("cities", Tuple{NewString("x")}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := tx.Insert("nope", Tuple{NewString("x")}); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestTxnIndexMaintenance(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	if err := db.CreateIndex("cities", "pop"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	r1, _ := tx.Insert("cities", Tuple{NewString("A"), NewString("WI"), NewInt(100)})
	tx.Insert("cities", Tuple{NewString("B"), NewString("WI"), NewInt(200)})
	tx.Commit()

	tx2 := db.Begin()
	rids, err := tx2.IndexLookup("cities", "pop", NewInt(100))
	if err != nil || len(rids) != 1 || rids[0] != r1 {
		t.Fatalf("index lookup: %v %v", rids, err)
	}
	// Update moves the index entry.
	tx2.Update("cities", r1, Tuple{NewString("A"), NewString("WI"), NewInt(150)})
	tx2.Commit()
	tx3 := db.Begin()
	if rids, _ := tx3.IndexLookup("cities", "pop", NewInt(100)); len(rids) != 0 {
		t.Fatalf("stale index entry: %v", rids)
	}
	if rids, _ := tx3.IndexLookup("cities", "pop", NewInt(150)); len(rids) != 1 {
		t.Fatalf("missing index entry: %v", rids)
	}
	// Delete removes the entry.
	tx3.Delete("cities", rids[0])
	tx3.Commit()
	tx4 := db.Begin()
	if rids, _ := tx4.IndexLookup("cities", "pop", NewInt(150)); len(rids) != 0 {
		t.Fatal("index entry survived delete")
	}
	tx4.Commit()
}

func TestTxnIndexRollback(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	db.CreateIndex("cities", "pop")
	tx := db.Begin()
	tx.Insert("cities", Tuple{NewString("A"), NewString("WI"), NewInt(42)})
	tx.Abort()
	tx2 := db.Begin()
	if rids, _ := tx2.IndexLookup("cities", "pop", NewInt(42)); len(rids) != 0 {
		t.Fatal("aborted insert left an index entry")
	}
	tx2.Commit()
}

func TestConcurrentTransfersSerializable(t *testing.T) {
	// Classic bank transfer: concurrent transfers between accounts must
	// conserve the total. Deadlock victims retry.
	db := newTestDB(t)
	if err := db.CreateTable(TableSchema{Name: "acct", Columns: []ColumnDef{
		{Name: "id", Type: TInt}, {Name: "bal", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	const nAcct = 8
	const perAcct = 1000
	rids := make([]RID, nAcct)
	tx := db.Begin()
	for i := 0; i < nAcct; i++ {
		rid, err := tx.Insert("acct", Tuple{NewInt(int64(i)), NewInt(perAcct)})
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	tx.Commit()

	transfer := func(from, to int, amount int64) error {
		for {
			tx := db.Begin()
			err := func() error {
				src, live, err := tx.Get("acct", rids[from])
				if err != nil || !live {
					return fmt.Errorf("get src: %v %v", live, err)
				}
				dst, live, err := tx.Get("acct", rids[to])
				if err != nil || !live {
					return fmt.Errorf("get dst: %v %v", live, err)
				}
				if _, err := tx.Update("acct", rids[from], Tuple{src[0], NewInt(src[1].I - amount)}); err != nil {
					return err
				}
				if _, err := tx.Update("acct", rids[to], Tuple{dst[0], NewInt(dst[1].I + amount)}); err != nil {
					return err
				}
				return nil
			}()
			if err == ErrDeadlock {
				tx.Abort()
				continue
			}
			if err != nil {
				tx.Abort()
				return err
			}
			return tx.Commit()
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				from := (w + i) % nAcct
				to := (w + i + 1 + i%3) % nAcct
				if from == to {
					to = (to + 1) % nAcct
				}
				if err := transfer(from, to, int64(1+i%7)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	tx2 := db.Begin()
	total := int64(0)
	tx2.Scan("acct", func(_ RID, tup Tuple) bool {
		total += tup[1].I
		return true
	})
	tx2.Commit()
	if total != nAcct*perAcct {
		t.Fatalf("total = %d, want %d (money not conserved)", total, nAcct*perAcct)
	}
}

// TestCheckpointWithActiveTxn: checkpoints are fuzzy — they no longer
// refuse (or stall on) active transactions. A checkpoint taken with an
// uncommitted transaction in flight must succeed, keep that
// transaction's records past the truncation horizon (its firstLSN bounds
// it), and leave the transaction free to commit or abort normally.
func TestCheckpointWithActiveTxn(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	if _, err := tx.Insert("cities", Tuple{NewString("limbo"), NewString("ZZ"), NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("fuzzy checkpoint with active txn: %v", err)
	}
	// The truncation horizon may not pass the active transaction's BEGIN.
	if base := db.wal.Base(); base > tx.firstLSN {
		t.Fatalf("checkpoint truncated to %d, past active txn firstLSN %d", base, tx.firstLSN)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	n := 0
	tx2.Scan("cities", func(RID, Tuple) bool { n++; return true })
	tx2.Commit()
	if n != 0 {
		t.Fatalf("aborted transaction's row survived checkpoints: %d rows", n)
	}
}

func TestDDLBasics(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	if err := db.CreateTable(TableSchema{Name: "cities", Columns: []ColumnDef{{Name: "x", Type: TInt}}}); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if err := db.CreateTable(TableSchema{Name: "bad", Columns: nil}); err == nil {
		t.Fatal("empty schema must fail")
	}
	if err := db.CreateTable(TableSchema{Name: "dup", Columns: []ColumnDef{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}}); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if err := db.CreateIndex("cities", "nope"); err == nil {
		t.Fatal("index on missing column must fail")
	}
	if err := db.CreateIndex("nope", "x"); err == nil {
		t.Fatal("index on missing table must fail")
	}
	if err := db.DropTable("cities"); err != nil {
		t.Fatal(err)
	}
	if db.Table("cities") != nil {
		t.Fatal("dropped table still visible")
	}
	if err := db.DropTable("cities"); err == nil {
		t.Fatal("double drop must fail")
	}
	if got := db.TableNames(); len(got) != 0 {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestCreateIndexOnExistingData(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	for i := 0; i < 100; i++ {
		tx.Insert("cities", Tuple{NewString(fmt.Sprintf("c%d", i)), NewString("WI"), NewInt(int64(i * 10))})
	}
	tx.Commit()
	if err := db.CreateIndex("cities", "pop"); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	rids, err := tx2.IndexLookup("cities", "pop", NewInt(500))
	if err != nil || len(rids) != 1 {
		t.Fatalf("backfilled index lookup: %v %v", rids, err)
	}
	tx2.Commit()
}
