package rdbms

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func ridOf(i int) RID { return RID{Page: PageID(i / 100), Slot: uint16(i % 100)} }

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(NewInt(int64(i)), ridOf(i))
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	for i := 0; i < 1000; i++ {
		rids := bt.Lookup(NewInt(int64(i)))
		if len(rids) != 1 || rids[0] != ridOf(i) {
			t.Fatalf("Lookup(%d) = %v", i, rids)
		}
	}
	if rids := bt.Lookup(NewInt(5000)); rids != nil {
		t.Fatalf("missing key returned %v", rids)
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 50; i++ {
		bt.Insert(NewString("dup"), ridOf(i))
	}
	rids := bt.Lookup(NewString("dup"))
	if len(rids) != 50 {
		t.Fatalf("got %d postings", len(rids))
	}
	if !bt.Delete(NewString("dup"), ridOf(7)) {
		t.Fatal("delete failed")
	}
	if len(bt.Lookup(NewString("dup"))) != 49 {
		t.Fatal("posting not removed")
	}
	if bt.Delete(NewString("dup"), ridOf(7)) {
		t.Fatal("double delete should fail")
	}
}

func TestBTreeDeleteAllPostingsRemovesKey(t *testing.T) {
	bt := NewBTree()
	bt.Insert(NewInt(1), ridOf(0))
	bt.Insert(NewInt(2), ridOf(1))
	if !bt.Delete(NewInt(1), ridOf(0)) {
		t.Fatal("delete failed")
	}
	keys := bt.Keys()
	if len(keys) != 1 || keys[0].I != 2 {
		t.Fatalf("keys after delete: %v", keys)
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d", bt.Len())
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTreeOrder(8) // small order forces deep trees
	for i := 0; i < 500; i++ {
		bt.Insert(NewInt(int64(i)), ridOf(i))
	}
	lo, hi := NewInt(100), NewInt(199)
	var got []int64
	bt.Range(&lo, &hi, func(k Value, _ RID) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("range returned %d keys", len(got))
	}
	for i, k := range got {
		if k != int64(100+i) {
			t.Fatalf("range out of order at %d: %d", i, k)
		}
	}
	// Unbounded below.
	var first []int64
	hi2 := NewInt(4)
	bt.Range(nil, &hi2, func(k Value, _ RID) bool {
		first = append(first, k.I)
		return true
	})
	if len(first) != 5 || first[0] != 0 {
		t.Fatalf("open-low range: %v", first)
	}
	// Unbounded above.
	n := 0
	lo2 := NewInt(495)
	bt.Range(&lo2, nil, func(Value, RID) bool { n++; return true })
	if n != 5 {
		t.Fatalf("open-high range: %d", n)
	}
	// Early stop.
	n = 0
	bt.Range(nil, nil, func(Value, RID) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestBTreeReverseAndRandomInsert(t *testing.T) {
	for name, order := range map[string][]int{"reverse": nil, "random": nil} {
		_ = order
		bt := NewBTreeOrder(6)
		var keys []int
		for i := 999; i >= 0; i-- {
			keys = append(keys, i)
		}
		if name == "random" {
			rng := rand.New(rand.NewSource(4))
			rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		}
		for _, k := range keys {
			bt.Insert(NewInt(int64(k)), ridOf(k))
		}
		if err := bt.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := bt.Keys()
		if len(got) != 1000 {
			t.Fatalf("%s: %d keys", name, len(got))
		}
		for i, k := range got {
			if k.I != int64(i) {
				t.Fatalf("%s: key %d = %d", name, i, k.I)
			}
		}
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := NewBTreeOrder(4)
	words := []string{"madison", "chicago", "denver", "austin", "boston", "seattle", "miami", "atlanta"}
	for i, w := range words {
		bt.Insert(NewString(w), ridOf(i))
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	got := bt.Keys()
	for i, k := range got {
		if k.S != sorted[i] {
			t.Fatalf("key %d = %q, want %q", i, k.S, sorted[i])
		}
	}
}

func TestBTreeMixedChurnProperty(t *testing.T) {
	f := func(ops []int16) bool {
		bt := NewBTreeOrder(5)
		ref := map[int64][]RID{}
		size := 0
		for i, op := range ops {
			k := int64(op % 50)
			if k < 0 {
				k = -k
			}
			rid := ridOf(i)
			if op%3 == 0 && len(ref[k]) > 0 {
				victim := ref[k][0]
				ref[k] = ref[k][1:]
				if !bt.Delete(NewInt(k), victim) {
					return false
				}
				size--
			} else {
				bt.Insert(NewInt(k), rid)
				ref[k] = append(ref[k], rid)
				size++
			}
		}
		if bt.Len() != size {
			return false
		}
		if err := bt.CheckInvariants(); err != nil {
			return false
		}
		for k, rids := range ref {
			got := bt.Lookup(NewInt(k))
			if len(got) != len(rids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeConcurrentReaders(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 2000; i++ {
		bt.Insert(NewInt(int64(i)), ridOf(i))
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 500; i++ {
				if len(bt.Lookup(NewInt(int64(i)))) != 1 {
					t.Error("lookup failed")
					break
				}
			}
			done <- true
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
