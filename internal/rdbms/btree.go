package rdbms

import (
	"fmt"
	"sync"
)

// BTree is an in-memory B+tree index mapping a single-column key Value to
// the RIDs of tuples with that key. Duplicate keys are supported; each key
// holds a posting list. Indexes are rebuilt from the heap at database open
// (and after crash recovery), so they need no WAL records of their own —
// a deliberate simplification documented in DESIGN.md.
type BTree struct {
	mu    sync.RWMutex
	root  node
	order int   // max children of an internal node
	size  int   // number of (key, rid) pairs
	mut   int64 // mutation counter: bumps on every content change
}

const defaultBTreeOrder = 64

type node interface {
	isLeaf() bool
}

type leafNode struct {
	keys     []Value
	postings [][]RID
	next     *leafNode
}

func (*leafNode) isLeaf() bool { return true }

type innerNode struct {
	keys     []Value // separators: children[i] holds keys < keys[i]
	children []node
}

func (*innerNode) isLeaf() bool { return false }

// NewBTree returns an empty tree with the default order.
func NewBTree() *BTree { return NewBTreeOrder(defaultBTreeOrder) }

// NewBTreeOrder returns an empty tree with the given order (min 4).
func NewBTreeOrder(order int) *BTree {
	if order < 4 {
		order = 4
	}
	return &BTree{root: &leafNode{}, order: order}
}

// Len returns the number of (key, rid) entries.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Mutations returns the number of content changes (inserts and deletes)
// applied to the tree. Index checkpointing uses it to skip
// re-serializing an index whose contents have not moved since its chain
// was last written or loaded.
func (t *BTree) Mutations() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mut
}

func lessKey(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c < 0
}

func eqKey(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// findLeaf descends to the leaf that should contain key, recording the path.
func (t *BTree) findLeaf(key Value) (*leafNode, []*innerNode, []int) {
	var path []*innerNode
	var idxs []int
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		i := 0
		for i < len(in.keys) && !lessKey(key, in.keys[i]) {
			i++
		}
		path = append(path, in)
		idxs = append(idxs, i)
		n = in.children[i]
	}
	return n.(*leafNode), path, idxs
}

// Insert adds (key, rid).
func (t *BTree) Insert(key Value, rid RID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mut++
	leaf, path, idxs := t.findLeaf(key)
	// Position within leaf.
	i := 0
	for i < len(leaf.keys) && lessKey(leaf.keys[i], key) {
		i++
	}
	if i < len(leaf.keys) && eqKey(leaf.keys[i], key) {
		leaf.postings[i] = append(leaf.postings[i], rid)
		t.size++
		return
	}
	leaf.keys = insertValueAt(leaf.keys, i, key)
	leaf.postings = insertPostingAt(leaf.postings, i, []RID{rid})
	t.size++
	if len(leaf.keys) < t.order {
		return
	}
	// Split the leaf.
	mid := len(leaf.keys) / 2
	right := &leafNode{
		keys:     append([]Value(nil), leaf.keys[mid:]...),
		postings: append([][]RID(nil), leaf.postings[mid:]...),
		next:     leaf.next,
	}
	leaf.keys = leaf.keys[:mid:mid]
	leaf.postings = leaf.postings[:mid:mid]
	leaf.next = right
	t.propagateSplit(path, idxs, right.keys[0], right)
}

// propagateSplit inserts (sep, right) into the parent chain, splitting
// internal nodes as needed.
func (t *BTree) propagateSplit(path []*innerNode, idxs []int, sep Value, right node) {
	for level := len(path) - 1; level >= 0; level-- {
		parent := path[level]
		i := idxs[level]
		parent.keys = insertValueAt(parent.keys, i, sep)
		parent.children = insertNodeAt(parent.children, i+1, right)
		if len(parent.children) <= t.order {
			return
		}
		mid := len(parent.keys) / 2
		sep = parent.keys[mid]
		newRight := &innerNode{
			keys:     append([]Value(nil), parent.keys[mid+1:]...),
			children: append([]node(nil), parent.children[mid+1:]...),
		}
		parent.keys = parent.keys[:mid:mid]
		parent.children = parent.children[: mid+1 : mid+1]
		right = newRight
	}
	// Root split.
	t.root = &innerNode{keys: []Value{sep}, children: []node{t.root, right}}
}

// Delete removes one (key, rid) pair; it returns false if absent. Leaves
// may underflow — the tree does not rebalance on delete (acceptable for an
// index that is rebuilt at open; lookups remain correct).
func (t *BTree) Delete(key Value, rid RID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, _, _ := t.findLeaf(key)
	for i, k := range leaf.keys {
		if !eqKey(k, key) {
			continue
		}
		for j, r := range leaf.postings[i] {
			if r == rid {
				leaf.postings[i] = append(leaf.postings[i][:j], leaf.postings[i][j+1:]...)
				t.size--
				t.mut++
				if len(leaf.postings[i]) == 0 {
					leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
					leaf.postings = append(leaf.postings[:i], leaf.postings[i+1:]...)
				}
				return true
			}
		}
		return false
	}
	return false
}

// Lookup returns the RIDs for key (nil if none).
func (t *BTree) Lookup(key Value) []RID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, _, _ := t.findLeaf(key)
	for i, k := range leaf.keys {
		if eqKey(k, key) {
			return append([]RID(nil), leaf.postings[i]...)
		}
	}
	return nil
}

// CountKey returns the number of entries for key without copying the
// posting list. The access-path chooser uses it as an exact cardinality
// estimate when several equality predicates could use an index.
func (t *BTree) CountKey(key Value) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, _, _ := t.findLeaf(key)
	for i, k := range leaf.keys {
		if eqKey(k, key) {
			return len(leaf.postings[i])
		}
	}
	return 0
}

// Range calls fn for every (key, rid) with lo <= key <= hi, in key order.
// A nil lo means unbounded below; nil hi unbounded above. Returning false
// stops the iteration.
func (t *BTree) Range(lo, hi *Value, fn func(key Value, rid RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var leaf *leafNode
	if lo != nil {
		leaf, _, _ = t.findLeaf(*lo)
	} else {
		n := t.root
		for !n.isLeaf() {
			n = n.(*innerNode).children[0]
		}
		leaf = n.(*leafNode)
	}
	for leaf != nil {
		for i, k := range leaf.keys {
			if lo != nil {
				if c, ok := Compare(k, *lo); !ok || c < 0 {
					continue
				}
			}
			if hi != nil {
				if c, ok := Compare(k, *hi); !ok || c > 0 {
					return
				}
			}
			for _, rid := range leaf.postings[i] {
				if !fn(k, rid) {
					return
				}
			}
		}
		leaf = leaf.next
	}
}

// GroupedRange calls fn once per distinct key with lo <= key <= hi (nil =
// unbounded), with that key's posting list, in ascending (desc=false) or
// descending (desc=true) key order. The posting slice is the tree's own
// storage: callers must not retain or mutate it past the callback.
// Returning false stops the iteration. The sorted-query index-order path
// uses this to stream rows in ORDER BY order without materializing the
// whole index.
func (t *BTree) GroupedRange(lo, hi *Value, desc bool, fn func(key Value, rids []RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if desc {
		groupedDesc(t.root, lo, hi, fn)
		return
	}
	var leaf *leafNode
	if lo != nil {
		leaf, _, _ = t.findLeaf(*lo)
	} else {
		n := t.root
		for !n.isLeaf() {
			n = n.(*innerNode).children[0]
		}
		leaf = n.(*leafNode)
	}
	for leaf != nil {
		for i, k := range leaf.keys {
			if lo != nil {
				if c, ok := Compare(k, *lo); !ok || c < 0 {
					continue
				}
			}
			if hi != nil {
				if c, ok := Compare(k, *hi); !ok || c > 0 {
					return
				}
			}
			if !fn(k, leaf.postings[i]) {
				return
			}
		}
		leaf = leaf.next
	}
}

// groupedDesc walks the subtree in descending key order. The leaf chain
// only links forward, so the descent recurses through internal nodes in
// reverse child order, pruning children entirely above hi; it returns
// false once a key below lo is reached (every later key is smaller).
func groupedDesc(n node, lo, hi *Value, fn func(key Value, rids []RID) bool) bool {
	if n.isLeaf() {
		leaf := n.(*leafNode)
		for i := len(leaf.keys) - 1; i >= 0; i-- {
			k := leaf.keys[i]
			if hi != nil {
				if c, ok := Compare(k, *hi); !ok || c > 0 {
					continue
				}
			}
			if lo != nil {
				if c, ok := Compare(k, *lo); ok && c < 0 {
					return false
				}
			}
			if !fn(k, leaf.postings[i]) {
				return false
			}
		}
		return true
	}
	in := n.(*innerNode)
	for ci := len(in.children) - 1; ci >= 0; ci-- {
		// children[ci] holds keys >= keys[ci-1] (for ci > 0): skip the
		// child when its lower separator already exceeds hi.
		if hi != nil && ci > 0 {
			if c, ok := Compare(in.keys[ci-1], *hi); ok && c > 0 {
				continue
			}
		}
		if !groupedDesc(in.children[ci], lo, hi, fn) {
			return false
		}
	}
	return true
}

// newBTreeFromSorted builds a tree from entries already in strictly
// ascending key order, each key owning its posting list. It is the index
// checkpoint loader's bulk path: leaves are filled left to right and the
// internal levels assembled bottom-up, so construction is O(n) with zero
// key comparisons — against O(n log n) comparison-driven inserts for a
// rebuild from the heap. The caller transfers ownership of keys and
// postings. Invalid input (out-of-order or duplicate keys, empty
// postings) returns an error; the loader then falls back to a rebuild.
func newBTreeFromSorted(order int, keys []Value, postings [][]RID) (*BTree, error) {
	t := NewBTreeOrder(order)
	if len(keys) != len(postings) {
		return nil, fmt.Errorf("btree: bulk load arity mismatch")
	}
	if len(keys) == 0 {
		return t, nil
	}
	size := 0
	for i := range keys {
		if len(postings[i]) == 0 {
			return nil, fmt.Errorf("btree: bulk load empty posting for %v", keys[i])
		}
		if i > 0 && !lessKey(keys[i-1], keys[i]) {
			return nil, fmt.Errorf("btree: bulk load keys out of order at %v", keys[i])
		}
		size += len(postings[i])
	}
	// Leaves hold at most order-1 keys (the in-place insert splits at
	// order), so filling to order-1 is the densest legal packing.
	fill := t.order - 1
	var leaves []*leafNode
	var mins []Value // each leaf's first key: the separator material above
	for i := 0; i < len(keys); i += fill {
		j := i + fill
		if j > len(keys) {
			j = len(keys)
		}
		lf := &leafNode{
			keys:     keys[i:j:j],
			postings: postings[i:j:j],
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = lf
		}
		leaves = append(leaves, lf)
		mins = append(mins, keys[i])
	}
	level := make([]node, len(leaves))
	for i, lf := range leaves {
		level[i] = lf
	}
	for len(level) > 1 {
		var up []node
		var upMins []Value
		for i := 0; i < len(level); i += t.order {
			j := i + t.order
			if j > len(level) {
				j = len(level)
			}
			in := &innerNode{children: append([]node(nil), level[i:j]...)}
			for k := i + 1; k < j; k++ {
				in.keys = append(in.keys, mins[k])
			}
			up = append(up, in)
			upMins = append(upMins, mins[i])
		}
		level, mins = up, upMins
	}
	t.root = level[0]
	t.size = size
	return t, nil
}

// ReplaceContents swaps t's contents for other's under t's own latch.
// The bulk loader builds a replacement tree off to the side
// (newBTreeFromSorted over the load's sorted runs) and installs it here:
// readers hold t.mu through every traversal, so they see either the old
// tree or the new one, never a torn mix — and the Table.Indexes map entry
// itself never changes, which is what keeps lockless map readers (Snap
// paths) safe. The mutation counter advances so the next checkpoint
// re-serializes the chain.
func (t *BTree) ReplaceContents(other *BTree) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root = other.root
	t.order = other.order
	t.size = other.size
	t.mut++
}

// Keys returns all distinct keys in order (testing helper).
func (t *BTree) Keys() []Value {
	var out []Value
	t.Range(nil, nil, func(k Value, _ RID) bool {
		if len(out) == 0 || !eqKey(out[len(out)-1], k) {
			out = append(out, k)
		}
		return true
	})
	return out
}

// CheckInvariants validates key ordering and structure; used by tests.
func (t *BTree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := checkNode(t.root, nil, nil)
	if err != nil {
		return err
	}
	// Leaf chain must be sorted overall.
	n := t.root
	for !n.isLeaf() {
		n = n.(*innerNode).children[0]
	}
	var prev *Value
	for leaf := n.(*leafNode); leaf != nil; leaf = leaf.next {
		for i := range leaf.keys {
			k := leaf.keys[i]
			if prev != nil && !lessKey(*prev, k) {
				return fmt.Errorf("btree: leaf chain out of order: %v !< %v", *prev, k)
			}
			kk := k
			prev = &kk
			if len(leaf.postings[i]) == 0 {
				return fmt.Errorf("btree: empty posting for key %v", k)
			}
		}
	}
	return nil
}

func checkNode(n node, lo, hi *Value) (int, error) {
	if n.isLeaf() {
		leaf := n.(*leafNode)
		for _, k := range leaf.keys {
			if lo != nil && lessKey(k, *lo) {
				return 0, fmt.Errorf("btree: key %v below bound %v", k, *lo)
			}
			if hi != nil && !lessKey(k, *hi) {
				return 0, fmt.Errorf("btree: key %v not below bound %v", k, *hi)
			}
		}
		return 1, nil
	}
	in := n.(*innerNode)
	if len(in.children) != len(in.keys)+1 {
		return 0, fmt.Errorf("btree: inner node fanout mismatch")
	}
	depth := -1
	for i, c := range in.children {
		var clo, chi *Value
		if i == 0 {
			clo = lo
		} else {
			clo = &in.keys[i-1]
		}
		if i == len(in.keys) {
			chi = hi
		} else {
			chi = &in.keys[i]
		}
		d, err := checkNode(c, clo, chi)
		if err != nil {
			return 0, err
		}
		if depth == -1 {
			depth = d
		} else if d != depth {
			return 0, fmt.Errorf("btree: uneven depth")
		}
	}
	return depth + 1, nil
}

func insertValueAt(s []Value, i int, v Value) []Value {
	s = append(s, Value{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPostingAt(s [][]RID, i int, v []RID) [][]RID {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []node, i int, v node) []node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
