package rdbms

import (
	"context"
	"errors"
	"fmt"
)

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("rdbms: transaction already finished")

// ctxCheckInterval is how many rows a scan-shaped loop processes between
// context-cancellation checks. Checking every row would put a ctx.Err()
// call (an atomic load plus an interface comparison) on the hottest loop
// in the engine; every 64th row bounds a canceled request's overshoot to
// a few microseconds of extra decoding while keeping the common
// uncancelled path effectively free.
const ctxCheckInterval = 64

// Txn is a strict-2PL transaction. All reads and writes go through a Txn;
// locks are held until Commit or Abort. Txn methods are not safe for
// concurrent use by multiple goroutines (one goroutine per transaction,
// many concurrent transactions).
type Txn struct {
	id       TxnID
	db       *DB
	ctx      context.Context // nil = never canceled; see WithContext
	done     bool
	firstLSN LSN // LSN of this transaction's BEGIN record: while the txn is
	// active, no WAL truncation horizon may pass it (its records are the
	// undo information a crash-time rollback needs)
	// commitLogged is set once a COMMIT record has been appended. If that
	// commit's flush fails and the caller aborts instead, the abort must
	// be flushed too: otherwise a crash could durably keep the commit
	// record but lose the abort, resurrecting a transaction the caller
	// was told did not commit.
	commitLogged bool
	undo         []undoRec
	// touched tracks the rows whose version chains this transaction holds
	// (one writer hold per row, taken on first mutation). At commit the
	// holds convert into published versions; at abort they are released
	// (undo restored the heap to each chain's base image).
	touched map[chainRef]struct{}
	// hashDelta accumulates, per content-hashed table, the wrapping-sum
	// delta this transaction's writes apply to the table's multiset
	// content hash. Applied at Commit (after the log is durable) and
	// discarded at Abort, whose physical restores return the table — and
	// therefore the hash — to its pre-transaction state.
	hashDelta map[string]uint64
}

// slotFilter returns the tombstone-reuse predicate for inserts: a
// tombstoned slot whose row lock is still held by another transaction is
// off limits. The holder is a deleter that may yet abort — its undo would
// restore the old row at that exact RID, colliding with the new tuple.
// (The insert path re-locks the chosen RID afterwards; this filter keeps
// the choice and the lock grant consistent because the only transaction
// that could hold the lock is the one excluded here.)
func (tx *Txn) slotFilter(table string) func(RID) bool {
	return func(rid RID) bool {
		return !tx.db.lm.HeldByOther(tx.id, RowLock(table, rid))
	}
}

// foldHash accumulates a row-content change into the transaction's hash
// delta for a content-hashed table. remove/add may be nil.
func (tx *Txn) foldHash(t *Table, table string, remove, add Tuple) {
	if t.hashCols == nil {
		return
	}
	if tx.hashDelta == nil {
		tx.hashDelta = map[string]uint64{}
	}
	d := tx.hashDelta[table]
	if remove != nil {
		d -= t.rowHash(remove)
	}
	if add != nil {
		d += t.rowHash(add)
	}
	tx.hashDelta[table] = d
}

type undoRec struct {
	kind   LogKind
	table  string
	rid    RID
	before Tuple
	after  Tuple
}

// noteVersion records the committed pre-image of a row in the version
// store the first time this transaction mutates it. It must run before
// the row's heap bytes can change (the mutation paths call it either
// ahead of the heap call or inside the onApply hook, which runs under
// the heap's write latch), so snapshot readers that find no chain know
// the heap bytes they read were committed.
func (tx *Txn) noteVersion(table string, rid RID, before Tuple, beforeLive bool) {
	ref := chainRef{table: table, rid: rid}
	if _, ok := tx.touched[ref]; ok {
		return
	}
	if tx.touched == nil {
		tx.touched = make(map[chainRef]struct{})
	}
	tx.touched[ref] = struct{}{}
	tx.db.vs.noteWrite(table, rid, before, beforeLive)
}

// versionFinals computes the per-row net effect of this transaction from
// its undo log (the last record per row wins).
func (tx *Txn) versionFinals() []finalState {
	finals := make(map[chainRef]int, len(tx.touched))
	out := make([]finalState, 0, len(tx.touched))
	for _, u := range tx.undo {
		f := finalState{table: u.table, rid: u.rid, live: u.kind != LogDelete, tup: u.after}
		ref := chainRef{table: u.table, rid: u.rid}
		if i, ok := finals[ref]; ok {
			out[i] = f
			continue
		}
		finals[ref] = len(out)
		out = append(out, f)
	}
	return out
}

func (tx *Txn) touchedRefs() []chainRef {
	refs := make([]chainRef, 0, len(tx.touched))
	for r := range tx.touched {
		refs = append(refs, r)
	}
	return refs
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	db.txnMu.Lock()
	db.nextTxn++
	tx := &Txn{id: db.nextTxn, db: db}
	db.active[tx.id] = tx
	// The BEGIN record is appended while the txn is already registered in
	// db.active, so a concurrent checkpoint either sees the txn (and
	// bounds its truncation horizon by firstLSN) or runs entirely before
	// any of its records exist.
	tx.firstLSN = db.wal.Append(&LogRecord{Kind: LogBegin, Txn: tx.id})
	db.txnMu.Unlock()
	return tx
}

// ID returns the transaction id.
func (tx *Txn) ID() TxnID { return tx.id }

// WithContext attaches a cancellation context to the transaction and
// returns it. Long row-producing loops (heap scans, index iteration, the
// SELECT fetch paths) poll the context at scan-loop granularity and fail
// with its error once it is done — the mechanism that bounds how long a
// request with a deadline can hold the engine's locks. A nil or
// background context keeps the pre-context behavior: the transaction
// runs to completion. The caller still owns the transaction's outcome:
// a canceled operation returns the context error and the transaction
// must be aborted (or committed, for the work that did finish) as usual.
func (tx *Txn) WithContext(ctx context.Context) *Txn {
	tx.ctx = ctx
	return tx
}

// ctxErr reports the transaction context's error, nil when no context is
// attached.
func (tx *Txn) ctxErr() error {
	if tx.ctx == nil {
		return nil
	}
	return tx.ctx.Err()
}

func (tx *Txn) table(name string) (*Table, error) {
	t := tx.db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("rdbms: table %s does not exist", name)
	}
	return t, nil
}

// Insert adds a tuple, returning its RID.
func (tx *Txn) Insert(table string, tup Tuple) (RID, error) {
	if tx.done {
		return RID{}, ErrTxnDone
	}
	t, err := tx.table(table)
	if err != nil {
		return RID{}, err
	}
	tup = t.Schema.Coerce(tup)
	if err := t.Schema.Validate(tup); err != nil {
		return RID{}, err
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockIX); err != nil {
		return RID{}, err
	}
	t.noteMutation()
	rid, err := t.Heap.InsertWhere(tup, tx.slotFilter(table), func(rid RID) LSN {
		// The chosen slot is only known here; the page is pinned under the
		// heap's write latch, so the chain exists before any snapshot
		// reader can observe the new bytes. The pre-image is "no row".
		tx.noteVersion(table, rid, nil, false)
		return tx.db.wal.Append(&LogRecord{Kind: LogInsert, Txn: tx.id, Table: table, Row: rid, After: tup})
	})
	if err != nil {
		return RID{}, err
	}
	// Record the undo entry before anything below can fail: a logged,
	// applied operation with no undo entry would go uncompensated by
	// Abort, and recovery would replay it as this transaction's final
	// verdict on the slot.
	tx.undo = append(tx.undo, undoRec{kind: LogInsert, table: table, rid: rid, after: tup})
	// Lock the new row exclusively (no other txn can see it anyway until
	// commit, but readers scanning the heap must block on it).
	if err := tx.db.lm.Acquire(tx.id, RowLock(table, rid), LockExclusive); err != nil {
		return RID{}, err
	}
	for col, idx := range t.Indexes {
		ci := t.Schema.ColIndex(col)
		idx.Insert(tup[ci], rid)
	}
	tx.foldHash(t, table, nil, tup)
	return rid, nil
}

// Get reads the tuple at rid under a shared lock.
func (tx *Txn) Get(table string, rid RID) (Tuple, bool, error) {
	if tx.done {
		return nil, false, ErrTxnDone
	}
	t, err := tx.table(table)
	if err != nil {
		return nil, false, err
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockIS); err != nil {
		return nil, false, err
	}
	if err := tx.db.lm.Acquire(tx.id, RowLock(table, rid), LockShared); err != nil {
		return nil, false, err
	}
	return t.Heap.Get(rid)
}

// Delete removes the tuple at rid.
func (tx *Txn) Delete(table string, rid RID) error {
	if tx.done {
		return ErrTxnDone
	}
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockIX); err != nil {
		return err
	}
	if err := tx.db.lm.Acquire(tx.id, RowLock(table, rid), LockExclusive); err != nil {
		return err
	}
	before, live, err := t.Heap.Get(rid)
	if err != nil {
		return err
	}
	if !live {
		return fmt.Errorf("rdbms: delete of missing row %v", rid)
	}
	t.noteMutation()
	tx.noteVersion(table, rid, before, true)
	ok, err := t.Heap.DeleteWith(rid, func() LSN {
		return tx.db.wal.Append(&LogRecord{Kind: LogDelete, Txn: tx.id, Table: table, Row: rid, Before: before})
	})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("rdbms: delete of missing row %v", rid)
	}
	for col, idx := range t.Indexes {
		ci := t.Schema.ColIndex(col)
		idx.Delete(before[ci], rid)
	}
	tx.undo = append(tx.undo, undoRec{kind: LogDelete, table: table, rid: rid, before: before})
	tx.foldHash(t, table, before, nil)
	return nil
}

// Update replaces the tuple at rid, returning its (possibly new) RID.
func (tx *Txn) Update(table string, rid RID, tup Tuple) (RID, error) {
	if tx.done {
		return RID{}, ErrTxnDone
	}
	t, err := tx.table(table)
	if err != nil {
		return RID{}, err
	}
	tup = t.Schema.Coerce(tup)
	if err := t.Schema.Validate(tup); err != nil {
		return RID{}, err
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockIX); err != nil {
		return RID{}, err
	}
	if err := tx.db.lm.Acquire(tx.id, RowLock(table, rid), LockExclusive); err != nil {
		return RID{}, err
	}
	before, live, err := t.Heap.Get(rid)
	if err != nil {
		return RID{}, err
	}
	if !live {
		return RID{}, fmt.Errorf("rdbms: update of missing row %v", rid)
	}
	t.noteMutation()
	tx.noteVersion(table, rid, before, true)
	newRID, ok, err := t.Heap.TryUpdateInPlace(rid, tup, func(r RID) LSN {
		return tx.db.wal.Append(&LogRecord{Kind: LogUpdate, Txn: tx.id, Table: table, Row: r, Before: before, After: tup})
	})
	if err != nil {
		return RID{}, err
	}
	if ok {
		tx.fixIndexes(t, rid, newRID, before, tup)
		tx.undo = append(tx.undo, undoRec{kind: LogUpdate, table: table, rid: newRID, before: before, after: tup})
		tx.foldHash(t, table, before, tup)
		return newRID, nil
	}
	// Tuple moves: logged as delete + insert so each page mutation has its
	// own record while pinned.
	if _, err := t.Heap.DeleteWith(rid, func() LSN {
		return tx.db.wal.Append(&LogRecord{Kind: LogDelete, Txn: tx.id, Table: table, Row: rid, Before: before})
	}); err != nil {
		return RID{}, err
	}
	tx.undo = append(tx.undo, undoRec{kind: LogDelete, table: table, rid: rid, before: before})
	newRID, err = t.Heap.InsertWhere(tup, tx.slotFilter(table), func(r RID) LSN {
		tx.noteVersion(table, r, nil, false)
		return tx.db.wal.Append(&LogRecord{Kind: LogInsert, Txn: tx.id, Table: table, Row: r, After: tup})
	})
	if err != nil {
		return RID{}, err
	}
	// Undo entry first, for the same reason as in Insert: the logged
	// insert must be compensatable even if the lock acquire fails.
	tx.undo = append(tx.undo, undoRec{kind: LogInsert, table: table, rid: newRID, after: tup})
	if err := tx.db.lm.Acquire(tx.id, RowLock(table, newRID), LockExclusive); err != nil {
		return RID{}, err
	}
	tx.fixIndexes(t, rid, newRID, before, tup)
	tx.foldHash(t, table, before, tup)
	return newRID, nil
}

func (tx *Txn) fixIndexes(t *Table, oldRID, newRID RID, before, after Tuple) {
	for col, idx := range t.Indexes {
		ci := t.Schema.ColIndex(col)
		idx.Delete(before[ci], oldRID)
		idx.Insert(after[ci], newRID)
	}
}

// Scan iterates every live tuple in the table under a shared table lock.
// With a context attached (WithContext), cancellation is polled every
// ctxCheckInterval rows and the scan stops with the context's error —
// the deadline check that keeps a slow or abandoned SELECT from holding
// its shared lock forever.
func (tx *Txn) Scan(table string, fn func(rid RID, t Tuple) bool) error {
	if tx.done {
		return ErrTxnDone
	}
	if err := tx.ctxErr(); err != nil {
		return err
	}
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockShared); err != nil {
		return err
	}
	if tx.ctx == nil {
		return t.Heap.Scan(fn)
	}
	var n int
	var ctxErr error
	err = t.Heap.Scan(func(rid RID, tup Tuple) bool {
		n++
		if n%ctxCheckInterval == 0 {
			if ctxErr = tx.ctx.Err(); ctxErr != nil {
				return false
			}
		}
		return fn(rid, tup)
	})
	if ctxErr != nil {
		return ctxErr
	}
	return err
}

// IndexLookup returns RIDs with key in the named column's index, under a
// shared table lock.
func (tx *Txn) IndexLookup(table, column string, key Value) ([]RID, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	t, err := tx.table(table)
	if err != nil {
		return nil, err
	}
	idx := t.Indexes[column]
	if idx == nil {
		return nil, fmt.Errorf("rdbms: no index on %s.%s", table, column)
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockShared); err != nil {
		return nil, err
	}
	return idx.Lookup(key), nil
}

// IndexRange iterates index entries in [lo, hi] (nil = unbounded),
// polling an attached context every ctxCheckInterval entries like Scan.
func (tx *Txn) IndexRange(table, column string, lo, hi *Value, fn func(key Value, rid RID) bool) error {
	if tx.done {
		return ErrTxnDone
	}
	if err := tx.ctxErr(); err != nil {
		return err
	}
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	idx := t.Indexes[column]
	if idx == nil {
		return fmt.Errorf("rdbms: no index on %s.%s", table, column)
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(table), LockShared); err != nil {
		return err
	}
	if tx.ctx == nil {
		idx.Range(lo, hi, fn)
		return nil
	}
	var n int
	var ctxErr error
	idx.Range(lo, hi, func(key Value, rid RID) bool {
		n++
		if n%ctxCheckInterval == 0 {
			if ctxErr = tx.ctx.Err(); ctxErr != nil {
				return false
			}
		}
		return fn(key, rid)
	})
	return ctxErr
}

// Commit forces the log and releases locks. After Commit the transaction's
// effects are durable (they survive a crash). Durability is bought through
// the WAL's group-commit sequencer: the committer waits only until the
// flush batch containing its own commit record is durable, so N
// concurrent committers share O(1) fsyncs instead of paying one each.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	rec := &LogRecord{Kind: LogCommit, Txn: tx.id}
	versioned := len(tx.touched) > 0
	var target LSN
	if versioned {
		// Register the commit LSN as pending atomically with its WAL
		// append: group commit lets a later commit publish first, and
		// without this a snapshot pinned in the gap could miss an earlier,
		// already-appended commit and break repeatable read.
		target = tx.db.vs.withPending(func() LSN { return tx.db.wal.AppendEnd(rec) })
	} else {
		target = tx.db.wal.AppendEnd(rec)
	}
	tx.commitLogged = true
	if err := tx.db.wal.FlushCommit(target); err != nil {
		// The commit record may or may not be durable; the transaction is
		// in doubt until the caller aborts (which forces the abort record
		// out) or a crash lets recovery decide from what survived. Either
		// way this process will not publish the transaction's versions, so
		// stop gating snapshots and GC on the pending LSN.
		if versioned {
			tx.db.vs.cancelPending(target)
		}
		return err
	}
	// The commit is durable: fold this transaction's content-hash deltas
	// into their tables. Still before finish() so a table's hash already
	// reflects the rows a newly admitted reader can see.
	for name, d := range tx.hashDelta {
		if t := tx.db.Table(name); t != nil {
			t.hash.Add(d)
		}
	}
	if versioned {
		// Durable: publish the per-row committed states at the commit LSN
		// so snapshots at or past it resolve to this transaction's writes.
		tx.db.vs.publish(target, tx.versionFinals(), tx.touchedRefs())
	}
	tx.finish()
	return nil
}

// Abort rolls back all changes using in-memory before-images, then logs
// the abort and releases locks. Every physical restore is logged as a
// compensation record attributed to this transaction: recovery replays
// aborted transactions like winners (the operations and their
// compensations net to nothing, in global log order), which is what
// keeps an aborted transaction's undo from firing twice when a later
// committed transaction reuses the same RID.
func (tx *Txn) Abort() error {
	if tx.done {
		return ErrTxnDone
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		t := tx.db.Table(u.table)
		if t == nil {
			continue
		}
		t.noteMutation()
		switch u.kind {
		case LogInsert:
			if _, err := t.Heap.DeleteWith(u.rid, func() LSN {
				return tx.db.wal.Append(&LogRecord{Kind: LogDelete, Txn: tx.id, Table: u.table, Row: u.rid, Before: u.after})
			}); err != nil {
				return fmt.Errorf("rdbms: abort undo insert: %w", err)
			}
			for col, idx := range t.Indexes {
				ci := t.Schema.ColIndex(col)
				idx.Delete(u.after[ci], u.rid)
			}
		case LogDelete:
			if err := t.Heap.InsertAtWith(u.rid, u.before, func() LSN {
				return tx.db.wal.Append(&LogRecord{Kind: LogInsert, Txn: tx.id, Table: u.table, Row: u.rid, After: u.before})
			}); err != nil {
				return fmt.Errorf("rdbms: abort undo delete: %w", err)
			}
			for col, idx := range t.Indexes {
				ci := t.Schema.ColIndex(col)
				idx.Insert(u.before[ci], u.rid)
			}
		case LogUpdate:
			restoredRID := u.rid
			_, ok, err := t.Heap.TryUpdateInPlace(u.rid, u.before, func(r RID) LSN {
				return tx.db.wal.Append(&LogRecord{Kind: LogUpdate, Txn: tx.id, Table: u.table, Row: r, Before: u.after, After: u.before})
			})
			if err != nil {
				return fmt.Errorf("rdbms: abort undo update: %w", err)
			}
			if !ok {
				// The before-image no longer fits in place: compensate as
				// a delete + insert, like a moving update.
				if _, err := t.Heap.DeleteWith(u.rid, func() LSN {
					return tx.db.wal.Append(&LogRecord{Kind: LogDelete, Txn: tx.id, Table: u.table, Row: u.rid, Before: u.after})
				}); err != nil {
					return fmt.Errorf("rdbms: abort undo update: %w", err)
				}
				restoredRID, err = t.Heap.InsertWhere(u.before, tx.slotFilter(u.table), func(r RID) LSN {
					return tx.db.wal.Append(&LogRecord{Kind: LogInsert, Txn: tx.id, Table: u.table, Row: r, After: u.before})
				})
				if err != nil {
					return fmt.Errorf("rdbms: abort undo update: %w", err)
				}
				if restoredRID != u.rid {
					// The row came back at a new RID (original page full
					// even after compaction). Chain state cannot describe a
					// relocation without a commit LSN, so this chain opts
					// out of the abort fence and keeps prompt deletion; a
					// snapshot scanning across exactly this window may
					// transiently misread the row — a pre-existing gap,
					// unreachable for fixed-size tuples.
					tx.db.vs.noteAbortMoved(u.table, u.rid)
				}
			}
			for col, idx := range t.Indexes {
				ci := t.Schema.ColIndex(col)
				idx.Delete(u.after[ci], u.rid)
				idx.Insert(u.before[ci], restoredRID)
			}
		}
	}
	// Undo restored every touched row to its chain's base image; release
	// the writer holds without publishing anything.
	if len(tx.touched) > 0 {
		tx.db.vs.release(tx.touchedRefs())
		tx.touched = nil
	}
	tx.db.wal.Append(&LogRecord{Kind: LogAbort, Txn: tx.id})
	if tx.commitLogged {
		// Aborting a failed commit: the abort verdict must reach stable
		// storage before it is acknowledged, so the earlier commit record
		// can never outlive it in the log (recovery takes the last
		// verdict).
		if err := tx.db.wal.Flush(); err != nil {
			return err
		}
	}
	tx.finish()
	return nil
}

func (tx *Txn) finish() {
	tx.done = true
	tx.db.lm.ReleaseAll(tx.id)
	tx.db.txnMu.Lock()
	delete(tx.db.active, tx.id)
	tx.db.txnMu.Unlock()
}
