package rdbms

import (
	"fmt"
	"hash/fnv"
)

// Incrementally maintained table content hashes.
//
// A table with content hashing enabled carries an order-independent
// multiset digest over a caller-chosen column subset: each live row
// contributes fnv64a(encoding of its hashed columns), and the
// contributions are combined with wrapping addition, so insertion order
// is irrelevant but multiplicity counts. Transactions accumulate their
// delta privately and fold it in only once their commit record is
// durable (aborts physically restore the rows, so discarding the delta
// is exact); checkpoints persist the accumulator in the catalog; crash
// recovery adjusts the persisted value from the WAL tail's before/after
// images. The result: a fresh process can read the table's content
// digest in O(1), where verifying content previously required a full
// scan. core's warm-start load uses this to validate its persisted
// catalog snapshot without rescanning the extracted table.

// ContentHashValues digests a row's hashed column values into its
// multiset contribution. The self-describing value encoding is
// prefix-free, so distinct column tuples cannot collide by
// concatenation.
func ContentHashValues(vals ...Value) uint64 {
	h := fnv.New64a()
	var scratch [64]byte
	for _, v := range vals {
		h.Write(encodeValue(scratch[:0], v))
	}
	return h.Sum64()
}

// contentHashCols digests the selected columns of one tuple.
func contentHashCols(tup Tuple, cols []int) uint64 {
	h := fnv.New64a()
	var scratch [64]byte
	for _, ci := range cols {
		h.Write(encodeValue(scratch[:0], tup[ci]))
	}
	return h.Sum64()
}

// EnableContentHash turns on multiset content hashing over the named
// columns of a table. The initial digest is computed with one scan (free
// for an empty table); afterwards every committed write maintains it
// incrementally and checkpoints persist it, so reopening the database
// restores the digest without scanning. Re-enabling with the same
// columns is a no-op (the reopen path); changing the column set rescans.
func (db *DB) EnableContentHash(table string, cols []string) error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	t, ok := db.tables[table]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("rdbms: table %s does not exist", table)
	}
	if len(cols) == 0 {
		return fmt.Errorf("rdbms: content hash needs at least one column")
	}
	same := len(t.hashColNames) == len(cols)
	idxs := make([]int, len(cols))
	for i, c := range cols {
		ci := t.Schema.ColIndex(c)
		if ci < 0 {
			return fmt.Errorf("rdbms: no column %s in %s", c, table)
		}
		idxs[i] = ci
		if same && t.hashColNames[i] != c {
			same = false
		}
	}
	if same {
		return nil // already maintained (reopen path): keep the recovered digest
	}
	// The baseline scan reads without transaction locks, so enabling
	// requires quiesce (checkpoints themselves no longer do) — and the
	// check must stay atomic with the scan: db.mu is held exclusively
	// across check + scan + install, which parks every new transaction
	// operation at its db.Table lookup until the digest is in place. A
	// transaction beginning mid-scan would otherwise write rows the scan
	// already passed without folding a delta (hashCols is still nil from
	// its point of view), silently corrupting the baseline.
	if err := func() error {
		db.mu.Lock()
		defer db.mu.Unlock() // released before the checkpoint below (it takes RLock)
		db.txnMu.Lock()
		n := len(db.active)
		db.txnMu.Unlock()
		if n > 0 {
			return fmt.Errorf("rdbms: enable content hash with %d active transactions", n)
		}
		var sum uint64
		err := t.Heap.Scan(func(_ RID, tup Tuple) bool {
			sum += contentHashCols(tup, idxs)
			return true
		})
		if err != nil {
			return err
		}
		t.hashCols = idxs
		t.hashColNames = append([]string(nil), cols...)
		t.hash.Store(sum)
		t.catHash = sum
		// Mark the table changed so the checkpoint's consistent capture
		// re-freezes snapLSN/validity around the new spec.
		t.noteMutation()
		return nil
	}(); err != nil {
		return err
	}
	// Persist the spec like DDL: the catalog is always consistent with a
	// checkpoint boundary.
	return db.checkpointLocked()
}

// ContentHash returns the table's current multiset content digest, or
// ok=false when content hashing is not enabled on it.
func (db *DB) ContentHash(table string) (uint64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[table]
	if t == nil || t.hashCols == nil {
		return 0, false
	}
	return t.hash.Load(), true
}
