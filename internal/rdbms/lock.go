package rdbms

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrDeadlock is returned to a transaction chosen as a deadlock victim; the
// caller should abort and may retry.
var ErrDeadlock = errors.New("rdbms: deadlock detected")

// LockMode is a multi-granularity lock mode. Intent modes (IS, IX) are
// taken on tables before locking individual rows.
type LockMode uint8

const (
	LockIS LockMode = iota + 1 // intent shared
	LockIX                     // intent exclusive
	LockShared
	LockExclusive
)

func (m LockMode) String() string {
	switch m {
	case LockIS:
		return "IS"
	case LockIX:
		return "IX"
	case LockShared:
		return "S"
	case LockExclusive:
		return "X"
	}
	return fmt.Sprintf("LockMode(%d)", uint8(m))
}

// compatible reports whether two modes may be held simultaneously by
// different transactions (standard multi-granularity matrix, without SIX).
func compatible(a, b LockMode) bool {
	switch a {
	case LockIS:
		return b != LockExclusive
	case LockIX:
		return b == LockIS || b == LockIX
	case LockShared:
		return b == LockIS || b == LockShared
	case LockExclusive:
		return false
	}
	return false
}

// covers reports whether holding `held` already satisfies a request for
// `want` by the same transaction.
func covers(held, want LockMode) bool {
	if held == want {
		return true
	}
	switch held {
	case LockExclusive:
		return true
	case LockShared:
		return want == LockIS
	case LockIX:
		return want == LockIS
	}
	return false
}

// upgraded returns the mode that subsumes both held and want. S+IX becomes
// X (we approximate SIX with X for simplicity).
func upgraded(held, want LockMode) LockMode {
	if covers(held, want) {
		return held
	}
	if covers(want, held) {
		return want
	}
	return LockExclusive
}

// LockKey names a lockable resource: a whole table or a single row.
type LockKey struct {
	Table string
	Row   RID
}

// TableLock returns the key locking an entire table.
func TableLock(table string) LockKey {
	return LockKey{Table: table, Row: RID{Page: InvalidPage, Slot: 0xFFFF}}
}

// RowLock returns the key locking one row.
func RowLock(table string, rid RID) LockKey {
	return LockKey{Table: table, Row: rid}
}

// LockManager implements strict two-phase locking with multi-granularity
// modes and wait-for-graph deadlock detection: when a request must wait,
// the manager adds wait-for edges and aborts the requester if that would
// close a cycle.
type LockManager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	locks   map[LockKey]*lockState
	waitFor map[TxnID]map[TxnID]bool // waiter -> holders it waits on

	deadlocks    int64
	acquisitions atomic.Int64
}

type lockState struct {
	holders map[TxnID]LockMode
	waiting int
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{
		locks:   make(map[LockKey]*lockState),
		waitFor: make(map[TxnID]map[TxnID]bool),
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Acquire blocks until txn holds key in (at least) mode, or returns
// ErrDeadlock if waiting would close a wait-for cycle. Upgrades are
// granted when compatible with all other holders.
func (lm *LockManager) Acquire(txn TxnID, key LockKey, mode LockMode) error {
	lm.acquisitions.Add(1)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		ls := lm.locks[key]
		if ls == nil {
			lm.locks[key] = &lockState{holders: map[TxnID]LockMode{txn: mode}}
			return nil
		}
		held, holding := ls.holders[txn]
		if holding && covers(held, mode) {
			return nil
		}
		want := mode
		if holding {
			want = upgraded(held, mode)
		}
		ok := true
		for other, om := range ls.holders {
			if other == txn {
				continue
			}
			if !compatible(om, want) {
				ok = false
				break
			}
		}
		// Grant whenever the request is compatible with every current
		// holder. (No waiter queue-fairness: a steady stream of readers
		// could in principle starve a writer, which is acceptable at this
		// engine's scale and keeps wakeup semantics obviously live.)
		if ok {
			ls.holders[txn] = want
			return nil
		}
		// Must wait on conflicting holders.
		var blockers []TxnID
		for other, om := range ls.holders {
			if other != txn && !compatible(om, want) {
				blockers = append(blockers, other)
			}
		}
		if lm.wouldDeadlockLocked(txn, blockers) {
			lm.deadlocks++
			return ErrDeadlock
		}
		if lm.waitFor[txn] == nil {
			lm.waitFor[txn] = make(map[TxnID]bool)
		}
		for _, h := range blockers {
			lm.waitFor[txn][h] = true
		}
		ls.waiting++
		lm.cond.Wait()
		ls.waiting--
		delete(lm.waitFor, txn)
	}
}

// wouldDeadlockLocked checks whether adding edges txn->blockers closes a
// cycle back to txn in the wait-for graph.
func (lm *LockManager) wouldDeadlockLocked(txn TxnID, blockers []TxnID) bool {
	seen := map[TxnID]bool{}
	stack := append([]TxnID(nil), blockers...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range lm.waitFor[cur] {
			stack = append(stack, next)
		}
	}
	return false
}

// ReleaseAll frees every lock held by txn and wakes waiters.
func (lm *LockManager) ReleaseAll(txn TxnID) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for key, ls := range lm.locks {
		if _, ok := ls.holders[txn]; ok {
			delete(ls.holders, txn)
			if len(ls.holders) == 0 && ls.waiting == 0 {
				delete(lm.locks, key)
			}
		}
	}
	delete(lm.waitFor, txn)
	lm.cond.Broadcast()
}

// HeldByOther reports whether any transaction other than txn holds key in
// any mode. The insert path uses it to skip tombstoned slots whose row
// lock is still held by the transaction that deleted them (that
// transaction's abort would restore its row at the same RID).
func (lm *LockManager) HeldByOther(txn TxnID, key LockKey) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ls := lm.locks[key]
	if ls == nil {
		return false
	}
	for other := range ls.holders {
		if other != txn {
			return true
		}
	}
	return false
}

// Held reports whether txn currently holds key in a mode covering mode.
func (lm *LockManager) Held(txn TxnID, key LockKey, mode LockMode) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ls := lm.locks[key]
	if ls == nil {
		return false
	}
	held, ok := ls.holders[txn]
	return ok && covers(held, mode)
}

// Deadlocks returns the number of deadlock victims chosen so far.
func (lm *LockManager) Deadlocks() int64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.deadlocks
}

// Acquisitions returns the total number of Acquire calls ever made.
// The MVCC race suite snapshots it around reader-only workloads to
// prove snapshot reads take zero locks.
func (lm *LockManager) Acquisitions() int64 {
	return lm.acquisitions.Load()
}

// DebugString renders held locks (diagnostics).
func (lm *LockManager) DebugString() string {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	s := ""
	for key, ls := range lm.locks {
		s += fmt.Sprintf("%s/%v held by %v (%d waiting)\n", key.Table, key.Row, ls.holders, ls.waiting)
	}
	return s
}
