package rdbms

import (
	"fmt"
	"math/rand"
	"testing"
)

// scanHash recomputes a table's multiset content digest from the heap —
// the oracle every incremental path must match.
func scanHash(t *testing.T, db *DB, table string, cols []int) uint64 {
	t.Helper()
	var sum uint64
	tx := db.Begin()
	err := tx.Scan(table, func(_ RID, tup Tuple) bool {
		sum += contentHashCols(tup, cols)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	return sum
}

func hashTestDB(t *testing.T) *DB {
	t.Helper()
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE kv (k INT, v STRING, w FLOAT)")
	if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestContentHashIncrementalMatchesScan drives a seeded mix of inserts,
// updates, deletes, commits, and aborts, asserting after every
// transaction that the incrementally maintained digest equals a full
// recompute — including that aborted work leaves no trace.
func TestContentHashIncrementalMatchesScan(t *testing.T) {
	db := hashTestDB(t)
	cols := db.Table("kv").hashCols
	rng := rand.New(rand.NewSource(7))
	live := map[int64]RID{}
	for round := 0; round < 60; round++ {
		tx := db.Begin()
		local := map[int64]RID{}
		ops := 1 + rng.Intn(6)
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(20))
			rid, known := local[k]
			if !known {
				rid, known = live[k]
			}
			switch rng.Intn(3) {
			case 0:
				r, err := tx.Insert("kv", Tuple{NewInt(k), NewString(fmt.Sprintf("r%d-%d", round, i)), NewFloat(1)})
				if err != nil {
					t.Fatal(err)
				}
				local[k] = r
			case 1:
				if known {
					newRID, err := tx.Update("kv", rid, Tuple{NewInt(k), NewString(fmt.Sprintf("u%d-%d", round, i)), NewFloat(2)})
					if err != nil {
						t.Fatal(err)
					}
					local[k] = newRID
				}
			case 2:
				if known {
					if err := tx.Delete("kv", rid); err != nil {
						t.Fatal(err)
					}
					delete(local, k)
					local[k] = RID{Page: InvalidPage} // poison: the key is gone this txn
				}
			}
		}
		if rng.Intn(3) == 0 {
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for k, r := range local {
				if r.Page == InvalidPage {
					delete(live, k)
				} else {
					live[k] = r
				}
			}
		}
		got, ok := db.ContentHash("kv")
		if !ok {
			t.Fatal("content hash not enabled")
		}
		if want := scanHash(t, db, "kv", cols); got != want {
			t.Fatalf("round %d: incremental hash %x != scan hash %x", round, got, want)
		}
	}
}

// TestContentHashIgnoresUnhashedColumns: updating only a column outside
// the hash spec must leave the digest unchanged (the warm-start
// contract: value corrections do not invalidate the catalog identity).
func TestContentHashIgnoresUnhashedColumns(t *testing.T) {
	db := hashTestDB(t)
	tx := db.Begin()
	rid, err := tx.Insert("kv", Tuple{NewInt(1), NewString("a"), NewFloat(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	before, _ := db.ContentHash("kv")
	tx = db.Begin()
	if _, err := tx.Update("kv", rid, Tuple{NewInt(1), NewString("a"), NewFloat(99)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after, _ := db.ContentHash("kv")
	if before != after {
		t.Fatalf("hash moved on unhashed-column update: %x -> %x", before, after)
	}
	tx = db.Begin()
	if _, err := tx.Update("kv", rid, Tuple{NewInt(1), NewString("b"), NewFloat(99)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	moved, _ := db.ContentHash("kv")
	if moved == after {
		t.Fatal("hash must move when a hashed column changes")
	}
}

// TestContentHashSurvivesReopen: the digest is persisted at checkpoint
// and restored — adjusted for the WAL tail — by recovery, so a fresh
// process reads the correct value in O(1).
func TestContentHashSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (k INT, v STRING, w FLOAT)")
	if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 200; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString(fmt.Sprintf("v%d", i)), NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want, _ := db.ContentHash("kv")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.ContentHash("kv")
	if !ok || got != want {
		t.Fatalf("reopened hash %x (ok=%v), want %x", got, ok, want)
	}
	// Re-enabling the same spec must be a no-op that keeps the digest.
	if err := re.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	if got2, _ := re.ContentHash("kv"); got2 != want {
		t.Fatalf("re-enable changed hash %x -> %x", want, got2)
	}
	if want2 := scanHash(t, re, "kv", re.Table("kv").hashCols); got != want2 {
		t.Fatalf("reopened hash %x != scan recompute %x", got, want2)
	}
	re.Close()
}

// TestContentHashCrashRecoveryAdjustment: commits after the last
// checkpoint live only in the WAL at crash time; recovery must adjust
// the catalog's checkpoint-time digest by the tail's deltas (and ignore
// the in-flight loser).
func TestContentHashCrashRecoveryAdjustment(t *testing.T) {
	pageDev, walDev := NewMemDevice(), NewMemWALStore()
	pager, _ := NewDevicePager(pageDev)
	wal, _ := NewWALOn(walDev)
	db, err := Open(pager, wal, Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	var rids []RID
	tx := db.Begin()
	for i := 0; i < 50; i++ {
		rid, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString("pre")})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail: committed churn + an in-flight loser, then crash.
	tx = db.Begin()
	if err := tx.Delete("kv", rids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Update("kv", rids[1], Tuple{NewInt(1), NewString("post")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("kv", Tuple{NewInt(1000), NewString("tail")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	loser := db.Begin()
	if _, err := loser.Insert("kv", Tuple{NewInt(2000), NewString("loser")}); err != nil {
		t.Fatal(err)
	}
	db.wal.Flush()
	pageDev.Crash(nil)
	walDev.Crash(nil)

	re, _ := reopenClean(t, pageDev, walDev)
	got, ok := re.ContentHash("kv")
	if !ok {
		t.Fatal("hash spec lost across recovery")
	}
	if want := scanHash(t, re, "kv", re.Table("kv").hashCols); got != want {
		t.Fatalf("recovered hash %x != scan recompute %x", got, want)
	}
	re.Close()
}
