package rdbms

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// ColumnDef describes one column.
type ColumnDef struct {
	Name string
	Type Type
}

// TableSchema is a table's name and ordered columns.
type TableSchema struct {
	Name    string
	Columns []ColumnDef
}

// ColIndex returns the position of the named column, or -1.
func (s *TableSchema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that t conforms to the schema (arity and types; NULL is
// allowed in any column).
func (s *TableSchema) Validate(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("rdbms: tuple arity %d != schema arity %d for %s", len(t), len(s.Columns), s.Name)
	}
	for i, v := range t {
		if v.Type == TNull {
			continue
		}
		want := s.Columns[i].Type
		if v.Type == want {
			continue
		}
		// Allow int into float columns.
		if want == TFloat && v.Type == TInt {
			continue
		}
		return fmt.Errorf("rdbms: column %s expects %s, got %s", s.Columns[i].Name, want, v.Type)
	}
	return nil
}

// Coerce converts tuple values to the schema's declared types where a
// lossless conversion exists (int -> float).
func (s *TableSchema) Coerce(t Tuple) Tuple {
	out := t.Clone()
	for i := range out {
		if i < len(s.Columns) && s.Columns[i].Type == TFloat && out[i].Type == TInt {
			out[i] = NewFloat(float64(out[i].I))
		}
	}
	return out
}

// Table is a named heap with optional per-column indexes.
type Table struct {
	Schema  TableSchema
	Heap    *HeapFile
	Indexes map[string]*BTree // column name -> index
}

// catalog page layout (page 0):
//   magic "UDB1" | checkpointLSN u64 | numTables u32 |
//   per table: name | ncols u32 | (colName, typeByte)* | firstPage u32 |
//              nIndexes u32 | indexColName*

var catalogMagic = [4]byte{'U', 'D', 'B', '1'}

type catalogData struct {
	checkpointLSN LSN
	tables        []catalogTable
}

type catalogTable struct {
	schema    TableSchema
	firstPage PageID
	indexCols []string
}

func encodeCatalog(c *catalogData) ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = append(buf, catalogMagic[:]...)
	var tmp8 [8]byte
	binary.LittleEndian.PutUint64(tmp8[:], uint64(c.checkpointLSN))
	buf = append(buf, tmp8[:]...)
	var tmp4 [4]byte
	binary.LittleEndian.PutUint32(tmp4[:], uint32(len(c.tables)))
	buf = append(buf, tmp4[:]...)
	for _, t := range c.tables {
		buf = appendString(buf, t.schema.Name)
		binary.LittleEndian.PutUint32(tmp4[:], uint32(len(t.schema.Columns)))
		buf = append(buf, tmp4[:]...)
		for _, col := range t.schema.Columns {
			buf = appendString(buf, col.Name)
			buf = append(buf, byte(col.Type))
		}
		binary.LittleEndian.PutUint32(tmp4[:], uint32(t.firstPage))
		buf = append(buf, tmp4[:]...)
		cols := append([]string(nil), t.indexCols...)
		sort.Strings(cols)
		binary.LittleEndian.PutUint32(tmp4[:], uint32(len(cols)))
		buf = append(buf, tmp4[:]...)
		for _, ic := range cols {
			buf = appendString(buf, ic)
		}
	}
	if len(buf) > PageSize {
		return nil, fmt.Errorf("rdbms: catalog of %d bytes exceeds one page", len(buf))
	}
	page := make([]byte, PageSize)
	copy(page, buf)
	return page, nil
}

func decodeCatalog(page []byte) (*catalogData, error) {
	if len(page) < 16 {
		return nil, fmt.Errorf("rdbms: short catalog page")
	}
	if [4]byte(page[:4]) != catalogMagic {
		return nil, fmt.Errorf("rdbms: bad catalog magic")
	}
	c := &catalogData{checkpointLSN: LSN(binary.LittleEndian.Uint64(page[4:12]))}
	n := int(binary.LittleEndian.Uint32(page[12:16]))
	off := 16
	for i := 0; i < n; i++ {
		var t catalogTable
		name, used, err := readString(page[off:])
		if err != nil {
			return nil, err
		}
		t.schema.Name = name
		off += used
		if len(page) < off+4 {
			return nil, fmt.Errorf("rdbms: truncated catalog")
		}
		ncols := int(binary.LittleEndian.Uint32(page[off : off+4]))
		off += 4
		for j := 0; j < ncols; j++ {
			cname, used, err := readString(page[off:])
			if err != nil {
				return nil, err
			}
			off += used
			if len(page) < off+1 {
				return nil, fmt.Errorf("rdbms: truncated catalog column")
			}
			t.schema.Columns = append(t.schema.Columns, ColumnDef{Name: cname, Type: Type(page[off])})
			off++
		}
		if len(page) < off+8 {
			return nil, fmt.Errorf("rdbms: truncated catalog table")
		}
		t.firstPage = PageID(binary.LittleEndian.Uint32(page[off : off+4]))
		off += 4
		nidx := int(binary.LittleEndian.Uint32(page[off : off+4]))
		off += 4
		for j := 0; j < nidx; j++ {
			ic, used, err := readString(page[off:])
			if err != nil {
				return nil, err
			}
			t.indexCols = append(t.indexCols, ic)
			off += used
		}
		c.tables = append(c.tables, t)
	}
	return c, nil
}
