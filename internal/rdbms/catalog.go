package rdbms

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// ColumnDef describes one column.
type ColumnDef struct {
	Name string
	Type Type
}

// TableSchema is a table's name and ordered columns.
type TableSchema struct {
	Name    string
	Columns []ColumnDef
}

// ColIndex returns the position of the named column, or -1.
func (s *TableSchema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that t conforms to the schema (arity and types; NULL is
// allowed in any column).
func (s *TableSchema) Validate(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("rdbms: tuple arity %d != schema arity %d for %s", len(t), len(s.Columns), s.Name)
	}
	for i, v := range t {
		if v.Type == TNull {
			continue
		}
		want := s.Columns[i].Type
		if v.Type == want {
			continue
		}
		// Allow int into float columns.
		if want == TFloat && v.Type == TInt {
			continue
		}
		return fmt.Errorf("rdbms: column %s expects %s, got %s", s.Columns[i].Name, want, v.Type)
	}
	return nil
}

// Coerce converts tuple values to the schema's declared types where a
// lossless conversion exists (int -> float).
func (s *TableSchema) Coerce(t Tuple) Tuple {
	out := t.Clone()
	for i := range out {
		if i < len(s.Columns) && s.Columns[i].Type == TFloat && out[i].Type == TInt {
			out[i] = NewFloat(float64(out[i].I))
		}
	}
	return out
}

// Table is a named heap with optional per-column indexes.
type Table struct {
	Schema  TableSchema
	Heap    *HeapFile
	Indexes map[string]*BTree // column name -> index

	// Content-hash maintenance (EnableContentHash): hashCols are the
	// column positions folded into the order-independent multiset hash,
	// hashColNames their catalog-persisted names, and hash the live
	// accumulator (atomic: committers fold their deltas in concurrently).
	// The hash is persisted in the catalog at checkpoint and adjusted by
	// recovery from the WAL tail, so a fresh process reads the table's
	// content digest in O(1).
	hashCols     []int
	hashColNames []string
	hash         atomic.Uint64

	// idx tracks each index's on-disk checkpoint chain (see
	// idxcheckpoint.go): where the serialized B+tree lives, the
	// checkpoint stamp it carries, and the tree's mutation count when it
	// was last written — unchanged indexes skip re-serialization.
	idx map[string]*idxPersist

	// Fuzzy-checkpoint consistency bookkeeping. mut counts every heap
	// mutation applied through a transaction (including abort
	// compensations); catMut is mut's value at the last CONSISTENT
	// derived-state capture — a checkpoint that serialized this table's
	// index chains and content hash while no transaction was active, at
	// log position snapLSN. mut == catMut therefore means "the persisted
	// chains and hash still describe this table exactly as of snapLSN,
	// and every later record for it in the log is >= snapLSN" — the
	// condition under which a crash recovery may bulk-load the chains and
	// delta-adjust the hash from the WAL tail. A fuzzy checkpoint taken
	// while the table is mid-change instead marks the persisted state
	// invalid (hashValid=false, chain stamps bumped), and recovery falls
	// back to rebuild/recompute by scan.
	mut    atomic.Int64
	catMut int64
	// snapLSN / derivedValid / catHash are what the catalog persists for
	// this table: the log position of the last consistent capture,
	// whether that capture is trustworthy, and the hash value frozen at
	// it (never the live accumulator — a committer folding its delta
	// mid-catalog-write must not leak into a snapshot claiming an older
	// log position).
	snapLSN      LSN
	derivedValid bool
	catHash      uint64

	// bornLSN is the log position at which this table incarnation was
	// created (persisted in the catalog). Recovery ignores any WAL record
	// for this table name with an older LSN: with non-quiescing
	// checkpoints the log tail can outlive a DROP TABLE + CREATE TABLE of
	// the same name (a long-running transaction holds the truncation
	// horizon back), and without the fence the old incarnation's records
	// would replay into — and adopt foreign pages into — the new table.
	bornLSN LSN
}

// noteMutation records that a transaction mutated this table's heap (and
// therefore its indexes and content hash).
func (t *Table) noteMutation() { t.mut.Add(1) }

// rowHash digests the content-hashed columns of one tuple.
func (t *Table) rowHash(tup Tuple) uint64 {
	return contentHashCols(tup, t.hashCols)
}

// idxPersist is one index's checkpoint-chain bookkeeping.
type idxPersist struct {
	firstPage PageID // head of the serialized chain (InvalidPage: none)
	stamp     uint64 // checkpointID written into the chain header
	savedMut  int64  // BTree.Mutations() at last serialize/load; -1 forces a rewrite
}

// idxState returns (creating if needed) the persistence state for col.
func (t *Table) idxState(col string) *idxPersist {
	if t.idx == nil {
		t.idx = map[string]*idxPersist{}
	}
	ip, ok := t.idx[col]
	if !ok {
		ip = &idxPersist{firstPage: InvalidPage, savedMut: -1}
		t.idx[col] = ip
	}
	return ip
}

// catalog page layout (page 0):
//   magic "UDB3" | checkpointLSN u64 | checkpointID u64 | numTables u32 |
//   per table: name | ncols u32 | (colName, typeByte)* | firstPage u32 |
//              snapLSN u64 | bornLSN u64 |
//              flags u8 (bit0: derived state valid) |
//              hashFlag u8 [ nHashCols u32 | hashColName* | hash u64 ] |
//              nIndexes u32 | (indexColName | chainFirstPage u32 | stamp u64)*
//
// checkpointLSN is the recovery replay origin (the checkpoint's
// truncation horizon); snapLSN is the log position the table's persisted
// derived state (index chains, content hash) was captured at, and the
// valid flag says whether that capture was consistent (taken with no
// transaction active on the table) — see Table.catMut.

var catalogMagic = [4]byte{'U', 'D', 'B', '3'}

const catFlagDerivedValid = 1 << 0

type catalogData struct {
	checkpointLSN LSN
	checkpointID  uint64
	tables        []catalogTable
}

type catalogTable struct {
	schema       TableSchema
	firstPage    PageID
	snapLSN      LSN
	bornLSN      LSN
	derivedValid bool
	indexes      []catalogIndex
	hashCols     []string
	hash         uint64
	hasHash      bool
}

// catalogIndex records one index column and its serialized checkpoint
// chain: the chain's head page and the checkpoint stamp it must carry to
// be loadable (a mismatch means the chain belongs to another checkpoint
// generation and the index is rebuilt from the heap instead).
type catalogIndex struct {
	col       string
	firstPage PageID
	stamp     uint64
}

func encodeCatalog(c *catalogData) ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = append(buf, catalogMagic[:]...)
	var tmp8 [8]byte
	binary.LittleEndian.PutUint64(tmp8[:], uint64(c.checkpointLSN))
	buf = append(buf, tmp8[:]...)
	binary.LittleEndian.PutUint64(tmp8[:], c.checkpointID)
	buf = append(buf, tmp8[:]...)
	var tmp4 [4]byte
	binary.LittleEndian.PutUint32(tmp4[:], uint32(len(c.tables)))
	buf = append(buf, tmp4[:]...)
	for _, t := range c.tables {
		buf = appendString(buf, t.schema.Name)
		binary.LittleEndian.PutUint32(tmp4[:], uint32(len(t.schema.Columns)))
		buf = append(buf, tmp4[:]...)
		for _, col := range t.schema.Columns {
			buf = appendString(buf, col.Name)
			buf = append(buf, byte(col.Type))
		}
		binary.LittleEndian.PutUint32(tmp4[:], uint32(t.firstPage))
		buf = append(buf, tmp4[:]...)
		binary.LittleEndian.PutUint64(tmp8[:], uint64(t.snapLSN))
		buf = append(buf, tmp8[:]...)
		binary.LittleEndian.PutUint64(tmp8[:], uint64(t.bornLSN))
		buf = append(buf, tmp8[:]...)
		var flags byte
		if t.derivedValid {
			flags |= catFlagDerivedValid
		}
		buf = append(buf, flags)
		if t.hasHash {
			buf = append(buf, 1)
			binary.LittleEndian.PutUint32(tmp4[:], uint32(len(t.hashCols)))
			buf = append(buf, tmp4[:]...)
			for _, hc := range t.hashCols {
				buf = appendString(buf, hc)
			}
			binary.LittleEndian.PutUint64(tmp8[:], t.hash)
			buf = append(buf, tmp8[:]...)
		} else {
			buf = append(buf, 0)
		}
		idxs := append([]catalogIndex(nil), t.indexes...)
		sort.Slice(idxs, func(i, j int) bool { return idxs[i].col < idxs[j].col })
		binary.LittleEndian.PutUint32(tmp4[:], uint32(len(idxs)))
		buf = append(buf, tmp4[:]...)
		for _, ic := range idxs {
			buf = appendString(buf, ic.col)
			binary.LittleEndian.PutUint32(tmp4[:], uint32(ic.firstPage))
			buf = append(buf, tmp4[:]...)
			binary.LittleEndian.PutUint64(tmp8[:], ic.stamp)
			buf = append(buf, tmp8[:]...)
		}
	}
	if len(buf) > PageSize {
		return nil, fmt.Errorf("rdbms: catalog of %d bytes exceeds one page", len(buf))
	}
	page := make([]byte, PageSize)
	copy(page, buf)
	return page, nil
}

func decodeCatalog(page []byte) (*catalogData, error) {
	if len(page) < 24 {
		return nil, fmt.Errorf("rdbms: short catalog page")
	}
	if [4]byte(page[:4]) != catalogMagic {
		if page[0] == 'U' && page[1] == 'D' && page[2] == 'B' && (page[3] == '1' || page[3] == '2') {
			// Pre-PR5 layouts (UDB1: no checkpoint id/chains/hash; UDB2: no
			// page LSNs, snapshot LSNs, or derived-state validity — and its
			// slotted pages lack the widened LSN header). No migration path
			// is kept — the format predates any release — but fail with a
			// diagnosis, not "bad magic".
			return nil, fmt.Errorf("rdbms: catalog format UDB%c is no longer supported; delete the database directory and regenerate", page[3])
		}
		return nil, fmt.Errorf("rdbms: bad catalog magic")
	}
	c := &catalogData{
		checkpointLSN: LSN(binary.LittleEndian.Uint64(page[4:12])),
		checkpointID:  binary.LittleEndian.Uint64(page[12:20]),
	}
	n := int(binary.LittleEndian.Uint32(page[20:24]))
	off := 24
	for i := 0; i < n; i++ {
		var t catalogTable
		name, used, err := readString(page[off:])
		if err != nil {
			return nil, err
		}
		t.schema.Name = name
		off += used
		if len(page) < off+4 {
			return nil, fmt.Errorf("rdbms: truncated catalog")
		}
		ncols := int(binary.LittleEndian.Uint32(page[off : off+4]))
		off += 4
		for j := 0; j < ncols; j++ {
			cname, used, err := readString(page[off:])
			if err != nil {
				return nil, err
			}
			off += used
			if len(page) < off+1 {
				return nil, fmt.Errorf("rdbms: truncated catalog column")
			}
			t.schema.Columns = append(t.schema.Columns, ColumnDef{Name: cname, Type: Type(page[off])})
			off++
		}
		if len(page) < off+22 {
			return nil, fmt.Errorf("rdbms: truncated catalog table")
		}
		t.firstPage = PageID(binary.LittleEndian.Uint32(page[off : off+4]))
		off += 4
		t.snapLSN = LSN(binary.LittleEndian.Uint64(page[off : off+8]))
		off += 8
		t.bornLSN = LSN(binary.LittleEndian.Uint64(page[off : off+8]))
		off += 8
		t.derivedValid = page[off]&catFlagDerivedValid != 0
		off++
		hasHash := page[off] == 1
		off++
		if hasHash {
			t.hasHash = true
			if len(page) < off+4 {
				return nil, fmt.Errorf("rdbms: truncated catalog hash spec")
			}
			nhc := int(binary.LittleEndian.Uint32(page[off : off+4]))
			off += 4
			for j := 0; j < nhc; j++ {
				hc, used, err := readString(page[off:])
				if err != nil {
					return nil, err
				}
				t.hashCols = append(t.hashCols, hc)
				off += used
			}
			if len(page) < off+8 {
				return nil, fmt.Errorf("rdbms: truncated catalog hash")
			}
			t.hash = binary.LittleEndian.Uint64(page[off : off+8])
			off += 8
		}
		if len(page) < off+4 {
			return nil, fmt.Errorf("rdbms: truncated catalog indexes")
		}
		nidx := int(binary.LittleEndian.Uint32(page[off : off+4]))
		off += 4
		for j := 0; j < nidx; j++ {
			ic, used, err := readString(page[off:])
			if err != nil {
				return nil, err
			}
			off += used
			if len(page) < off+12 {
				return nil, fmt.Errorf("rdbms: truncated catalog index entry")
			}
			t.indexes = append(t.indexes, catalogIndex{
				col:       ic,
				firstPage: PageID(binary.LittleEndian.Uint32(page[off : off+4])),
				stamp:     binary.LittleEndian.Uint64(page[off+4 : off+12]),
			})
			off += 12
		}
		c.tables = append(c.tables, t)
	}
	return c, nil
}
