package rdbms

import (
	"errors"
	"fmt"
	"sync"
)

// Fault injection for durability testing. Faults are injected at the
// Device layer — the byte store beneath the Pager and WAL interfaces —
// because that is where real failures happen: a torn write leaves real
// half-written bytes (an invalid page frame checksum, a truncated WAL
// record) rather than a simulation of one, and a dropped sync leaves
// real bytes in the volatile cache for a later crash to claim.
// NewFaultPager and NewFaultWAL assemble the fault-carrying Pager and
// WAL the engine consumes, so a test injects by construction:
//
//	inj := NewFaultInjector()
//	inj.Schedule(17, FaultCrash) // kill the process at the 17th I/O
//	pager, _ := NewFaultPager(pageDev, inj)
//	wal, _ := NewFaultWAL(walStore, inj)
//	db, _ := Open(pager, wal, Options{})
//
// Mutating device operations (write, sync, truncate) share one global
// op counter across every device wrapped with the same injector, so
// "the Nth I/O" ranges over the whole database, pager and WAL together
// — the crash-recovery property suite enumerates every such point.

// ErrInjected is the error returned by operations the injector fails.
var ErrInjected = errors.New("rdbms: injected I/O fault")

// CrashSignal is the panic value thrown when a scheduled FaultCrash (or
// the crash following a FaultTornWrite) fires: it simulates the process
// dying at that exact I/O. Harnesses recover() it, apply
// MemDevice.Crash to discard unsynced bytes, and reopen.
type CrashSignal struct {
	Op int64 // the global I/O index at which the crash fired
}

// FaultKind enumerates what the injector can do to an I/O operation.
type FaultKind uint8

const (
	// FaultNone lets the operation through.
	FaultNone FaultKind = iota
	// FaultError fails the operation with ErrInjected, without side
	// effects; the engine sees a transient I/O error.
	FaultError
	// FaultDropSync makes a Sync report success without persisting — a
	// lying disk cache. Scheduled on a non-sync operation it degrades to
	// FaultError.
	FaultDropSync
	// FaultTornWrite applies only a prefix of the write's bytes and then
	// crashes (panics with CrashSignal): a write torn by power loss.
	// Scheduled on a non-write operation it degrades to FaultCrash.
	FaultTornWrite
	// FaultCrash panics with CrashSignal before the operation executes.
	FaultCrash
)

// FaultInjector schedules faults by global I/O index across every device
// wrapped with it. It also counts operations, so a fault-free dry run
// measures how many injection points a workload has.
//
// Once a scheduled crash fires, the injector considers the process dead:
// every subsequent I/O through it also crashes (panics with the original
// CrashSignal op). With a single-threaded workload that changes nothing
// — the first panic unwinds the whole run — but with concurrent
// committers and checkpointers it models reality: the machine does not
// keep serving other goroutines' I/O after the power cut.
type FaultInjector struct {
	mu     sync.Mutex
	ops    int64
	sched  map[int64]FaultKind
	dead   bool
	deadOp int64
}

// NewFaultInjector returns an injector with no faults scheduled.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{sched: map[int64]FaultKind{}}
}

// Schedule arms fault k at the op-th mutating I/O (0-based).
func (fi *FaultInjector) Schedule(op int64, k FaultKind) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.sched[op] = k
}

// Ops returns the number of mutating I/O operations seen so far.
func (fi *FaultInjector) Ops() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.ops
}

// step consumes one op index and returns the fault armed for it.
func (fi *FaultInjector) step() (int64, FaultKind) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.dead {
		return fi.deadOp, FaultCrash
	}
	idx := fi.ops
	fi.ops++
	k := fi.sched[idx]
	if k == FaultCrash || k == FaultTornWrite {
		fi.dead = true
		fi.deadOp = idx
	}
	return idx, k
}

// Crashed reports whether a scheduled crash has fired (and at which op).
func (fi *FaultInjector) Crashed() (int64, bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.deadOp, fi.dead
}

// FaultDevice wraps a Device, applying the injector's schedule to every
// mutating operation. Reads pass through uncounted: they cannot affect
// durability, and keeping them out of the op space keeps injection-point
// enumeration tight.
//
// tearable marks devices whose on-disk format tolerates torn writes. The
// WAL does (its record framing detects and truncates a torn tail); page
// frames do not — like production engines, the pager assumes power-fail
// atomicity of a page-sized write (real systems buy this with sector
// atomicity or full-page writes), and its checksums exist to detect the
// assumption breaking, not to recover from it. A torn write scheduled on
// a non-tearable device therefore degrades to a plain crash.
type FaultDevice struct {
	inner    Device
	inj      *FaultInjector
	tearable bool
}

// NewFaultDevice wraps dev with fault injection.
func NewFaultDevice(dev Device, inj *FaultInjector) *FaultDevice {
	return &FaultDevice{inner: dev, inj: inj}
}

func (fd *FaultDevice) ReadAt(p []byte, off int64) (int, error) { return fd.inner.ReadAt(p, off) }
func (fd *FaultDevice) Size() (int64, error)                    { return fd.inner.Size() }
func (fd *FaultDevice) Close() error                            { return fd.inner.Close() }

func (fd *FaultDevice) WriteAt(p []byte, off int64) (int, error) {
	idx, k := fd.inj.step()
	switch k {
	case FaultError, FaultDropSync:
		return 0, fmt.Errorf("%w (write, op %d)", ErrInjected, idx)
	case FaultTornWrite:
		if fd.tearable {
			fd.inner.WriteAt(p[:len(p)/2], off)
		}
		panic(CrashSignal{Op: idx})
	case FaultCrash:
		panic(CrashSignal{Op: idx})
	}
	return fd.inner.WriteAt(p, off)
}

func (fd *FaultDevice) Sync() error {
	idx, k := fd.inj.step()
	switch k {
	case FaultError:
		return fmt.Errorf("%w (sync, op %d)", ErrInjected, idx)
	case FaultDropSync:
		return nil // lie: report durability without providing it
	case FaultTornWrite, FaultCrash:
		panic(CrashSignal{Op: idx})
	}
	return fd.inner.Sync()
}

func (fd *FaultDevice) Truncate(size int64) error {
	idx, k := fd.inj.step()
	switch k {
	case FaultError, FaultDropSync:
		return fmt.Errorf("%w (truncate, op %d)", ErrInjected, idx)
	case FaultTornWrite, FaultCrash:
		panic(CrashSignal{Op: idx})
	}
	return fd.inner.Truncate(size)
}

// NewFaultPager returns a checksummed Pager over dev whose I/O passes
// through the injector — the Pager the engine opens when a test wants
// page-side faults.
func NewFaultPager(dev Device, inj *FaultInjector) (*DevicePager, error) {
	return NewDevicePager(NewFaultDevice(dev, inj))
}

// NewFaultWAL returns a WAL over store whose I/O — segment writes and
// syncs as well as the directory-level operations (segment removal,
// manifest swap, directory sync) — passes through the injector: the WAL
// the engine opens when a test wants log-side faults. Segment devices
// are tearable: torn writes leave real half-frames for the open-time
// tail truncation to clean up.
func NewFaultWAL(store WALStore, inj *FaultInjector) (*WAL, error) {
	return NewWALOn(NewFaultWALStore(store, inj))
}
