package rdbms

import (
	"fmt"
	"sync"
)

// HeapFile is an unordered collection of tuples stored in a chain of
// slotted pages. All page access goes through the buffer pool. A HeapFile
// serializes its own structural mutations with a write lock;
// transaction-level isolation is provided above it by the lock manager.
// MVCC snapshot readers use the *Latched read variants, which take the
// read side per page: many snapshots scan concurrently with each other
// and exclude only in-progress byte mutations.
type HeapFile struct {
	mu    sync.RWMutex
	bp    *BufferPool
	first PageID
	pages []PageID // cached chain order
}

// CreateHeapFile allocates the first page of a new heap.
func CreateHeapFile(bp *BufferPool) (*HeapFile, error) {
	id, data, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	p := newSlottedPage(data)
	p.setNext(InvalidPage)
	bp.Unpin(id, true)
	return &HeapFile{bp: bp, first: id, pages: []PageID{id}}, nil
}

// OpenHeapFile reconstructs a heap from its first page by walking the
// chain. The walk tolerates crash artifacts at the tail: a next pointer
// to a page that never became durable (beyond the allocated range), or a
// next of 0 — the link field of a page whose own contents were lost
// reads as zero, and no chain ever links *to* page 0 (links always
// target later allocations, and under a DB page 0 is the catalog). Both
// terminate the chain; any rows on such pages are covered by WAL
// records, and recovery re-adopts the pages it replays onto.
func OpenHeapFile(bp *BufferPool, first PageID) (*HeapFile, error) {
	h := &HeapFile{bp: bp, first: first}
	id := first
	for id != InvalidPage && (id != 0 || len(h.pages) == 0) && id < bp.NumPages() {
		// One-touch chain walk: scan-hinted so opening a large heap does
		// not displace the hot working set.
		data, err := bp.PinScan(id)
		if err != nil {
			return nil, err
		}
		p := newSlottedPage(data)
		next := p.next()
		bp.Unpin(id, false)
		h.pages = append(h.pages, id)
		id = next
		if len(h.pages) > 1<<24 {
			return nil, fmt.Errorf("rdbms: heap chain cycle at page %d", id)
		}
	}
	return h, nil
}

// FirstPage returns the head page id (stored in the catalog).
func (h *HeapFile) FirstPage() PageID { return h.first }

// Insert stores a tuple and returns its RID.
func (h *HeapFile) Insert(t Tuple) (RID, error) { return h.InsertWith(t, nil) }

// InsertWith stores a tuple and, while the target page is still pinned,
// invokes onApply with the new RID. Pinned pages cannot be evicted, so a
// WAL append performed in onApply is guaranteed to precede any flush of
// the modified page (the write-ahead rule). onApply returns the LSN of
// the record it logged, which is stamped into the page header (the page
// LSN recovery's redo gating compares against); return 0 for unlogged
// mutations.
func (h *HeapFile) InsertWith(t Tuple, onApply func(RID) LSN) (RID, error) {
	return h.InsertWhere(t, nil, onApply)
}

// InsertWhere is InsertWith with a slot admission filter: a non-nil
// slotOK vetoes candidate slots (tombstone reuse and fresh slots alike).
// The transaction layer uses it to skip tombstoned slots whose row lock
// is still held by a concurrent deleting transaction — reusing such a
// slot would collide with that transaction's abort, which restores its
// row at the same RID.
func (h *HeapFile) InsertWhere(t Tuple, slotOK func(RID) bool, onApply func(RID) LSN) (RID, error) {
	rec := EncodeTuple(t)
	if len(rec)+slotSize > PageSize-pageHeaderSize {
		return RID{}, fmt.Errorf("rdbms: tuple of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Try the last page first (append-mostly workloads), then scan.
	order := make([]PageID, 0, len(h.pages))
	if n := len(h.pages); n > 0 {
		order = append(order, h.pages[n-1])
		order = append(order, h.pages[:n-1]...)
	}
	for _, id := range order {
		data, err := h.bp.Pin(id)
		if err != nil {
			return RID{}, err
		}
		var pageOK func(uint16) bool
		if slotOK != nil {
			id := id
			pageOK = func(slot uint16) bool { return slotOK(RID{Page: id, Slot: slot}) }
		}
		p := newSlottedPage(data)
		if slot, ok := p.insert(rec, pageOK); ok {
			rid := RID{Page: id, Slot: slot}
			if onApply != nil {
				if lsn := onApply(rid); lsn != 0 {
					p.setPageLSN(lsn)
				}
			}
			h.bp.Unpin(id, true)
			return rid, nil
		}
		h.bp.Unpin(id, false)
	}
	// Need a new page linked to the tail.
	id, data, err := h.bp.NewPage()
	if err != nil {
		return RID{}, err
	}
	p := newSlottedPage(data)
	p.setNext(InvalidPage)
	slot, ok := p.insert(rec, nil)
	if !ok {
		h.bp.Unpin(id, true)
		return RID{}, fmt.Errorf("rdbms: tuple does not fit in a fresh page")
	}
	rid := RID{Page: id, Slot: slot}
	if onApply != nil {
		if lsn := onApply(rid); lsn != 0 {
			p.setPageLSN(lsn)
		}
	}
	h.bp.Unpin(id, true)
	// Link previous tail to the new page.
	tail := h.pages[len(h.pages)-1]
	tdata, err := h.bp.Pin(tail)
	if err != nil {
		return RID{}, err
	}
	newSlottedPage(tdata).setNext(id)
	h.bp.Unpin(tail, true)
	h.pages = append(h.pages, id)
	return rid, nil
}

// Contains reports whether page id is part of this heap's chain.
func (h *HeapFile) Contains(id PageID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.pages {
		if p == id {
			return true
		}
	}
	return false
}

// Adopt links an already-allocated page into the heap chain. Recovery uses
// this for pages that were allocated before a crash but whose chain link
// never reached disk. The page is (re)initialized if blank.
func (h *HeapFile) Adopt(id PageID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.pages {
		if p == id {
			return nil
		}
	}
	data, err := h.bp.Pin(id)
	if err != nil {
		return err
	}
	p := newSlottedPage(data)
	p.setNext(InvalidPage)
	h.bp.Unpin(id, true)
	tail := h.pages[len(h.pages)-1]
	tdata, err := h.bp.Pin(tail)
	if err != nil {
		return err
	}
	newSlottedPage(tdata).setNext(id)
	h.bp.Unpin(tail, true)
	h.pages = append(h.pages, id)
	return nil
}

// InsertAt re-inserts a tuple at a specific RID if that slot is free; used
// by abort to restore rows idempotently. If the exact slot cannot be
// honoured (already occupied by live data) it returns an error.
func (h *HeapFile) InsertAt(rid RID, t Tuple) error { return h.InsertAtWith(rid, t, nil) }

// InsertAtWith is InsertAt with an onApply hook invoked while the page is
// pinned (see InsertWith for the write-ahead rationale and the page-LSN
// stamping contract).
func (h *HeapFile) InsertAtWith(rid RID, t Tuple, onApply func() LSN) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec := EncodeTuple(t)
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.bp.Unpin(rid.Page, true)
	p := newSlottedPage(data)
	if rid.Slot < p.numSlots() {
		if _, live := p.read(rid.Slot); live {
			return fmt.Errorf("rdbms: InsertAt %v: slot occupied", rid)
		}
	}
	if err := setSlotContent(p, rid.Slot, SlotContent{Live: true, Tup: t}, rec); err != nil {
		return fmt.Errorf("rdbms: InsertAt %v: %w", rid, err)
	}
	if onApply != nil {
		if lsn := onApply(); lsn != 0 {
			p.setPageLSN(lsn)
		}
	}
	return nil
}

// SlotContent is the target state of one slot for RedoSlot / ForceSlot.
type SlotContent struct {
	Live bool
	Tup  Tuple
}

// setSlotContent forces slot s of p to exactly sc: dead slots are
// tombstoned (extending the slot array if s is beyond it), live contents
// are placed slot-pinned — rows never move to another RID — compacting
// the page as needed. rec may carry sc.Tup pre-encoded (nil to encode
// here).
func setSlotContent(p *slottedPage, s uint16, sc SlotContent, rec []byte) error {
	for p.numSlots() <= s {
		if p.freeSpace() < slotSize && !p.compactFor(slotSize) {
			return fmt.Errorf("no slot space")
		}
		n := p.numSlots()
		p.setSlot(n, 0, tombstoneLen)
		p.setNumSlots(n + 1)
	}
	p.setSlot(s, 0, tombstoneLen)
	if !sc.Live {
		return nil
	}
	if rec == nil {
		rec = EncodeTuple(sc.Tup)
	}
	if p.freeSpace() < len(rec) && !p.compactFor(len(rec)) {
		return fmt.Errorf("no space for %d bytes", len(rec))
	}
	newStart := p.freeStart() - uint16(len(rec))
	copy(p.data[newStart:], rec)
	p.setFreeStart(newStart)
	p.setSlot(s, newStart, uint16(len(rec)))
	return nil
}

// RedoSlot applies one logged mutation's outcome to a page iff the page
// has not seen it: the record is applied only when pageLSN < lsn, and the
// page is then stamped with lsn. Because mutations stamp the page in log
// order, pageLSN >= lsn means the page already reflects this record (and
// possibly later ones) — skipping it is what makes physical redo
// idempotent: replaying the same WAL tail twice over recovered pages is a
// no-op. Returns whether the record was applied.
func (h *HeapFile) RedoSlot(rid RID, sc SlotContent, lsn LSN) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return false, err
	}
	p := newSlottedPage(data)
	if p.pageLSN() >= lsn {
		h.bp.Unpin(rid.Page, false)
		return false, nil
	}
	if err := setSlotContent(p, rid.Slot, sc, nil); err != nil {
		h.bp.Unpin(rid.Page, true)
		return false, fmt.Errorf("rdbms: redo %v: %w", rid, err)
	}
	p.setPageLSN(lsn)
	h.bp.Unpin(rid.Page, true)
	return true, nil
}

// ForceSlot sets a slot's content unconditionally, stamping the page with
// lsn. Recovery's undo pass uses it to roll loser transactions back to
// their before-images: "set slot to X" is state-idempotent, so re-running
// undo after a crash during recovery converges to the same pages.
func (h *HeapFile) ForceSlot(rid RID, sc SlotContent, lsn LSN) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.bp.Unpin(rid.Page, true)
	p := newSlottedPage(data)
	if err := setSlotContent(p, rid.Slot, sc, nil); err != nil {
		return fmt.Errorf("rdbms: undo %v: %w", rid, err)
	}
	p.setPageLSN(lsn)
	return nil
}

// Get reads the tuple at rid; ok is false for deleted or absent rows.
func (h *HeapFile) Get(rid RID) (Tuple, bool, error) {
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer h.bp.Unpin(rid.Page, false)
	p := newSlottedPage(data)
	rec, ok := p.read(rid.Slot)
	if !ok {
		return nil, false, nil
	}
	t, err := DecodeTuple(rec)
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// GetLatched is Get holding the heap's read latch, excluding concurrent
// byte mutations (which hold the write side). Snapshot readers use it:
// the plain Get is only safe under the lock manager's row locks.
func (h *HeapFile) GetLatched(rid RID) (Tuple, bool, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.Get(rid)
}

// ScanLatched is Scan holding the read latch across each page visit (not
// the whole scan, so writers interleave between pages). fn runs outside
// the latch. Snapshot readers use it for the same reason as GetLatched.
func (h *HeapFile) ScanLatched(fn func(rid RID, t Tuple) bool) error {
	h.mu.RLock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.RUnlock()
	for _, id := range pages {
		rows, err := h.readPageLatched(id)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if !fn(r.rid, r.t) {
				return nil
			}
		}
	}
	return nil
}

type heapRow struct {
	rid RID
	t   Tuple
}

func (h *HeapFile) readPageLatched(id PageID) ([]heapRow, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	// Scan-hinted: readPageLatched only serves ScanLatched's sequential
	// sweep; point reads go through Get/GetLatched.
	data, err := h.bp.PinScan(id)
	if err != nil {
		return nil, err
	}
	defer h.bp.Unpin(id, false)
	p := newSlottedPage(data)
	n := p.numSlots()
	rows := make([]heapRow, 0, n)
	for s := uint16(0); s < n; s++ {
		rec, ok := p.read(s)
		if !ok {
			continue
		}
		t, err := DecodeTuple(rec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, heapRow{RID{Page: id, Slot: s}, t})
	}
	return rows, nil
}

// Delete tombstones the tuple at rid.
func (h *HeapFile) Delete(rid RID) (bool, error) { return h.DeleteWith(rid, nil) }

// DeleteWith tombstones the tuple at rid, invoking onApply while the page
// is pinned (see InsertWith for the write-ahead rationale and the
// page-LSN stamping contract).
func (h *HeapFile) DeleteWith(rid RID, onApply func() LSN) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return false, err
	}
	defer h.bp.Unpin(rid.Page, true)
	p := newSlottedPage(data)
	ok := p.del(rid.Slot)
	if ok && onApply != nil {
		if lsn := onApply(); lsn != 0 {
			p.setPageLSN(lsn)
		}
	}
	return ok, nil
}

// Update replaces the tuple at rid in place. If the new tuple no longer
// fits in the page, Update deletes the old row and inserts elsewhere,
// returning the (possibly new) RID.
func (h *HeapFile) Update(rid RID, t Tuple) (RID, error) {
	newRID, ok, err := h.TryUpdateInPlace(rid, t, nil)
	if err != nil {
		return RID{}, err
	}
	if ok {
		return newRID, nil
	}
	if deleted, err := h.Delete(rid); err != nil || !deleted {
		return RID{}, fmt.Errorf("rdbms: update of missing row %v (err=%v)", rid, err)
	}
	return h.Insert(t)
}

// TryUpdateInPlace replaces the tuple at rid if the new encoding fits in
// its page, invoking onApply while the page is pinned. ok is false when the
// tuple must move (caller performs delete+insert, each separately logged).
func (h *HeapFile) TryUpdateInPlace(rid RID, t Tuple, onApply func(RID) LSN) (RID, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec := EncodeTuple(t)
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return RID{}, false, err
	}
	p := newSlottedPage(data)
	if p.update(rid.Slot, rec) {
		if onApply != nil {
			if lsn := onApply(rid); lsn != 0 {
				p.setPageLSN(lsn)
			}
		}
		h.bp.Unpin(rid.Page, true)
		return rid, true, nil
	}
	_, live := p.read(rid.Slot)
	h.bp.Unpin(rid.Page, false)
	if !live {
		return RID{}, false, fmt.Errorf("rdbms: update of missing row %v", rid)
	}
	return RID{}, false, nil
}

// Scan calls fn for every live tuple in page-chain order. Returning false
// stops the scan.
func (h *HeapFile) Scan(fn func(rid RID, t Tuple) bool) error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	for _, id := range pages {
		// Scan-hinted pin: a full sweep recycles one probationary frame
		// per page instead of flushing the protected working set.
		data, err := h.bp.PinScan(id)
		if err != nil {
			return err
		}
		p := newSlottedPage(data)
		n := p.numSlots()
		type row struct {
			rid RID
			t   Tuple
		}
		rows := make([]row, 0, n)
		for s := uint16(0); s < n; s++ {
			rec, ok := p.read(s)
			if !ok {
				continue
			}
			t, err := DecodeTuple(rec)
			if err != nil {
				h.bp.Unpin(id, false)
				return err
			}
			rows = append(rows, row{RID{Page: id, Slot: s}, t})
		}
		h.bp.Unpin(id, false)
		for _, r := range rows {
			if !fn(r.rid, r.t) {
				return nil
			}
		}
	}
	return nil
}

// Count returns the number of live tuples (full scan).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, Tuple) bool { n++; return true })
	return n, err
}

// Pages returns the number of pages in the chain.
func (h *HeapFile) Pages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pages)
}
