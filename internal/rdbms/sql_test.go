package rdbms

import (
	"strings"
	"testing"
)

func sqlDB(t *testing.T) *DB {
	t.Helper()
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE cities (name STRING, state STRING, pop INT, temp FLOAT)")
	mustExec(t, db, `INSERT INTO cities VALUES
		('Madison', 'WI', 233209, 62.0),
		('Milwaukee', 'WI', 594833, 60.5),
		('Chicago', 'IL', 2746388, 64.0),
		('Springfield', 'IL', 114394, 65.5),
		('Denver', 'CO', 715522, 55.0)`)
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *ResultSet {
	t.Helper()
	rs, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return rs
}

func TestSQLLexer(t *testing.T) {
	toks, err := lexSQL("SELECT a, b FROM t WHERE x >= 1.5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tkEOF {
		t.Fatal("missing EOF")
	}
	// The escaped string should decode.
	found := false
	for _, tok := range toks {
		if tok.kind == tkString && tok.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped string not lexed: %v", toks)
	}
	if _, err := lexSQL("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
	if _, err := lexSQL("SELECT a ! b"); err == nil {
		t.Fatal("stray ! must fail")
	}
}

func TestSQLParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT * FROM",
		"SELECT FROM t",
		"INSERT INTO t",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t extra garbage here ,",
		"DELETE t",
		"UPDATE t WHERE x = 1",
		"SELECT SUM(*) FROM t",
	}
	for _, q := range bad {
		if _, err := ParseSQL(q); err == nil {
			t.Errorf("ParseSQL(%q) should fail", q)
		}
	}
}

func TestSQLSelectAll(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT * FROM cities")
	if len(rs.Rows) != 5 {
		t.Fatalf("got %d rows", len(rs.Rows))
	}
	if len(rs.Columns) != 4 || rs.Columns[0] != "name" {
		t.Fatalf("columns: %v", rs.Columns)
	}
	if !strings.Contains(rs.Plan, "seq scan") {
		t.Fatalf("plan: %q", rs.Plan)
	}
}

func TestSQLWhereFilter(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT name FROM cities WHERE state = 'WI'")
	if len(rs.Rows) != 2 {
		t.Fatalf("got %d rows: %v", len(rs.Rows), rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities WHERE pop > 500000 AND state != 'IL'")
	if len(rs.Rows) != 2 { // Milwaukee, Denver
		t.Fatalf("got %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities WHERE pop BETWEEN 100000 AND 600000 ORDER BY name")
	if len(rs.Rows) != 3 || rs.Rows[0][0].S != "Madison" {
		t.Fatalf("between: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities WHERE name LIKE 'M%'")
	if len(rs.Rows) != 2 {
		t.Fatalf("like: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities WHERE NOT (state = 'WI' OR state = 'IL')")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "Denver" {
		t.Fatalf("not/or: %v", rs.Rows)
	}
}

func TestSQLProjectionExpressions(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT name, pop / 1000 AS thousands FROM cities WHERE name = 'Madison'")
	if len(rs.Rows) != 1 || rs.Rows[0][1].I != 233 {
		t.Fatalf("arith projection: %v", rs.Rows)
	}
	if rs.Columns[1] != "thousands" {
		t.Fatalf("alias lost: %v", rs.Columns)
	}
	rs = mustExec(t, db, "SELECT temp * 2.0 FROM cities WHERE name = 'Denver'")
	if rs.Rows[0][0].F != 110.0 {
		t.Fatalf("float arith: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name + ', ' + state FROM cities WHERE name = 'Madison'")
	if rs.Rows[0][0].S != "Madison, WI" {
		t.Fatalf("string concat: %v", rs.Rows)
	}
}

func TestSQLOrderLimitOffset(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT name, pop FROM cities ORDER BY pop DESC LIMIT 2")
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "Chicago" || rs.Rows[1][0].S != "Denver" {
		t.Fatalf("order desc limit: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities ORDER BY pop ASC LIMIT 2 OFFSET 1")
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "Madison" {
		t.Fatalf("offset: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities ORDER BY state, pop DESC")
	if rs.Rows[0][0].S != "Denver" || rs.Rows[1][0].S != "Chicago" {
		t.Fatalf("multi-key order: %v", rs.Rows)
	}
	// OFFSET beyond result size.
	rs = mustExec(t, db, "SELECT name FROM cities OFFSET 99")
	if len(rs.Rows) != 0 {
		t.Fatalf("big offset: %v", rs.Rows)
	}
}

func TestSQLAggregates(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT COUNT(*), SUM(pop), MIN(pop), MAX(pop) FROM cities")
	r := rs.Rows[0]
	if r[0].I != 5 {
		t.Fatalf("count: %v", r)
	}
	wantSum := int64(233209 + 594833 + 2746388 + 114394 + 715522)
	if r[1].I != wantSum {
		t.Fatalf("sum: %v want %d", r[1], wantSum)
	}
	if r[2].I != 114394 || r[3].I != 2746388 {
		t.Fatalf("min/max: %v", r)
	}
	rs = mustExec(t, db, "SELECT AVG(temp) FROM cities WHERE state = 'IL'")
	if rs.Rows[0][0].F != 64.75 {
		t.Fatalf("avg: %v", rs.Rows)
	}
}

func TestSQLGroupByHaving(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT state, COUNT(*) AS n, SUM(pop) FROM cities GROUP BY state ORDER BY state")
	if len(rs.Rows) != 3 {
		t.Fatalf("groups: %v", rs.Rows)
	}
	if rs.Rows[0][0].S != "CO" || rs.Rows[1][0].S != "IL" || rs.Rows[2][0].S != "WI" {
		t.Fatalf("group order: %v", rs.Rows)
	}
	if rs.Rows[2][1].I != 2 {
		t.Fatalf("WI count: %v", rs.Rows[2])
	}
	rs = mustExec(t, db, "SELECT state FROM cities GROUP BY state HAVING COUNT(*) >= 2 ORDER BY state")
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "IL" {
		t.Fatalf("having: %v", rs.Rows)
	}
	// Aggregate over empty input.
	rs = mustExec(t, db, "SELECT COUNT(*) FROM cities WHERE pop > 99999999")
	if rs.Rows[0][0].I != 0 {
		t.Fatalf("empty count: %v", rs.Rows)
	}
	// Non-grouped column must error.
	if _, err := db.Exec("SELECT name, COUNT(*) FROM cities GROUP BY state"); err == nil {
		t.Fatal("ungrouped column should fail")
	}
}

func TestSQLJoin(t *testing.T) {
	db := sqlDB(t)
	mustExec(t, db, "CREATE TABLE people (pname STRING, city STRING)")
	mustExec(t, db, `INSERT INTO people VALUES
		('David Smith', 'Madison'), ('Sarah Lee', 'Chicago'), ('Ann Ray', 'Madison'), ('Bo Diaz', 'Nowhere')`)
	rs := mustExec(t, db, `SELECT pname, state FROM people JOIN cities ON city = name ORDER BY pname`)
	if len(rs.Rows) != 3 {
		t.Fatalf("join rows: %v", rs.Rows)
	}
	if rs.Rows[0][0].S != "Ann Ray" || rs.Rows[0][1].S != "WI" {
		t.Fatalf("join row 0: %v", rs.Rows[0])
	}
	if !strings.Contains(rs.Plan, "hash join") {
		t.Fatalf("plan: %q", rs.Plan)
	}
	// Qualified columns with aliases.
	rs = mustExec(t, db, `SELECT p.pname, c.pop FROM people p JOIN cities c ON p.city = c.name WHERE c.state = 'WI' ORDER BY p.pname`)
	if len(rs.Rows) != 2 || rs.Rows[0][1].I != 233209 {
		t.Fatalf("aliased join: %v", rs.Rows)
	}
}

func TestSQLDistinct(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "SELECT DISTINCT state FROM cities ORDER BY state")
	if len(rs.Rows) != 3 {
		t.Fatalf("distinct: %v", rs.Rows)
	}
}

func TestSQLUpdateDelete(t *testing.T) {
	db := sqlDB(t)
	rs := mustExec(t, db, "UPDATE cities SET pop = pop + 1 WHERE state = 'WI'")
	if rs.Rows[0][0].I != 2 {
		t.Fatalf("updated count: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT pop FROM cities WHERE name = 'Madison'")
	if rs.Rows[0][0].I != 233210 {
		t.Fatalf("update lost: %v", rs.Rows)
	}
	rs = mustExec(t, db, "DELETE FROM cities WHERE state = 'IL'")
	if rs.Rows[0][0].I != 2 {
		t.Fatalf("deleted count: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT COUNT(*) FROM cities")
	if rs.Rows[0][0].I != 3 {
		t.Fatalf("rows after delete: %v", rs.Rows)
	}
	// Unfiltered delete clears the table.
	mustExec(t, db, "DELETE FROM cities")
	rs = mustExec(t, db, "SELECT COUNT(*) FROM cities")
	if rs.Rows[0][0].I != 0 {
		t.Fatal("table should be empty")
	}
}

func TestSQLInsertWithColumns(t *testing.T) {
	db := sqlDB(t)
	mustExec(t, db, "INSERT INTO cities (name, pop) VALUES ('Partial', 42)")
	rs := mustExec(t, db, "SELECT state, temp FROM cities WHERE name = 'Partial'")
	if !rs.Rows[0][0].IsNull() || !rs.Rows[0][1].IsNull() {
		t.Fatalf("unlisted columns should be NULL: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT name FROM cities WHERE temp IS NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "Partial" {
		t.Fatalf("IS NULL: %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT COUNT(temp) FROM cities")
	if rs.Rows[0][0].I != 5 { // COUNT(col) skips NULLs
		t.Fatalf("COUNT(col): %v", rs.Rows)
	}
}

func TestSQLIndexAccessPath(t *testing.T) {
	db := sqlDB(t)
	mustExec(t, db, "CREATE INDEX ON cities (name)")
	rs := mustExec(t, db, "SELECT pop FROM cities WHERE name = 'Madison'")
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 233209 {
		t.Fatalf("index query: %v", rs.Rows)
	}
	if !strings.Contains(rs.Plan, "index eq scan") {
		t.Fatalf("expected index plan, got %q", rs.Plan)
	}
	// Range access path on numeric index.
	mustExec(t, db, "CREATE INDEX ON cities (pop)")
	rs = mustExec(t, db, "SELECT name FROM cities WHERE pop >= 500000 AND pop <= 800000 ORDER BY name")
	if !strings.Contains(rs.Plan, "index range scan") {
		t.Fatalf("expected range plan, got %q", rs.Plan)
	}
	if len(rs.Rows) != 2 { // Milwaukee, Denver
		t.Fatalf("range rows: %v", rs.Rows)
	}
	// Index results must stay consistent after updates.
	mustExec(t, db, "UPDATE cities SET pop = 900000 WHERE name = 'Denver'")
	rs = mustExec(t, db, "SELECT name FROM cities WHERE pop >= 500000 AND pop <= 800000")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "Milwaukee" {
		t.Fatalf("post-update range: %v", rs.Rows)
	}
}

func TestSQLSeqVsIndexSameResults(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE n (v INT)")
	tx := db.Begin()
	for i := 0; i < 500; i++ {
		tx.Insert("n", Tuple{NewInt(int64(i % 50))})
	}
	tx.Commit()
	before := mustExec(t, db, "SELECT COUNT(*) FROM n WHERE v = 25")
	mustExec(t, db, "CREATE INDEX ON n (v)")
	after := mustExec(t, db, "SELECT COUNT(*) FROM n WHERE v = 25")
	if before.Rows[0][0].I != after.Rows[0][0].I {
		t.Fatalf("index changed results: %v vs %v", before.Rows, after.Rows)
	}
	if !strings.Contains(after.Plan, "index") {
		t.Fatalf("plan: %q", after.Plan)
	}
}

func TestSQLMultiStatementTransaction(t *testing.T) {
	db := sqlDB(t)
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO cities VALUES ('Tx City', 'TX', 1, 70.0)"); err != nil {
		t.Fatal(err)
	}
	rs, err := tx.Exec("SELECT COUNT(*) FROM cities")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 6 {
		t.Fatalf("within txn count: %v", rs.Rows)
	}
	tx.Abort()
	rs = mustExec(t, db, "SELECT COUNT(*) FROM cities")
	if rs.Rows[0][0].I != 5 {
		t.Fatalf("abort did not roll back SQL insert: %v", rs.Rows)
	}
}

func TestSQLDDLInsideTxnRejected(t *testing.T) {
	db := sqlDB(t)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Exec("CREATE TABLE x (a INT)"); err == nil {
		t.Fatal("DDL inside txn must fail")
	}
}

func TestSQLDivisionByZero(t *testing.T) {
	db := sqlDB(t)
	if _, err := db.Exec("SELECT pop / 0 FROM cities"); err == nil {
		t.Fatal("division by zero must error")
	}
}

func TestSQLMadisonAverageTemperature(t *testing.T) {
	// The paper's §2 motivating query shape: average over extracted
	// monthly temperatures.
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE temps (city STRING, month STRING, temp FLOAT)")
	months := []string{"March", "April", "May", "June", "July", "August", "September"}
	vals := []float64{36, 48, 59, 69, 73, 71, 62}
	for i, m := range months {
		mustExec(t, db, "INSERT INTO temps VALUES ('Madison, Wisconsin', '"+m+"', "+
			NewFloat(vals[i]).String()+")")
	}
	rs := mustExec(t, db, "SELECT AVG(temp) FROM temps WHERE city = 'Madison, Wisconsin'")
	want := (36.0 + 48 + 59 + 69 + 73 + 71 + 62) / 7
	if got := rs.Rows[0][0].F; got < want-0.001 || got > want+0.001 {
		t.Fatalf("average = %v, want %v", got, want)
	}
}
