package rdbms

import (
	"context"
	"fmt"
	"strings"
)

// ResultSet is the output of a query: column headers plus rows.
type ResultSet struct {
	Columns []string
	Rows    []Tuple
	// Plan describes how the statement was executed (seq scan, index
	// scan, join strategy); useful for the optimizer experiments.
	Plan string
	// Mutated reports whether the statement changed table data
	// (INSERT/UPDATE/DELETE/DROP TABLE). Callers maintaining derived
	// caches key invalidation off this flag rather than the
	// display-oriented Plan string.
	Mutated bool
}

// String renders a small result set as an aligned table.
func (rs *ResultSet) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(rs.Columns, " | "))
	b.WriteString("\n")
	for _, r := range rs.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteString("\n")
	}
	return b.String()
}

// Exec parses and executes one SQL statement in its own transaction,
// committing on success and aborting on error.
func (db *DB) Exec(sql string) (*ResultSet, error) {
	return db.ExecCtx(context.Background(), sql)
}

// ExecCtx is Exec bounded by a context: the statement's transaction has
// ctx attached, so its scan-shaped loops stop with the context's error
// once the deadline passes or the caller cancels (and the transaction is
// aborted like any other failed statement). DDL is not cancelable — it
// checkpoints, and a half-applied catalog change has no clean abort — so
// ctx is only consulted before DDL starts.
func (db *DB) ExecCtx(ctx context.Context, sql string) (*ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	// DDL manages its own durability.
	switch s := stmt.(type) {
	case CreateTableStmt:
		return &ResultSet{Plan: "create table"}, db.CreateTable(s.Schema)
	case CreateIndexStmt:
		return &ResultSet{Plan: "create index"}, db.CreateIndex(s.Table, s.Column)
	case DropTableStmt:
		return &ResultSet{Plan: "drop table", Mutated: true}, db.DropTable(s.Table)
	}
	tx := db.Begin().WithContext(ctx)
	rs, err := tx.ExecStmt(stmt)
	if err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return nil, fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Exec parses and executes one DML/query statement inside this transaction.
func (tx *Txn) Exec(sql string) (*ResultSet, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	return tx.ExecStmt(stmt)
}

// ExecStmt executes a parsed statement inside this transaction. DDL is not
// allowed inside transactions.
func (tx *Txn) ExecStmt(stmt Statement) (*ResultSet, error) {
	switch s := stmt.(type) {
	case InsertStmt:
		return tx.execInsert(s)
	case UpdateStmt:
		return tx.execUpdate(s)
	case DeleteStmt:
		return tx.execDelete(s)
	case SelectStmt:
		return tx.execSelect(s)
	case CreateTableStmt, CreateIndexStmt, DropTableStmt:
		return nil, fmt.Errorf("rdbms: DDL must run outside a transaction")
	}
	return nil, fmt.Errorf("rdbms: unsupported statement %T", stmt)
}

// binding maps column references to positions in the working row.
type binding struct {
	cols []ColumnRef // cols[i] describes position i
}

func (b *binding) lookup(ref ColumnRef) (int, error) {
	found := -1
	for i, c := range b.cols {
		if c.Column != ref.Column {
			continue
		}
		if ref.Table != "" && c.Table != ref.Table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("rdbms: ambiguous column %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("rdbms: unknown column %s", ref)
	}
	return found, nil
}

func bindingForTable(schema *TableSchema, alias string) *binding {
	name := alias
	if name == "" {
		name = schema.Name
	}
	b := &binding{}
	for _, c := range schema.Columns {
		b.cols = append(b.cols, ColumnRef{Table: name, Column: c.Name})
	}
	return b
}

// evalExpr evaluates a scalar expression against a bound row.
func evalExpr(e Expr, b *binding, row Tuple) (Value, error) {
	switch x := e.(type) {
	case Literal:
		return x.Val, nil
	case ColumnRef:
		i, err := b.lookup(x)
		if err != nil {
			return Value{}, err
		}
		return row[i], nil
	case UnaryExpr:
		v, err := evalExpr(x.X, b, row)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			if v.Type != TBool {
				return Value{}, fmt.Errorf("rdbms: NOT of non-boolean %s", v.Type)
			}
			return NewBool(!v.B), nil
		case "-":
			switch v.Type {
			case TInt:
				return NewInt(-v.I), nil
			case TFloat:
				return NewFloat(-v.F), nil
			case TNull:
				return Null(), nil
			}
			return Value{}, fmt.Errorf("rdbms: negation of %s", v.Type)
		}
		return Value{}, fmt.Errorf("rdbms: unknown unary op %s", x.Op)
	case IsNullExpr:
		v, err := evalExpr(x.X, b, row)
		if err != nil {
			return Value{}, err
		}
		return NewBool(v.IsNull() != x.Not), nil
	case BetweenExpr:
		v, err := evalExpr(x.X, b, row)
		if err != nil {
			return Value{}, err
		}
		lo, err := evalExpr(x.Lo, b, row)
		if err != nil {
			return Value{}, err
		}
		hi, err := evalExpr(x.Hi, b, row)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		c1, ok1 := Compare(v, lo)
		c2, ok2 := Compare(v, hi)
		if !ok1 || !ok2 {
			return Value{}, fmt.Errorf("rdbms: incomparable BETWEEN operands")
		}
		return NewBool(c1 >= 0 && c2 <= 0), nil
	case BinaryExpr:
		return evalBinary(x, b, row)
	case AggExpr:
		return Value{}, fmt.Errorf("rdbms: aggregate %s outside GROUP BY context", x.Func)
	}
	return Value{}, fmt.Errorf("rdbms: unknown expression %T", e)
}

func evalBinary(x BinaryExpr, b *binding, row Tuple) (Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := evalExpr(x.Left, b, row)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit with three-valued logic.
		if l.Type == TBool {
			if x.Op == "AND" && !l.B {
				return NewBool(false), nil
			}
			if x.Op == "OR" && l.B {
				return NewBool(true), nil
			}
		}
		r, err := evalExpr(x.Right, b, row)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			// NULL AND false = false; NULL OR true = true.
			if x.Op == "AND" && r.Type == TBool && !r.B {
				return NewBool(false), nil
			}
			if x.Op == "OR" && r.Type == TBool && r.B {
				return NewBool(true), nil
			}
			return Null(), nil
		}
		if l.Type != TBool || r.Type != TBool {
			return Value{}, fmt.Errorf("rdbms: %s of non-booleans", x.Op)
		}
		if x.Op == "AND" {
			return NewBool(l.B && r.B), nil
		}
		return NewBool(l.B || r.B), nil
	}
	l, err := evalExpr(x.Left, b, row)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(x.Right, b, row)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c, ok := Compare(l, r)
		if !ok {
			return Value{}, fmt.Errorf("rdbms: cannot compare %s with %s", l.Type, r.Type)
		}
		switch x.Op {
		case "=":
			return NewBool(c == 0), nil
		case "!=":
			return NewBool(c != 0), nil
		case "<":
			return NewBool(c < 0), nil
		case "<=":
			return NewBool(c <= 0), nil
		case ">":
			return NewBool(c > 0), nil
		case ">=":
			return NewBool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if l.Type != TString || r.Type != TString {
			return Value{}, fmt.Errorf("rdbms: LIKE needs strings")
		}
		return NewBool(likeMatch(l.S, r.S)), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if x.Op == "+" && l.Type == TString && r.Type == TString {
			return NewString(l.S + r.S), nil
		}
		if l.Type == TInt && r.Type == TInt {
			switch x.Op {
			case "+":
				return NewInt(l.I + r.I), nil
			case "-":
				return NewInt(l.I - r.I), nil
			case "*":
				return NewInt(l.I * r.I), nil
			case "/":
				if r.I == 0 {
					return Value{}, fmt.Errorf("rdbms: division by zero")
				}
				return NewInt(l.I / r.I), nil
			}
		}
		lf, ok1 := l.AsFloat()
		rf, ok2 := r.AsFloat()
		if !ok1 || !ok2 {
			return Value{}, fmt.Errorf("rdbms: arithmetic on %s and %s", l.Type, r.Type)
		}
		switch x.Op {
		case "+":
			return NewFloat(lf + rf), nil
		case "-":
			return NewFloat(lf - rf), nil
		case "*":
			return NewFloat(lf * rf), nil
		case "/":
			if rf == 0 {
				return Value{}, fmt.Errorf("rdbms: division by zero")
			}
			return NewFloat(lf / rf), nil
		}
	}
	return Value{}, fmt.Errorf("rdbms: unknown operator %s", x.Op)
}

// truthy treats NULL as false (SQL WHERE semantics).
func truthy(v Value) bool { return v.Type == TBool && v.B }

func (tx *Txn) execInsert(s InsertStmt) (*ResultSet, error) {
	t, err := tx.table(s.Table)
	if err != nil {
		return nil, err
	}
	cols := s.Columns
	if len(cols) == 0 {
		for _, c := range t.Schema.Columns {
			cols = append(cols, c.Name)
		}
	}
	n := 0
	for _, row := range s.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("rdbms: INSERT row has %d values for %d columns", len(row), len(cols))
		}
		tup := make(Tuple, len(t.Schema.Columns))
		for i := range tup {
			tup[i] = Null()
		}
		for i, col := range cols {
			ci := t.Schema.ColIndex(col)
			if ci < 0 {
				return nil, fmt.Errorf("rdbms: no column %s in %s", col, s.Table)
			}
			v, err := evalExpr(row[i], &binding{}, nil)
			if err != nil {
				return nil, err
			}
			tup[ci] = v
		}
		if _, err := tx.Insert(s.Table, tup); err != nil {
			return nil, err
		}
		n++
	}
	return &ResultSet{Columns: []string{"inserted"}, Rows: []Tuple{{NewInt(int64(n))}}, Plan: "insert", Mutated: true}, nil
}

func (tx *Txn) execUpdate(s UpdateStmt) (*ResultSet, error) {
	t, err := tx.table(s.Table)
	if err != nil {
		return nil, err
	}
	b := bindingForTable(&t.Schema, "")
	// Collect matching rows first (cannot mutate under scan).
	type match struct {
		rid RID
		tup Tuple
	}
	var matches []match
	err = tx.Scan(s.Table, func(rid RID, tup Tuple) bool {
		if s.Where != nil {
			v, e := evalExpr(s.Where, b, tup)
			if e != nil {
				err = e
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		matches = append(matches, match{rid, tup.Clone()})
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, m := range matches {
		newTup := m.tup.Clone()
		for _, set := range s.Set {
			ci := t.Schema.ColIndex(set.Column)
			if ci < 0 {
				return nil, fmt.Errorf("rdbms: no column %s in %s", set.Column, s.Table)
			}
			v, err := evalExpr(set.Value, b, m.tup)
			if err != nil {
				return nil, err
			}
			newTup[ci] = v
		}
		if _, err := tx.Update(s.Table, m.rid, newTup); err != nil {
			return nil, err
		}
	}
	return &ResultSet{Columns: []string{"updated"}, Rows: []Tuple{{NewInt(int64(len(matches)))}}, Plan: "update", Mutated: true}, nil
}

func (tx *Txn) execDelete(s DeleteStmt) (*ResultSet, error) {
	t, err := tx.table(s.Table)
	if err != nil {
		return nil, err
	}
	b := bindingForTable(&t.Schema, "")
	var rids []RID
	err = tx.Scan(s.Table, func(rid RID, tup Tuple) bool {
		if s.Where != nil {
			v, e := evalExpr(s.Where, b, tup)
			if e != nil {
				err = e
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		rids = append(rids, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, rid := range rids {
		if err := tx.Delete(s.Table, rid); err != nil {
			return nil, err
		}
	}
	return &ResultSet{Columns: []string{"deleted"}, Rows: []Tuple{{NewInt(int64(len(rids)))}}, Plan: "delete", Mutated: true}, nil
}
