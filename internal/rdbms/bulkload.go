package rdbms

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
)

// COPY-style bulk load.
//
// The row-at-a-time insert path pays, per row: a WAL record, two lock
// acquisitions, a version-chain hold, and O(log n) comparison-driven
// index inserts. A bulk load amortizes all four. Rows are placed into
// freshly allocated heap pages that stay PINNED and UNLINKED while one
// LogBatchInsert record covering the whole chunk is appended (the pages
// cannot be written back before the record exists — the WAL rule by
// construction — and no reader can reach rows on pages outside the heap
// chain), then the pages are stamped with the batch LSN, unpinned, and
// linked. Each chunk commits as its own transaction: one batch marker
// covering the chunk's pages is registered in one lock acquisition
// (beginBatch) before the link — O(pages) state standing in for what
// used to be O(rows) per-row version chains — the commit record is
// group-flushed, the content-hash delta folds once per chunk, and
// publication (publishBatch) stamps the marker with the commit LSN in
// O(1). Crash anywhere before the chunk's
// commit record is durable and recovery rolls the WHOLE chunk back
// (all-or-nothing batch semantics); after, redo replays it whole —
// recovery normalizes batch records into per-row records stamped with
// the batch LSN, so the existing gated-redo/undo machinery applies
// unchanged (expandBatchRecords).
//
// Index maintenance: when every index of the target table is empty at
// BeginBulkLoad (the fresh-ingest case), index builds are DEFERRED — the
// load accumulates (key, rid) runs per column and Commit sorts them once
// and feeds them to newBTreeFromSorted, an O(n) bottom-up construction,
// swapping the result in under the index's own latch (ReplaceContents).
// Snapshot readers stay correct throughout: the loader holds a snapshot
// pin below every batch LSN, so the chains survive sweeps, and the Snap
// index paths compensate empty indexes through chainRIDs. Non-empty
// indexes are maintained incrementally per chunk instead.
//
// The fence: each chunk is durable in the WAL at its commit; Commit ends
// with a full checkpoint, making the load durable in the data pages and
// truncating the log the load grew.

// maxBulkChunkPages bounds how many freshly allocated pages one batch
// record covers — all of them are pinned simultaneously, so the bound
// must leave the buffer pool room to breathe.
const maxBulkChunkPages = 32

// batchRow is one (RID, tuple) pair of a decoded batch record.
type batchRow struct {
	rid RID
	tup Tuple
}

// encodeBatchRows serializes a chunk's row placements for a
// LogBatchInsert/LogBatchDelete record's Data: a row count, then per row
// the 6-byte RID and the length-prefixed encoded tuple. recs carries the
// tuples already encoded (the heap placement encoded them once).
func encodeBatchRows(rids []RID, recs [][]byte) []byte {
	size := 4
	for _, rec := range recs {
		size += 6 + 4 + len(rec)
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rids)))
	buf = append(buf, tmp[:4]...)
	for i, rid := range rids {
		binary.LittleEndian.PutUint32(tmp[0:4], uint32(rid.Page))
		binary.LittleEndian.PutUint16(tmp[4:6], rid.Slot)
		buf = append(buf, tmp[:6]...)
		buf = appendBytes(buf, recs[i])
	}
	return buf
}

// decodeBatchRows parses a batch record's Data back into rows.
func decodeBatchRows(data []byte) ([]batchRow, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("rdbms: short batch payload")
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	data = data[4:]
	rows := make([]batchRow, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 6 {
			return nil, fmt.Errorf("rdbms: short batch rid")
		}
		var rid RID
		rid.Page = PageID(binary.LittleEndian.Uint32(data[0:4]))
		rid.Slot = binary.LittleEndian.Uint16(data[4:6])
		data = data[6:]
		raw, consumed, err := readBytes(data)
		if err != nil {
			return nil, fmt.Errorf("rdbms: batch row %d: %w", i, err)
		}
		data = data[consumed:]
		tup, err := DecodeTuple(raw)
		if err != nil {
			return nil, fmt.Errorf("rdbms: batch row %d: %w", i, err)
		}
		rows = append(rows, batchRow{rid: rid, tup: tup})
	}
	return rows, nil
}

// expandBatchRecords normalizes a recovery tail: each batch record
// becomes one per-row Insert/Delete record per covered row, all stamped
// with the batch record's LSN. Redo gating, undo, and the slot-outcome
// walk then treat a batch exactly like the row-at-a-time sequence it
// replaced — batch pages were stamped with the batch LSN, so the
// page-LSN gate skips already-flushed chunks whole, and an unresolved
// chunk's rows are all forced dead (all-or-nothing on reopen).
func expandBatchRecords(records []*LogRecord) ([]*LogRecord, error) {
	hasBatch := false
	for _, r := range records {
		if r.Kind == LogBatchInsert || r.Kind == LogBatchDelete {
			hasBatch = true
			break
		}
	}
	if !hasBatch {
		return records, nil
	}
	out := make([]*LogRecord, 0, len(records))
	for _, r := range records {
		if r.Kind != LogBatchInsert && r.Kind != LogBatchDelete {
			out = append(out, r)
			continue
		}
		rows, err := decodeBatchRows(r.Data)
		if err != nil {
			return nil, err
		}
		for _, br := range rows {
			rec := &LogRecord{LSN: r.LSN, Txn: r.Txn, Table: r.Table, Row: br.rid}
			if r.Kind == LogBatchInsert {
				rec.Kind = LogInsert
				rec.After = br.tup
			} else {
				rec.Kind = LogDelete
				rec.Before = br.tup
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// AppendChunk places up to maxPages pages' worth of tups into freshly
// allocated pages that stay pinned and OUTSIDE the heap chain while
// onPinned runs — the window in which the caller registers version
// chains and appends the batch WAL record (pinned pages cannot be
// evicted, so the record precedes any write-back of the new bytes; an
// unlinked page is invisible to every reader). The pages are then
// stamped with the returned LSN, unpinned, and linked to the chain in
// one step. Returns the assigned RIDs and how many tuples were consumed;
// the caller loops for the remainder.
//
// If onPinned fails, the pages are abandoned unlinked (never reachable,
// never logged) and the error returned. An error after onPinned (a link
// I/O failure) returns the RIDs and LSN so the caller can compensate.
func (h *HeapFile) AppendChunk(tups []Tuple, maxPages int, onPinned func(rids []RID, recs [][]byte) (LSN, error)) (rids []RID, consumed int, lsn LSN, err error) {
	if maxPages < 1 {
		maxPages = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	type pinnedPage struct {
		id PageID
		p  *slottedPage
	}
	var pages []pinnedPage
	unpinAll := func() {
		for _, pg := range pages {
			h.bp.Unpin(pg.id, true)
		}
	}

	var recs [][]byte
	var curP *slottedPage
	var curID PageID
	for consumed = 0; consumed < len(tups); consumed++ {
		rec := EncodeTuple(tups[consumed])
		if len(rec)+slotSize > PageSize-pageHeaderSize {
			if len(pages) == 0 {
				return nil, 0, 0, fmt.Errorf("rdbms: tuple of %d bytes exceeds page capacity", len(rec))
			}
			break // commit what fits; the caller will fail on the retry
		}
		if curP != nil {
			if slot, ok := curP.insert(rec, nil); ok {
				rids = append(rids, RID{Page: curID, Slot: slot})
				recs = append(recs, rec)
				continue
			}
			curP = nil
			if len(pages) >= maxPages {
				break
			}
		}
		id, data, err := h.bp.NewPage()
		if err != nil {
			unpinAll()
			return nil, 0, 0, err
		}
		p := newSlottedPage(data)
		p.setNext(InvalidPage)
		pages = append(pages, pinnedPage{id: id, p: p})
		curID, curP = id, p
		slot, ok := p.insert(rec, nil)
		if !ok {
			unpinAll()
			return nil, 0, 0, fmt.Errorf("rdbms: tuple does not fit in a fresh page")
		}
		rids = append(rids, RID{Page: id, Slot: slot})
		recs = append(recs, rec)
	}
	if len(rids) == 0 {
		return nil, 0, 0, nil
	}

	lsn, err = onPinned(rids, recs)
	if err != nil {
		unpinAll()
		return nil, 0, 0, err
	}
	// Chain the chunk's pages to each other, stamp, and release the pins;
	// only then expose everything at once by linking the old tail.
	for i, pg := range pages {
		if i+1 < len(pages) {
			pg.p.setNext(pages[i+1].id)
		}
		if lsn != 0 {
			pg.p.setPageLSN(lsn)
		}
	}
	unpinAll()
	tail := h.pages[len(h.pages)-1]
	tdata, err := h.bp.Pin(tail)
	if err != nil {
		return rids, consumed, lsn, err
	}
	newSlottedPage(tdata).setNext(pages[0].id)
	h.bp.Unpin(tail, true)
	for _, pg := range pages {
		h.pages = append(h.pages, pg.id)
	}
	return rids, consumed, lsn, nil
}

// BulkLoadStats summarizes one bulk load.
type BulkLoadStats struct {
	Rows    int
	Batches int
	// Deferred reports whether index builds were deferred to Commit
	// (sorted runs into newBTreeFromSorted) or maintained per chunk.
	Deferred bool
}

// BulkLoader is a COPY-style load session on one table. Begin with
// DB.BeginBulkLoad, feed rows with Append (each full chunk commits
// durably as its own all-or-nothing batch), then Commit — which builds
// any deferred indexes and checkpoints (the fence) — or Abort, which
// keeps the already-committed chunks (they are committed) but still
// repairs the deferred indexes to cover them. Not safe for concurrent
// use; the session holds the table's exclusive lock throughout.
type BulkLoader struct {
	db    *DB
	t     *Table
	table string
	// tx is the umbrella transaction: it owns the exclusive table lock
	// and, being registered in db.active, holds the WAL-truncation
	// horizon at the load's start for crash-time rollback of the newest
	// chunk. Each chunk commits under its own transaction id.
	tx     *Txn
	pin    LSN    // snapshot pin: keeps batch chains alive for deferred index reads
	pinSeq uint64 // the pin's snapshot sequence number

	deferred bool
	entries  map[string][]idxEntry // per indexed column, deferred mode

	stats BulkLoadStats
	done  bool
}

type idxEntry struct {
	key Value
	rid RID
}

// BeginBulkLoad opens a bulk-load session on table, taking its exclusive
// lock (readers via snapshots are unaffected; locking readers and other
// writers wait until Commit/Abort).
func (db *DB) BeginBulkLoad(table string) (*BulkLoader, error) {
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("rdbms: table %s does not exist", table)
	}
	tx := db.Begin()
	if err := db.lm.Acquire(tx.id, TableLock(table), LockExclusive); err != nil {
		tx.Abort()
		return nil, err
	}
	bl := &BulkLoader{db: db, t: t, table: table, tx: tx}
	bl.pin, bl.pinSeq = db.vs.acquireSnapshot()
	bl.deferred = true
	for _, idx := range t.Indexes {
		if idx.Len() > 0 {
			bl.deferred = false
			break
		}
	}
	bl.stats.Deferred = bl.deferred
	if bl.deferred {
		bl.entries = make(map[string][]idxEntry, len(t.Indexes))
	}
	return bl, nil
}

// Append validates, coerces, and loads rows in durable all-or-nothing
// chunks. On error the rows of fully committed chunks remain committed;
// the failed chunk leaves nothing visible. The caller should Abort the
// session after an error (Abort keeps committed chunks and repairs
// deferred indexes).
func (bl *BulkLoader) Append(ctx context.Context, rows []Tuple) error {
	if bl.done {
		return ErrTxnDone
	}
	for i, row := range rows {
		row = bl.t.Schema.Coerce(row)
		if err := bl.t.Schema.Validate(row); err != nil {
			return fmt.Errorf("rdbms: bulk row %d: %w", i, err)
		}
		rows[i] = row
	}
	for len(rows) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n, err := bl.loadChunk(rows)
		if err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

// loadChunk places, logs, and durably commits one batch.
func (bl *BulkLoader) loadChunk(rows []Tuple) (int, error) {
	db, t := bl.db, bl.t
	maxPages := maxBulkChunkPages
	if c := db.bp.capacity / 4; c < maxPages {
		maxPages = c
	}
	chunk := db.Begin()
	t.noteMutation()
	var chunkRecs [][]byte
	var marker *batchMarker
	rids, consumed, lsn, err := t.Heap.AppendChunk(rows, maxPages, func(rids []RID, recs [][]byte) (LSN, error) {
		chunkRecs = recs
		marker = db.vs.beginBatch(bl.table, rids)
		return db.wal.Append(&LogRecord{
			Kind:  LogBatchInsert,
			Txn:   chunk.id,
			Table: bl.table,
			Data:  encodeBatchRows(rids, recs),
		}), nil
	})
	if err != nil {
		if lsn != 0 {
			// Logged and placed, but the chain link failed: compensate.
			bl.rollbackChunk(chunk, marker, rids, chunkRecs)
			return 0, err
		}
		db.wal.Append(&LogRecord{Kind: LogAbort, Txn: chunk.id})
		chunk.finish()
		return 0, err
	}
	if consumed == 0 {
		db.wal.Append(&LogRecord{Kind: LogAbort, Txn: chunk.id})
		chunk.finish()
		return 0, fmt.Errorf("rdbms: bulk chunk made no progress")
	}

	rec := &LogRecord{Kind: LogCommit, Txn: chunk.id}
	target := db.vs.withPending(func() LSN { return db.wal.AppendEnd(rec) })
	chunk.commitLogged = true
	if err := db.wal.FlushCommit(target); err != nil {
		db.vs.cancelPending(target)
		bl.rollbackChunk(chunk, marker, rids, chunkRecs)
		return 0, err
	}
	// Durable: fold the chunk's content-hash delta, then index, then
	// publish — entries must exist before a snapshot can see the rows
	// live, and the hash must cover what admitted readers can see.
	if t.hashCols != nil {
		var d uint64
		for _, row := range rows[:consumed] {
			d += t.rowHash(row)
		}
		t.hash.Add(d)
	}
	for col, idx := range t.Indexes {
		ci := t.Schema.ColIndex(col)
		if bl.deferred {
			ents := bl.entries[col]
			for i, rid := range rids {
				ents = append(ents, idxEntry{key: rows[i][ci], rid: rid})
			}
			bl.entries[col] = ents
		} else {
			for i, rid := range rids {
				idx.Insert(rows[i][ci], rid)
			}
		}
	}
	db.vs.publishBatch(target, marker)
	chunk.finish()
	bl.stats.Rows += consumed
	bl.stats.Batches++
	return consumed, nil
}

// rollbackChunk compensates a placed-but-uncommitted (or in-doubt) chunk
// in-process: one LogBatchDelete carrying the before-images, tombstones
// at each RID, the chunk's marker fenced back to its pending ("no row")
// state, then the abort verdict — flushed when a commit record might
// already be durable, so the last verdict wins.
func (bl *BulkLoader) rollbackChunk(chunk *Txn, marker *batchMarker, rids []RID, recs [][]byte) {
	db := bl.db
	lsn := db.wal.Append(&LogRecord{
		Kind:  LogBatchDelete,
		Txn:   chunk.id,
		Table: bl.table,
		Data:  encodeBatchRows(rids, recs),
	})
	for _, rid := range rids {
		bl.t.Heap.DeleteWith(rid, func() LSN { return lsn })
	}
	db.vs.abortBatch(marker)
	db.wal.Append(&LogRecord{Kind: LogAbort, Txn: chunk.id})
	if chunk.commitLogged {
		db.wal.Flush()
	}
	chunk.finish()
}

// finishIndexes installs the deferred indexes: per column, sort the
// accumulated run once and build the tree bottom-up. Input the sorted
// builder rejects (incomparable adjacent keys) falls back to
// comparison-driven inserts — same contents, just slower.
func (bl *BulkLoader) finishIndexes() {
	if !bl.deferred {
		return
	}
	for col, idx := range bl.t.Indexes {
		ents := bl.entries[col]
		sort.Slice(ents, func(i, j int) bool {
			if c, ok := Compare(ents[i].key, ents[j].key); ok {
				if c != 0 {
					return c < 0
				}
				return ridLess(ents[i].rid, ents[j].rid)
			}
			return ents[i].key.Type < ents[j].key.Type
		})
		var keys []Value
		var postings [][]RID
		for _, e := range ents {
			if n := len(keys); n > 0 && eqKey(keys[n-1], e.key) {
				postings[n-1] = append(postings[n-1], e.rid)
				continue
			}
			keys = append(keys, e.key)
			postings = append(postings, []RID{e.rid})
		}
		nt, err := newBTreeFromSorted(defaultBTreeOrder, keys, postings)
		if err != nil {
			nt = NewBTree()
			for _, e := range ents {
				nt.Insert(e.key, e.rid)
			}
		}
		idx.ReplaceContents(nt)
		delete(bl.entries, col)
	}
}

// Commit installs deferred indexes, ends the session, and fences the
// load with a full checkpoint: every batch becomes durable in the data
// pages, the catalog captures the new derived state (indexes, content
// hash), and the WAL the load grew truncates away.
func (bl *BulkLoader) Commit(ctx context.Context) (BulkLoadStats, error) {
	if bl.done {
		return bl.stats, ErrTxnDone
	}
	bl.finishIndexes()
	bl.db.vs.releaseSnapshot(bl.pin, bl.pinSeq)
	bl.done = true
	if err := bl.tx.Commit(); err != nil {
		return bl.stats, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return bl.stats, err
		}
	}
	if err := bl.db.Checkpoint(); err != nil {
		return bl.stats, err
	}
	return bl.stats, nil
}

// Abort ends the session without the fence. Chunks that committed stay
// committed (each was acknowledged durable); deferred indexes are still
// installed so they cover those chunks — the table is left consistent,
// just shorter than intended.
func (bl *BulkLoader) Abort() error {
	if bl.done {
		return nil
	}
	bl.finishIndexes()
	bl.db.vs.releaseSnapshot(bl.pin, bl.pinSeq)
	bl.done = true
	return bl.tx.Abort()
}

// BulkLoad loads rows into table through a complete bulk-load session:
// chunked batch commits, deferred or incremental index maintenance, and
// the closing checkpoint fence. On error, committed chunks remain (see
// BulkLoader.Abort).
func (db *DB) BulkLoad(ctx context.Context, table string, rows []Tuple) (BulkLoadStats, error) {
	bl, err := db.BeginBulkLoad(table)
	if err != nil {
		return BulkLoadStats{}, err
	}
	if err := bl.Append(ctx, rows); err != nil {
		stats := bl.stats
		bl.Abort()
		return stats, err
	}
	return bl.Commit(ctx)
}
