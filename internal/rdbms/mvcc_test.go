package rdbms

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// execOn runs one SQL statement in its own transaction against db,
// failing the test on error.
func execOn(t *testing.T, db *DB, sql string) *ResultSet {
	t.Helper()
	rs, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return rs
}

func TestMVCCSnapshotSeesOnlyCommitted(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, err := tx.Insert("cities", Tuple{NewString("Madison"), NewString("WI"), NewInt(100)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	sn := db.BeginSnapshot()
	defer sn.Close()

	// Uncommitted update is invisible.
	tx2 := db.Begin()
	if _, err := tx2.Update("cities", rid, Tuple{NewString("Madison"), NewString("WI"), NewInt(200)}); err != nil {
		t.Fatal(err)
	}
	got, live, err := sn.Get("cities", rid)
	if err != nil || !live || got[2].I != 100 {
		t.Fatalf("snapshot saw uncommitted write: %v live=%v err=%v", got, live, err)
	}
	// Still invisible after the writer commits (snapshot predates it).
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	got, live, _ = sn.Get("cities", rid)
	if !live || got[2].I != 100 {
		t.Fatalf("snapshot is not repeatable after commit: %v live=%v", got, live)
	}
	// A fresh snapshot sees the new value.
	sn2 := db.BeginSnapshot()
	defer sn2.Close()
	got, live, _ = sn2.Get("cities", rid)
	if !live || got[2].I != 200 {
		t.Fatalf("new snapshot missed committed write: %v live=%v", got, live)
	}
	if sn2.LSN() <= sn.LSN() {
		t.Fatalf("snapshot LSNs not advancing: %d then %d", sn.LSN(), sn2.LSN())
	}
}

func TestMVCCSnapshotScanSurvivesDeleteAndInsert(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	var rids []RID
	tx := db.Begin()
	for i := 0; i < 5; i++ {
		rid, err := tx.Insert("cities", Tuple{NewString(fmt.Sprintf("c%d", i)), NewString("WI"), NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	sn := db.BeginSnapshot()
	defer sn.Close()

	// After the snapshot: delete one row, insert another, both committed.
	tx2 := db.Begin()
	if err := tx2.Delete("cities", rids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Insert("cities", Tuple{NewString("new"), NewString("MN"), NewInt(99)}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	if err := sn.Scan("cities", func(_ RID, tup Tuple) bool {
		seen[tup[0].S] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("snapshot scan saw %d rows, want the original 5: %v", len(seen), seen)
	}
	if !seen["c2"] {
		t.Fatal("snapshot scan lost the row deleted after the snapshot")
	}
	if seen["new"] {
		t.Fatal("snapshot scan saw a row inserted after the snapshot")
	}

	// Current state (a new snapshot): c2 gone, new present.
	sn2 := db.BeginSnapshot()
	defer sn2.Close()
	seen = map[string]bool{}
	if err := sn2.Scan("cities", func(_ RID, tup Tuple) bool {
		seen[tup[0].S] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen["c2"] || !seen["new"] || len(seen) != 5 {
		t.Fatalf("current snapshot wrong: %v", seen)
	}
}

func TestMVCCSnapshotAbortInvisible(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	execOn(t, db, `INSERT INTO cities (name, state, pop) VALUES ('a', 'WI', 1)`)

	tx := db.Begin()
	if _, err := tx.Insert("cities", Tuple{NewString("ghost"), NewString("XX"), NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	sn := db.BeginSnapshot()
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sn.Scan("cities", func(RID, Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	sn.Close()
	if n != 1 {
		t.Fatalf("snapshot saw %d rows, aborted insert leaked", n)
	}
	if got := db.Versions().Chains(); got != 0 {
		t.Fatalf("chains not drained after abort + snapshot close: %d", got)
	}
}

func TestMVCCSnapshotSQLPathsMatchTxn(t *testing.T) {
	db := newTestDB(t)
	execOn(t, db, `CREATE TABLE nums (id INT, grp STRING, val INT)`)
	for i := 0; i < 200; i++ {
		execOn(t, db, fmt.Sprintf(`INSERT INTO nums (id, grp, val) VALUES (%d, 'g%d', %d)`, i, i%5, i*7%13))
	}
	if err := db.CreateIndex("nums", "id"); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT COUNT(*) FROM nums`,
		`SELECT id, val FROM nums WHERE id = 42`,
		`SELECT id FROM nums WHERE id >= 10 AND id <= 20 ORDER BY id`,
		`SELECT id FROM nums ORDER BY id DESC LIMIT 5`, // order path: Snap falls back to sort
		`SELECT grp, SUM(val) FROM nums GROUP BY grp ORDER BY grp`,
		`SELECT DISTINCT grp FROM nums ORDER BY grp`,
		`SELECT a.id, b.id FROM nums a JOIN nums b ON a.id = b.val WHERE a.id < 13 ORDER BY a.id, b.id`,
		`SELECT val FROM nums WHERE grp = 'g3' ORDER BY val LIMIT 7`,
	}
	sn := db.BeginSnapshot()
	defer sn.Close()
	for _, q := range queries {
		want := execOn(t, db, q)
		got, err := sn.Query(q)
		if err != nil {
			t.Fatalf("snapshot %q: %v", q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("snapshot %q: %d rows, want %d", q, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j].String() != want.Rows[i][j].String() {
					t.Fatalf("snapshot %q row %d col %d: %v want %v", q, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
	}

	if _, err := sn.Query(`INSERT INTO nums (id, grp, val) VALUES (999, 'x', 0)`); err == nil {
		t.Fatal("snapshot accepted a mutation")
	}
	if _, err := sn.Query(`DROP TABLE nums`); err == nil {
		t.Fatal("snapshot accepted DDL")
	}
}

func TestMVCCReaderZeroLockAcquisitions(t *testing.T) {
	db := newTestDB(t)
	execOn(t, db, `CREATE TABLE nums (id INT, grp STRING, val INT)`)
	for i := 0; i < 50; i++ {
		execOn(t, db, fmt.Sprintf(`INSERT INTO nums (id, grp, val) VALUES (%d, 'g', %d)`, i, i))
	}
	if err := db.CreateIndex("nums", "id"); err != nil {
		t.Fatal(err)
	}
	sn := db.BeginSnapshot()
	defer sn.Close()
	before := db.LockManager().Acquisitions()
	if _, err := sn.Query(`SELECT COUNT(*) FROM nums`); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Query(`SELECT val FROM nums WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Query(`SELECT id FROM nums WHERE id >= 5 AND id <= 30 ORDER BY id LIMIT 3`); err != nil {
		t.Fatal(err)
	}
	if err := sn.Scan("nums", func(RID, Tuple) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sn.Get("nums", RID{Page: 1, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if after := db.LockManager().Acquisitions(); after != before {
		t.Fatalf("snapshot reads took %d lock acquisitions, want 0", after-before)
	}
}

// scanHash content-hashes one snapshot scan of the accounts table
// (order-insensitive per-row hash folded with addition, plus sum and
// count), the oracle for consistent-LSN reads.
func snapScanHash(sn *Snap) (hash uint64, total int64, rows int, err error) {
	err = sn.Scan("accounts", func(_ RID, tup Tuple) bool {
		h := fnv.New64a()
		for _, v := range tup {
			fmt.Fprintf(h, "%s|", v.String())
		}
		hash += h.Sum64()
		total += tup[1].I
		rows++
		return true
	})
	return
}

// TestMVCCSnapshotRaceReadersVsWriters is the tentpole's proof: N reader
// snapshots race M writer transactions and a live checkpointer under
// -race. Each reader asserts (a) the balance-transfer invariant (total
// is constant at every snapshot), (b) repeatable read (two scans of the
// same snapshot hash identically), and (c) zero lock-manager
// acquisitions across all reader work.
// TestMVCCAbortFenceRetainsChain pins the deterministic core of the
// readers-vs-writers flake: a scanning reader latches a page copy, a
// writer mutates the row and then ABORTS, and only afterwards does the
// reader resolve the row through the version store. The undo restored
// the heap, but the reader's copy still holds the aborted bytes — the
// chain's base pre-image is the only thing that corrects it, so it must
// survive the abort for as long as any snapshot from before the abort is
// open (the abort fence), and be collected promptly afterwards.
func TestMVCCAbortFenceRetainsChain(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, err := tx.Insert("cities", Tuple{NewString("Madison"), NewString("WI"), NewInt(100)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Checkpoint() // drain the insert's chain so only the abort's matters

	sn := db.BeginSnapshot()
	defer sn.Close()

	w := db.Begin()
	if _, err := w.Update("cities", rid, Tuple{NewString("Madison"), NewString("WI"), NewInt(999)}); err != nil {
		t.Fatal(err)
	}
	// The reader's page copy happens here, conceptually: it would hold the
	// uncommitted 999. The writer aborts, restoring the heap to 100.
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}

	// The chain must still exist so the stale copy resolves to the
	// pre-image instead of falling through to the copied aborted bytes.
	if v, ok := db.Versions().visible("cities", rid, sn.LSN()); !ok {
		t.Fatalf("abort dropped the chain while a pre-abort snapshot was open")
	} else if !v.live || v.tup == nil || v.tup[2].I != 100 {
		t.Fatalf("chain resolves to %v live=%v, want pre-image 100", v.tup, v.live)
	}
	// And the snapshot's own read agrees.
	got, live, err := sn.Get("cities", rid)
	if err != nil || !live || got[2].I != 100 {
		t.Fatalf("snapshot read after abort: %v live=%v err=%v", got, live, err)
	}

	// A snapshot opened after the abort reads the restored heap whether or
	// not the chain is present.
	sn2 := db.BeginSnapshot()
	got, live, err = sn2.Get("cities", rid)
	if err != nil || !live || got[2].I != 100 {
		t.Fatalf("post-abort snapshot read: %v live=%v err=%v", got, live, err)
	}
	sn2.Close()

	// The fence lifts when the pre-abort snapshot closes: the next sweep
	// collects the chain.
	sn.Close()
	db.Versions().Sweep()
	if got := db.Versions().Chains(); got != 0 {
		t.Fatalf("chains not drained after fence lifted: %d", got)
	}
}

func TestMVCCSnapshotRaceReadersVsWriters(t *testing.T) {
	db := newTestDB(t)
	if err := db.CreateTable(TableSchema{Name: "accounts", Columns: []ColumnDef{
		{Name: "id", Type: TInt},
		{Name: "bal", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	const (
		nAccounts = 40
		nReaders  = 4
		nWriters  = 3
		initBal   = 1000
	)
	rids := make([]RID, nAccounts)
	tx := db.Begin()
	for i := range rids {
		rid, err := tx.Insert("accounts", Tuple{NewInt(int64(i)), NewInt(initBal)})
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	const wantTotal = int64(nAccounts * initBal)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr, readerErr atomic.Value
	var readerLocks atomic.Int64

	// Writers: transfer a random amount between two random accounts in
	// one transaction. Deadlocks (two-row lock order) abort and retry.
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i, j := rng.Intn(nAccounts), rng.Intn(nAccounts)
				if i == j {
					continue
				}
				amt := int64(rng.Intn(50))
				tx := db.Begin()
				err := func() error {
					// %w, not %v: a Get can be the deadlock victim too (its
					// shared lock can close a cycle against an upgraded X
					// lock), and the retry below matches with errors.Is.
					a, liveA, err := tx.Get("accounts", rids[i])
					if err != nil || !liveA {
						return fmt.Errorf("get a: live=%v err=%w", liveA, err)
					}
					b, liveB, err := tx.Get("accounts", rids[j])
					if err != nil || !liveB {
						return fmt.Errorf("get b: live=%v err=%w", liveB, err)
					}
					if _, err := tx.Update("accounts", rids[i], Tuple{a[0], NewInt(a[1].I - amt)}); err != nil {
						return err
					}
					if _, err := tx.Update("accounts", rids[j], Tuple{b[0], NewInt(b[1].I + amt)}); err != nil {
						return err
					}
					return tx.Commit()
				}()
				if err != nil {
					if !tx.done {
						tx.Abort()
					}
					if errors.Is(err, ErrDeadlock) {
						continue
					}
					writerErr.Store(err)
					return
				}
			}
		}(int64(w) + 1)
	}

	// Checkpointer: fuzzy checkpoints while everyone runs (also drives
	// the version-store sweep).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := db.Checkpoint(); err != nil {
				writerErr.Store(fmt.Errorf("checkpoint: %w", err))
				return
			}
		}
	}()

	// Readers: open snapshots, check invariant + repeatable read.
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := db.LockManager().Acquisitions()
				sn := db.BeginSnapshot()
				h1, total, rows, err := snapScanHash(sn)
				if err != nil {
					readerErr.Store(err)
					sn.Close()
					return
				}
				if rows != nAccounts || total != wantTotal {
					readerErr.Store(fmt.Errorf("snapshot at LSN %d saw %d rows totalling %d, want %d/%d",
						sn.LSN(), rows, total, nAccounts, wantTotal))
					sn.Close()
					return
				}
				h2, _, _, err := snapScanHash(sn)
				if err != nil {
					readerErr.Store(err)
					sn.Close()
					return
				}
				if h1 != h2 {
					readerErr.Store(fmt.Errorf("snapshot at LSN %d not repeatable: %x then %x", sn.LSN(), h1, h2))
					sn.Close()
					return
				}
				sn.Close()
				readerLocks.Add(db.LockManager().Acquisitions() - before)
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := writerErr.Load(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := readerErr.Load(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	// Reader lock counting races writer acquisitions on the shared
	// counter, so sample readers alone for the zero assertion: re-run a
	// reader pass with writers stopped.
	before := db.LockManager().Acquisitions()
	sn := db.BeginSnapshot()
	if _, _, _, err := snapScanHash(sn); err != nil {
		t.Fatal(err)
	}
	sn.Close()
	if after := db.LockManager().Acquisitions(); after != before {
		t.Fatalf("reader pass took %d lock acquisitions, want 0", after-before)
	}

	// GC: with no writers and no snapshots, a checkpoint drains every
	// chain.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.Versions().Chains(); got != 0 {
		t.Fatalf("version chains not drained: %d", got)
	}
}

// TestMVCCSnapshotPinsGCHorizon: versions stay reachable while any
// snapshot might need them, including the pending-commit window.
func TestMVCCSnapshotPinsGCHorizon(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, err := tx.Insert("cities", Tuple{NewString("x"), NewString("WI"), NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sn := db.BeginSnapshot()
	for i := 2; i <= 4; i++ {
		tx := db.Begin()
		if _, err := tx.Update("cities", rid, Tuple{NewString("x"), NewString("WI"), NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The old snapshot must still see 1 even after GC ran.
	got, live, err := sn.Get("cities", rid)
	if err != nil || !live || got[2].I != 1 {
		t.Fatalf("pinned snapshot lost its version: %v live=%v err=%v", got, live, err)
	}
	sn.Close()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.Versions().Chains(); got != 0 {
		t.Fatalf("chains not dropped once the snapshot closed: %d", got)
	}
}

func TestMVCCSnapshotIndexPathsSeeSnapshotState(t *testing.T) {
	db := newTestDB(t)
	execOn(t, db, `CREATE TABLE nums (id INT, val INT)`)
	for i := 0; i < 20; i++ {
		execOn(t, db, fmt.Sprintf(`INSERT INTO nums (id, val) VALUES (%d, %d)`, i, i))
	}
	if err := db.CreateIndex("nums", "id"); err != nil {
		t.Fatal(err)
	}
	sn := db.BeginSnapshot()
	defer sn.Close()

	// Move id=7 to id=107 and delete id=3, committed after the snapshot.
	execOn(t, db, `UPDATE nums SET id = 107 WHERE id = 7`)
	execOn(t, db, `DELETE FROM nums WHERE id = 3`)

	for _, q := range []struct {
		sql  string
		want int
	}{
		{`SELECT id FROM nums WHERE id = 7`, 1},   // updated away: still visible
		{`SELECT id FROM nums WHERE id = 107`, 0}, // new key: invisible
		{`SELECT id FROM nums WHERE id = 3`, 1},   // deleted: still visible
		{`SELECT id FROM nums WHERE id >= 0 AND id <= 19`, 20},
	} {
		rs, err := sn.Query(q.sql)
		if err != nil {
			t.Fatalf("%q: %v", q.sql, err)
		}
		if len(rs.Rows) != q.want {
			t.Fatalf("%q: got %d rows, want %d", q.sql, len(rs.Rows), q.want)
		}
	}
}
