package rdbms

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestSlottedPageInsertReadDelete(t *testing.T) {
	p := newSlottedPage(make([]byte, PageSize))
	s1, ok := p.insert([]byte("alpha"), nil)
	if !ok {
		t.Fatal("insert failed")
	}
	s2, ok := p.insert([]byte("beta"), nil)
	if !ok {
		t.Fatal("insert failed")
	}
	if got, ok := p.read(s1); !ok || string(got) != "alpha" {
		t.Fatalf("read s1 = %q", got)
	}
	if got, ok := p.read(s2); !ok || string(got) != "beta" {
		t.Fatalf("read s2 = %q", got)
	}
	if !p.del(s1) {
		t.Fatal("delete failed")
	}
	if _, ok := p.read(s1); ok {
		t.Fatal("tombstoned slot must not read")
	}
	if p.del(s1) {
		t.Fatal("double delete should fail")
	}
	// Tombstone slot reused by next insert.
	s3, ok := p.insert([]byte("gamma"), nil)
	if !ok || s3 != s1 {
		t.Fatalf("tombstone reuse: slot %d, want %d", s3, s1)
	}
}

func TestSlottedPageUpdate(t *testing.T) {
	p := newSlottedPage(make([]byte, PageSize))
	s, _ := p.insert([]byte("aaaa"), nil)
	if !p.update(s, []byte("bb")) {
		t.Fatal("shrink update failed")
	}
	if got, _ := p.read(s); string(got) != "bb" {
		t.Fatalf("after shrink: %q", got)
	}
	if !p.update(s, []byte("cccccccc")) {
		t.Fatal("grow update failed")
	}
	if got, _ := p.read(s); string(got) != "cccccccc" {
		t.Fatalf("after grow: %q", got)
	}
	if p.update(99, []byte("x")) {
		t.Fatal("update of bad slot should fail")
	}
}

func TestSlottedPageFull(t *testing.T) {
	p := newSlottedPage(make([]byte, PageSize))
	rec := make([]byte, 100)
	n := 0
	for {
		if _, ok := p.insert(rec, nil); !ok {
			break
		}
		n++
	}
	if n < 30 || n > 45 {
		t.Fatalf("page held %d 100-byte records; expected ~39", n)
	}
	if p.freeSpace() >= 104 {
		t.Fatalf("free space %d should be below record size", p.freeSpace())
	}
}

func TestSlottedPageNextPointer(t *testing.T) {
	p := newSlottedPage(make([]byte, PageSize))
	p.setNext(42)
	if p.next() != 42 {
		t.Fatal("next pointer lost")
	}
	p.setNext(InvalidPage)
	if p.next() != InvalidPage {
		t.Fatal("invalid next lost")
	}
}

func TestMemPager(t *testing.T) {
	m := NewMemPager()
	if _, err := m.Allocate(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := m.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := m.ReadPage(0, got); err != nil || got[0] != 0xAB {
		t.Fatalf("read back: %v %x", err, got[0])
	}
	if err := m.ReadPage(5, got); err == nil {
		t.Fatal("unallocated read must fail")
	}
	if err := m.WritePage(5, buf); err == nil {
		t.Fatal("unallocated write must fail")
	}
	if m.NumPages() != 1 {
		t.Fatalf("NumPages = %d", m.NumPages())
	}
}

func TestFilePagerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "persisted content")
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d", p2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:17]) != "persisted content" {
		t.Fatalf("content lost: %q", got[:17])
	}
}

func TestBufferPoolEviction(t *testing.T) {
	m := NewMemPager()
	bp := NewBufferPool(m, nil, 4)
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, data, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i)
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	// All pages readable, with correct contents after eviction round trips.
	for i, id := range ids {
		data, err := bp.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("page %d content %d, want %d", id, data[0], i)
		}
		bp.Unpin(id, false)
	}
	st := bp.Stats()
	if st.Misses == 0 {
		t.Fatal("expected misses from eviction")
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions from a pool smaller than the page set")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	m := NewMemPager()
	bp := NewBufferPool(m, nil, 2)
	id1, _, _ := bp.NewPage()
	id2, _, _ := bp.NewPage()
	if _, _, err := bp.NewPage(); err == nil {
		t.Fatal("pool of 2 with both pinned must refuse a third pin")
	}
	bp.Unpin(id1, false)
	bp.Unpin(id2, false)
	if _, _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestBufferPoolFlush(t *testing.T) {
	m := NewMemPager()
	bp := NewBufferPool(m, nil, 8)
	id, data, _ := bp.NewPage()
	copy(data, "dirty data")
	bp.Unpin(id, true)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	if err := m.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw[:10]) != "dirty data" {
		t.Fatalf("flush did not persist: %q", raw[:10])
	}
}

func newTestHeap(t *testing.T) *HeapFile {
	t.Helper()
	bp := NewBufferPool(NewMemPager(), nil, 16)
	h, err := CreateHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapInsertGetDelete(t *testing.T) {
	h := newTestHeap(t)
	tup := Tuple{NewInt(1), NewString("Madison")}
	rid, err := h.Insert(tup)
	if err != nil {
		t.Fatal(err)
	}
	got, live, err := h.Get(rid)
	if err != nil || !live {
		t.Fatalf("Get: live=%v err=%v", live, err)
	}
	if !tupleEqual(got, tup) {
		t.Fatalf("got %v", got)
	}
	if ok, _ := h.Delete(rid); !ok {
		t.Fatal("delete failed")
	}
	if _, live, _ := h.Get(rid); live {
		t.Fatal("deleted row still live")
	}
}

func TestHeapMultiPageAndScan(t *testing.T) {
	h := newTestHeap(t)
	const n = 500
	rids := make(map[RID]int64, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(Tuple{NewInt(int64(i)), NewString(fmt.Sprintf("row-%d-%s", i, longPad(i)))})
		if err != nil {
			t.Fatal(err)
		}
		rids[rid] = int64(i)
	}
	if h.Pages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.Pages())
	}
	seen := 0
	err := h.Scan(func(rid RID, tup Tuple) bool {
		want, ok := rids[rid]
		if !ok {
			t.Fatalf("unexpected rid %v", rid)
		}
		if tup[0].I != want {
			t.Fatalf("rid %v has %d, want %d", rid, tup[0].I, want)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scanned %d rows, want %d", seen, n)
	}
	if c, _ := h.Count(); c != n {
		t.Fatalf("Count = %d", c)
	}
}

func longPad(i int) string {
	b := make([]byte, 40+i%60)
	for j := range b {
		b[j] = 'a' + byte(i%26)
	}
	return string(b)
}

func TestHeapUpdateInPlaceAndMove(t *testing.T) {
	h := newTestHeap(t)
	rid, _ := h.Insert(Tuple{NewString("short")})
	rid2, err := h.Update(rid, Tuple{NewString("tiny")})
	if err != nil || rid2 != rid {
		t.Fatalf("in-place update moved: %v %v", rid2, err)
	}
	got, _, _ := h.Get(rid)
	if got[0].S != "tiny" {
		t.Fatalf("update lost: %v", got)
	}
	// Fill the page so a grow must move the tuple.
	for i := 0; i < 200; i++ {
		h.Insert(Tuple{NewString(longPad(i))})
	}
	big := Tuple{NewString(string(make([]byte, 300)))}
	rid3, err := h.Update(rid, big)
	if err != nil {
		t.Fatal(err)
	}
	got, live, _ := h.Get(rid3)
	if !live || len(got[0].S) != 300 {
		t.Fatalf("moved update wrong: live=%v", live)
	}
	if rid3 != rid {
		if _, live, _ := h.Get(rid); live {
			t.Fatal("old rid should be tombstoned after move")
		}
	}
}

func TestHeapOpenWalkChain(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), nil, 32)
	h, err := CreateHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := h.Insert(Tuple{NewInt(int64(i)), NewString(longPad(i))}); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenHeapFile(bp, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if re.Pages() != h.Pages() {
		t.Fatalf("reopened pages %d != %d", re.Pages(), h.Pages())
	}
	c1, _ := h.Count()
	c2, _ := re.Count()
	if c1 != c2 || c1 != 300 {
		t.Fatalf("counts %d %d", c1, c2)
	}
}

func TestHeapInsertAtForRecovery(t *testing.T) {
	h := newTestHeap(t)
	rid, _ := h.Insert(Tuple{NewInt(7)})
	h.Delete(rid)
	if err := h.InsertAt(rid, Tuple{NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	got, live, _ := h.Get(rid)
	if !live || got[0].I != 7 {
		t.Fatal("InsertAt into tombstone failed")
	}
	if err := h.InsertAt(rid, Tuple{NewInt(8)}); err == nil {
		t.Fatal("InsertAt into live slot must fail")
	}
	// Insert at a slot index beyond the current array.
	far := RID{Page: rid.Page, Slot: rid.Slot + 5}
	if err := h.InsertAt(far, Tuple{NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	got, live, _ = h.Get(far)
	if !live || got[0].I != 9 {
		t.Fatal("InsertAt beyond slot array failed")
	}
}

func TestHeapAdopt(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), nil, 16)
	h, _ := CreateHeapFile(bp)
	// Allocate an orphan page directly.
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)
	if h.Contains(id) {
		t.Fatal("orphan should not be in chain")
	}
	if err := h.Adopt(id); err != nil {
		t.Fatal(err)
	}
	if !h.Contains(id) {
		t.Fatal("adopted page missing from chain")
	}
	// Adopt is idempotent.
	if err := h.Adopt(id); err != nil {
		t.Fatal(err)
	}
	// Chain is still walkable.
	re, err := OpenHeapFile(bp, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if re.Pages() != 2 {
		t.Fatalf("chain has %d pages, want 2", re.Pages())
	}
}

func TestHeapRandomChurn(t *testing.T) {
	h := newTestHeap(t)
	rng := rand.New(rand.NewSource(9))
	live := map[RID]int64{}
	for op := 0; op < 3000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) == 0:
			v := rng.Int63()
			rid, err := h.Insert(Tuple{NewInt(v), NewString(longPad(int(v % 50)))})
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = v
		case rng.Intn(2) == 0:
			for rid := range live {
				if ok, err := h.Delete(rid); err != nil || !ok {
					t.Fatalf("delete %v: %v %v", rid, ok, err)
				}
				delete(live, rid)
				break
			}
		default:
			for rid, old := range live {
				v := old + 1
				newRID, err := h.Update(rid, Tuple{NewInt(v), NewString(longPad(int(v % 50)))})
				if err != nil {
					t.Fatal(err)
				}
				delete(live, rid)
				live[newRID] = v
				break
			}
		}
	}
	got := map[RID]int64{}
	h.Scan(func(rid RID, tup Tuple) bool {
		got[rid] = tup[0].I
		return true
	})
	if len(got) != len(live) {
		t.Fatalf("scan found %d rows, want %d", len(got), len(live))
	}
	for rid, v := range live {
		if got[rid] != v {
			t.Fatalf("rid %v = %d, want %d", rid, got[rid], v)
		}
	}
}
