package rdbms

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Property-style tests that cross-check the SQL engine against direct Go
// computations over the same randomly generated data.

func randomTable(t *testing.T, seed int64, n int) (*DB, []int64, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE r (v INT, s STRING)")
	vals := make([]int64, n)
	strs := make([]string, n)
	tx := db.Begin()
	for i := 0; i < n; i++ {
		vals[i] = int64(rng.Intn(200) - 100)
		strs[i] = fmt.Sprintf("g%d", rng.Intn(7))
		if _, err := tx.Insert("r", Tuple{NewInt(vals[i]), NewString(strs[i])}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, vals, strs
}

func TestSQLCountSumAgainstGo(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db, vals, _ := randomTable(t, seed, 300)
		var wantSum int64
		wantCount := int64(0)
		for _, v := range vals {
			if v > 0 {
				wantSum += v
				wantCount++
			}
		}
		rs := mustExec(t, db, "SELECT COUNT(*), SUM(v) FROM r WHERE v > 0")
		if rs.Rows[0][0].I != wantCount {
			t.Fatalf("seed %d: count %v, want %d", seed, rs.Rows[0][0], wantCount)
		}
		if wantCount > 0 && rs.Rows[0][1].I != wantSum {
			t.Fatalf("seed %d: sum %v, want %d", seed, rs.Rows[0][1], wantSum)
		}
	}
}

func TestSQLOrderBySortedAgainstGo(t *testing.T) {
	db, vals, _ := randomTable(t, 9, 250)
	rs := mustExec(t, db, "SELECT v FROM r ORDER BY v")
	if len(rs.Rows) != len(vals) {
		t.Fatalf("rows %d, want %d", len(rs.Rows), len(vals))
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, row := range rs.Rows {
		if row[0].I != sorted[i] {
			t.Fatalf("row %d = %d, want %d", i, row[0].I, sorted[i])
		}
	}
	// DESC is the exact reverse (stable on duplicates is fine for values).
	rsDesc := mustExec(t, db, "SELECT v FROM r ORDER BY v DESC")
	for i, row := range rsDesc.Rows {
		if row[0].I != sorted[len(sorted)-1-i] {
			t.Fatalf("desc row %d = %d", i, row[0].I)
		}
	}
}

func TestSQLGroupByAgainstGo(t *testing.T) {
	db, vals, strs := randomTable(t, 23, 400)
	want := map[string]struct {
		n   int64
		sum int64
	}{}
	for i := range vals {
		e := want[strs[i]]
		e.n++
		e.sum += vals[i]
		want[strs[i]] = e
	}
	rs := mustExec(t, db, "SELECT s, COUNT(*), SUM(v) FROM r GROUP BY s ORDER BY s")
	if len(rs.Rows) != len(want) {
		t.Fatalf("groups %d, want %d", len(rs.Rows), len(want))
	}
	for _, row := range rs.Rows {
		w := want[row[0].S]
		if row[1].I != w.n || row[2].I != w.sum {
			t.Fatalf("group %s: got (%v, %v), want (%d, %d)", row[0].S, row[1], row[2], w.n, w.sum)
		}
	}
}

func TestSQLLimitOffsetPagination(t *testing.T) {
	db, vals, _ := randomTable(t, 31, 100)
	_ = vals
	var paged []int64
	for off := 0; ; off += 7 {
		rs := mustExec(t, db, fmt.Sprintf("SELECT v FROM r ORDER BY v LIMIT 7 OFFSET %d", off))
		if len(rs.Rows) == 0 {
			break
		}
		for _, row := range rs.Rows {
			paged = append(paged, row[0].I)
		}
	}
	full := mustExec(t, db, "SELECT v FROM r ORDER BY v")
	if len(paged) != len(full.Rows) {
		t.Fatalf("pagination lost rows: %d vs %d", len(paged), len(full.Rows))
	}
	for i, row := range full.Rows {
		if paged[i] != row[0].I {
			t.Fatalf("page element %d = %d, want %d", i, paged[i], row[0].I)
		}
	}
}

func TestSQLUpdateDeleteAgainstGo(t *testing.T) {
	db, vals, _ := randomTable(t, 41, 200)
	// UPDATE: negate all negatives.
	negatives := 0
	for _, v := range vals {
		if v < 0 {
			negatives++
		}
	}
	rs := mustExec(t, db, "UPDATE r SET v = 0 - v WHERE v < 0")
	if rs.Rows[0][0].I != int64(negatives) {
		t.Fatalf("updated %v, want %d", rs.Rows[0][0], negatives)
	}
	rs = mustExec(t, db, "SELECT COUNT(*) FROM r WHERE v < 0")
	if rs.Rows[0][0].I != 0 {
		t.Fatalf("negatives remain: %v", rs.Rows)
	}
	// DELETE: everything above 50.
	over := 0
	for _, v := range vals {
		abs := v
		if abs < 0 {
			abs = -abs
		}
		if abs > 50 {
			over++
		}
	}
	rs = mustExec(t, db, "DELETE FROM r WHERE v > 50")
	if rs.Rows[0][0].I != int64(over) {
		t.Fatalf("deleted %v, want %d", rs.Rows[0][0], over)
	}
	rs = mustExec(t, db, "SELECT COUNT(*) FROM r")
	if rs.Rows[0][0].I != int64(len(vals)-over) {
		t.Fatalf("remaining %v, want %d", rs.Rows[0][0], len(vals)-over)
	}
}

func TestSQLIndexEquivalenceRandomized(t *testing.T) {
	// The same filtered aggregation must agree before and after adding an
	// index, across several random probes.
	db, _, _ := randomTable(t, 53, 500)
	rng := rand.New(rand.NewSource(53))
	probes := make([]string, 10)
	for i := range probes {
		probes[i] = fmt.Sprintf("SELECT COUNT(*), SUM(v) FROM r WHERE v = %d", rng.Intn(200)-100)
	}
	before := make([]string, len(probes))
	for i, q := range probes {
		before[i] = mustExec(t, db, q).String()
	}
	mustExec(t, db, "CREATE INDEX ON r (v)")
	for i, q := range probes {
		rs := mustExec(t, db, q)
		if rs.String() != before[i] {
			t.Fatalf("probe %q changed after indexing:\nbefore: %s\nafter: %s", q, before[i], rs.String())
		}
		if rs.Plan == "" {
			t.Fatal("plan missing")
		}
	}
}
