package rdbms

import (
	"math/rand"
	"testing"
)

// Segment-rotation crash suite and the long-transaction WAL-space bound:
// rotation (seal active segment, open successor, swap manifest, fsync
// the directory) must be kill-safe at every I/O, and segment-granular
// truncation must keep the disk log within one segment of the live tail
// even while a long-running transaction pins the checkpoint horizon.

// segRotateWorkload appends n small records, flushing each, against a
// tiny segment target so rotation fires every few records. It reports
// how many appends were acknowledged (Flush returned nil) before a
// scheduled fault killed the process.
func segRotateWorkload(store *MemWALStore, inj *FaultInjector, n int) (acked int, lsns []LSN) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(CrashSignal); !ok {
				panic(r)
			}
		}
	}()
	w, err := NewWALOn(NewFaultWALStore(store, inj))
	if err != nil {
		return 0, nil
	}
	w.SetSegmentTarget(128)
	for i := 0; i < n; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
			Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}}))
		if err := w.Flush(); err != nil {
			return acked, lsns // poisoned or injected error: nothing further is acked
		}
		acked = i + 1
	}
	return acked, lsns
}

// TestWALSegmentRotationCrashSafety kills the process at EVERY I/O index
// of a rotation-heavy append workload — segment writes, segment syncs,
// successor creation, manifest writes, directory syncs — with a mix of
// clean kills and torn writes, then crash-rewinds the store (a random
// prefix of unsynced directory ops survives) and reopens. Every record
// whose Flush was acknowledged before the kill must survive with its
// exact LSN and payload, the surviving log must be a clean prefix of the
// workload, and the reopened WAL must accept appends.
func TestWALSegmentRotationCrashSafety(t *testing.T) {
	const records = 25
	// Fault-free dry run: count the workload's I/O ops and prove it
	// actually rotates.
	{
		store, inj := NewMemWALStore(), NewFaultInjector()
		w, err := NewWALOn(NewFaultWALStore(store, inj))
		if err != nil {
			t.Fatal(err)
		}
		w.SetSegmentTarget(128)
		for i := 0; i < records; i++ {
			w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
				Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}})
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if rot := w.Rotations(); rot < 5 {
			t.Fatalf("dry run rotated only %d times; segment target not exercising rotation", rot)
		}
		total := inj.Ops()
		if total < int64(records) {
			t.Fatalf("dry run counted only %d I/O ops", total)
		}

		for op := int64(0); op < total; op++ {
			kind := FaultCrash
			if op%3 == 1 {
				kind = FaultTornWrite
			}
			store, inj := NewMemWALStore(), NewFaultInjector()
			inj.Schedule(op, kind)
			acked, lsns := segRotateWorkload(store, inj, records)
			// Process dead: a random prefix of unsynced directory ops
			// survives, every device loses a random suffix of unsynced bytes.
			store.Crash(rand.New(rand.NewSource(op*131 + int64(kind))))

			w, err := NewWALOn(store)
			if err != nil {
				t.Fatalf("crash@%d: reopen: %v", op, err)
			}
			recs, err := w.Records(w.Base())
			if err != nil {
				t.Fatalf("crash@%d: records: %v", op, err)
			}
			if len(recs) < acked {
				t.Fatalf("crash@%d: %d acked records, only %d survived", op, acked, len(recs))
			}
			// The survivors must be a clean prefix of the workload — no
			// gaps, no reordering, no invented records.
			for i, r := range recs {
				if int(r.Txn) != i || r.LSN != lsns[i] {
					t.Fatalf("crash@%d: record %d is txn %d @%d, want txn %d @%d",
						op, i, r.Txn, r.LSN, i, lsns[i])
				}
			}
			// The log must keep working across further rotations.
			w.SetSegmentTarget(128)
			var more []LSN
			for i := 0; i < 6; i++ {
				more = append(more, w.Append(&LogRecord{Kind: LogCommit, Txn: TxnID(1000 + i)}))
				if err := w.Flush(); err != nil {
					t.Fatalf("crash@%d: flush after reopen: %v", op, err)
				}
			}
			w2, err := NewWALOn(store)
			if err != nil {
				t.Fatalf("crash@%d: second reopen: %v", op, err)
			}
			recs2, err := w2.Records(more[0])
			if err != nil {
				t.Fatalf("crash@%d: records after reopen: %v", op, err)
			}
			if len(recs2) != 6 || recs2[0].Txn != 1000 {
				t.Fatalf("crash@%d: post-recovery appends did not survive: %d records", op, len(recs2))
			}
		}
	}
}

// TestLongTxnWALSegmentSpaceBound: a long-running transaction pins the
// checkpoint horizon, so the live tail legitimately grows — but the disk
// log must never hold more than the live tail plus a bounded slack of
// whole segments. Segment-granular truncation frees every prefix segment
// below the horizon in O(1) (no copy-down), even while the tail keeps
// growing; once the long transaction commits, the log collapses.
func TestLongTxnWALSegmentSpaceBound(t *testing.T) {
	const segTarget = 2048
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemWALStore()
	wal, err := NewWALOn(store)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 64, WALSegmentBytes: segTarget})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	commit := func(k int64) {
		t.Helper()
		tx := db.Begin()
		if _, err := tx.Insert("kv", Tuple{NewInt(k), NewString(pad(64))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// History before the long transaction: these segments must all be
	// reclaimable once it pins the horizon.
	for i := int64(0); i < 50; i++ {
		commit(i)
	}
	long := db.Begin()
	if _, err := long.Insert("kv", Tuple{NewInt(10_000), NewString("held")}); err != nil {
		t.Fatal(err)
	}

	// Slack: the segment containing the horizon cannot be freed, and the
	// active segment may overshoot the target by one flush chunk.
	const slack = 2*segTarget + 512
	basedAdvanced := false
	for i := int64(100); i < 250; i++ {
		commit(i)
		if i%10 != 9 {
			continue
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		horizon := db.checkpointLSN
		base, flushed := db.wal.Base(), db.wal.FlushedLSN()
		if base > horizon {
			t.Fatalf("truncated past the live tail: base %d > horizon %d", base, horizon)
		}
		if gap := int64(horizon - base); gap > slack {
			t.Fatalf("stale prefix of %d bytes below the horizon; whole-segment freeing is not keeping up", gap)
		}
		disk, err := db.wal.DiskBytes()
		if err != nil {
			t.Fatal(err)
		}
		if live := int64(flushed - horizon); disk > live+slack {
			t.Fatalf("disk log %d bytes for a %d-byte live tail (> live + %d): space not bounded", disk, live, slack)
		}
		if base > 0 {
			basedAdvanced = true
		}
	}
	if !basedAdvanced {
		t.Fatal("base never advanced: truncation freed nothing while the horizon moved")
	}
	if db.wal.Rotations() < 5 {
		t.Fatalf("only %d rotations; workload did not span segments", db.wal.Rotations())
	}

	// Long transaction ends: the pinned tail is released and the next
	// checkpoint collapses the log to the slack bound.
	if err := long.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	disk, err := db.wal.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if disk > slack {
		t.Fatalf("log still %d bytes after the long txn committed and a checkpoint ran", disk)
	}
	if n := db.wal.SegmentCount(); n > 2 {
		t.Fatalf("%d segments remain after collapse, want <= 2", n)
	}
	db.Close()
}
