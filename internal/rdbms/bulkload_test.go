package rdbms

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The bulk-load suite: functional coverage of the COPY-style batch path
// (deferred and incremental index maintenance, snapshot atomicity), the
// bulk-vs-incremental equivalence oracle (identical content hashes and
// byte-identical ORDER BY streams across all three sort paths), and the
// batch crash suite (a kill at every mutating I/O of a bulk-load
// workload must recover to a whole-chunk prefix — all-or-nothing batch
// visibility).

func bulkRows(n int) []Tuple {
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple{
			NewInt(int64(i)),
			NewString(fmt.Sprintf("grp-%d", i%7)),
			NewString(strings.Repeat("v", 40+i%60) + fmt.Sprintf("-%d", i)),
		}
	}
	return rows
}

func mustCreateBulk(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable(TableSchema{Name: "bulk", Columns: []ColumnDef{
		{Name: "id", Type: TInt},
		{Name: "grp", Type: TString},
		{Name: "val", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadBatchBasic(t *testing.T) {
	db := newTestDB(t)
	mustCreateBulk(t, db)
	if err := db.CreateIndex("bulk", "id"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableContentHash("bulk", []string{"id", "grp", "val"}); err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(1000)
	stats, err := db.BulkLoad(context.Background(), "bulk", bulkRows(1000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 1000 {
		t.Fatalf("stats.Rows = %d, want 1000", stats.Rows)
	}
	if stats.Batches < 2 {
		t.Fatalf("expected multiple batches for 1000 rows, got %d", stats.Batches)
	}
	if !stats.Deferred {
		t.Fatalf("empty index should defer the index build")
	}

	// Every row present exactly once, readable through a transaction.
	tx := db.Begin()
	seen := map[int64]bool{}
	if err := tx.Scan("bulk", func(_ RID, tup Tuple) bool {
		if seen[tup[0].I] {
			t.Fatalf("duplicate id %d", tup[0].I)
		}
		seen[tup[0].I] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if len(seen) != 1000 {
		t.Fatalf("scanned %d rows, want 1000", len(seen))
	}

	// The deferred-built index agrees with the heap.
	idx := db.Table("bulk").Indexes["id"]
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1000 {
		t.Fatalf("index has %d entries, want 1000", idx.Len())
	}
	rs := mustExec(t, db, "SELECT val FROM bulk WHERE id = 417")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != rows[417][2].S {
		t.Fatalf("index lookup after bulk load: %v", rs.Rows)
	}

	// The folded content hash equals a full recompute.
	var want uint64
	tbl := db.Table("bulk")
	if err := tbl.Heap.Scan(func(_ RID, tup Tuple) bool {
		want += contentHashCols(tup, tbl.hashCols)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got, ok := db.ContentHash("bulk"); !ok || got != want {
		t.Fatalf("content hash %x (ok=%v), recompute %x", got, ok, want)
	}

	// The fence checkpointed: the load's WAL growth is truncated and the
	// version store drained.
	if n := db.vs.Chains(); n != 0 {
		t.Fatalf("%d version chains left after fenced bulk load", n)
	}
}

// TestBulkLoadBatchIncrementalIndexes loads into a table that already
// has rows (non-empty index), exercising the per-chunk incremental
// maintenance mode.
func TestBulkLoadBatchIncrementalIndexes(t *testing.T) {
	db := newTestDB(t)
	mustCreateBulk(t, db)
	if err := db.CreateIndex("bulk", "id"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Insert("bulk", Tuple{NewInt(-1), NewString("pre"), NewString("existing")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	stats, err := db.BulkLoad(context.Background(), "bulk", bulkRows(300))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deferred {
		t.Fatalf("non-empty index must force incremental maintenance")
	}
	idx := db.Table("bulk").Indexes["id"]
	if idx.Len() != 301 {
		t.Fatalf("index has %d entries, want 301", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := mustExec(t, db, "SELECT val FROM bulk WHERE id = -1"); len(got.Rows) != 1 || got.Rows[0][0].S != "existing" {
		t.Fatalf("pre-existing row lost: %v", got.Rows)
	}
}

// TestBulkLoadBatchSnapshotAtomicity pins MVCC batch publication: a
// snapshot opened before a chunk commits never sees any of its rows, a
// snapshot opened after sees all of them, and mid-load snapshots observe
// only whole-chunk prefixes.
func TestBulkLoadBatchSnapshotAtomicity(t *testing.T) {
	db := newTestDB(t)
	mustCreateBulk(t, db)

	before := db.BeginSnapshot()
	defer before.Close()

	bl, err := db.BeginBulkLoad("bulk")
	if err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(2500)
	var boundaries []int
	for off := 0; off < len(rows); {
		n, err := bl.loadChunk(rows[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		boundaries = append(boundaries, off)

		// A snapshot opened now must see exactly the whole chunks
		// committed so far — never part of one.
		sn := db.BeginSnapshot()
		count := 0
		if err := sn.Scan("bulk", func(_ RID, _ Tuple) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		sn.Close()
		if count != off {
			t.Fatalf("mid-load snapshot sees %d rows, want whole-chunk prefix %d", count, off)
		}
	}
	if len(boundaries) < 3 {
		t.Fatalf("want >=3 chunks to make the atomicity check meaningful, got %d", len(boundaries))
	}
	if _, err := bl.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The pre-load snapshot still sees an empty table.
	count := 0
	if err := before.Scan("bulk", func(_ RID, _ Tuple) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("pre-load snapshot sees %d bulk rows", count)
	}
}

// TestBulkLoadBatchEquivalenceOracle is the bulk-vs-incremental
// equivalence property: the same logical content loaded through the
// batch path and through row-at-a-time transactions must produce equal
// content hashes and byte-identical ORDER BY result streams across all
// three sort paths (full stable sort, bounded top-k, index-order scan).
func TestBulkLoadBatchEquivalenceOracle(t *testing.T) {
	build := func(bulk bool) *DB {
		db := newTestDB(t)
		mustCreateBulk(t, db)
		if err := db.CreateIndex("bulk", "id"); err != nil {
			t.Fatal(err)
		}
		if err := db.EnableContentHash("bulk", []string{"id", "grp", "val"}); err != nil {
			t.Fatal(err)
		}
		rows := bulkRows(600)
		// Duplicate ids so the index-order path has tie groups, and
		// shuffle deterministically so the loads see unsorted input.
		for i := range rows {
			rows[i][0] = NewInt(int64(i % 53))
		}
		rand.New(rand.NewSource(42)).Shuffle(len(rows), func(i, j int) {
			rows[i], rows[j] = rows[j], rows[i]
		})
		if bulk {
			if _, err := db.BulkLoad(context.Background(), "bulk", rows); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, row := range rows {
				tx := db.Begin()
				if _, err := tx.Insert("bulk", row); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return db
	}
	bulkDB, rowDB := build(true), build(false)

	bh, ok1 := bulkDB.ContentHash("bulk")
	rh, ok2 := rowDB.ContentHash("bulk")
	if !ok1 || !ok2 || bh != rh {
		t.Fatalf("content hashes diverge: bulk %x (ok=%v) vs row %x (ok=%v)", bh, ok1, rh, ok2)
	}

	queries := []struct {
		sql      string
		wantPlan string // sort path the query must take
	}{
		{"SELECT id, grp, val FROM bulk ORDER BY val, id", "seq scan"},                // full stable sort
		{"SELECT id, grp, val FROM bulk ORDER BY val, id LIMIT 37 OFFSET 5", "top-k"}, // bounded heap
		{"SELECT id, grp, val FROM bulk ORDER BY id LIMIT 80", "index"},               // index-order scan
	}
	for _, q := range queries {
		brs := mustExec(t, bulkDB, q.sql)
		rrs := mustExec(t, rowDB, q.sql)
		if !strings.Contains(brs.Plan, q.wantPlan) {
			t.Fatalf("%q took plan %q, want a %q path", q.sql, brs.Plan, q.wantPlan)
		}
		if brs.Plan != rrs.Plan {
			t.Fatalf("%q: plan diverges bulk=%q row=%q", q.sql, brs.Plan, rrs.Plan)
		}
		if b, r := brs.String(), rrs.String(); b != r {
			t.Fatalf("%q: result streams diverge\nbulk:\n%s\nrow:\n%s", q.sql, b, r)
		}
	}
}

// TestBulkLoadMarkerPinStateIsPerPage pins the batch-marker contract: a
// loaded-but-unfenced table holds O(pages) version-store state, not
// O(rows); the empty-index snapshot compensation resolves loaded rows
// through the markers; and a post-load writer materializes a real chain
// from its marker so older snapshots keep the pre-update image.
func TestBulkLoadMarkerPinStateIsPerPage(t *testing.T) {
	db := newTestDB(t)
	mustCreateBulk(t, db)
	if err := db.CreateIndex("bulk", "id"); err != nil {
		t.Fatal(err)
	}

	pre := db.BeginSnapshot() // pins below every batch LSN
	defer pre.Close()

	bl, err := db.BeginBulkLoad("bulk")
	if err != nil {
		t.Fatal(err)
	}
	const nrows = 2000
	rows := bulkRows(nrows)
	work := rows
	for len(work) > 0 {
		n, err := bl.loadChunk(work)
		if err != nil {
			t.Fatal(err)
		}
		work = work[n:]
	}

	// Mid-load: no per-row chains, and the resident marker state is
	// bounded by the page count (dozens), not the row count (thousands).
	if n := db.vs.Chains(); n != 0 {
		t.Fatalf("mid-load: %d per-row chains, want 0 (markers replace them)", n)
	}
	pages := db.vs.BatchPages()
	if pages == 0 || pages >= nrows/10 {
		t.Fatalf("mid-load: %d marker pages for %d rows, want O(pages)", pages, nrows)
	}
	if v := db.vs.VersionCount(); v > 2*pages {
		t.Fatalf("mid-load: version population %d exceeds marker pages %d", v, pages)
	}

	// The deferred (still empty) index compensates through the markers:
	// a snapshot point lookup must find a loaded row.
	sn := db.BeginSnapshot()
	hits, err := sn.IndexLookup("bulk", "id", NewInt(417))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, rid := range hits {
		if tup, ok := sn.visibleTup(db.Table("bulk"), "bulk", rid); ok && tup[0].I == 417 {
			found++
		}
	}
	sn.Close()
	if found != 1 {
		t.Fatalf("empty-index compensation found id=417 %d times, want 1", found)
	}

	if _, err := bl.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The pre-load snapshot still pins the markers (it must keep reading
	// the rows as absent), so they survive the fence.
	if db.vs.BatchPages() == 0 {
		t.Fatalf("markers collected while a pre-load snapshot is open")
	}
	if n := 0; true {
		if err := pre.Scan("bulk", func(RID, Tuple) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("pre-load snapshot sees %d loaded rows through markers", n)
		}
	}

	// A writer updating a marker-covered row materializes its history
	// into a real chain; a snapshot from before the update keeps the
	// loaded image.
	mid := db.BeginSnapshot()
	defer mid.Close()
	tx := db.Begin()
	if _, err := tx.Exec("UPDATE bulk SET val = 'rewritten' WHERE id = 417"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := mid.Scan("bulk", func(_ RID, tup Tuple) bool {
		if tup[0].I == 417 {
			got = tup[2].S
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if want := rows[417][2].S; got != want {
		t.Fatalf("pre-update snapshot reads %q, want loaded image %q", got, want)
	}

	// Closing the pinning snapshots lets the sweep drain everything.
	pre.Close()
	mid.Close()
	db.vs.Sweep()
	if n := db.vs.BatchPages(); n != 0 {
		t.Fatalf("%d marker pages left after pins closed", n)
	}
}

// TestBulkLoadConcurrentTables runs two bulk-load sessions into two
// different tables from two goroutines. The sessions hold per-table
// exclusive locks, so they must proceed concurrently and independently;
// a reader polling both tables must only ever observe whole-chunk
// prefixes growing monotonically.
func TestBulkLoadConcurrentTables(t *testing.T) {
	db := newTestDB(t)
	for _, name := range []string{"alpha", "beta"} {
		if err := db.CreateTable(TableSchema{Name: name, Columns: []ColumnDef{
			{Name: "id", Type: TInt},
			{Name: "grp", Type: TString},
			{Name: "val", Type: TString},
		}}); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex(name, "id"); err != nil {
			t.Fatal(err)
		}
	}

	const nrows = 1200
	load := func(table string) error {
		_, err := db.BulkLoad(context.Background(), table, bulkRows(nrows))
		return err
	}
	errs := make(chan error, 2)
	done := make(chan struct{})
	go func() { errs <- load("alpha") }()
	go func() { errs <- load("beta") }()

	// Concurrent reader: per-table counts only grow and never pass nrows.
	go func() {
		defer close(done)
		last := map[string]int{}
		for i := 0; i < 200; i++ {
			sn := db.BeginSnapshot()
			for _, name := range []string{"alpha", "beta"} {
				n := 0
				if err := sn.Scan(name, func(RID, Tuple) bool { n++; return true }); err != nil {
					t.Error(err)
				}
				if n < last[name] || n > nrows {
					t.Errorf("reader saw %s shrink or overflow: %d after %d", name, n, last[name])
				}
				last[name] = n
			}
			sn.Close()
		}
	}()

	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	<-done

	for _, name := range []string{"alpha", "beta"} {
		rs := mustExec(t, db, "SELECT COUNT(*) FROM "+name)
		if len(rs.Rows) != 1 || rs.Rows[0][0].I != nrows {
			t.Fatalf("%s has %v rows, want %d", name, rs.Rows, nrows)
		}
		idx := db.Table(name).Indexes["id"]
		if err := idx.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if idx.Len() != nrows {
			t.Fatalf("%s index has %d entries, want %d", name, idx.Len(), nrows)
		}
	}
	db.vs.Sweep()
	if n, b := db.vs.Chains(), db.vs.BatchPages(); n != 0 || b != 0 {
		t.Fatalf("version store not drained after both loads: %d chains, %d marker pages", n, b)
	}
}

// --- Batch crash suite -------------------------------------------------

// bulkFaultRun records one bulk-load workload execution under fault
// injection: which whole-chunk row counts were durably acknowledged, and
// where a crash landed.
type bulkFaultRun struct {
	crashed    bool
	crashOp    int64
	stopErr    error
	closed     bool
	acked      int   // rows in durably acknowledged chunks
	boundaries []int // cumulative row count after each chunk commit
}

// runBulkFaultWorkload creates the table, index, and hash spec, then
// drives the bulk load chunk by chunk (so the oracle learns the durable
// whole-chunk boundaries) and fences with Commit. A scheduled crash is
// recovered and recorded.
func runBulkFaultWorkload(pageDev Device, walDev WALStore, inj *FaultInjector, rows []Tuple) (res bulkFaultRun) {
	defer func() {
		if r := recover(); r != nil {
			cs, ok := r.(CrashSignal)
			if !ok {
				panic(r)
			}
			res.crashed = true
			res.crashOp = cs.Op
		}
	}()
	pager, err := NewFaultPager(pageDev, inj)
	if err != nil {
		res.stopErr = err
		return
	}
	wal, err := NewFaultWAL(walDev, inj)
	if err != nil {
		res.stopErr = err
		return
	}
	db, err := Open(pager, wal, Options{BufferPages: 16})
	if err != nil {
		res.stopErr = err
		return
	}
	if err := db.CreateTable(TableSchema{Name: "bulk", Columns: []ColumnDef{
		{Name: "id", Type: TInt},
		{Name: "grp", Type: TString},
		{Name: "val", Type: TString},
	}}); err != nil {
		res.stopErr = err
		return
	}
	if err := db.CreateIndex("bulk", "id"); err != nil {
		res.stopErr = err
		return
	}
	if err := db.EnableContentHash("bulk", []string{"id", "grp", "val"}); err != nil {
		res.stopErr = err
		return
	}
	bl, err := db.BeginBulkLoad("bulk")
	if err != nil {
		res.stopErr = err
		return
	}
	work := append([]Tuple(nil), rows...)
	for len(work) > 0 {
		n, err := bl.loadChunk(work)
		if err != nil {
			res.stopErr = err
			return
		}
		res.acked += n
		res.boundaries = append(res.boundaries, res.acked)
		work = work[n:]
	}
	if _, err := bl.Commit(context.Background()); err != nil {
		res.stopErr = err
		return
	}
	if err := db.Close(); err != nil {
		res.stopErr = err
		return
	}
	res.closed = true
	return
}

// verifyBulkFaultRun reopens cleanly and asserts all-or-nothing batch
// visibility: the recovered rows must be exactly the ids 0..n-1 for an n
// that is a whole-chunk boundary, covering at least every acknowledged
// chunk; derived state (index, content hash) must agree with the heap.
func verifyBulkFaultRun(t *testing.T, res bulkFaultRun, wantBoundaries []int, pageDev Device, walDev WALStore) {
	t.Helper()
	db, pager := reopenClean(t, pageDev, walDev)
	defer db.Close()
	if err := pager.VerifyChecksums(); err != nil {
		t.Fatalf("page checksums after recovery: %v", err)
	}
	tbl := db.Table("bulk")
	if tbl == nil {
		if res.acked != 0 {
			t.Fatalf("table lost but %d rows were acknowledged", res.acked)
		}
		return
	}
	seen := map[int64]bool{}
	tx := db.Begin()
	if err := tx.Scan("bulk", func(_ RID, tup Tuple) bool {
		if seen[tup[0].I] {
			t.Fatalf("duplicate id %d after recovery", tup[0].I)
		}
		seen[tup[0].I] = true
		return true
	}); err != nil {
		t.Fatalf("scan after recovery: %v", err)
	}
	tx.Commit()
	n := len(seen)
	for i := 0; i < n; i++ {
		if !seen[int64(i)] {
			t.Fatalf("recovered %d rows but id %d missing: not a load-order prefix", n, i)
		}
	}
	if n < res.acked {
		t.Fatalf("recovered %d rows < %d acknowledged (durability lost)", n, res.acked)
	}
	whole := n == 0
	for _, b := range wantBoundaries {
		if n == b {
			whole = true
			break
		}
	}
	if !whole {
		t.Fatalf("recovered %d rows, not a whole-chunk boundary %v: batch visibility was not all-or-nothing", n, wantBoundaries)
	}

	// Derived state: index (if its creation was durable) and hash agree
	// with the heap.
	if idx := tbl.Indexes["id"]; idx != nil {
		if err := idx.CheckInvariants(); err != nil {
			t.Fatalf("index invariants after recovery: %v", err)
		}
		if idx.Len() != n {
			t.Fatalf("index has %d entries for %d heap rows", idx.Len(), n)
		}
		rows := 0
		var wantHash uint64
		if err := tbl.Heap.Scan(func(rid RID, tup Tuple) bool {
			rows++
			if tbl.hashCols != nil {
				wantHash += contentHashCols(tup, tbl.hashCols)
			}
			got := idx.Lookup(tup[0])
			found := false
			for _, r := range got {
				if r == rid {
					found = true
				}
			}
			if !found {
				t.Fatalf("heap row id=%d at %v missing from index", tup[0].I, rid)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got, ok := db.ContentHash("bulk"); ok && got != wantHash {
			t.Fatalf("content hash after recovery %x != recomputed %x", got, wantHash)
		}
	}
}

// TestBulkLoadBatchCrashSuite kills the bulk-load workload at every
// mutating I/O — which lands kills inside the batch WAL record flush,
// inside the durable index build the fence writes, and before/inside the
// checkpoint fence — and asserts whole-chunk (all-or-nothing) visibility
// on every reopen.
func TestBulkLoadBatchCrashSuite(t *testing.T) {
	rows := bulkRows(400)

	// Fault-free dry run: learn the op count and chunk boundaries.
	dryInj := NewFaultInjector()
	dryPage, dryWAL := NewMemDevice(), NewMemWALStore()
	dry := runBulkFaultWorkload(dryPage, dryWAL, dryInj, rows)
	if dry.crashed || dry.stopErr != nil || !dry.closed {
		t.Fatalf("dry run did not complete: crashed=%v err=%v", dry.crashed, dry.stopErr)
	}
	if len(dry.boundaries) < 3 {
		t.Fatalf("want >=3 chunks, got boundaries %v", dry.boundaries)
	}
	verifyBulkFaultRun(t, dry, dry.boundaries, dryPage, dryWAL)
	total := dryInj.Ops()
	if total < 20 {
		t.Fatalf("suspiciously few injection points: %d", total)
	}

	step := int64(1)
	if testing.Short() {
		step = 5
	}
	kindRNG := rand.New(rand.NewSource(7919))
	for op := int64(0); op < total; op += step {
		kind := FaultCrash
		if kindRNG.Intn(3) == 0 {
			kind = FaultTornWrite
		}
		op := op
		t.Run(fmt.Sprintf("op=%d", op), func(t *testing.T) {
			inj := NewFaultInjector()
			inj.Schedule(op, kind)
			pageDev, walDev := NewMemDevice(), NewMemWALStore()
			res := runBulkFaultWorkload(pageDev, walDev, inj, rows)
			if res.stopErr != nil {
				t.Fatalf("op %d: unexpected workload error: %v", op, res.stopErr)
			}
			crashRNG := rand.New(rand.NewSource(op<<20 ^ 0x5bd1))
			pageDev.Crash(crashRNG)
			walDev.Crash(crashRNG)
			verifyBulkFaultRun(t, res, dry.boundaries, pageDev, walDev)
		})
	}
}
