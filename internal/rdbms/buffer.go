package rdbms

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// ErrPoolExhausted is the sentinel wrapped by the buffer pool when every
// frame is pinned and a new page cannot be admitted. It is a capacity
// refusal, not a corruption: callers that can shed or retry (the server
// front end maps it to a typed "overloaded" response) check it with
// errors.Is.
var ErrPoolExhausted = errors.New("rdbms: buffer pool exhausted")

// BufferPool caches pages in memory with scan-resistant segmented-LRU
// eviction and pin counting. Dirty pages are written back on eviction or
// Flush.
//
// Replacement policy (PR10): frames live on one of two recency queues.
// A page enters the probationary queue on first touch and is promoted
// to the protected queue only when re-referenced — so a page must prove
// reuse before it can displace the working set. The protected queue is
// capacity-bounded (~3/4 of the pool); promoting into a full protected
// queue demotes its coldest page back to probation rather than growing.
// Eviction always takes the coldest unpinned probationary frame first,
// falling back to protected only when probation is empty.
//
// Scan resistance comes from the PinScan hint: sequential-scan paths
// (heap scans, the chain walk at open) pin with it, and a scan miss
// inserts the page at the COLD end of probation — the next eviction's
// first victim — while a scan hit leaves queue positions untouched. A
// full table scan therefore recycles one probationary slot per page and
// cannot flush the protected working set, which is exactly the
// scan-thrashing failure mode of the flat LRU this replaces (and which
// the larger-than-RAM oracle demonstrates by re-enabling it via
// Options.FlatLRU).
//
// A 2Q-style ghost list closes the cold-start gap: without it, a hot set
// larger than the probation queue can cycle through probation without
// ever scoring the resident re-reference that promotion requires, while
// stale early promotions squat in protected forever. The pool therefore
// remembers the IDs (only the IDs) of recently evicted non-scan frames;
// a miss on a remembered page is a re-reference the frame cap hid, and
// is admitted straight to protected — displacing exactly those stale
// squatters. Scan-admitted frames never enter the ghost list, so sweeps
// cannot use it to manufacture reuse.
//
// The pool is where the write-ahead rule is enforced: no dirty page
// reaches the pager before the WAL records describing its changes are
// durable. Mutators append their log record while the modified page is
// pinned (see HeapFile.InsertWith), pinned pages cannot be evicted, and
// every write-back path below flushes the WAL up to the page's LSN first
// — so the before-image of any flushed change is always recoverable.
//
// The pool also maintains each dirty frame's recLSN — a conservative
// lower bound on the LSN of the first record that dirtied it since it
// was last clean — and remembers the recLSNs of pages written back but
// not yet covered by a pager sync. min over both is the WAL-truncation
// horizon a fuzzy checkpoint may not pass: every record below it
// describes changes that are durably in the data pages.
type BufferPool struct {
	mu           sync.Mutex
	pager        Pager
	wal          *WAL // flushed before any page write-back; nil disables the rule
	capacity     int
	protectedCap int  // max protected frames; 0 in flat mode
	flat         bool // single-queue LRU, scan hints ignored (oracle baseline)
	frames       map[PageID]*frame
	probation    *list.List // of PageID; front = most recently used
	protected    *list.List // of PageID; front = most recently used (empty in flat mode)

	// ghost remembers recently evicted non-scan page IDs (no data): a
	// miss on one is proven reuse and admits the page straight to
	// protected. Bounded at the pool capacity; nil in flat mode.
	ghost    *list.List
	ghostMap map[PageID]*list.Element

	// unsynced holds the recLSN of every frame written back since the
	// last pager sync: written is not durable, so those records must
	// survive truncation until a sync covers them. Entries are stamped
	// with syncEpoch so a write-back racing an in-flight pager sync (not
	// guaranteed to be covered by it) survives that sync's clear.
	unsynced  map[PageID]unsyncedRec
	syncEpoch uint64

	hits       int64
	misses     int64
	evictions  int64
	scanBypass int64 // scan-hinted misses admitted evict-first
	promotions int64 // probation -> protected moves (incl. ghost readmissions)
	ghostHits  int64 // misses admitted via the ghost list
}

type unsyncedRec struct {
	lsn   LSN
	epoch uint64
}

// bufQueue names the recency queue a frame is on.
type bufQueue uint8

const (
	qProbation bufQueue = iota
	qProtected
)

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
	queue bufQueue
	// scanAdmit marks a frame admitted by a scan-hinted miss: on
	// eviction it is forgotten outright instead of entering the ghost
	// list. Cleared by any normal hit (which promotes anyway).
	scanAdmit bool

	// pinLSN is the WAL's next-LSN sampled when the current pin group
	// started (pins went 0 -> 1): any record appended while any of those
	// pins is held has an LSN >= pinLSN. recLSN is pinLSN frozen at the
	// clean -> dirty transition — a conservative lower bound on the first
	// record covering the frame's unwritten changes.
	pinLSN LSN
	recLSN LSN
}

// BufferStats is a consistent snapshot of the pool's counters and
// occupancy, threaded up through core.EngineStats to unidbd health.
type BufferStats struct {
	Hits       int64 // pins served from a resident frame
	Misses     int64 // pins that read through the pager
	Evictions  int64 // frames displaced to admit another page
	ScanBypass int64 // scan-hinted misses admitted evict-first
	Promotions int64 // probation -> protected moves (0 in flat mode)
	GhostHits  int64 // misses readmitted via the ghost list (0 in flat mode)
	Capacity   int   // frame capacity
	Resident   int   // frames currently held
	Protected  int   // frames on the protected queue
	Dirty      int   // resident frames with unwritten changes
}

// HitRate returns hits / (hits + misses), or 0 before any pin.
func (s BufferStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewBufferPool wraps pager with a scan-resistant cache of capacity
// pages. A non-nil wal is flushed (up to the page LSN) before any dirty
// page is written back (the WAL rule); pass nil for pools that do not
// participate in logging (tests, benchmarks).
func NewBufferPool(pager Pager, wal *WAL, capacity int) *BufferPool {
	return newBufferPool(pager, wal, capacity, false)
}

// NewFlatLRUBufferPool wraps pager with the retired single-queue LRU
// (scan hints ignored). It exists so the larger-than-RAM oracle can
// demonstrate the policy difference; engines open it via Options.FlatLRU.
func NewFlatLRUBufferPool(pager Pager, wal *WAL, capacity int) *BufferPool {
	return newBufferPool(pager, wal, capacity, true)
}

func newBufferPool(pager Pager, wal *WAL, capacity int, flat bool) *BufferPool {
	if capacity < 2 {
		capacity = 2
	}
	protectedCap := capacity * 3 / 4
	if protectedCap < 1 {
		protectedCap = 1
	}
	if protectedCap >= capacity {
		protectedCap = capacity - 1
	}
	if flat {
		protectedCap = 0
	}
	return &BufferPool{
		pager:        pager,
		wal:          wal,
		capacity:     capacity,
		protectedCap: protectedCap,
		flat:         flat,
		frames:       make(map[PageID]*frame),
		probation:    list.New(),
		protected:    list.New(),
		ghost:        list.New(),
		ghostMap:     make(map[PageID]*list.Element),
		unsynced:     make(map[PageID]unsyncedRec),
	}
}

// queueOf returns the list a frame's elem lives on.
func (bp *BufferPool) queueOf(f *frame) *list.List {
	if f.queue == qProtected {
		return bp.protected
	}
	return bp.probation
}

// touchLocked applies the replacement policy to a hit on f. Normal hits
// promote probationary frames into protected (demoting the protected
// tail if full) and refresh protected recency; scan hits leave every
// queue position untouched so a sweep cannot manufacture recency.
func (bp *BufferPool) touchLocked(f *frame, scan bool) {
	if bp.flat {
		bp.probation.MoveToFront(f.elem)
		return
	}
	if scan {
		return
	}
	f.scanAdmit = false
	if f.queue == qProtected {
		bp.protected.MoveToFront(f.elem)
		return
	}
	// Re-referenced on probation: proven reuse, promote.
	bp.probation.Remove(f.elem)
	f.queue = qProtected
	f.elem = bp.protected.PushFront(f.id)
	bp.promotions++
	bp.demoteOverflowLocked()
}

// demoteOverflowLocked restores the protected queue's bound after a
// promotion: its coldest page moves back to the warm end of probation
// (a second chance) rather than the queue growing.
func (bp *BufferPool) demoteOverflowLocked() {
	if bp.protected.Len() <= bp.protectedCap {
		return
	}
	tail := bp.protected.Back()
	d := bp.frames[tail.Value.(PageID)]
	bp.protected.Remove(tail)
	d.queue = qProbation
	d.elem = bp.probation.PushFront(d.id)
}

// insertLocked places a newly admitted frame according to the policy:
// scans enter at the cold end of probation (next eviction's first
// victim), ghost-remembered pages go straight to protected (the miss IS
// the re-reference the frame cap hid), everything else enters at the
// warm end of probation.
func (bp *BufferPool) insertLocked(f *frame, scan bool) {
	if !bp.flat {
		if scan {
			f.queue = qProbation
			f.scanAdmit = true
			f.elem = bp.probation.PushBack(f.id)
			bp.scanBypass++
			return
		}
		if e, ok := bp.ghostMap[f.id]; ok {
			bp.ghost.Remove(e)
			delete(bp.ghostMap, f.id)
			f.queue = qProtected
			f.elem = bp.protected.PushFront(f.id)
			bp.promotions++
			bp.ghostHits++
			bp.demoteOverflowLocked()
			return
		}
	}
	f.queue = qProbation
	f.elem = bp.probation.PushFront(f.id)
}

// rememberGhostLocked records an evicted frame's ID for later
// readmission. Scan-admitted frames are forgotten outright — a sweep
// must not be able to fake reuse through the ghost list.
func (bp *BufferPool) rememberGhostLocked(f *frame) {
	if bp.flat || f.scanAdmit {
		return
	}
	bp.ghostMap[f.id] = bp.ghost.PushFront(f.id)
	if bp.ghost.Len() > bp.capacity {
		tail := bp.ghost.Back()
		bp.ghost.Remove(tail)
		delete(bp.ghostMap, tail.Value.(PageID))
	}
}

// writeBack enforces the WAL rule and writes one frame to the pager. The
// caller holds bp.mu; the frame's recLSN moves to the unsynced set (the
// write is not durable until the next pager sync).
func (bp *BufferPool) writeBack(f *frame) error {
	if bp.wal != nil {
		// Flush the log only up to the page's last stamped record: +1 so
		// the record STARTING at pageLSN is covered whole (flush targets
		// land on record boundaries, so any boundary past the start is at
		// or past the end).
		if err := bp.wal.FlushTo(pageLSNOf(f.data) + 1); err != nil {
			return err
		}
	}
	if err := bp.pager.WritePage(f.id, f.data); err != nil {
		return err
	}
	rec := unsyncedRec{lsn: f.recLSN, epoch: bp.syncEpoch}
	if prev, ok := bp.unsynced[f.id]; ok && prev.lsn < rec.lsn {
		rec.lsn = prev.lsn // keep the older (more conservative) bound
	}
	bp.unsynced[f.id] = rec
	f.recLSN = 0
	return nil
}

// Pin fetches a page into the pool and pins it. The returned buffer aliases
// the cached frame: callers that modify it must call Unpin with dirty=true.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	return bp.pin(id, false)
}

// PinScan is Pin with the sequential-scan hint: a one-touch page is
// admitted evict-first and a resident page's recency is not refreshed,
// so a full scan cannot displace the hot working set. Correctness is
// identical to Pin — the hint only biases replacement.
func (bp *BufferPool) PinScan(id PageID) ([]byte, error) {
	return bp.pin(id, true)
}

func (bp *BufferPool) pin(id PageID, scan bool) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		if f.pins == 0 && bp.wal != nil {
			f.pinLSN = bp.wal.NextLSN()
		}
		f.pins++
		bp.touchLocked(f, scan)
		bp.hits++
		return f.data, nil
	}
	bp.misses++
	if err := bp.evictIfFullLocked(); err != nil {
		return nil, err
	}
	data := make([]byte, PageSize)
	if err := bp.pager.ReadPage(id, data); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data, pins: 1}
	if bp.wal != nil {
		f.pinLSN = bp.wal.NextLSN()
	}
	bp.insertLocked(f, scan)
	bp.frames[id] = f
	return f.data, nil
}

// NewPage allocates a fresh page, pins it, and returns its id and buffer.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPage, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictIfFullLocked(); err != nil {
		return InvalidPage, nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, dirty: true}
	if bp.wal != nil {
		f.pinLSN = bp.wal.NextLSN()
		f.recLSN = f.pinLSN
	}
	bp.insertLocked(f, false)
	bp.frames[id] = f
	return id, f.data, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		return
	}
	f.pins--
	if dirty && !f.dirty {
		f.dirty = true
		f.recLSN = f.pinLSN
	}
}

// victimLocked finds the coldest unpinned frame: probation tail first,
// protected tail only when probation holds no candidate.
func (bp *BufferPool) victimLocked() *frame {
	for _, q := range [...]*list.List{bp.probation, bp.protected} {
		for e := q.Back(); e != nil; e = e.Prev() {
			f := bp.frames[e.Value.(PageID)]
			if f.pins == 0 {
				return f
			}
		}
	}
	return nil
}

func (bp *BufferPool) evictIfFullLocked() error {
	for len(bp.frames) >= bp.capacity {
		victim := bp.victimLocked()
		if victim == nil {
			return fmt.Errorf("%w (%d frames all pinned)", ErrPoolExhausted, len(bp.frames))
		}
		if victim.dirty {
			if err := bp.writeBack(victim); err != nil {
				return err
			}
		}
		bp.queueOf(victim).Remove(victim.elem)
		delete(bp.frames, victim.id)
		bp.rememberGhostLocked(victim)
		bp.evictions++
	}
	return nil
}

// Flush writes dirty frames back and syncs the pager. It is fuzzy: the
// pool lock is taken per frame, not across the whole pass, so committers
// keep pinning and mutating other pages while a checkpoint flushes —
// this is what removes the checkpoint's quiesce stall. A frame pinned at
// its turn is skipped and simply stays dirty (its recLSN keeps holding
// the WAL-truncation horizon back); frames dirtied after the snapshot
// are caught by the next checkpoint.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	ids := make([]PageID, 0, len(bp.frames))
	for id, f := range bp.frames {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	bp.mu.Unlock()
	for _, id := range ids {
		// Per-frame closure so the pool lock is released even if the
		// write-back panics (the fault harness's simulated crash fires
		// inside device I/O; a leaked bp.mu would wedge every concurrent
		// committer that should instead die its own death).
		err := func() error {
			bp.mu.Lock()
			defer bp.mu.Unlock()
			f, ok := bp.frames[id]
			if !ok || !f.dirty || f.pins > 0 {
				return nil
			}
			if err := bp.writeBack(f); err != nil {
				return err
			}
			f.dirty = false
			return nil
		}()
		if err != nil {
			return err
		}
	}
	// Sync covers exactly the writes issued before it started. Bumping
	// syncEpoch first makes any write-back that races in during the sync
	// carry a newer stamp, so the post-sync clear (entries with an older
	// stamp only) can never discard the recLSN of a page write the fsync
	// did not cover — even a re-write of a page that was also in the
	// covered set.
	bp.mu.Lock()
	bp.syncEpoch++
	cut := bp.syncEpoch
	bp.mu.Unlock()
	if err := bp.pager.Sync(); err != nil {
		return err
	}
	bp.mu.Lock()
	for id, rec := range bp.unsynced {
		if rec.epoch < cut {
			delete(bp.unsynced, id)
		}
	}
	bp.mu.Unlock()
	return nil
}

// HasPendingWrites reports whether any frame is dirty or any write-back
// is still uncovered by a pager sync — i.e. whether a checkpoint's flush
// would have work to do.
func (bp *BufferPool) HasPendingWrites() bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if len(bp.unsynced) > 0 {
		return true
	}
	for _, f := range bp.frames {
		if f.dirty {
			return true
		}
	}
	return false
}

// MinRecLSN returns the smallest recLSN across dirty frames and
// written-but-unsynced pages — the oldest WAL record still needed to
// redo changes that are not yet durably in the data pages — or ok=false
// when everything is durable.
func (bp *BufferPool) MinRecLSN() (LSN, bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var minLSN LSN
	found := false
	take := func(l LSN) {
		if !found || l < minLSN {
			minLSN, found = l, true
		}
	}
	for _, f := range bp.frames {
		if f.dirty {
			take(f.recLSN)
		}
	}
	for _, rec := range bp.unsynced {
		take(rec.lsn)
	}
	return minLSN, found
}

// DirtyPageTable returns a snapshot of (page, recLSN) for every dirty
// frame — the dirty-page table a fuzzy checkpoint's begin record carries.
func (bp *BufferPool) DirtyPageTable() map[PageID]LSN {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make(map[PageID]LSN)
	for id, f := range bp.frames {
		if f.dirty {
			out[id] = f.recLSN
		}
	}
	return out
}

// NumPages reports the underlying pager's allocated page count.
func (bp *BufferPool) NumPages() PageID { return bp.pager.NumPages() }

// Stats returns a snapshot of the pool's counters and occupancy.
func (bp *BufferPool) Stats() BufferStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := BufferStats{
		Hits:       bp.hits,
		Misses:     bp.misses,
		Evictions:  bp.evictions,
		ScanBypass: bp.scanBypass,
		Promotions: bp.promotions,
		GhostHits:  bp.ghostHits,
		Capacity:   bp.capacity,
		Resident:   len(bp.frames),
		Protected:  bp.protected.Len(),
	}
	for _, f := range bp.frames {
		if f.dirty {
			s.Dirty++
		}
	}
	return s
}
