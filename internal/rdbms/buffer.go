package rdbms

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches pages in memory with LRU eviction and pin counting.
// Dirty pages are written back on eviction or Flush.
//
// The pool is where the write-ahead rule is enforced: no dirty page
// reaches the pager before the WAL records describing its changes are
// durable. Mutators append their log record while the modified page is
// pinned (see HeapFile.InsertWith), pinned pages cannot be evicted, and
// every write-back path below flushes the WAL first — so the before-image
// of any flushed change is always recoverable.
type BufferPool struct {
	mu       sync.Mutex
	pager    Pager
	wal      *WAL // flushed before any page write-back; nil disables the rule
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID; front = most recently used

	hits   int64
	misses int64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// NewBufferPool wraps pager with a cache of capacity pages. A non-nil wal
// is flushed before any dirty page is written back (the WAL rule); pass
// nil for pools that do not participate in logging (tests, benchmarks).
func NewBufferPool(pager Pager, wal *WAL, capacity int) *BufferPool {
	if capacity < 2 {
		capacity = 2
	}
	return &BufferPool{
		pager:    pager,
		wal:      wal,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// writeBack enforces the WAL rule and writes one frame to the pager.
func (bp *BufferPool) writeBack(f *frame) error {
	if bp.wal != nil {
		if err := bp.wal.Flush(); err != nil {
			return err
		}
	}
	return bp.pager.WritePage(f.id, f.data)
}

// Pin fetches a page into the pool and pins it. The returned buffer aliases
// the cached frame: callers that modify it must call Unpin with dirty=true.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
		bp.lru.MoveToFront(f.elem)
		bp.hits++
		return f.data, nil
	}
	bp.misses++
	if err := bp.evictIfFullLocked(); err != nil {
		return nil, err
	}
	data := make([]byte, PageSize)
	if err := bp.pager.ReadPage(id, data); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data, pins: 1}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return f.data, nil
}

// NewPage allocates a fresh page, pins it, and returns its id and buffer.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPage, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictIfFullLocked(); err != nil {
		return InvalidPage, nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, dirty: true}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return id, f.data, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		return
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

func (bp *BufferPool) evictIfFullLocked() error {
	for len(bp.frames) >= bp.capacity {
		// Scan from LRU end for an unpinned victim.
		var victim *frame
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			f := bp.frames[e.Value.(PageID)]
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("rdbms: buffer pool exhausted (%d frames all pinned)", len(bp.frames))
		}
		if victim.dirty {
			if err := bp.writeBack(victim); err != nil {
				return err
			}
		}
		bp.lru.Remove(victim.elem)
		delete(bp.frames, victim.id)
	}
	return nil
}

// Flush writes all dirty frames back and syncs the pager.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.writeBack(f); err != nil {
				bp.mu.Unlock()
				return err
			}
			f.dirty = false
		}
	}
	bp.mu.Unlock()
	return bp.pager.Sync()
}

// NumPages reports the underlying pager's allocated page count.
func (bp *BufferPool) NumPages() PageID { return bp.pager.NumPages() }

// Stats returns hit/miss counters.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}
