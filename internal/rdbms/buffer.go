package rdbms

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches pages in memory with LRU eviction and pin counting.
// Dirty pages are written back on eviction or Flush.
//
// The pool is where the write-ahead rule is enforced: no dirty page
// reaches the pager before the WAL records describing its changes are
// durable. Mutators append their log record while the modified page is
// pinned (see HeapFile.InsertWith), pinned pages cannot be evicted, and
// every write-back path below flushes the WAL up to the page's LSN first
// — so the before-image of any flushed change is always recoverable.
//
// The pool also maintains each dirty frame's recLSN — a conservative
// lower bound on the LSN of the first record that dirtied it since it
// was last clean — and remembers the recLSNs of pages written back but
// not yet covered by a pager sync. min over both is the WAL-truncation
// horizon a fuzzy checkpoint may not pass: every record below it
// describes changes that are durably in the data pages.
type BufferPool struct {
	mu       sync.Mutex
	pager    Pager
	wal      *WAL // flushed before any page write-back; nil disables the rule
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID; front = most recently used

	// unsynced holds the recLSN of every frame written back since the
	// last pager sync: written is not durable, so those records must
	// survive truncation until a sync covers them. Entries are stamped
	// with syncEpoch so a write-back racing an in-flight pager sync (not
	// guaranteed to be covered by it) survives that sync's clear.
	unsynced  map[PageID]unsyncedRec
	syncEpoch uint64

	hits   int64
	misses int64
}

type unsyncedRec struct {
	lsn   LSN
	epoch uint64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element

	// pinLSN is the WAL's next-LSN sampled when the current pin group
	// started (pins went 0 -> 1): any record appended while any of those
	// pins is held has an LSN >= pinLSN. recLSN is pinLSN frozen at the
	// clean -> dirty transition — a conservative lower bound on the first
	// record covering the frame's unwritten changes.
	pinLSN LSN
	recLSN LSN
}

// NewBufferPool wraps pager with a cache of capacity pages. A non-nil wal
// is flushed (up to the page LSN) before any dirty page is written back
// (the WAL rule); pass nil for pools that do not participate in logging
// (tests, benchmarks).
func NewBufferPool(pager Pager, wal *WAL, capacity int) *BufferPool {
	if capacity < 2 {
		capacity = 2
	}
	return &BufferPool{
		pager:    pager,
		wal:      wal,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		unsynced: make(map[PageID]unsyncedRec),
	}
}

// writeBack enforces the WAL rule and writes one frame to the pager. The
// caller holds bp.mu; the frame's recLSN moves to the unsynced set (the
// write is not durable until the next pager sync).
func (bp *BufferPool) writeBack(f *frame) error {
	if bp.wal != nil {
		// Flush the log only up to the page's last stamped record: +1 so
		// the record STARTING at pageLSN is covered whole (flush targets
		// land on record boundaries, so any boundary past the start is at
		// or past the end).
		if err := bp.wal.FlushTo(pageLSNOf(f.data) + 1); err != nil {
			return err
		}
	}
	if err := bp.pager.WritePage(f.id, f.data); err != nil {
		return err
	}
	rec := unsyncedRec{lsn: f.recLSN, epoch: bp.syncEpoch}
	if prev, ok := bp.unsynced[f.id]; ok && prev.lsn < rec.lsn {
		rec.lsn = prev.lsn // keep the older (more conservative) bound
	}
	bp.unsynced[f.id] = rec
	f.recLSN = 0
	return nil
}

// Pin fetches a page into the pool and pins it. The returned buffer aliases
// the cached frame: callers that modify it must call Unpin with dirty=true.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		if f.pins == 0 && bp.wal != nil {
			f.pinLSN = bp.wal.NextLSN()
		}
		f.pins++
		bp.lru.MoveToFront(f.elem)
		bp.hits++
		return f.data, nil
	}
	bp.misses++
	if err := bp.evictIfFullLocked(); err != nil {
		return nil, err
	}
	data := make([]byte, PageSize)
	if err := bp.pager.ReadPage(id, data); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data, pins: 1}
	if bp.wal != nil {
		f.pinLSN = bp.wal.NextLSN()
	}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return f.data, nil
}

// NewPage allocates a fresh page, pins it, and returns its id and buffer.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPage, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictIfFullLocked(); err != nil {
		return InvalidPage, nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, dirty: true}
	if bp.wal != nil {
		f.pinLSN = bp.wal.NextLSN()
		f.recLSN = f.pinLSN
	}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return id, f.data, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		return
	}
	f.pins--
	if dirty && !f.dirty {
		f.dirty = true
		f.recLSN = f.pinLSN
	}
}

func (bp *BufferPool) evictIfFullLocked() error {
	for len(bp.frames) >= bp.capacity {
		// Scan from LRU end for an unpinned victim.
		var victim *frame
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			f := bp.frames[e.Value.(PageID)]
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("rdbms: buffer pool exhausted (%d frames all pinned)", len(bp.frames))
		}
		if victim.dirty {
			if err := bp.writeBack(victim); err != nil {
				return err
			}
		}
		bp.lru.Remove(victim.elem)
		delete(bp.frames, victim.id)
	}
	return nil
}

// Flush writes dirty frames back and syncs the pager. It is fuzzy: the
// pool lock is taken per frame, not across the whole pass, so committers
// keep pinning and mutating other pages while a checkpoint flushes —
// this is what removes the checkpoint's quiesce stall. A frame pinned at
// its turn is skipped and simply stays dirty (its recLSN keeps holding
// the WAL-truncation horizon back); frames dirtied after the snapshot
// are caught by the next checkpoint.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	ids := make([]PageID, 0, len(bp.frames))
	for id, f := range bp.frames {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	bp.mu.Unlock()
	for _, id := range ids {
		// Per-frame closure so the pool lock is released even if the
		// write-back panics (the fault harness's simulated crash fires
		// inside device I/O; a leaked bp.mu would wedge every concurrent
		// committer that should instead die its own death).
		err := func() error {
			bp.mu.Lock()
			defer bp.mu.Unlock()
			f, ok := bp.frames[id]
			if !ok || !f.dirty || f.pins > 0 {
				return nil
			}
			if err := bp.writeBack(f); err != nil {
				return err
			}
			f.dirty = false
			return nil
		}()
		if err != nil {
			return err
		}
	}
	// Sync covers exactly the writes issued before it started. Bumping
	// syncEpoch first makes any write-back that races in during the sync
	// carry a newer stamp, so the post-sync clear (entries with an older
	// stamp only) can never discard the recLSN of a page write the fsync
	// did not cover — even a re-write of a page that was also in the
	// covered set.
	bp.mu.Lock()
	bp.syncEpoch++
	cut := bp.syncEpoch
	bp.mu.Unlock()
	if err := bp.pager.Sync(); err != nil {
		return err
	}
	bp.mu.Lock()
	for id, rec := range bp.unsynced {
		if rec.epoch < cut {
			delete(bp.unsynced, id)
		}
	}
	bp.mu.Unlock()
	return nil
}

// HasPendingWrites reports whether any frame is dirty or any write-back
// is still uncovered by a pager sync — i.e. whether a checkpoint's flush
// would have work to do.
func (bp *BufferPool) HasPendingWrites() bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if len(bp.unsynced) > 0 {
		return true
	}
	for _, f := range bp.frames {
		if f.dirty {
			return true
		}
	}
	return false
}

// MinRecLSN returns the smallest recLSN across dirty frames and
// written-but-unsynced pages — the oldest WAL record still needed to
// redo changes that are not yet durably in the data pages — or ok=false
// when everything is durable.
func (bp *BufferPool) MinRecLSN() (LSN, bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var minLSN LSN
	found := false
	take := func(l LSN) {
		if !found || l < minLSN {
			minLSN, found = l, true
		}
	}
	for _, f := range bp.frames {
		if f.dirty {
			take(f.recLSN)
		}
	}
	for _, rec := range bp.unsynced {
		take(rec.lsn)
	}
	return minLSN, found
}

// DirtyPageTable returns a snapshot of (page, recLSN) for every dirty
// frame — the dirty-page table a fuzzy checkpoint's begin record carries.
func (bp *BufferPool) DirtyPageTable() map[PageID]LSN {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make(map[PageID]LSN)
	for id, f := range bp.frames {
		if f.dirty {
			out[id] = f.recLSN
		}
	}
	return out
}

// NumPages reports the underlying pager's allocated page count.
func (bp *BufferPool) NumPages() PageID { return bp.pager.NumPages() }

// Stats returns hit/miss counters.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}
