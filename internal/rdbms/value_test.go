package rdbms

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"42":    NewInt(42),
		"3.5":   NewFloat(3.5),
		"hi":    NewString("hi"),
		"true":  NewBool(true),
		"false": NewBool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Type, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	for _, s := range []string{"INT", "integer", "BIGINT", "float", "REAL", "text", "VARCHAR", "bool"} {
		if _, err := ParseType(s); err != nil {
			t.Errorf("ParseType(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestCompareNumericCrossType(t *testing.T) {
	c, ok := Compare(NewInt(3), NewFloat(3.0))
	if !ok || c != 0 {
		t.Fatalf("3 vs 3.0: c=%d ok=%v", c, ok)
	}
	c, ok = Compare(NewInt(3), NewFloat(3.5))
	if !ok || c != -1 {
		t.Fatalf("3 vs 3.5: c=%d ok=%v", c, ok)
	}
	c, ok = Compare(NewFloat(4.5), NewInt(4))
	if !ok || c != 1 {
		t.Fatalf("4.5 vs 4: c=%d ok=%v", c, ok)
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if c, ok := Compare(Null(), NewInt(0)); !ok || c != -1 {
		t.Fatal("NULL should sort before values")
	}
	if c, ok := Compare(NewString("a"), Null()); !ok || c != 1 {
		t.Fatal("values should sort after NULL")
	}
	if c, ok := Compare(Null(), Null()); !ok || c != 0 {
		t.Fatal("NULL == NULL for ordering")
	}
}

func TestCompareIncomparable(t *testing.T) {
	if _, ok := Compare(NewString("a"), NewInt(1)); ok {
		t.Fatal("string vs int must be incomparable")
	}
	if _, ok := Compare(NewBool(true), NewInt(1)); ok {
		t.Fatal("bool vs int must be incomparable")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if c, _ := Compare(NewString("abc"), NewString("abd")); c != -1 {
		t.Fatal("string compare")
	}
	if c, _ := Compare(NewBool(false), NewBool(true)); c != -1 {
		t.Fatal("false < true")
	}
	if c, _ := Compare(NewBool(true), NewBool(true)); c != 0 {
		t.Fatal("true == true")
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	tup := Tuple{NewInt(-5), NewFloat(2.25), NewString("Madison, Wisconsin"), NewBool(true), Null()}
	enc := EncodeTuple(tup)
	dec, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(tup) {
		t.Fatalf("arity %d != %d", len(dec), len(tup))
	}
	for i := range tup {
		if tup[i].Type != dec[i].Type || !tupleEqual(Tuple{tup[i]}, Tuple{dec[i]}) {
			t.Fatalf("value %d: %v != %v", i, tup[i], dec[i])
		}
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, err := DecodeTuple(nil); err == nil {
		t.Fatal("nil buffer must fail")
	}
	if _, err := DecodeTuple([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("missing value bytes must fail")
	}
	if _, err := DecodeTuple([]byte{255, 255, 255, 255}); err == nil {
		t.Fatal("implausible arity must fail")
	}
}

func TestTupleRoundTripProperty(t *testing.T) {
	f := func(ints []int64, strs []string, fs []float64) bool {
		var tup Tuple
		for _, i := range ints {
			tup = append(tup, NewInt(i))
		}
		for _, s := range strs {
			tup = append(tup, NewString(s))
		}
		for _, fl := range fs {
			tup = append(tup, NewFloat(fl))
		}
		tup = append(tup, Null(), NewBool(true), NewBool(false))
		dec, err := DecodeTuple(EncodeTuple(tup))
		if err != nil || len(dec) != len(tup) {
			return false
		}
		return tupleEqual(tup, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidateCoerce(t *testing.T) {
	s := TableSchema{Name: "t", Columns: []ColumnDef{
		{Name: "a", Type: TInt}, {Name: "b", Type: TFloat}, {Name: "c", Type: TString},
	}}
	if err := s.Validate(Tuple{NewInt(1), NewFloat(2), NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(Tuple{NewInt(1), NewInt(2), NewString("x")}); err != nil {
		t.Fatalf("int into float column should validate: %v", err)
	}
	if err := s.Validate(Tuple{NewInt(1), Null(), Null()}); err != nil {
		t.Fatalf("NULLs should validate: %v", err)
	}
	if err := s.Validate(Tuple{NewString("no"), NewFloat(2), NewString("x")}); err == nil {
		t.Fatal("string into int column must fail")
	}
	if err := s.Validate(Tuple{NewInt(1)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	co := s.Coerce(Tuple{NewInt(1), NewInt(2), NewString("x")})
	if co[1].Type != TFloat || co[1].F != 2 {
		t.Fatalf("Coerce int->float: %v", co[1])
	}
	if co[0].Type != TInt {
		t.Fatal("Coerce must not touch int columns")
	}
}

func TestColIndex(t *testing.T) {
	s := TableSchema{Name: "t", Columns: []ColumnDef{{Name: "x", Type: TInt}, {Name: "y", Type: TInt}}}
	if s.ColIndex("y") != 1 || s.ColIndex("x") != 0 || s.ColIndex("z") != -1 {
		t.Fatal("ColIndex wrong")
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	cat := &catalogData{
		checkpointLSN: 12345,
		checkpointID:  42,
		tables: []catalogTable{
			{
				schema: TableSchema{Name: "cities", Columns: []ColumnDef{
					{Name: "name", Type: TString}, {Name: "pop", Type: TInt},
				}},
				firstPage: 7,
				indexes:   []catalogIndex{{col: "name", firstPage: 11, stamp: 42}},
				hasHash:   true,
				hashCols:  []string{"name"},
				hash:      0xdeadbeefcafef00d,
			},
			{
				schema:    TableSchema{Name: "empty", Columns: []ColumnDef{{Name: "v", Type: TFloat}}},
				firstPage: 9,
			},
		},
	}
	page, err := encodeCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != PageSize {
		t.Fatalf("catalog page size %d", len(page))
	}
	got, err := decodeCatalog(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.checkpointLSN != 12345 || got.checkpointID != 42 || len(got.tables) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.tables[0].schema.Name != "cities" || got.tables[0].firstPage != 7 {
		t.Fatalf("table 0: %+v", got.tables[0])
	}
	idx := got.tables[0].indexes
	if len(idx) != 1 || idx[0].col != "name" || idx[0].firstPage != 11 || idx[0].stamp != 42 {
		t.Fatalf("index entries: %+v", idx)
	}
	if !got.tables[0].hasHash || got.tables[0].hash != 0xdeadbeefcafef00d ||
		len(got.tables[0].hashCols) != 1 || got.tables[0].hashCols[0] != "name" {
		t.Fatalf("hash spec: %+v", got.tables[0])
	}
	if got.tables[1].hasHash || len(got.tables[1].indexes) != 0 {
		t.Fatalf("table 1 should have no hash or indexes: %+v", got.tables[1])
	}
	if got.tables[1].schema.Columns[0].Type != TFloat {
		t.Fatal("column type lost")
	}
}

func TestCatalogBadMagic(t *testing.T) {
	page := make([]byte, PageSize)
	if _, err := decodeCatalog(page); err == nil {
		t.Fatal("zero page must fail magic check")
	}
}
