package rdbms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within the database file.
type PageID uint32

// InvalidPage is the nil page id.
const InvalidPage PageID = 0xFFFFFFFF

// RID locates a row: page and slot.
type RID struct {
	Page PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Pager provides page-granular storage; implementations are an in-memory
// array (for tests and benchmarks) and a real file.
type Pager interface {
	// ReadPage fills buf (len PageSize) with page id's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id's contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the store by one page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync flushes to stable storage.
	Sync() error
	Close() error
}

// MemPager is an in-memory Pager.
type MemPager struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("rdbms: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("rdbms: write of unallocated page %d", id)
	}
	copy(m.pages[id], buf)
	return nil
}

func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

func (m *MemPager) NumPages() PageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return PageID(len(m.pages))
}

func (m *MemPager) Sync() error  { return nil }
func (m *MemPager) Close() error { return nil }

// On durable devices every page is stored as a frame: an 8-byte header
// of [crc32(payload) u32][pageID u32] followed by the PageSize payload.
// The checksum detects corruption (bit rot, torn page writes, software
// bugs) at read time instead of silently decoding garbage, and the
// embedded page id catches misdirected writes. An all-zero frame is a
// valid blank page: it is what an allocated-but-never-synced page reads
// as after a crash, and recovery rewrites such pages from the log.
const (
	pageFrameHeader = 8
	pageFrameSize   = PageSize + pageFrameHeader
)

// ErrPageChecksum reports a page whose stored checksum does not match its
// contents — the database file is corrupt at that page.
var ErrPageChecksum = errors.New("rdbms: page checksum mismatch")

// DevicePager stores checksummed page frames on a Device. It is the
// durable Pager: file-backed databases use it over a FileDevice, and the
// crash-recovery harness uses it over a MemDevice (optionally wrapped in
// a FaultDevice).
type DevicePager struct {
	mu    sync.Mutex
	dev   Device
	n     PageID
	frame []byte // scratch frame buffer, guarded by mu
}

// NewDevicePager opens a pager over dev. A partial trailing frame (from a
// crash-torn allocation) is ignored; the page count covers whole frames.
func NewDevicePager(dev Device) (*DevicePager, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	return &DevicePager{
		dev:   dev,
		n:     PageID(size / pageFrameSize),
		frame: make([]byte, pageFrameSize),
	}, nil
}

// OpenFilePager opens (creating if needed) a page file.
func OpenFilePager(path string) (*DevicePager, error) {
	dev, err := OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	return NewDevicePager(dev)
}

func (p *DevicePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.n {
		return fmt.Errorf("rdbms: read of unallocated page %d", id)
	}
	if _, err := p.dev.ReadAt(p.frame, int64(id)*pageFrameSize); err != nil {
		return err
	}
	payload := p.frame[pageFrameHeader:]
	if allZero(p.frame) {
		// Blank page: allocated but never durably written.
		copy(buf[:PageSize], payload)
		return nil
	}
	wantCRC := binary.LittleEndian.Uint32(p.frame[0:4])
	wantID := binary.LittleEndian.Uint32(p.frame[4:8])
	if wantID != uint32(id) {
		return fmt.Errorf("%w: page %d frame carries id %d", ErrPageChecksum, id, wantID)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return fmt.Errorf("%w: page %d", ErrPageChecksum, id)
	}
	copy(buf[:PageSize], payload)
	return nil
}

func (p *DevicePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.n {
		return fmt.Errorf("rdbms: write of unallocated page %d", id)
	}
	binary.LittleEndian.PutUint32(p.frame[0:4], crc32.ChecksumIEEE(buf[:PageSize]))
	binary.LittleEndian.PutUint32(p.frame[4:8], uint32(id))
	copy(p.frame[pageFrameHeader:], buf[:PageSize])
	_, err := p.dev.WriteAt(p.frame, int64(id)*pageFrameSize)
	return err
}

func (p *DevicePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.n
	zero := make([]byte, pageFrameSize)
	if _, err := p.dev.WriteAt(zero, int64(id)*pageFrameSize); err != nil {
		return InvalidPage, err
	}
	p.n++
	return id, nil
}

func (p *DevicePager) NumPages() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p *DevicePager) Sync() error  { return p.dev.Sync() }
func (p *DevicePager) Close() error { return p.dev.Close() }

// VerifyChecksums reads every page, returning the first checksum error.
// Recovery tooling and the crash harness use it to assert the database
// file is clean end to end.
func (p *DevicePager) VerifyChecksums() error {
	buf := make([]byte, PageSize)
	for id := PageID(0); id < p.NumPages(); id++ {
		if err := p.ReadPage(id, buf); err != nil {
			return err
		}
	}
	return nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Slotted page layout:
//   [0:2)   numSlots
//   [2:4)   freeStart (offset where the next record payload region begins,
//           growing down from PageSize)
//   [4:8)   next page id in the heap chain (InvalidPage terminates)
//   [8:16)  pageLSN: the LSN of the last logged mutation applied to this
//           page. Stamped while the page is pinned, under the same heap
//           mutex that serializes the mutation itself, so per-page LSNs
//           are monotonic and the page content is always exactly "every
//           logged record with LSN <= pageLSN applied". Recovery redo is
//           gated on it (apply a record only when pageLSN < rec.LSN),
//           which makes replay idempotent physical redo, and the buffer
//           pool flushes the WAL only up to pageLSN before writing the
//           page back (the precise WAL rule).
//   then numSlots slot entries of 4 bytes each: [offset uint16, len uint16].
//   A slot with len == 0xFFFF is a tombstone (deleted).
//
// Records are written from the end of the page toward the slot array.

const (
	pageHeaderSize = 16
	slotSize       = 4
	tombstoneLen   = 0xFFFF
)

// pageLSNOf reads the page LSN directly from a page buffer (used by the
// buffer pool, which holds raw frame bytes, without building a
// slottedPage).
func pageLSNOf(data []byte) LSN {
	return LSN(binary.LittleEndian.Uint64(data[8:16]))
}

type slottedPage struct {
	data []byte // PageSize bytes
}

func newSlottedPage(data []byte) *slottedPage {
	p := &slottedPage{data: data}
	if p.freeStart() == 0 {
		p.setFreeStart(PageSize)
	}
	return p
}

func (p *slottedPage) numSlots() uint16      { return binary.LittleEndian.Uint16(p.data[0:2]) }
func (p *slottedPage) setNumSlots(n uint16)  { binary.LittleEndian.PutUint16(p.data[0:2], n) }
func (p *slottedPage) freeStart() uint16     { return binary.LittleEndian.Uint16(p.data[2:4]) }
func (p *slottedPage) setFreeStart(v uint16) { binary.LittleEndian.PutUint16(p.data[2:4], v) }
func (p *slottedPage) next() PageID          { return PageID(binary.LittleEndian.Uint32(p.data[4:8])) }
func (p *slottedPage) setNext(id PageID)     { binary.LittleEndian.PutUint32(p.data[4:8], uint32(id)) }
func (p *slottedPage) pageLSN() LSN          { return LSN(binary.LittleEndian.Uint64(p.data[8:16])) }
func (p *slottedPage) setPageLSN(lsn LSN)    { binary.LittleEndian.PutUint64(p.data[8:16], uint64(lsn)) }

func (p *slottedPage) slot(i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.data[base : base+2]),
		binary.LittleEndian.Uint16(p.data[base+2 : base+4])
}

func (p *slottedPage) setSlot(i uint16, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.data[base:base+2], off)
	binary.LittleEndian.PutUint16(p.data[base+2:base+4], length)
}

// freeSpace returns usable bytes for a new record (including its slot).
func (p *slottedPage) freeSpace() int {
	slotEnd := pageHeaderSize + int(p.numSlots())*slotSize
	return int(p.freeStart()) - slotEnd
}

// liveBytes sums the payload bytes of live records.
func (p *slottedPage) liveBytes() int {
	total := 0
	for i := uint16(0); i < p.numSlots(); i++ {
		if _, l := p.slot(i); l != tombstoneLen {
			total += int(l)
		}
	}
	return total
}

// compact rewrites every live payload contiguously at the end of the
// page, reclaiming the space of deleted and superseded records. Slot
// indexes — and therefore RIDs — are preserved; only payload offsets
// move. Crash recovery depends on this: undo must be able to restore a
// before-image at its original RID even on a page fragmented by churn.
func (p *slottedPage) compact() {
	n := p.numSlots()
	free := uint16(PageSize)
	scratch := make([]byte, 0, PageSize)
	type placed struct {
		slot   uint16
		length uint16
		at     int // offset into scratch
	}
	var recs []placed
	for i := uint16(0); i < n; i++ {
		rec, ok := p.read(i)
		if !ok {
			continue
		}
		recs = append(recs, placed{slot: i, length: uint16(len(rec)), at: len(scratch)})
		scratch = append(scratch, rec...)
	}
	for _, r := range recs {
		free -= r.length
		copy(p.data[free:], scratch[r.at:r.at+int(r.length)])
		p.setSlot(r.slot, free, r.length)
	}
	p.setFreeStart(free)
}

// compactFor compacts the page if doing so yields at least need usable
// bytes, reporting whether the space is now available. It never compacts
// unless success is guaranteed, so callers can safely restore slot state
// on a false return.
func (p *slottedPage) compactFor(need int) bool {
	reclaimable := PageSize - pageHeaderSize - int(p.numSlots())*slotSize - p.liveBytes()
	if reclaimable < need {
		return false
	}
	p.compact()
	return true
}

// insert places rec in the page and returns its slot, or false if it does
// not fit even after compaction. A non-nil slotOK can veto candidate
// slots (the caller may know a tombstoned slot is still claimed by an
// in-flight transaction); a vetoed fresh slot means the whole page is
// unusable for this insert.
func (p *slottedPage) insert(rec []byte, slotOK func(uint16) bool) (uint16, bool) {
	if len(rec) > tombstoneLen-1 {
		return 0, false
	}
	// Prefer a tombstone slot, to bound slot array growth under churn.
	slot := p.numSlots()
	newSlot := true
	for i := uint16(0); i < p.numSlots(); i++ {
		if _, l := p.slot(i); l == tombstoneLen && (slotOK == nil || slotOK(i)) {
			slot, newSlot = i, false
			break
		}
	}
	if newSlot && slotOK != nil && !slotOK(slot) {
		return 0, false
	}
	need := len(rec)
	if newSlot {
		need += slotSize
	}
	if p.freeSpace() < need && !p.compactFor(need) {
		return 0, false
	}
	newStart := p.freeStart() - uint16(len(rec))
	copy(p.data[newStart:], rec)
	p.setFreeStart(newStart)
	p.setSlot(slot, newStart, uint16(len(rec)))
	if newSlot {
		p.setNumSlots(slot + 1)
	}
	return slot, true
}

// read returns the record in slot i, or false for tombstones/bad slots.
func (p *slottedPage) read(i uint16) ([]byte, bool) {
	if i >= p.numSlots() {
		return nil, false
	}
	off, l := p.slot(i)
	if l == tombstoneLen {
		return nil, false
	}
	return p.data[off : off+l], true
}

// del tombstones slot i.
func (p *slottedPage) del(i uint16) bool {
	if i >= p.numSlots() {
		return false
	}
	off, l := p.slot(i)
	if l == tombstoneLen {
		return false
	}
	p.setSlot(i, off, tombstoneLen)
	return true
}

// update replaces slot i's record. If the new record fits in the old
// record's space it is updated in place; otherwise new payload space is
// taken. Returns false if it cannot fit.
func (p *slottedPage) update(i uint16, rec []byte) bool {
	if i >= p.numSlots() {
		return false
	}
	off, l := p.slot(i)
	if l == tombstoneLen {
		return false
	}
	if len(rec) <= int(l) {
		copy(p.data[off:], rec)
		p.setSlot(i, off, uint16(len(rec)))
		return true
	}
	if p.freeSpace() < len(rec) {
		// The old copy's bytes count as reclaimable once the slot is
		// tombstoned; compactFor only compacts when it will succeed, so
		// the slot can be restored intact on failure.
		p.setSlot(i, 0, tombstoneLen)
		if !p.compactFor(len(rec)) {
			p.setSlot(i, off, l)
			return false
		}
	}
	newStart := p.freeStart() - uint16(len(rec))
	copy(p.data[newStart:], rec)
	p.setFreeStart(newStart)
	p.setSlot(i, newStart, uint16(len(rec)))
	return true
}
