package rdbms

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within the database file.
type PageID uint32

// InvalidPage is the nil page id.
const InvalidPage PageID = 0xFFFFFFFF

// RID locates a row: page and slot.
type RID struct {
	Page PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Pager provides page-granular storage; implementations are an in-memory
// array (for tests and benchmarks) and a real file.
type Pager interface {
	// ReadPage fills buf (len PageSize) with page id's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id's contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the store by one page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync flushes to stable storage.
	Sync() error
	Close() error
}

// MemPager is an in-memory Pager.
type MemPager struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("rdbms: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("rdbms: write of unallocated page %d", id)
	}
	copy(m.pages[id], buf)
	return nil
}

func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

func (m *MemPager) NumPages() PageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return PageID(len(m.pages))
}

func (m *MemPager) Sync() error  { return nil }
func (m *MemPager) Close() error { return nil }

// FilePager stores pages in a single file.
type FilePager struct {
	mu sync.Mutex
	f  *os.File
	n  PageID
}

// OpenFilePager opens (creating if needed) a page file.
func OpenFilePager(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FilePager{f: f, n: PageID(st.Size() / PageSize)}, nil
}

func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.n {
		return fmt.Errorf("rdbms: read of unallocated page %d", id)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.n {
		return fmt.Errorf("rdbms: write of unallocated page %d", id)
	}
	_, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.n
	p.n++
	zero := make([]byte, PageSize)
	if _, err := p.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		p.n--
		return InvalidPage, err
	}
	return id, nil
}

func (p *FilePager) NumPages() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p *FilePager) Sync() error  { return p.f.Sync() }
func (p *FilePager) Close() error { return p.f.Close() }

// Slotted page layout:
//   [0:2)  numSlots
//   [2:4)  freeStart (offset where the next record payload region begins,
//          growing down from PageSize)
//   [4:8)  next page id in the heap chain (InvalidPage terminates)
//   then numSlots slot entries of 4 bytes each: [offset uint16, len uint16].
//   A slot with len == 0xFFFF is a tombstone (deleted).
//
// Records are written from the end of the page toward the slot array.

const (
	pageHeaderSize = 8
	slotSize       = 4
	tombstoneLen   = 0xFFFF
)

type slottedPage struct {
	data []byte // PageSize bytes
}

func newSlottedPage(data []byte) *slottedPage {
	p := &slottedPage{data: data}
	if p.freeStart() == 0 {
		p.setFreeStart(PageSize)
	}
	return p
}

func (p *slottedPage) numSlots() uint16      { return binary.LittleEndian.Uint16(p.data[0:2]) }
func (p *slottedPage) setNumSlots(n uint16)  { binary.LittleEndian.PutUint16(p.data[0:2], n) }
func (p *slottedPage) freeStart() uint16     { return binary.LittleEndian.Uint16(p.data[2:4]) }
func (p *slottedPage) setFreeStart(v uint16) { binary.LittleEndian.PutUint16(p.data[2:4], v) }
func (p *slottedPage) next() PageID          { return PageID(binary.LittleEndian.Uint32(p.data[4:8])) }
func (p *slottedPage) setNext(id PageID)     { binary.LittleEndian.PutUint32(p.data[4:8], uint32(id)) }

func (p *slottedPage) slot(i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.data[base : base+2]),
		binary.LittleEndian.Uint16(p.data[base+2 : base+4])
}

func (p *slottedPage) setSlot(i uint16, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.data[base:base+2], off)
	binary.LittleEndian.PutUint16(p.data[base+2:base+4], length)
}

// freeSpace returns usable bytes for a new record (including its slot).
func (p *slottedPage) freeSpace() int {
	slotEnd := pageHeaderSize + int(p.numSlots())*slotSize
	return int(p.freeStart()) - slotEnd
}

// insert places rec in the page and returns its slot, or false if it does
// not fit.
func (p *slottedPage) insert(rec []byte) (uint16, bool) {
	if len(rec) > tombstoneLen-1 {
		return 0, false
	}
	// Reuse a tombstone slot if the payload fits in freeStart space anyway
	// (payload space is not compacted; we just take new space).
	need := len(rec) + slotSize
	if p.freeSpace() < need {
		// Try reusing a tombstoned slot: then we only need payload space.
		if p.freeSpace() < len(rec) {
			return 0, false
		}
		for i := uint16(0); i < p.numSlots(); i++ {
			if _, l := p.slot(i); l == tombstoneLen {
				newStart := p.freeStart() - uint16(len(rec))
				copy(p.data[newStart:], rec)
				p.setFreeStart(newStart)
				p.setSlot(i, newStart, uint16(len(rec)))
				return i, true
			}
		}
		return 0, false
	}
	// Prefer a tombstone slot even when space is plentiful, to bound slot
	// array growth under churn.
	for i := uint16(0); i < p.numSlots(); i++ {
		if _, l := p.slot(i); l == tombstoneLen {
			newStart := p.freeStart() - uint16(len(rec))
			copy(p.data[newStart:], rec)
			p.setFreeStart(newStart)
			p.setSlot(i, newStart, uint16(len(rec)))
			return i, true
		}
	}
	slot := p.numSlots()
	newStart := p.freeStart() - uint16(len(rec))
	copy(p.data[newStart:], rec)
	p.setFreeStart(newStart)
	p.setSlot(slot, newStart, uint16(len(rec)))
	p.setNumSlots(slot + 1)
	return slot, true
}

// read returns the record in slot i, or false for tombstones/bad slots.
func (p *slottedPage) read(i uint16) ([]byte, bool) {
	if i >= p.numSlots() {
		return nil, false
	}
	off, l := p.slot(i)
	if l == tombstoneLen {
		return nil, false
	}
	return p.data[off : off+l], true
}

// del tombstones slot i.
func (p *slottedPage) del(i uint16) bool {
	if i >= p.numSlots() {
		return false
	}
	off, l := p.slot(i)
	if l == tombstoneLen {
		return false
	}
	p.setSlot(i, off, tombstoneLen)
	return true
}

// update replaces slot i's record. If the new record fits in the old
// record's space it is updated in place; otherwise new payload space is
// taken. Returns false if it cannot fit.
func (p *slottedPage) update(i uint16, rec []byte) bool {
	if i >= p.numSlots() {
		return false
	}
	off, l := p.slot(i)
	if l == tombstoneLen {
		return false
	}
	if len(rec) <= int(l) {
		copy(p.data[off:], rec)
		p.setSlot(i, off, uint16(len(rec)))
		return true
	}
	if p.freeSpace() < len(rec) {
		return false
	}
	newStart := p.freeStart() - uint16(len(rec))
	copy(p.data[newStart:], rec)
	p.setFreeStart(newStart)
	p.setSlot(i, newStart, uint16(len(rec)))
	return true
}
