package rdbms

import (
	"testing"
)

// Regression coverage for the size-triggered version-chain sweep
// (ROADMAP #1 leftover): before it, version chains grew without bound
// between checkpoints whenever an old snapshot was open, because the
// retention horizon pinned at the snapshot kept every newer version
// alive. The precise retention rule keeps, per chain, only the versions
// some active snapshot (or the future) can still resolve to — for one
// hot row under one old snapshot, that is O(1) versions, however many
// updates commit.

// TestMVCCSweepSizeTriggerBoundsHotChains hammers updates on single rows
// while an old snapshot stays open and asserts the version population
// stays bounded near the trigger floor instead of growing with the
// update count.
func TestMVCCSweepSizeTriggerBoundsHotChains(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, err := tx.Insert("cities", Tuple{NewString("Madison"), NewString("WI"), NewInt(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	sn := db.BeginSnapshot() // old snapshot: the pre-update world
	defer sn.Close()

	const updates = 3 * sweepTriggerVersions
	cur := rid
	for i := 1; i <= updates; i++ {
		tx := db.Begin()
		nr, err := tx.Update("cities", cur, Tuple{NewString("Madison"), NewString("WI"), NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		cur = nr
	}

	// The sweep re-arms at twice the surviving population (floored at the
	// trigger), so the live count can never exceed ~2x the trigger no
	// matter how many updates ran.
	if n := db.vs.VersionCount(); n > 2*sweepTriggerVersions {
		t.Fatalf("version population %d after %d updates: size trigger did not bound growth", n, updates)
	}

	// The old snapshot still resolves to the pre-update value: the sweep
	// kept what it needs.
	tup, live, err := sn.Get("cities", rid)
	if err != nil || !live {
		t.Fatalf("snapshot lost the pinned row: live=%v err=%v", live, err)
	}
	if tup[2].I != 0 {
		t.Fatalf("snapshot reads pop=%d, want the pre-update 0", tup[2].I)
	}

	// With the snapshot closed and a checkpoint fence, everything drains.
	sn.Close()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := db.vs.Chains(); n != 0 {
		t.Fatalf("%d chains left after snapshot close + checkpoint", n)
	}
	if n := db.vs.VersionCount(); n != 0 {
		t.Fatalf("%d versions left after snapshot close + checkpoint", n)
	}
}

// TestMVCCSweepPreservesEverySnapshotWindow opens snapshots at staggered
// points of an update stream and verifies, after enough churn to force
// multiple size-triggered sweeps, that each snapshot still reads exactly
// the value current when it was opened.
func TestMVCCSweepPreservesEverySnapshotWindow(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	tx := db.Begin()
	rid, err := tx.Insert("cities", Tuple{NewString("Madison"), NewString("WI"), NewInt(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const updates = 2*sweepTriggerVersions + 500
	type pinned struct {
		sn   *Snap
		want int64
	}
	var pins []pinned
	cur := rid
	for i := 1; i <= updates; i++ {
		if i%(sweepTriggerVersions/4) == 0 {
			pins = append(pins, pinned{sn: db.BeginSnapshot(), want: int64(i - 1)})
		}
		tx := db.Begin()
		nr, err := tx.Update("cities", cur, Tuple{NewString("Madison"), NewString("WI"), NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		cur = nr
	}
	if len(pins) < 8 {
		t.Fatalf("want >=8 staggered snapshots, got %d", len(pins))
	}
	// Bounded: at most O(snapshots) versions per chain survive, far below
	// the update count.
	if n := db.vs.VersionCount(); n > 2*sweepTriggerVersions+4*len(pins) {
		t.Fatalf("version population %d after %d updates with %d snapshots", n, updates, len(pins))
	}
	for i, p := range pins {
		rs, err := p.sn.Query("SELECT pop FROM cities WHERE name = 'Madison'")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 || rs.Rows[0][0].I != p.want {
			t.Fatalf("snapshot %d reads %v, want pop=%d", i, rs.Rows, p.want)
		}
		p.sn.Close()
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := db.vs.VersionCount(); n != 0 {
		t.Fatalf("%d versions left after all snapshots closed + checkpoint", n)
	}
}
