package rdbms

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// The crash-recovery property suite. A seeded workload of interleaved
// transactions runs against simulated crash-prone disks (MemDevice under
// a FaultDevice for both the pager and the WAL); a dry run enumerates
// every mutating I/O, and the suite then re-runs the workload once per
// injection point, killing the process at exactly that I/O (sometimes
// tearing the in-flight WAL write), discarding a random subset of
// unsynced writes, reopening, and checking the recovered database
// against an in-memory oracle:
//
//   - every acknowledged commit is visible, byte for byte;
//   - no aborted or in-flight transaction's data survives;
//   - a transaction whose commit was in flight at the crash is either
//     fully present or fully absent (atomicity of the in-doubt case);
//   - every page checksum verifies;
//   - a second close → reopen round-trip preserves the state.

// faultRun is the oracle's record of one workload execution.
type faultRun struct {
	crashed bool
	crashOp int64
	stopErr error // first error observed; the workload stops issuing work
	closed  bool  // reached a clean db.Close

	committed map[int64]string   // acknowledged committed state by key
	maybe     map[int64]*string  // in-doubt txn's writes (commit in flight; nil = delete)
	history   map[int64][]string // every value any txn ever wrote per key
}

// runFaultWorkload executes the seeded workload against the given devices
// through the injector. It returns rather than panics on a scheduled
// crash, recording where the kill landed.
func runFaultWorkload(seed int64, pageDev Device, walDev WALStore, inj *FaultInjector) (res faultRun) {
	res.committed = map[int64]string{}
	res.history = map[int64][]string{}
	defer func() {
		if r := recover(); r != nil {
			cs, ok := r.(CrashSignal)
			if !ok {
				panic(r)
			}
			res.crashed = true
			res.crashOp = cs.Op
		}
	}()
	pager, err := NewFaultPager(pageDev, inj)
	if err != nil {
		res.stopErr = err
		return
	}
	wal, err := NewFaultWAL(walDev, inj)
	if err != nil {
		res.stopErr = err
		return
	}
	db, err := Open(pager, wal, Options{BufferPages: 4 + int(seed%11)})
	if err != nil {
		res.stopErr = err
		return
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		res.stopErr = err
		return
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		res.stopErr = err
		return
	}
	// Content hashing adds its own checkpoint and folds every commit into
	// the table digest; the oracle recomputes it after recovery. Index
	// checkpoints make the periodic Checkpoint/Close calls below write
	// chain pages, so the injector's op space now includes kill points
	// inside index-checkpoint writes too.
	if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		res.stopErr = err
		return
	}

	rng := rand.New(rand.NewSource(seed))
	rids := map[int64]RID{} // committed-state RIDs only
	nTxns := 8 + rng.Intn(10)
	for i := 0; i < nTxns; i++ {
		tx := db.Begin()
		local := map[int64]*string{}
		txnRIDs := map[int64]RID{}
		rid := func(k int64) (RID, bool) {
			if r, ok := txnRIDs[k]; ok {
				return r, true
			}
			r, ok := rids[k]
			return r, ok
		}
		live := func(k int64) bool {
			if v, ok := local[k]; ok {
				return v != nil
			}
			_, ok := res.committed[k]
			return ok
		}
		ops := 1 + rng.Intn(9)
		for j := 0; j < ops; j++ {
			// Steal pressure: the tiny pool must write back dirty pages
			// carrying this transaction's uncommitted data, both through
			// eviction (values up to ~700 bytes over 28 keys overflow a
			// 4-14 frame pool) and through simulated background
			// writeback mid-transaction.
			if rng.Intn(8) == 0 {
				if err := db.bp.Flush(); err != nil {
					res.stopErr = err
					tx.Abort()
					return
				}
			}
			k := int64(rng.Intn(28))
			switch rng.Intn(3) {
			case 0: // insert or update
				v := fmt.Sprintf("s%d-t%d-o%d-%s", seed, i, j, pad(rng.Intn(700)))
				res.history[k] = append(res.history[k], v)
				if r, ok := rid(k); ok && live(k) {
					newRID, err := tx.Update("kv", r, Tuple{NewInt(k), NewString(v)})
					if err != nil {
						res.stopErr = err
						tx.Abort() // best effort; the txn is a loser either way
						return
					}
					txnRIDs[k] = newRID
				} else {
					r, err := tx.Insert("kv", Tuple{NewInt(k), NewString(v)})
					if err != nil {
						res.stopErr = err
						tx.Abort()
						return
					}
					txnRIDs[k] = r
				}
				vv := v
				local[k] = &vv
			case 1: // delete if live
				if r, ok := rid(k); ok && live(k) {
					if err := tx.Delete("kv", r); err != nil {
						res.stopErr = err
						tx.Abort()
						return
					}
					local[k] = nil
				}
			case 2: // read (exercises locks and page pins)
				if r, ok := rid(k); ok {
					if _, _, err := tx.Get("kv", r); err != nil {
						res.stopErr = err
						tx.Abort()
						return
					}
				}
			}
		}
		if rng.Intn(4) == 0 {
			if err := tx.Abort(); err != nil {
				res.stopErr = err
				return
			}
		} else {
			// The commit is in doubt from the moment we ask for it until
			// it is acknowledged.
			res.maybe = local
			if err := tx.Commit(); err != nil {
				res.stopErr = err
				return
			}
			res.maybe = nil
			for k, v := range local {
				if v == nil {
					delete(res.committed, k)
					delete(rids, k)
				} else {
					res.committed[k] = *v
					rids[k] = txnRIDs[k]
				}
			}
		}
		// Occasionally checkpoint (quiesced here by construction) or
		// flush dirty pages without checkpointing (background steal).
		if rng.Intn(6) == 0 {
			if err := db.Checkpoint(); err != nil {
				res.stopErr = err
				return
			}
		}
		if rng.Intn(3) == 0 {
			if err := db.bp.Flush(); err != nil {
				res.stopErr = err
				return
			}
		}
	}
	if err := db.Close(); err != nil {
		res.stopErr = err
		return
	}
	res.closed = true
	return
}

// reopenClean opens the database over the (post-crash) devices with no
// faults scheduled, as the next process start would.
func reopenClean(t *testing.T, pageDev Device, walDev WALStore) (*DB, *DevicePager) {
	t.Helper()
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatalf("reopening pager: %v", err)
	}
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatalf("reopening wal: %v", err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	return db, pager
}

func scanKV(t *testing.T, db *DB) map[int64]string {
	t.Helper()
	got := map[int64]string{}
	tx := db.Begin()
	err := tx.Scan("kv", func(_ RID, tup Tuple) bool {
		if _, dup := got[tup[0].I]; dup {
			t.Fatalf("duplicate key %d after recovery", tup[0].I)
		}
		got[tup[0].I] = tup[1].S
		return true
	})
	if err != nil {
		t.Fatalf("scan after recovery: %v", err)
	}
	tx.Commit()
	return got
}

func applyLocal(base map[int64]string, local map[int64]*string) map[int64]string {
	out := make(map[int64]string, len(base))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range local {
		if v == nil {
			delete(out, k)
		} else {
			out[k] = *v
		}
	}
	return out
}

func kvEqual(a, b map[int64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// verifyFaultRun reopens cleanly and checks the oracle properties.
func verifyFaultRun(t *testing.T, res faultRun, pageDev Device, walDev WALStore) {
	t.Helper()
	db, pager := reopenClean(t, pageDev, walDev)
	if err := pager.VerifyChecksums(); err != nil {
		t.Fatalf("page checksums after recovery: %v", err)
	}
	if db.Table("kv") == nil {
		// The crash predated the table's durable creation; nothing can
		// have committed.
		if len(res.committed) != 0 {
			t.Fatalf("table lost but %d committed rows expected", len(res.committed))
		}
		return
	}
	got := scanKV(t, db)
	switch {
	case kvEqual(got, res.committed):
		// Exactly the acknowledged state.
	case res.maybe != nil && kvEqual(got, applyLocal(res.committed, res.maybe)):
		// The in-doubt commit survived whole — also correct.
	default:
		t.Fatalf("recovered state diverges from oracle\n got: %v\nwant: %v\nmaybe: %v",
			got, res.committed, res.maybe)
	}
	verifyDerivedState(t, db)
	// Close → reopen must round-trip the recovered state.
	if err := db.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	db2, pager2 := reopenClean(t, pageDev, walDev)
	if err := pager2.VerifyChecksums(); err != nil {
		t.Fatalf("page checksums after second reopen: %v", err)
	}
	if got2 := scanKV(t, db2); !kvEqual(got2, got) {
		t.Fatalf("state changed across clean close/reopen\nfirst:  %v\nsecond: %v", got, got2)
	}
	verifyDerivedState(t, db2)
	if err := db2.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// verifyDerivedState checks the structures recovery derives beyond the
// heap itself: the k index (whether bulk-loaded from a checkpoint chain,
// delta-adjusted from the WAL tail, or rebuilt after a stale/torn chain
// was rejected) must agree with the heap row for row, and the table's
// content digest must equal a full recompute. A stale or torn index
// checkpoint that slipped through validation would surface here as a
// lookup divergence.
func verifyDerivedState(t *testing.T, db *DB) {
	t.Helper()
	tbl := db.Table("kv")
	idx := tbl.Indexes["k"]
	if idx == nil {
		// The crash predated the index's durable creation (likewise the
		// hash spec, which is enabled after it): nothing derived to check.
		return
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatalf("index invariants after recovery: %v", err)
	}
	heapRIDs := map[int64]map[RID]bool{}
	rows := 0
	var wantHash uint64
	err := tbl.Heap.Scan(func(rid RID, tup Tuple) bool {
		k := tup[0].I
		if heapRIDs[k] == nil {
			heapRIDs[k] = map[RID]bool{}
		}
		heapRIDs[k][rid] = true
		wantHash += contentHashCols(tup, tbl.hashCols)
		rows++
		return true
	})
	if err != nil {
		t.Fatalf("heap scan: %v", err)
	}
	if idx.Len() != rows {
		t.Fatalf("index has %d entries for %d heap rows", idx.Len(), rows)
	}
	for k, want := range heapRIDs {
		rids := idx.Lookup(NewInt(k))
		if len(rids) != len(want) {
			t.Fatalf("key %d: index posting size %d, heap rows %d", k, len(rids), len(want))
		}
		for _, r := range rids {
			if !want[r] {
				t.Fatalf("key %d: index points at %v which the heap does not hold", k, r)
			}
		}
	}
	// The hash spec is enabled after the index; a crash in between leaves
	// the index without the spec, which is a legitimate recovered state.
	if got, ok := db.ContentHash("kv"); ok && got != wantHash {
		t.Fatalf("content hash after recovery %x != recomputed %x", got, wantHash)
	}
}

// dryRunOps executes the workload fault-free and returns the injection
// point count (plus the run for sanity checks).
func dryRunOps(t *testing.T, seed int64) int64 {
	t.Helper()
	inj := NewFaultInjector()
	pageDev, walDev := NewMemDevice(), NewMemWALStore()
	res := runFaultWorkload(seed, pageDev, walDev, inj)
	if res.crashed || res.stopErr != nil || !res.closed {
		t.Fatalf("dry run seed %d did not complete: crashed=%v err=%v", seed, res.crashed, res.stopErr)
	}
	verifyFaultRun(t, res, pageDev, walDev)
	return inj.Ops()
}

// TestCrashRecoveryPropertySuite kills the workload at every mutating
// I/O of every seed and verifies recovery each time. Across the seeds
// this is well over 200 distinct fault-injection runs (the count is
// asserted), each with its own randomized unsynced-write survival.
func TestCrashRecoveryPropertySuite(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	runs := 0
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			total := dryRunOps(t, seed)
			kindRNG := rand.New(rand.NewSource(seed * 7919))
			for op := int64(0); op < total; op++ {
				kind := FaultCrash
				if kindRNG.Intn(3) == 0 {
					kind = FaultTornWrite
				}
				inj := NewFaultInjector()
				inj.Schedule(op, kind)
				pageDev, walDev := NewMemDevice(), NewMemWALStore()
				res := runFaultWorkload(seed, pageDev, walDev, inj)
				if res.stopErr != nil {
					t.Fatalf("op %d: unexpected workload error: %v", op, res.stopErr)
				}
				crashRNG := rand.New(rand.NewSource(seed<<24 ^ op))
				pageDev.Crash(crashRNG)
				walDev.Crash(crashRNG)

				// Every few points, crash a second time during recovery
				// itself before the clean verify: recovery must be
				// idempotent under its own crashes.
				if res.crashed && op%4 == 0 {
					crashDuringRecovery(t, pageDev, walDev, int64(kindRNG.Intn(8)))
					pageDev.Crash(crashRNG)
					walDev.Crash(crashRNG)
				}
				verifyFaultRun(t, res, pageDev, walDev)
				runs++
			}
			t.Logf("seed %d: %d injection points", seed, total)
		})
	}
	// The floor guards against coverage silently collapsing. It was 700
	// under the copy-down truncation protocol; the segmented WAL's O(1)
	// truncation does far less I/O per checkpoint (and none at all until a
	// prefix segment seals), so the same workloads now expose ~530 kill
	// points.
	if !testing.Short() && runs < 450 {
		t.Fatalf("property suite executed %d fault-injection runs, want >= 450", runs)
	}
	t.Logf("crash-recovery property suite: %d fault-injection runs", runs)
}

// crashDuringRecovery attempts a faulted reopen that dies at recovery's
// op-th I/O. Reaching the scheduled crash is not guaranteed (recovery
// may need fewer ops); either way the devices are left for the caller to
// crash and verify.
func crashDuringRecovery(t *testing.T, pageDev Device, walDev WALStore, op int64) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(CrashSignal); !ok {
				panic(r)
			}
		}
	}()
	inj := NewFaultInjector()
	inj.Schedule(op, FaultCrash)
	pager, err := NewFaultPager(pageDev, inj)
	if err != nil {
		t.Fatalf("faulted reopen pager: %v", err)
	}
	wal, err := NewFaultWAL(walDev, inj)
	if err != nil {
		t.Fatalf("faulted reopen wal: %v", err)
	}
	if db, err := Open(pager, wal, Options{BufferPages: 64}); err == nil {
		// Recovery finished before the crash point: close out so the
		// caller's verify sees a consistent checkpointed state.
		db.Close()
	}
}

// TestFaultInjectedErrorsDoNotCorrupt fails a single I/O with an error
// (no crash) at a sample of injection points. The workload stops at the
// first error, the harness then crashes and reopens: an I/O error must
// never launder uncommitted data into the durable state.
func TestFaultInjectedErrorsDoNotCorrupt(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		total := dryRunOps(t, seed)
		for op := int64(0); op < total; op += 2 {
			seed, op := seed, op
			t.Run(fmt.Sprintf("seed=%d/op=%d", seed, op), func(t *testing.T) {
				inj := NewFaultInjector()
				inj.Schedule(op, FaultError)
				pageDev, walDev := NewMemDevice(), NewMemWALStore()
				res := runFaultWorkload(seed, pageDev, walDev, inj)
				if res.stopErr != nil && !errors.Is(res.stopErr, ErrInjected) {
					t.Fatalf("non-injected error: %v", res.stopErr)
				}
				crashRNG := rand.New(rand.NewSource(seed<<24 ^ op))
				pageDev.Crash(crashRNG)
				walDev.Crash(crashRNG)
				verifyFaultRun(t, res, pageDev, walDev)
			})
		}
	}
}

// TestFaultDroppedSync models a disk cache that acknowledges fsync
// without persisting, followed by a crash. Durability of commits that
// depended on the lie is impossible for any engine; what must still
// hold: recovery succeeds, checksums verify, and the surviving rows are
// values some transaction actually wrote (no invented or torn data).
func TestFaultDroppedSync(t *testing.T) {
	seeds := []int64{1, 2}
	for _, seed := range seeds {
		total := dryRunOps(t, seed)
		rng := rand.New(rand.NewSource(seed * 104729))
		for trial := 0; trial < 20; trial++ {
			dropAt := int64(rng.Intn(int(total)))
			crashAt := dropAt + 1 + int64(rng.Intn(int(total)))
			inj := NewFaultInjector()
			inj.Schedule(dropAt, FaultDropSync)
			inj.Schedule(crashAt, FaultCrash)
			pageDev, walDev := NewMemDevice(), NewMemWALStore()
			res := runFaultWorkload(seed, pageDev, walDev, inj)
			// A dropped sync scheduled on a write degrades to an error;
			// the workload stops, which is fine for this test.
			if res.stopErr != nil && !errors.Is(res.stopErr, ErrInjected) {
				t.Fatalf("seed %d trial %d: %v", seed, trial, res.stopErr)
			}
			crashRNG := rand.New(rand.NewSource(seed<<32 ^ dropAt<<16 ^ crashAt))
			pageDev.Crash(crashRNG)
			walDev.Crash(crashRNG)

			db, pager := reopenClean(t, pageDev, walDev)
			if err := pager.VerifyChecksums(); err != nil {
				t.Fatalf("checksums after lying-sync crash: %v", err)
			}
			if db.Table("kv") == nil {
				continue
			}
			got := scanKV(t, db)
			for k, v := range got {
				found := false
				for _, h := range res.history[k] {
					if h == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d trial %d: key %d holds %q, never written", seed, trial, k, v)
				}
			}
			db.Close()
		}
	}
}
