package rdbms

import (
	"io"
	"math/rand"
	"os"
	"sync"
)

// Device is the durable byte store under a pager or WAL: the narrow
// interface where writes become (or fail to become) persistent. Both
// on-disk databases (FileDevice) and the crash-simulation harness
// (MemDevice) implement it, so the engine above — DevicePager frames,
// WAL records — behaves identically against real files and simulated
// crash-prone disks.
//
// Durability contract:
//   - WriteAt data is volatile until Sync returns: a crash may keep any
//     subset of unsynced writes (they hit the device cache in order, but
//     writeback is reordered), and may tear the most recent one.
//   - Sync makes all previously written bytes durable.
//   - Truncate is durable by itself (truncate + sync): callers rely on a
//     truncation never being reordered after later writes, which is how
//     the WAL guarantees records from a previous log generation cannot
//     resurface once the log has been reset.
type Device interface {
	// ReadAt fills p from offset off. Reads beyond the current size are
	// zero-filled (the page layer treats never-written space as blank).
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt stores p at offset off, extending the device as needed.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the current device size in bytes.
	Size() (int64, error)
	// Sync forces all written bytes to stable storage.
	Sync() error
	// Truncate resizes the device and makes the truncation durable.
	Truncate(size int64) error
	Close() error
}

// FileDevice is a Device over an operating-system file.
type FileDevice struct {
	f *os.File
}

// OpenFileDevice opens (creating if needed) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) {
	n, err := d.f.ReadAt(p, off)
	if err == io.EOF {
		// Zero-fill past EOF: a crash-truncated file reads as blank space.
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return len(p), nil
	}
	return n, err
}

func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }

func (d *FileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (d *FileDevice) Sync() error { return d.f.Sync() }

// Truncate shrinks (or grows) the file and syncs, so the truncation is
// ordered before any subsequent write.
func (d *FileDevice) Truncate(size int64) error {
	if err := d.f.Truncate(size); err != nil {
		return err
	}
	return d.f.Sync()
}

func (d *FileDevice) Close() error { return d.f.Close() }

// memWrite is one unsynced write held in a MemDevice's volatile cache.
type memWrite struct {
	off  int64
	data []byte
}

// MemDevice is an in-memory Device that models a crash-prone disk: it
// tracks the durable image (what survives a crash) separately from the
// applied image (what the process observes), with every write volatile
// until Sync. Crash discards or partially applies the unsynced writes,
// after which the device can be handed to a fresh pager/WAL to simulate
// a post-crash reopen.
type MemDevice struct {
	mu      sync.Mutex
	durable []byte
	applied []byte
	pending []memWrite
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range p {
		p[i] = 0
	}
	if off < int64(len(d.applied)) {
		copy(p, d.applied[off:])
	}
	return len(p), nil
}

func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applyLocked(off, p)
	d.pending = append(d.pending, memWrite{off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

// growSlice extends b to need bytes with amortized doubling, so the
// append-heavy WAL path does not reallocate the whole device per write.
func growSlice(b []byte, need int64) []byte {
	if need <= int64(len(b)) {
		return b
	}
	if need <= int64(cap(b)) {
		return b[:need]
	}
	grown := make([]byte, need, 2*need)
	copy(grown, b)
	return grown
}

func (d *MemDevice) applyLocked(off int64, p []byte) {
	d.applied = growSlice(d.applied, off+int64(len(p)))
	copy(d.applied[off:], p)
}

func (d *MemDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.applied)), nil
}

// Sync replays the pending writes onto the durable image — O(unsynced
// bytes), not O(device size), since a hot commit path syncs after every
// small flush.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.pending {
		d.durable = growSlice(d.durable, w.off+int64(len(w.data)))
		copy(d.durable[w.off:], w.data)
	}
	d.pending = nil
	return nil
}

// Truncate resizes and, per the Device contract, is durable by itself.
func (d *MemDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size <= int64(len(d.applied)) {
		d.applied = d.applied[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, d.applied)
		d.applied = grown
	}
	d.durable = append(d.durable[:0], d.applied...)
	d.pending = nil
	return nil
}

func (d *MemDevice) Close() error { return nil }

// Crash simulates power loss: the applied image is rewound to the durable
// image, then each unsynced write independently survives with probability
// 1/2 (writeback reorders freely between barriers). A nil rng drops every
// unsynced write — the adversarial worst case. After Crash the device
// holds exactly the surviving image and has no volatile state.
func (d *MemDevice) Crash(rng *rand.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applied = append([]byte(nil), d.durable...)
	if rng != nil {
		for _, w := range d.pending {
			if rng.Intn(2) == 0 {
				d.applyLocked(w.off, w.data)
			}
		}
	}
	d.durable = append(d.durable[:0], d.applied...)
	d.pending = nil
}

// UnsyncedWrites reports how many writes would be at risk in a crash
// (diagnostics and tests).
func (d *MemDevice) UnsyncedWrites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}
