package rdbms

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// MVCC snapshot reads.
//
// The engine's write path is unchanged: strict 2PL plus ARIES-style
// physiological logging, with uncommitted changes applied in place
// (steal/no-force). Snapshot readers therefore cannot trust the heap
// alone — a page may hold bytes from a transaction that has not
// committed, or from one that committed after the reader began. The
// VersionStore keeps just enough history to reconstruct the committed
// state of every in-flux row at any pinned LSN:
//
//   - The first time a transaction touches a row, the mutation hook
//     records the row's pre-image as the chain's base version (from = 0,
//     i.e. "since before recorded history"). From that point until the
//     chain is garbage-collected, the heap bytes for that RID are
//     advisory and readers resolve through the chain.
//   - At commit, the transaction appends one version per touched row
//     stamped with its commit LSN. Visibility for a snapshot pinned at S
//     is simply "the newest version with from <= S".
//   - A row with no chain has no in-flight or recently committed writer,
//     so its heap bytes are committed and stable — readers use them
//     directly. The ordering that makes this safe: writers create the
//     chain (and its pre-image) BEFORE mutating heap bytes, and readers
//     read the heap BEFORE consulting the chain. If a reader finds no
//     chain after reading the heap, no writer had begun when it read.
//
// Snapshot acquisition must respect group commit: commit records are
// appended (making their LSNs real) before their flush completes, and a
// later commit's flush can publish first. A snapshot therefore pins
// S = min(appended-but-unpublished commit LSN) - 1 when any commit is in
// flight, else the newest published commit LSN. Registration of a commit
// LSN as "pending" happens atomically with its WAL append (both under
// vs.mu), so no snapshot can land between the append and the
// registration and observe a torn boundary.
//
// GC horizon: a chain version is reclaimable once no current or FUTURE
// snapshot can need it. Future snapshots pin at least
// min(pending) - 1, so the horizon is
//
//	min(active snapshot LSNs, min(pending) - 1)
//
// and a whole chain is dropped once it has no uncommitted writer and its
// newest version is at or below the horizon (heap bytes equal that
// version from then on).
//
// Retention within a surviving chain is precise (PR8): a version is kept
// only if some ACTIVE snapshot resolves to it, or a FUTURE snapshot
// could — i.e. its validity window [from, nextFrom) contains an active
// snapshot LSN or reaches past the future floor min(pending)-1 (else
// maxCommit). The previous policy kept everything newer than the global
// horizon, so one old open snapshot made a hot row's chain grow with
// every commit; precise retention bounds it at O(active snapshots).
//
// Sweep scheduling: full passes run at snapshot release, abort, and
// checkpoint (the moments the horizon can jump), and commit-time
// publication prunes only the chains it touched. A size trigger backstops
// hot write workloads between checkpoints: once the store holds
// sweepTriggerVersions versions a full pass runs, and the trigger then
// doubles off the surviving population so repeated sweeps that cannot
// reclaim anything (e.g. a bulk load pinning its own snapshot) amortize
// to O(final size) total work. DropTable discards the table's chains
// outright.

// version is one committed state of a row, valid from commit LSN `from`
// until the next version's `from`. from == 0 is the base pre-image.
type version struct {
	from LSN
	live bool
	tup  Tuple
}

// versionChain is the (short) committed history of one row plus the
// count of uncommitted transactions currently holding it.
type versionChain struct {
	writers  int
	versions []version // ascending by from; versions[0] always visible
	// fence is the abort fence: the snapshot sequence number current when
	// an aborting writer released this chain. A scanning reader latches
	// and copies heap pages, then resolves rows through the chain, so a
	// copy taken before the abort's undo restored the heap can hold the
	// aborted bytes; only the chain's base pre-image corrects it. Commits
	// never need this (a chain with a version above an active snapshot is
	// retained by the pruner), but an aborted chain's base is at from=0
	// and would be dropped immediately. The chain therefore stays until
	// every snapshot with seq < fence has closed — no surviving reader can
	// hold a pre-undo page copy after that.
	fence uint64
	// moved marks the rare abort-undo that could not restore the row in
	// place (page full even after compaction) and reinserted it at a new
	// RID. Chain state cannot represent that transition (aborts mint no
	// LSN), so these chains keep the pre-fix behavior: prompt deletion,
	// no fence. A reader racing exactly such an abort can still observe
	// a transient anomaly; see Txn.Abort.
	moved bool
}

// batchMarker is the O(1)-per-chunk replacement for per-row bulk-load
// version chains: one marker describes the visibility of every row a
// chunk placed. Rows covered by a marker behave as if each had the chain
// [{from: 0, dead}, {from: marker LSN, live, heap-resident}] — invisible
// to snapshots below the batch commit, read through to the heap at or
// above it — without the store holding any per-row state. A real chain
// for a covered RID (a later writer's noteWrite materializes one) takes
// precedence over the marker.
type batchMarker struct {
	from    LSN
	pending bool // registered but not yet published: dead for every snapshot
	// fence carries the abort fence when a chunk rolls back (see
	// versionChain.fence): tombstoned rows must keep reading as dead for
	// readers whose page copies predate the tombstones.
	fence uint64
}

// batchPage maps one freshly loaded page to its covering marker. Chunk
// pages are newly allocated, so slots 0..nslots-1 all belong to the
// batch; later ordinary inserts on the page extend the slot array past
// nslots and are not covered.
type batchPage struct {
	marker *batchMarker
	nslots uint16
}

// VersionStore holds row version chains and snapshot bookkeeping for one
// DB. All fields are guarded by mu; critical sections are tiny (map and
// small-slice operations), so a single mutex does not bottleneck
// readers, whose common case is a miss on a near-empty map.
type VersionStore struct {
	mu     sync.Mutex
	tables map[string]map[RID]*versionChain
	// batches maps loaded pages to their batch markers, per table.
	batches map[string]map[PageID]batchPage
	// pending holds commit LSNs appended to the WAL but not yet
	// published (group commit in flight).
	pending map[LSN]struct{}
	// maxCommit is the newest published commit LSN.
	maxCommit LSN
	// snaps refcounts active snapshot LSNs.
	snaps map[LSN]int
	// snapSeq is the sequence number the next snapshot will receive;
	// activeSeqs holds the seqs of open snapshots. Seqs order snapshot
	// births against abort fences (LSNs cannot: aborts mint no LSN).
	snapSeq    uint64
	activeSeqs map[uint64]struct{}
	// versions counts versions across all chains (the size trigger's
	// input); hiWater is the population at which the next size-triggered
	// full sweep fires.
	versions int
	hiWater  int
}

// sweepTriggerVersions is the version population that arms the
// size-triggered full sweep (and its floor after each pass).
const sweepTriggerVersions = 4096

func newVersionStore() *VersionStore {
	return &VersionStore{
		tables:     make(map[string]map[RID]*versionChain),
		batches:    make(map[string]map[PageID]batchPage),
		pending:    make(map[LSN]struct{}),
		snaps:      make(map[LSN]int),
		activeSeqs: make(map[uint64]struct{}),
		snapSeq:    1,
		hiWater:    sweepTriggerVersions,
	}
}

// noteWrite records the committed pre-image of (table, rid) and takes a
// writer hold on its chain. Called once per (txn, row) before the first
// heap mutation of that row.
func (vs *VersionStore) noteWrite(table string, rid RID, before Tuple, live bool) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	byRID := vs.tables[table]
	if byRID == nil {
		byRID = make(map[RID]*versionChain)
		vs.tables[table] = byRID
	}
	c := byRID[rid]
	if c == nil {
		if bp, ok := vs.batches[table][rid.Page]; ok && rid.Slot < bp.nslots && !bp.marker.pending && live {
			// The row is covered by a published batch marker: its real
			// history is "absent before the batch commit, live since".
			// Materialize that into the chain — chains take precedence
			// over markers, so the marker's answer for this row is
			// superseded from here on.
			c = &versionChain{versions: []version{
				{from: 0, live: false},
				{from: bp.marker.from, live: true, tup: before.Clone()},
			}}
			vs.versions += 2
		} else {
			c = &versionChain{versions: []version{{from: 0, live: live, tup: before.Clone()}}}
			vs.versions++
		}
		byRID[rid] = c
	} else if n := len(c.versions); n > 0 {
		// A heap-resident batch version (nil tup) means "the heap bytes,
		// unchanged since the batch commit". This writer is about to change
		// them, so materialize the version from its pre-image first.
		if v := &c.versions[n-1]; v.live && v.tup == nil {
			v.tup = before.Clone()
		}
	}
	c.writers++
}

// beginBatch registers one pending batch marker covering a chunk of
// freshly appended rows, in one lock acquisition and O(pages) state —
// the per-row version structs the marker replaces made a 1M-row load
// hold O(rows) live memory until the fence. Every covered row is new, so
// the marker's pending state is "no row" for every snapshot. The bulk
// loader calls it while the chunk's pages are still pinned and unlinked,
// so the marker exists before any reader can reach the bytes (the same
// ordering contract as noteWrite).
func (vs *VersionStore) beginBatch(table string, rids []RID) *batchMarker {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	byPage := vs.batches[table]
	if byPage == nil {
		byPage = make(map[PageID]batchPage)
		vs.batches[table] = byPage
	}
	m := &batchMarker{pending: true}
	for _, rid := range rids {
		bp := byPage[rid.Page]
		if bp.marker == nil {
			bp.marker = m
			vs.versions++ // one unit per page keeps the sweep trigger honest
		}
		if rid.Slot >= bp.nslots {
			bp.nslots = rid.Slot + 1
		}
		byPage[rid.Page] = bp
	}
	return m
}

// beginCommit registers lsn as an in-flight commit. The caller must
// invoke it under the same vs.mu hold that covers the WAL append of the
// commit record — DB commit code uses withPending for that.
func (vs *VersionStore) withPending(append func() LSN) LSN {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	lsn := append()
	vs.pending[lsn] = struct{}{}
	return lsn
}

// cancelPending forgets an in-flight commit whose flush failed. The
// transaction is still live (its writer holds remain until abort).
func (vs *VersionStore) cancelPending(lsn LSN) {
	vs.mu.Lock()
	delete(vs.pending, lsn)
	vs.sweepLocked()
	vs.mu.Unlock()
}

// finalState is the net effect of one transaction on one row.
type finalState struct {
	table string
	rid   RID
	live  bool
	tup   Tuple
}

// publish appends each row's committed state at lsn, releases the
// writer holds (touched is a superset of finals' rows: an op that failed
// before mutating leaves a hold with no final state), and marks lsn
// published.
func (vs *VersionStore) publish(lsn LSN, finals []finalState, touched []chainRef) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for _, f := range finals {
		c := vs.chainLocked(f.table, f.rid)
		if c == nil {
			continue // table dropped mid-commit (DDL excluded by locks; defensive)
		}
		var tup Tuple
		if f.live {
			tup = f.tup.Clone()
		}
		c.versions = append(c.versions, version{from: lsn, live: f.live, tup: tup})
		vs.versions++
	}
	for _, r := range touched {
		if c := vs.chainLocked(r.table, r.rid); c != nil {
			c.writers--
		}
	}
	delete(vs.pending, lsn)
	if lsn > vs.maxCommit {
		vs.maxCommit = lsn
	}
	// A commit can only change the collectability of its own chains (plus,
	// via the advanced horizon, chains a full pass will catch later), so
	// prune just those and let the size trigger backstop the rest — the
	// full pass is O(all chains) and must not sit on the commit path.
	sc := vs.sweepCtxLocked()
	for _, r := range touched {
		vs.sweepChainLocked(sc, r.table, r.rid)
	}
	vs.maybeSweepLocked()
}

// publishBatch stamps a chunk's marker with its commit LSN and marks lsn
// published — O(1) regardless of chunk size. The marker's rows are
// heap-resident: the heap bytes ARE the batch content and stay that way
// until some later writer materializes a real chain via noteWrite, so
// the store retains no copy of the loaded rows. The marker itself is not
// collectable while the loader's snapshot pin sits below lsn (readers
// resolve the not-yet-indexed rows through it).
func (vs *VersionStore) publishBatch(lsn LSN, m *batchMarker) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	m.from = lsn
	m.pending = false
	delete(vs.pending, lsn)
	if lsn > vs.maxCommit {
		vs.maxCommit = lsn
	}
	vs.maybeSweepLocked()
}

// abortBatch rolls a chunk's marker back: the rows were tombstoned by
// the caller, and the marker stays registered in its pending ("no row")
// state behind an abort fence — a reader whose page copies predate the
// tombstones must keep resolving the rows as dead (see
// versionChain.fence for the fence rationale). The fenced marker is
// swept once every snapshot open now has closed.
func (vs *VersionStore) abortBatch(m *batchMarker) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	m.pending = true
	if m.fence < vs.snapSeq {
		m.fence = vs.snapSeq
	}
	vs.sweepLocked()
}

// release drops the writer holds of an aborted (or flush-failed, then
// aborted) transaction. The heap has been restored to the pre-images by
// undo, which is exactly each chain's base state — but a reader that
// latched a page copy before the undo may still hold the aborted bytes,
// so each chain is fenced: it survives until every snapshot open right
// now has closed, and such readers keep resolving through its base
// pre-image instead of trusting their stale copy.
func (vs *VersionStore) release(touched []chainRef) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for _, r := range touched {
		if c := vs.chainLocked(r.table, r.rid); c != nil {
			c.writers--
			if !c.moved && c.fence < vs.snapSeq {
				c.fence = vs.snapSeq
			}
		}
	}
	vs.sweepLocked()
}

// noteAbortMoved marks a chain whose abort-undo restored the row at a
// different RID; it opts out of the abort fence (see versionChain.moved).
func (vs *VersionStore) noteAbortMoved(table string, rid RID) {
	vs.mu.Lock()
	if c := vs.chainLocked(table, rid); c != nil {
		c.moved = true
	}
	vs.mu.Unlock()
}

type chainRef struct {
	table string
	rid   RID
}

func (vs *VersionStore) chainLocked(table string, rid RID) *versionChain {
	if byRID := vs.tables[table]; byRID != nil {
		return byRID[rid]
	}
	return nil
}

// acquireSnapshot pins and refcounts a snapshot LSN, and issues the
// snapshot's sequence number (which orders it against abort fences).
func (vs *VersionStore) acquireSnapshot() (LSN, uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	s := vs.maxCommit
	for lsn := range vs.pending {
		if lsn-1 < s {
			s = lsn - 1
		}
	}
	vs.snaps[s]++
	seq := vs.snapSeq
	vs.snapSeq++
	vs.activeSeqs[seq] = struct{}{}
	return s, seq
}

func (vs *VersionStore) releaseSnapshot(s LSN, seq uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if n := vs.snaps[s]; n <= 1 {
		delete(vs.snaps, s)
	} else {
		vs.snaps[s] = n - 1
	}
	delete(vs.activeSeqs, seq)
	vs.sweepLocked()
}

// horizonLocked computes the newest LSN every current and future
// snapshot is guaranteed to be at or above.
func (vs *VersionStore) horizonLocked() LSN {
	h := vs.maxCommit
	for lsn := range vs.pending {
		if lsn-1 < h {
			h = lsn - 1
		}
	}
	for s := range vs.snaps {
		if s < h {
			h = s
		}
	}
	return h
}

// sweepCtx is one sweep pass's frozen view of the pins that decide
// retention: h is the classic horizon (chain-drop bound), fut the floor
// every FUTURE snapshot will pin at or above, snaps the active snapshot
// LSNs in ascending order.
type sweepCtx struct {
	h     LSN
	fut   LSN
	snaps []LSN
	// minSeq is the lowest active snapshot sequence number (MaxUint64
	// when none): an abort-fenced chain is deletable once minSeq has
	// passed its fence, i.e. every snapshot open at abort time closed.
	minSeq uint64
}

func (vs *VersionStore) sweepCtxLocked() sweepCtx {
	fut := vs.maxCommit
	for lsn := range vs.pending {
		if lsn-1 < fut {
			fut = lsn - 1
		}
	}
	sc := sweepCtx{fut: fut, h: fut, minSeq: ^uint64(0)}
	for seq := range vs.activeSeqs {
		if seq < sc.minSeq {
			sc.minSeq = seq
		}
	}
	if len(vs.snaps) > 0 {
		sc.snaps = make([]LSN, 0, len(vs.snaps))
		for s := range vs.snaps {
			sc.snaps = append(sc.snaps, s)
			if s < sc.h {
				sc.h = s
			}
		}
		sort.Slice(sc.snaps, func(i, j int) bool { return sc.snaps[i] < sc.snaps[j] })
	}
	return sc
}

// pruneChainLocked drops every version of c that no pin can resolve to.
// Version i's validity window is [from[i], from[i+1]) (the last version's
// is open-ended); it is needed iff the window contains an active snapshot
// LSN or reaches past fut — the floor below which no future snapshot can
// land. Both the versions and sc.snaps are ascending, so one merge pass
// decides every version.
func (vs *VersionStore) pruneChainLocked(sc sweepCtx, c *versionChain) {
	vsn := c.versions
	if len(vsn) <= 1 {
		return
	}
	out := vsn[:0]
	j := 0
	for i := 0; i < len(vsn); i++ {
		needed := i+1 == len(vsn) || vsn[i+1].from > sc.fut
		if !needed {
			for j < len(sc.snaps) && sc.snaps[j] < vsn[i].from {
				j++
			}
			needed = j < len(sc.snaps) && sc.snaps[j] < vsn[i+1].from
		}
		if needed {
			out = append(out, vsn[i])
		} else {
			vs.versions--
		}
	}
	for i := len(out); i < len(vsn); i++ {
		vsn[i] = version{} // release dropped tuples to the GC
	}
	c.versions = out
}

// sweepChainLocked prunes one chain and deletes it once it has no writer
// and its single surviving version is at or below the horizon (the heap
// bytes equal it from then on, so readers fall through to the heap).
func (vs *VersionStore) sweepChainLocked(sc sweepCtx, table string, rid RID) {
	byRID := vs.tables[table]
	if byRID == nil {
		return
	}
	c := byRID[rid]
	if c == nil {
		return
	}
	vs.pruneChainLocked(sc, c)
	if c.writers == 0 && len(c.versions) == 1 && c.versions[0].from <= sc.h && c.fence <= sc.minSeq {
		delete(byRID, rid)
		vs.versions--
		if len(byRID) == 0 {
			delete(vs.tables, table)
		}
	}
}

// sweepLocked runs a full pass over every chain and re-arms the size
// trigger at double the surviving population (floored at
// sweepTriggerVersions), so back-to-back triggered passes over a pinned
// population do geometric, not quadratic, total work.
func (vs *VersionStore) sweepLocked() {
	sc := vs.sweepCtxLocked()
	for table, byRID := range vs.tables {
		for rid, c := range byRID {
			vs.pruneChainLocked(sc, c)
			if c.writers == 0 && len(c.versions) == 1 && c.versions[0].from <= sc.h && c.fence <= sc.minSeq {
				delete(byRID, rid)
				vs.versions--
			}
		}
		if len(byRID) == 0 {
			delete(vs.tables, table)
		}
	}
	// Batch markers: a published marker is droppable once every current
	// and future snapshot sits at or past its commit (the heap bytes are
	// then the stable truth — the loader's own pin keeps it alive for the
	// deferred-index window); an aborted marker once every snapshot open
	// at abort time has closed (same fence rule as chains). An in-flight
	// marker (pending, no fence) is never collected.
	for table, byPage := range vs.batches {
		for pid, bp := range byPage {
			m := bp.marker
			drop := false
			if m.pending {
				drop = m.fence > 0 && m.fence <= sc.minSeq
			} else {
				drop = m.from <= sc.h
			}
			if drop {
				delete(byPage, pid)
				vs.versions--
			}
		}
		if len(byPage) == 0 {
			delete(vs.batches, table)
		}
	}
	vs.hiWater = vs.versions * 2
	if vs.hiWater < sweepTriggerVersions {
		vs.hiWater = sweepTriggerVersions
	}
}

// maybeSweepLocked runs the full pass only once the version population
// crosses the size trigger — the hot-write backstop between checkpoints.
func (vs *VersionStore) maybeSweepLocked() {
	if vs.versions >= vs.hiWater {
		vs.sweepLocked()
	}
}

// Sweep runs a full GC pass (checkpoints call this).
func (vs *VersionStore) Sweep() {
	vs.mu.Lock()
	vs.sweepLocked()
	vs.mu.Unlock()
}

// VersionCount reports the total number of versions across all chains
// (the size trigger's input; tests assert boundedness under hot writes).
func (vs *VersionStore) VersionCount() int {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.versions
}

// dropTable discards all chains and batch markers for a dropped table.
func (vs *VersionStore) dropTable(table string) {
	vs.mu.Lock()
	if byRID := vs.tables[table]; byRID != nil {
		for _, c := range byRID {
			vs.versions -= len(c.versions)
		}
	}
	delete(vs.tables, table)
	vs.versions -= len(vs.batches[table])
	delete(vs.batches, table)
	vs.mu.Unlock()
}

// Chains reports the number of live version chains (tests assert GC
// drains this to zero once writers commit and snapshots close).
func (vs *VersionStore) Chains() int {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	n := 0
	for _, byRID := range vs.tables {
		n += len(byRID)
	}
	return n
}

// visible resolves (table, rid) at snapshot s: the newest version with
// from <= s. ok=false means the row has neither a chain nor a batch
// marker — its heap bytes are committed and stable. A chain takes
// precedence over a marker covering the same row (noteWrite materializes
// the full history into the chain).
func (vs *VersionStore) visible(table string, rid RID, s LSN) (version, bool) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	c := vs.chainLocked(table, rid)
	if c == nil {
		if bp, ok := vs.batches[table][rid.Page]; ok && rid.Slot < bp.nslots {
			if bp.marker.pending || bp.marker.from > s {
				return version{live: false}, true
			}
			return version{from: bp.marker.from, live: true}, true
		}
		return version{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].from <= s {
			return c.versions[i], true
		}
	}
	// Unreachable: the sweep keeps a version at or below the horizon,
	// and every active snapshot is at or above it.
	return version{}, false
}

// chainRIDs returns the chained row ids of a table, sorted, so scans can
// surface rows that are dead in the heap but live at the snapshot. Rows
// covered only by a batch marker are enumerated too — during a deferred
// bulk load the table's indexes are empty and the Snap index paths
// compensate through this list. Enumeration is O(covered rows), but only
// the markers themselves (O(pages)) are resident state.
func (vs *VersionStore) chainRIDs(table string) []RID {
	vs.mu.Lock()
	byRID := vs.tables[table]
	rids := make([]RID, 0, len(byRID))
	for rid := range byRID {
		rids = append(rids, rid)
	}
	for pid, bp := range vs.batches[table] {
		for s := uint16(0); s < bp.nslots; s++ {
			rid := RID{Page: pid, Slot: s}
			if _, ok := byRID[rid]; ok {
				continue // a materialized chain supersedes the marker
			}
			rids = append(rids, rid)
		}
	}
	vs.mu.Unlock()
	sort.Slice(rids, func(i, j int) bool { return ridLess(rids[i], rids[j]) })
	return rids
}

// BatchPages reports the number of live batch-marker page entries (tests
// assert a bulk load's pin state is O(pages), not O(rows), and that
// markers drain after the load's fence).
func (vs *VersionStore) BatchPages() int {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	n := 0
	for _, byPage := range vs.batches {
		n += len(byPage)
	}
	return n
}

// Snap is a read-only snapshot transaction: it pins one LSN at creation
// and resolves every read — scans, index probes, SELECTs — to the
// committed state as of that LSN. It acquires no locks, writes nothing
// to the WAL, and never blocks writers or other readers; writers never
// block it. Close releases the snapshot so version GC can advance.
type Snap struct {
	db     *DB
	lsn    LSN
	seq    uint64
	ctx    context.Context
	closed bool
}

// BeginSnapshot starts a lock-free read-only snapshot transaction
// pinned at the current committed LSN.
func (db *DB) BeginSnapshot() *Snap {
	lsn, seq := db.vs.acquireSnapshot()
	return &Snap{db: db, lsn: lsn, seq: seq, ctx: context.Background()}
}

// WithContext attaches ctx; scan-shaped loops poll it like Txn's do.
func (sn *Snap) WithContext(ctx context.Context) *Snap {
	sn.ctx = ctx
	return sn
}

// LSN reports the pinned snapshot LSN.
func (sn *Snap) LSN() LSN { return sn.lsn }

// Close releases the snapshot. Idempotent.
func (sn *Snap) Close() {
	if sn.closed {
		return
	}
	sn.closed = true
	sn.db.vs.releaseSnapshot(sn.lsn, sn.seq)
}

func (sn *Snap) ctxErr() error {
	if sn.closed {
		return fmt.Errorf("rdbms: snapshot is closed")
	}
	select {
	case <-sn.ctx.Done():
		return sn.ctx.Err()
	default:
		return nil
	}
}

func (sn *Snap) table(name string) (*Table, error) {
	t := sn.db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("rdbms: no such table %s", name)
	}
	return t, nil
}

// Get reads one row at the snapshot LSN. Heap first, then chain: a
// writer creates the chain before touching heap bytes, so "no chain
// after the heap read" proves the heap value is committed.
func (sn *Snap) Get(table string, rid RID) (Tuple, bool, error) {
	if err := sn.ctxErr(); err != nil {
		return nil, false, err
	}
	t, err := sn.table(table)
	if err != nil {
		return nil, false, err
	}
	return sn.fetchRow(t, table, rid)
}

func (sn *Snap) fetchRow(t *Table, table string, rid RID) (Tuple, bool, error) {
	tup, live, err := t.Heap.GetLatched(rid)
	if v, ok := sn.db.vs.visible(table, rid, sn.lsn); ok {
		if v.live && v.tup == nil {
			// Heap-resident batch version: the heap bytes are the committed
			// batch content, unchanged since its commit LSN.
			return tup, live, err
		}
		return v.tup, v.live, nil
	}
	return tup, live, err
}

// visibleTup resolves a chained row's visible tuple at the snapshot,
// reading through to the heap for heap-resident batch versions. ok=false
// means the row is not live at the snapshot.
func (sn *Snap) visibleTup(t *Table, table string, rid RID) (Tuple, bool) {
	v, ok := sn.db.vs.visible(table, rid, sn.lsn)
	if !ok || !v.live {
		return nil, false
	}
	if v.tup == nil {
		tup, live, err := t.Heap.GetLatched(rid)
		if err != nil || !live {
			return nil, false
		}
		return tup, true
	}
	return v.tup, true
}

// Scan visits every row live at the snapshot LSN. Rows present in the
// heap come first in heap order; rows dead in the heap but live at the
// snapshot (deleted by a later-committed or in-flight writer) follow,
// in RID order.
func (sn *Snap) Scan(table string, fn func(rid RID, t Tuple) bool) error {
	if err := sn.ctxErr(); err != nil {
		return err
	}
	t, err := sn.table(table)
	if err != nil {
		return err
	}
	vs := sn.db.vs
	seen := make(map[RID]struct{})
	stopped := false
	n := 0
	var scanErr error
	err = t.Heap.ScanLatched(func(rid RID, tup Tuple) bool {
		n++
		if n%ctxCheckInterval == 0 {
			if scanErr = sn.ctxErr(); scanErr != nil {
				return false
			}
		}
		seen[rid] = struct{}{}
		if v, ok := vs.visible(table, rid, sn.lsn); ok {
			if !v.live {
				return true
			}
			vt := v.tup
			if vt == nil {
				vt = tup // heap-resident batch version
			}
			if !fn(rid, vt) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(rid, tup) {
			stopped = true
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil || stopped {
		return err
	}
	// Rows that are dead (or reused) in the heap now but were live at
	// the snapshot exist only in chains.
	for _, rid := range vs.chainRIDs(table) {
		if _, ok := seen[rid]; ok {
			continue
		}
		if vt, ok := sn.visibleTup(t, table, rid); ok {
			if !fn(rid, vt) {
				return nil
			}
		}
	}
	return nil
}

// IndexLookup returns candidate row ids for column = key at the
// snapshot. The result over-approximates: it adds every chained row of
// the table whose visible tuple matches, and callers must re-check both
// liveness (via Get) and the predicate against the visible tuple —
// exactly what the SELECT executor's index path already does.
func (sn *Snap) IndexLookup(table, column string, key Value) ([]RID, error) {
	if err := sn.ctxErr(); err != nil {
		return nil, err
	}
	t, err := sn.table(table)
	if err != nil {
		return nil, err
	}
	idx := t.Indexes[column]
	if idx == nil {
		return nil, fmt.Errorf("rdbms: no index on %s.%s", table, column)
	}
	ci := t.Schema.ColIndex(column)
	rids := idx.Lookup(key)
	out := make([]RID, 0, len(rids))
	have := make(map[RID]struct{}, len(rids))
	for _, rid := range rids {
		if _, ok := have[rid]; ok {
			continue
		}
		have[rid] = struct{}{}
		out = append(out, rid)
	}
	for _, rid := range sn.db.vs.chainRIDs(table) {
		if _, ok := have[rid]; ok {
			continue
		}
		vt, ok := sn.visibleTup(t, table, rid)
		if !ok {
			continue
		}
		if c, ok := Compare(vt[ci], key); ok && c == 0 {
			have[rid] = struct{}{}
			out = append(out, rid)
		}
	}
	return out, nil
}

// IndexRange streams candidate row ids for lo <= column <= hi (nil = an
// open bound) at the snapshot: first the index entries in key order,
// then chained rows whose visible tuple falls in range (RID order).
// Like IndexLookup, candidates over-approximate and callers re-verify
// against the visible tuple.
func (sn *Snap) IndexRange(table, column string, lo, hi *Value, fn func(key Value, rid RID) bool) error {
	if err := sn.ctxErr(); err != nil {
		return err
	}
	t, err := sn.table(table)
	if err != nil {
		return err
	}
	idx := t.Indexes[column]
	if idx == nil {
		return fmt.Errorf("rdbms: no index on %s.%s", table, column)
	}
	ci := t.Schema.ColIndex(column)
	have := make(map[RID]struct{})
	n := 0
	var rangeErr error
	stopped := false
	idx.Range(lo, hi, func(key Value, rid RID) bool {
		n++
		if n%ctxCheckInterval == 0 {
			if rangeErr = sn.ctxErr(); rangeErr != nil {
				return false
			}
		}
		have[rid] = struct{}{}
		if !fn(key, rid) {
			stopped = true
			return false
		}
		return true
	})
	if rangeErr != nil {
		return rangeErr
	}
	if stopped {
		return nil
	}
	inRange := func(v Value) bool {
		if lo != nil {
			if c, ok := Compare(v, *lo); !ok || c < 0 {
				return false
			}
		}
		if hi != nil {
			if c, ok := Compare(v, *hi); !ok || c > 0 {
				return false
			}
		}
		return true
	}
	for _, rid := range sn.db.vs.chainRIDs(table) {
		if _, ok := have[rid]; ok {
			continue
		}
		vt, ok := sn.visibleTup(t, table, rid)
		if !ok {
			continue
		}
		if inRange(vt[ci]) {
			if !fn(vt[ci], rid) {
				return nil
			}
		}
	}
	return nil
}

// fetch implements readSource: rows resolve through the version store.
func (sn *Snap) fetch(t *Table, table string, rid RID) (Tuple, bool, error) {
	return sn.fetchRow(t, table, rid)
}

// orderRows implements readSource. A snapshot cannot stream rows in
// index order without holding the snapshot's visibility set against the
// B-tree's current shape, so it declines and the executor falls back to
// the sort-based paths (same output, explicit sort).
func (sn *Snap) orderRows(SelectStmt, *Table, *orderPath, *binding, int) ([]Tuple, bool, error) {
	return nil, false, nil
}

// Query parses and executes one SELECT at the snapshot LSN. Mutating
// statements and DDL are rejected: a Snap is read-only by construction.
func (sn *Snap) Query(sql string) (*ResultSet, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	s, ok := stmt.(SelectStmt)
	if !ok {
		return nil, fmt.Errorf("rdbms: snapshot transactions are read-only (got %T)", stmt)
	}
	return sn.ExecSelect(s)
}

// ExecSelect runs a parsed SELECT against the snapshot.
func (sn *Snap) ExecSelect(s SelectStmt) (*ResultSet, error) {
	if err := sn.ctxErr(); err != nil {
		return nil, err
	}
	return execSelectSrc(sn, s)
}
