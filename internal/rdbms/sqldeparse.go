package rdbms

import (
	"fmt"
	"strconv"
	"strings"
)

// DeparseSelect renders a SelectStmt back into SQL text that ParseSQL
// accepts and that parses to a structurally identical statement. The
// shard layer depends on this round-trip to rewrite queries per shard
// (pushing ORDER BY keys into the projection, tightening LIMIT, adding
// routing predicates) and ship them over the existing string-based
// View.SQL path.
//
// Unlike exprString (a best-effort renderer for error messages), the
// output here is escape-safe: string literals double embedded quotes,
// floats render in fixed notation (the lexer has no exponent syntax)
// with a forced decimal point so they re-parse as floats, and operands
// are parenthesized by precedence so the reparsed tree matches.
func DeparseSelect(s *SelectStmt) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, se := range s.Exprs {
		if i > 0 {
			sb.WriteString(", ")
		}
		if se.Star {
			sb.WriteByte('*')
			continue
		}
		sb.WriteString(deparseExpr(se.Expr, levelOr))
		if se.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(se.Alias)
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From)
	if s.FromAlias != "" {
		sb.WriteByte(' ')
		sb.WriteString(s.FromAlias)
	}
	if j := s.Join; j != nil {
		sb.WriteString(" JOIN ")
		sb.WriteString(j.Table)
		if j.Alias != "" {
			sb.WriteByte(' ')
			sb.WriteString(j.Alias)
		}
		sb.WriteString(" ON ")
		sb.WriteString(j.Left.String())
		sb.WriteString(" = ")
		sb.WriteString(j.Right.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(deparseExpr(s.Where, levelOr))
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(deparseExpr(s.Having, levelOr))
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(deparseExpr(k.Expr, levelOr))
			if k.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(s.Limit))
	}
	if s.Offset > 0 {
		sb.WriteString(" OFFSET ")
		sb.WriteString(strconv.Itoa(s.Offset))
	}
	return sb.String()
}

// SelectColumnName returns the output column name the executor gives
// one select-list expression (the alias, else the expression's display
// rendering — exactly what expandSelect produces). The shard merge
// layer labels recombined aggregate columns with it so merged result
// sets carry single-engine column names.
func SelectColumnName(se SelectExpr) string {
	if se.Star {
		return "*"
	}
	if se.Alias != "" {
		return se.Alias
	}
	return exprString(se.Expr)
}

// HasAggregate reports whether an expression contains an aggregate
// call (exported for the shard planner's path selection).
func HasAggregate(e Expr) bool { return hasAgg(e) }

// Precedence levels mirroring the parser's grammar. A subexpression is
// parenthesized when its level is below what its position requires.
const (
	levelOr = iota + 1
	levelAnd
	levelNot
	levelCmp // non-associative: = != < <= > >= LIKE, IS NULL, BETWEEN
	levelAdd
	levelMul
	levelUnary
	levelPrimary
)

func binaryLevel(op string) int {
	switch op {
	case "OR":
		return levelOr
	case "AND":
		return levelAnd
	case "=", "!=", "<", "<=", ">", ">=", "LIKE":
		return levelCmp
	case "+", "-":
		return levelAdd
	case "*", "/":
		return levelMul
	}
	return levelPrimary
}

func exprLevel(e Expr) int {
	switch x := e.(type) {
	case Literal:
		// Negative numeric values only arise in synthesized trees
		// (parse builds them as unary minus); they render with a
		// leading '-', so they bind like a unary expression.
		if (x.Val.Type == TInt && x.Val.I < 0) || (x.Val.Type == TFloat && x.Val.F < 0) {
			return levelUnary
		}
		return levelPrimary
	case ColumnRef, AggExpr:
		return levelPrimary
	case UnaryExpr:
		if x.Op == "NOT" {
			return levelNot
		}
		return levelUnary
	case BinaryExpr:
		return binaryLevel(x.Op)
	case IsNullExpr, BetweenExpr:
		return levelCmp
	}
	return levelPrimary
}

// deparseExpr renders e for a position that requires at least level min,
// wrapping in parentheses when e binds more loosely.
func deparseExpr(e Expr, min int) string {
	s := deparseExprBare(e)
	if exprLevel(e) < min {
		return "(" + s + ")"
	}
	return s
}

func deparseExprBare(e Expr) string {
	switch x := e.(type) {
	case Literal:
		return deparseValue(x.Val)
	case ColumnRef:
		return x.String()
	case BinaryExpr:
		lvl := binaryLevel(x.Op)
		switch lvl {
		case levelCmp:
			// Comparisons do not chain: both operands are addExprs.
			return deparseExpr(x.Left, levelAdd) + " " + x.Op + " " + deparseExpr(x.Right, levelAdd)
		case levelAnd, levelOr:
			// Left-associative keyword connectives: the left operand
			// may sit at the same level, the right must bind tighter.
			return deparseExpr(x.Left, lvl) + " " + x.Op + " " + deparseExpr(x.Right, lvl+1)
		default:
			// Left-associative arithmetic.
			return deparseExpr(x.Left, lvl) + " " + x.Op + " " + deparseExpr(x.Right, lvl+1)
		}
	case UnaryExpr:
		if x.Op == "NOT" {
			return "NOT " + deparseExpr(x.X, levelNot)
		}
		return "-" + deparseExpr(x.X, levelUnary)
	case IsNullExpr:
		if x.Not {
			return deparseExpr(x.X, levelAdd) + " IS NOT NULL"
		}
		return deparseExpr(x.X, levelAdd) + " IS NULL"
	case BetweenExpr:
		return deparseExpr(x.X, levelAdd) + " BETWEEN " + deparseExpr(x.Lo, levelAdd) +
			" AND " + deparseExpr(x.Hi, levelAdd)
	case AggExpr:
		if x.Star {
			return x.Func + "(*)"
		}
		return x.Func + "(" + deparseExpr(x.Arg, levelOr) + ")"
	}
	return fmt.Sprintf("/*unrenderable %T*/", e)
}

// deparseValue renders a literal so the lexer tokenizes it back to the
// same Value. Strings double embedded quotes; floats use fixed notation
// (no exponent — the lexer cannot read one) and always carry a decimal
// point so they do not re-parse as integers.
func deparseValue(v Value) string {
	switch v.Type {
	case TNull:
		return "NULL"
	case TBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		f := v.F
		neg := ""
		if f < 0 {
			neg, f = "-", -f
		}
		s := strconv.FormatFloat(f, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return neg + s
	case TString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return "NULL"
}
