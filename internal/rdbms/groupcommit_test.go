package rdbms

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Group-commit tests: concurrent committers must amortize WAL fsyncs
// without weakening any durability guarantee. The crash tests kill the
// process inside group-commit batches — while a leader's batch write or
// sync is in flight with followers queued behind it — and verify
// per-transaction atomicity and acknowledged-commit durability after
// recovery, under -race (the CI crash-recovery job runs this file with
// -race -count=2).

// slowSyncDevice delays Sync so concurrent committers pile up behind the
// in-flight leader, making batching deterministic enough to assert on.
type slowSyncDevice struct {
	Device
	delay time.Duration
}

func (d *slowSyncDevice) Sync() error {
	time.Sleep(d.delay)
	return d.Device.Sync()
}

// slowSyncWALStore slows every segment device's Sync — the contended-disk
// model group commit amortizes against.
type slowSyncWALStore struct {
	WALStore
	delay time.Duration
}

func (s *slowSyncWALStore) OpenSegment(seq uint64) (Device, error) {
	dev, err := s.WALStore.OpenSegment(seq)
	if err != nil {
		return nil, err
	}
	return &slowSyncDevice{Device: dev, delay: s.delay}, nil
}

func openGroupCommitDB(t *testing.T, walDev WALStore) *DB {
	t.Helper()
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestGroupCommitSingletonOneSync: a lone committer still pays exactly
// one fsync per commit — group commit must not add latency (extra syncs)
// to the uncontended path.
func TestGroupCommitSingletonOneSync(t *testing.T) {
	walDev := NewMemWALStore()
	db := openGroupCommitDB(t, walDev)
	before := db.wal.Syncs()
	const commits = 20
	for i := 0; i < commits; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString("v")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.wal.Syncs() - before; got != commits {
		t.Fatalf("sequential commits used %d syncs, want exactly %d", got, commits)
	}
}

// TestGroupCommitAmortizesSyncs: N concurrent committers on a slow disk
// must share flush batches — total fsyncs well under total commits — and
// every acknowledged commit must be durable and visible after a crash
// that discards all unsynced state.
func TestGroupCommitAmortizesSyncs(t *testing.T) {
	walMem := NewMemWALStore()
	walDev := &slowSyncWALStore{WALStore: walMem, delay: 500 * time.Microsecond}
	db := openGroupCommitDB(t, walDev)
	before := db.wal.Syncs()

	const (
		workers          = 8
		commitsPerWorker = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < commitsPerWorker; i++ {
				k := int64(g*commitsPerWorker + i)
				tx := db.Begin()
				if _, err := tx.Insert("kv", Tuple{NewInt(k), NewString(fmt.Sprintf("w%d-%d", g, i))}); err != nil {
					errs <- err
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := int64(workers * commitsPerWorker)
	syncs := db.wal.Syncs() - before
	if syncs >= total/2 {
		t.Fatalf("group commit did not batch: %d syncs for %d concurrent commits", syncs, total)
	}
	t.Logf("%d commits amortized into %d WAL syncs (%.1f commits/sync)",
		total, syncs, float64(total)/float64(syncs))

	// Every commit was acknowledged, so every row must survive a crash
	// that keeps only synced bytes.
	walMem.Crash(nil)
	db2, _ := reopenClean(t, db.pager.(*DevicePager).dev, walMem)
	got := scanKV(t, db2)
	if len(got) != int(total) {
		t.Fatalf("recovered %d rows, want %d", len(got), total)
	}
}

// gcOutcome records one transaction's fate in the concurrent crash test.
type gcOutcome struct {
	keys [2]int64
	vals [2]string
	// acked is set only after Commit returned nil — the durability
	// promise the oracle holds the engine to.
	acked bool
}

// TestGroupCommitCrashAtEveryWALIO runs concurrent committers against a
// fault-injected WAL device and kills the process at every WAL I/O index
// in turn — landing inside group-commit batches in every position: before
// the batch write, tearing it, during the sync. After the crash the
// devices are reopened cleanly and the oracle checks, per transaction,
// all-or-nothing visibility of its two rows, and for transactions whose
// Commit was acknowledged before the kill, full durable visibility.
func TestGroupCommitCrashAtEveryWALIO(t *testing.T) {
	const (
		workers        = 4
		txnsPerWorker  = 5
		maxKillPoints  = 60
		minAssertedRun = 20
	)
	runs := 0
	for op := int64(0); op < maxKillPoints; op++ {
		op := op
		kind := FaultCrash
		if op%3 == 1 {
			kind = FaultTornWrite
		}
		inj := NewFaultInjector()
		inj.Schedule(op, kind)
		pageDev := NewMemDevice()
		walDev := NewMemWALStore()
		// Setup may itself draw the fated I/O (the CreateTable checkpoint
		// flushes the WAL): a crash there is a valid — if boring — kill
		// point, verified like any other.
		db := func() (db *DB) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(CrashSignal); !ok {
						panic(r)
					}
					db = nil
				}
			}()
			pager, err := NewDevicePager(pageDev) // page side unfaulted: kills land in WAL I/O only
			if err != nil {
				t.Fatal(err)
			}
			wal, err := NewFaultWAL(walDev, inj)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Open(pager, wal, Options{BufferPages: 512})
			if err != nil {
				t.Fatalf("op %d: open: %v", op, err)
			}
			if err := d.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
				{Name: "k", Type: TInt}, {Name: "v", Type: TString},
			}}); err != nil {
				return nil // injected failure during DDL: nothing can commit
			}
			return d
		}()

		var mu sync.Mutex
		outcomes := make([]*gcOutcome, 0, workers*txnsPerWorker)
		if db != nil {
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					// A scheduled crash panics in whichever goroutine drew the
					// fated I/O; treat it as this worker's process-death and
					// stop. The WAL is poisoned for everyone else.
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(CrashSignal); !ok {
								panic(r)
							}
						}
					}()
					for i := 0; i < txnsPerWorker; i++ {
						base := int64(g*txnsPerWorker+i) * 2
						o := &gcOutcome{
							keys: [2]int64{base, base + 1},
							vals: [2]string{fmt.Sprintf("w%d-%d-a", g, i), fmt.Sprintf("w%d-%d-b", g, i)},
						}
						mu.Lock()
						outcomes = append(outcomes, o)
						mu.Unlock()
						tx := db.Begin()
						if _, err := tx.Insert("kv", Tuple{NewInt(o.keys[0]), NewString(o.vals[0])}); err != nil {
							tx.Abort()
							return
						}
						if _, err := tx.Insert("kv", Tuple{NewInt(o.keys[1]), NewString(o.vals[1])}); err != nil {
							tx.Abort()
							return
						}
						if err := tx.Commit(); err != nil {
							return // in doubt (poisoned WAL or injected error)
						}
						mu.Lock()
						o.acked = true
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
		}

		// The process is dead: unsynced bytes (partially) vanish.
		crashRNG := rand.New(rand.NewSource(op * 7919))
		pageDev.Crash(crashRNG)
		walDev.Crash(crashRNG)
		db2, pager2 := reopenClean(t, pageDev, walDev)
		if err := pager2.VerifyChecksums(); err != nil {
			t.Fatalf("op %d: checksums after recovery: %v", op, err)
		}
		if db2.Table("kv") == nil {
			continue // crash predated the table's durable creation
		}
		got := scanKV(t, db2)
		for _, o := range outcomes {
			_, ok0 := got[o.keys[0]]
			_, ok1 := got[o.keys[1]]
			if ok0 != ok1 {
				t.Fatalf("op %d: txn %v torn after recovery: key presence %v/%v", op, o.keys, ok0, ok1)
			}
			if ok0 && (got[o.keys[0]] != o.vals[0] || got[o.keys[1]] != o.vals[1]) {
				t.Fatalf("op %d: txn %v recovered wrong values", op, o.keys)
			}
			if o.acked && !ok0 {
				t.Fatalf("op %d: acknowledged commit %v lost", op, o.keys)
			}
		}
		db2.Close()
		runs++
	}
	if runs < minAssertedRun {
		t.Fatalf("only %d concurrent kill-point runs exercised, want >= %d", runs, minAssertedRun)
	}
	t.Logf("concurrent group-commit crash test: %d kill points verified", runs)
}
