package rdbms

import (
	"context"
	"errors"
	"testing"
	"time"
)

// newCtxTestDB builds an in-memory table with enough rows that every
// SELECT access path iterates well past ctxCheckInterval.
func newCtxTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(NewMemPager(), NewMemWAL(), Options{BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "big", Columns: []ColumnDef{
		{Name: "id", Type: TInt},
		{Name: "val", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("big", "id"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 2000; i++ {
		if _, err := tx.Insert("big", Tuple{NewInt(int64(i)), NewString("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecCtxCanceledBeforeStart: a context already done fails fast,
// before any transaction begins.
func TestExecCtxCanceledBeforeStart(t *testing.T) {
	db := newCtxTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecCtx(ctx, "SELECT id FROM big"); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The engine stays healthy: a plain Exec still works and sees no
	// leaked locks from the refused statement.
	rs, err := db.Exec("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 2000 {
		t.Fatalf("got %d rows", rs.Rows[0][0].I)
	}
}

// TestExecCtxDeadlineStopsScanPaths: an expired deadline stops each
// SELECT access path mid-scan with context.DeadlineExceeded, and the
// aborted statement releases its locks (a follow-up write succeeds).
func TestExecCtxDeadlineStopsScanPaths(t *testing.T) {
	db := newCtxTestDB(t)
	queries := []string{
		"SELECT id, val FROM big WHERE val = 'nope'",      // seq scan
		"SELECT id FROM big WHERE id >= 0 AND id <= 1999", // index range scan
		"SELECT id, val FROM big ORDER BY val LIMIT 5",    // seq scan + top-k pushdown
		"SELECT id, val FROM big ORDER BY id LIMIT 5",     // index-order scan
		"SELECT val, COUNT(*) FROM big GROUP BY val",      // grouped over seq scan
		"UPDATE big SET val = 'x' WHERE id >= 0",          // update's collection scan
		"DELETE FROM big WHERE id >= 0",                   // delete's collection scan
	}
	for _, q := range queries {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		_, err := db.ExecCtx(ctx, q)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: got %v, want context.DeadlineExceeded", q, err)
		}
	}
	// All canceled statements aborted cleanly: every lock is released and
	// the data is untouched.
	rs, err := db.Exec("SELECT COUNT(*) FROM big WHERE val = 'payload'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 2000 {
		t.Fatalf("canceled statements mutated data: %d rows left", rs.Rows[0][0].I)
	}
	if _, err := db.Exec("INSERT INTO big (id, val) VALUES (2000, 'after')"); err != nil {
		t.Fatalf("write after canceled statements: %v", err)
	}
}

// TestExecCtxCancelMidScan cancels concurrently with a long scan and
// expects the statement to terminate promptly with the context error.
func TestExecCtxCancelMidScan(t *testing.T) {
	db := newCtxTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Repeat scans until cancellation lands mid-loop.
		for {
			if _, err := db.ExecCtx(ctx, "SELECT id, val FROM big WHERE val = 'nope'"); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled scan did not terminate")
	}
}

// TestWithContextNilKeepsBehavior: transactions without a context attach
// run exactly as before (regression guard for the fast path).
func TestWithContextNilKeepsBehavior(t *testing.T) {
	db := newCtxTestDB(t)
	tx := db.Begin()
	n := 0
	if err := tx.Scan("big", func(RID, Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("scanned %d rows", n)
	}
}
