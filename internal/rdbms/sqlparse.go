package rdbms

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSQL parses one SQL statement.
func ParseSQL(input string) (Statement, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, input: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tkSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tkEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type sqlParser struct {
	toks  []sqlToken
	pos   int
	input string
}

func (p *sqlParser) peek() sqlToken { return p.toks[p.pos] }
func (p *sqlParser) next() sqlToken { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *sqlParser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tkKeyword || t.text != kw {
		return fmt.Errorf("sql: expected %s, got %q (position %d)", kw, t.text, t.pos)
	}
	return nil
}

func (p *sqlParser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tkSymbol || t.text != sym {
		return fmt.Errorf("sql: expected %q, got %q (position %d)", sym, t.text, t.pos)
	}
	return nil
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if p.peek().kind == tkKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) acceptSymbol(sym string) bool {
	if p.peek().kind == tkSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tkIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q (position %d)", t.text, t.pos)
	}
	return t.text, nil
}

func (p *sqlParser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	}
	return nil, p.errorf("unsupported statement %s", t.text)
}

func (p *sqlParser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		schema := TableSchema{Name: name}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tkKeyword {
				return nil, p.errorf("expected type for column %s, got %q", col, tt.text)
			}
			typ, err := ParseType(tt.text)
			if err != nil {
				return nil, err
			}
			schema.Columns = append(schema.Columns, ColumnDef{Name: col, Type: typ})
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
		return CreateTableStmt{Schema: schema}, nil
	case p.acceptKeyword("INDEX"):
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return CreateIndexStmt{Table: table, Column: col}, nil
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE")
}

func (p *sqlParser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return DropTableStmt{Table: name}, nil
}

func (p *sqlParser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

func (p *sqlParser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *sqlParser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *sqlParser) parseSelect() (Statement, error) {
	p.next() // SELECT
	stmt := SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		if p.acceptSymbol("*") {
			stmt.Exprs = append(stmt.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				se.Alias = alias
			} else if p.peek().kind == tkIdent {
				se.Alias = p.next().text
			}
			stmt.Exprs = append(stmt.Exprs, se)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	if p.peek().kind == tkIdent {
		stmt.FromAlias = p.next().text
	}
	if p.acceptKeyword("INNER") || p.peek().kind == tkKeyword && p.peek().text == "JOIN" {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		jt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		j := &JoinClause{Table: jt}
		if p.peek().kind == tkIdent {
			j.Alias = p.next().text
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		right, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		j.Left, j.Right = left, right
		stmt.Join = j
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *sqlParser) parseIntLiteral() (int, error) {
	t := p.next()
	if t.kind != tkNumber {
		return 0, fmt.Errorf("sql: expected number, got %q (position %d)", t.text, t.pos)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer %q", t.text)
	}
	return n, nil
}

func (p *sqlParser) parseColumnRef() (ColumnRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: name, Column: col}, nil
	}
	return ColumnRef{Column: name}, nil
}

// Expression grammar (precedence climbing):
//   expr    := orExpr
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | cmpExpr
//   cmpExpr := addExpr ((=|!=|<|<=|>|>=|LIKE) addExpr
//            | IS [NOT] NULL | BETWEEN addExpr AND addExpr)?
//   addExpr := mulExpr ((+|-) mulExpr)*
//   mulExpr := unary ((*|/) unary)*
//   unary   := - unary | primary
//   primary := literal | aggCall | columnRef | ( expr )

func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *sqlParser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tkSymbol {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: t.text, Left: left, Right: right}, nil
		}
	}
	if t.kind == tkKeyword {
		switch t.text {
		case "LIKE":
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: "LIKE", Left: left, Right: right}, nil
		case "IS":
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return IsNullExpr{X: left, Not: not}, nil
		case "BETWEEN":
			p.next()
			lo, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BetweenExpr{X: left, Lo: lo, Hi: hi}, nil
		}
	}
	return left, nil
}

func (p *sqlParser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *sqlParser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad float %q", t.text)
			}
			return Literal{Val: NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q", t.text)
		}
		return Literal{Val: NewInt(n)}, nil
	case tkString:
		p.next()
		return Literal{Val: NewString(t.text)}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return Literal{Val: Null()}, nil
		case "TRUE":
			p.next()
			return Literal{Val: NewBool(true)}, nil
		case "FALSE":
			p.next()
			return Literal{Val: NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			agg := AggExpr{Func: t.text}
			if p.acceptSymbol("*") {
				if t.text != "COUNT" {
					return nil, p.errorf("%s(*) is not valid", t.text)
				}
				agg.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.text)
	case tkIdent:
		return p.parseColumnRef()
	case tkSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}
