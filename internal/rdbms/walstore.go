package rdbms

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WALStore is the directory-like substrate a segmented WAL lives on: a
// set of numbered segment devices plus one manifest naming the segments
// that make up the log. It is the PR10 replacement for the single-device
// log: the WAL reclaims space by deleting whole prefix segments in O(1)
// (no copy-down) and replaces the old double-slot-header COPYING
// protocol with an atomic manifest swap made durable by a directory
// sync.
//
// Durability contract (modeled on a journaling filesystem):
//   - Segment byte durability is the segment Device's own business
//     (WriteAt + Sync), exactly as before.
//   - Directory metadata — segment creation, segment removal, and the
//     manifest swap — is volatile until SyncDir returns. Metadata
//     commits in order: a crash keeps a PREFIX of the unsynced
//     directory operations (journaled filesystems commit metadata
//     transactions sequentially), never a later one without an earlier
//     one.
//   - WriteManifest is an atomic replace (write-temp + rename): after a
//     crash the manifest is either the old bytes or the new bytes,
//     never a mix and never absent once one has been durable.
type WALStore interface {
	// Segments lists the segment sequence numbers present, ascending.
	Segments() ([]uint64, error)
	// OpenSegment opens segment seq, creating it empty if absent. The
	// creation becomes durable at the next SyncDir.
	OpenSegment(seq uint64) (Device, error)
	// RemoveSegment deletes segment seq; durable at the next SyncDir.
	RemoveSegment(seq uint64) error
	// ReadManifest returns the manifest bytes, or nil when none exists.
	ReadManifest() ([]byte, error)
	// WriteManifest atomically replaces the manifest; durable at the
	// next SyncDir.
	WriteManifest(data []byte) error
	// SyncDir makes every prior OpenSegment creation, RemoveSegment,
	// and WriteManifest durable (fsync of the directory).
	SyncDir() error
	Close() error
}

// --- WAL segment manifest -------------------------------------------------

// walManifestEntry names one segment and the LSN its first byte carries.
type walManifestEntry struct {
	seq   uint64
	start LSN
}

var walManifestMagic = [4]byte{'U', 'W', 'M', '1'}

// encodeWALManifest serializes the ordered segment list. The frame is
// crc-protected; the swap protocol (atomic replace) means a reader never
// sees a torn manifest, but the checksum still catches media corruption.
func encodeWALManifest(entries []walManifestEntry) []byte {
	buf := make([]byte, 0, 12+16*len(entries)+4)
	buf = append(buf, walManifestMagic[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(entries)))
	buf = append(buf, tmp[:4]...)
	for _, e := range entries {
		binary.LittleEndian.PutUint64(tmp[:], e.seq)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(e.start))
		buf = append(buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(buf))
	return append(buf, tmp[:4]...)
}

func decodeWALManifest(data []byte) ([]walManifestEntry, error) {
	if len(data) < 12 || [4]byte(data[0:4]) != walManifestMagic {
		return nil, fmt.Errorf("rdbms: wal manifest missing magic")
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("rdbms: wal manifest checksum mismatch")
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	if len(data) != 12+16*n {
		return nil, fmt.Errorf("rdbms: wal manifest length %d does not match %d entries", len(data), n)
	}
	entries := make([]walManifestEntry, n)
	off := 8
	for i := range entries {
		entries[i].seq = binary.LittleEndian.Uint64(data[off : off+8])
		entries[i].start = LSN(binary.LittleEndian.Uint64(data[off+8 : off+16]))
		off += 16
	}
	for i := 1; i < n; i++ {
		if entries[i].seq <= entries[i-1].seq || entries[i].start < entries[i-1].start {
			return nil, fmt.Errorf("rdbms: wal manifest entries out of order at %d", i)
		}
	}
	return entries, nil
}

// --- File-backed store ----------------------------------------------------

const walManifestName = "MANIFEST"

// FileWALStore is a WALStore over an operating-system directory:
// segments are <seq>.seg files, the manifest is MANIFEST replaced via
// write-temp + rename, and SyncDir fsyncs the directory so creations,
// removals, and the rename are durable.
type FileWALStore struct {
	dir string
}

// OpenFileWALStore opens (creating if needed) a directory-backed store.
func OpenFileWALStore(dir string) (*FileWALStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileWALStore{dir: dir}, nil
}

func walSegmentName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }

func (s *FileWALStore) Segments() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (s *FileWALStore) OpenSegment(seq uint64) (Device, error) {
	return OpenFileDevice(filepath.Join(s.dir, walSegmentName(seq)))
}

func (s *FileWALStore) RemoveSegment(seq uint64) error {
	return os.Remove(filepath.Join(s.dir, walSegmentName(seq)))
}

func (s *FileWALStore) ReadManifest() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, walManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

func (s *FileWALStore) WriteManifest(data []byte) error {
	tmp := filepath.Join(s.dir, walManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// fsync the temp file BEFORE the rename: rename-then-crash must never
	// install a manifest whose bytes were still in the page cache.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, walManifestName))
}

func (s *FileWALStore) SyncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (s *FileWALStore) Close() error { return nil }

// --- In-memory crash-simulating store -------------------------------------

// memDirOpKind enumerates the directory-metadata mutations a MemWALStore
// holds volatile until SyncDir.
type memDirOpKind uint8

const (
	memDirCreate memDirOpKind = iota
	memDirRemove
	memDirManifest
)

type memDirOp struct {
	kind     memDirOpKind
	seq      uint64
	manifest []byte
	dev      *MemDevice
}

// MemWALStore is an in-memory WALStore modeling a crash-prone
// journaling filesystem: segment bytes follow each MemDevice's own
// durability rules, while directory metadata (creations, removals, the
// manifest swap) is volatile until SyncDir and commits IN ORDER — a
// crash keeps a prefix of the unsynced directory operations, so a
// manifest naming a segment can never survive a crash that lost the
// segment's creation.
type MemWALStore struct {
	mu sync.Mutex

	// applied is what the process observes; durable is what a crash
	// rewinds to; pending is the ordered metadata ops between them.
	segs        map[uint64]*MemDevice
	manifest    []byte
	durSegs     map[uint64]*MemDevice
	durManifest []byte
	pending     []memDirOp
}

// NewMemWALStore returns an empty in-memory store.
func NewMemWALStore() *MemWALStore {
	return &MemWALStore{
		segs:    map[uint64]*MemDevice{},
		durSegs: map[uint64]*MemDevice{},
	}
}

func (s *MemWALStore) Segments() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.segs))
	for seq := range s.segs {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (s *MemWALStore) OpenSegment(seq uint64) (Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dev, ok := s.segs[seq]; ok {
		return dev, nil
	}
	dev := NewMemDevice()
	s.segs[seq] = dev
	s.pending = append(s.pending, memDirOp{kind: memDirCreate, seq: seq, dev: dev})
	return dev, nil
}

func (s *MemWALStore) RemoveSegment(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segs[seq]; !ok {
		return fmt.Errorf("rdbms: wal segment %d does not exist", seq)
	}
	delete(s.segs, seq)
	s.pending = append(s.pending, memDirOp{kind: memDirRemove, seq: seq})
	return nil
}

func (s *MemWALStore) ReadManifest() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return nil, nil
	}
	return append([]byte(nil), s.manifest...), nil
}

func (s *MemWALStore) WriteManifest(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := append([]byte(nil), data...)
	s.manifest = cp
	s.pending = append(s.pending, memDirOp{kind: memDirManifest, manifest: cp})
	return nil
}

func (s *MemWALStore) SyncDir() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitPrefixLocked(len(s.pending))
	s.pending = nil
	return nil
}

// commitPrefixLocked replays the first n pending directory ops onto the
// durable image.
func (s *MemWALStore) commitPrefixLocked(n int) {
	for _, op := range s.pending[:n] {
		switch op.kind {
		case memDirCreate:
			s.durSegs[op.seq] = op.dev
		case memDirRemove:
			delete(s.durSegs, op.seq)
		case memDirManifest:
			s.durManifest = op.manifest
		}
	}
}

func (s *MemWALStore) Close() error { return nil }

// Crash simulates power loss: directory metadata rewinds to the durable
// image plus a surviving PREFIX of the unsynced operations (metadata
// journaling commits in order; a nil rng keeps none — the adversarial
// worst case), and every surviving segment device then crashes
// independently under the usual MemDevice write-survival model.
func (s *MemWALStore) Crash(rng *rand.Rand) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := 0
	if rng != nil && len(s.pending) > 0 {
		keep = rng.Intn(len(s.pending) + 1)
	}
	s.commitPrefixLocked(keep)
	s.pending = nil
	s.manifest = s.durManifest
	s.segs = make(map[uint64]*MemDevice, len(s.durSegs))
	for seq, dev := range s.durSegs {
		dev.Crash(rng)
		s.segs[seq] = dev
	}
}

// UnsyncedDirOps reports how many directory-metadata mutations would be
// at risk in a crash (diagnostics and tests).
func (s *MemWALStore) UnsyncedDirOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// DiskBytes sums the applied sizes of all present segments — the
// on-disk footprint of the log (space-bound tests).
func (s *MemWALStore) DiskBytes() int64 {
	s.mu.Lock()
	devs := make([]*MemDevice, 0, len(s.segs))
	for _, dev := range s.segs {
		devs = append(devs, dev)
	}
	s.mu.Unlock()
	var total int64
	for _, dev := range devs {
		n, _ := dev.Size()
		total += n
	}
	return total
}

// --- Fault-injecting store wrapper ----------------------------------------

// FaultWALStore wraps a WALStore so that its mutating directory
// operations (manifest swap, segment removal, directory sync) and every
// byte of segment I/O pass through a FaultInjector — the store the
// crash suites open when they want the segment-rotation and
// manifest-swap protocols killed at every step. Segment devices come
// back tearable: the WAL's record framing detects and truncates torn
// tails.
type FaultWALStore struct {
	inner WALStore
	inj   *FaultInjector
}

// NewFaultWALStore wraps store with fault injection.
func NewFaultWALStore(store WALStore, inj *FaultInjector) *FaultWALStore {
	return &FaultWALStore{inner: store, inj: inj}
}

func (s *FaultWALStore) Segments() ([]uint64, error)   { return s.inner.Segments() }
func (s *FaultWALStore) ReadManifest() ([]byte, error) { return s.inner.ReadManifest() }
func (s *FaultWALStore) Close() error                  { return s.inner.Close() }

func (s *FaultWALStore) OpenSegment(seq uint64) (Device, error) {
	dev, err := s.inner.OpenSegment(seq)
	if err != nil {
		return nil, err
	}
	return &FaultDevice{inner: dev, inj: s.inj, tearable: true}, nil
}

func (s *FaultWALStore) RemoveSegment(seq uint64) error {
	idx, k := s.inj.step()
	switch k {
	case FaultError, FaultDropSync:
		return fmt.Errorf("%w (segment remove, op %d)", ErrInjected, idx)
	case FaultTornWrite, FaultCrash:
		panic(CrashSignal{Op: idx})
	}
	return s.inner.RemoveSegment(seq)
}

func (s *FaultWALStore) WriteManifest(data []byte) error {
	idx, k := s.inj.step()
	switch k {
	case FaultError, FaultDropSync:
		return fmt.Errorf("%w (manifest write, op %d)", ErrInjected, idx)
	case FaultTornWrite, FaultCrash:
		panic(CrashSignal{Op: idx})
	}
	return s.inner.WriteManifest(data)
}

func (s *FaultWALStore) SyncDir() error {
	idx, k := s.inj.step()
	switch k {
	case FaultError:
		return fmt.Errorf("%w (dir sync, op %d)", ErrInjected, idx)
	case FaultDropSync:
		return nil // lie: report durability without providing it
	case FaultTornWrite, FaultCrash:
		panic(CrashSignal{Op: idx})
	}
	return s.inner.SyncDir()
}
