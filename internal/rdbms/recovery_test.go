package rdbms

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestWALRecordRoundTrip(t *testing.T) {
	rec := &LogRecord{
		Kind:   LogUpdate,
		Txn:    42,
		Table:  "cities",
		Row:    RID{Page: 3, Slot: 17},
		Before: Tuple{NewString("old"), NewInt(1)},
		After:  Tuple{NewString("new"), NewInt(2)},
	}
	enc := encodeLogRecord(rec)
	dec, err := decodeLogRecord(enc[8:])
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != LogUpdate || dec.Txn != 42 || dec.Table != "cities" || dec.Row != rec.Row {
		t.Fatalf("decoded %+v", dec)
	}
	if !tupleEqual(dec.Before, rec.Before) || !tupleEqual(dec.After, rec.After) {
		t.Fatal("tuples lost")
	}
}

func TestWALAppendFlushRecords(t *testing.T) {
	w := NewMemWAL()
	w.Append(&LogRecord{Kind: LogBegin, Txn: 1})
	w.Append(&LogRecord{Kind: LogInsert, Txn: 1, Table: "t", Row: RID{Page: 1, Slot: 0}, After: Tuple{NewInt(5)}})
	// Unflushed records are not durable.
	recs, err := w.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unflushed records visible: %d", len(recs))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, _ = w.Records(0)
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Kind != LogBegin || recs[1].Kind != LogInsert {
		t.Fatalf("kinds: %v %v", recs[0].Kind, recs[1].Kind)
	}
	// Reading from the second record's LSN skips the first.
	recs2, _ := w.Records(recs[1].LSN)
	if len(recs2) != 1 || recs2[0].Kind != LogInsert {
		t.Fatalf("offset read: %v", recs2)
	}
}

func TestWALDropUnflushed(t *testing.T) {
	w := NewMemWAL()
	w.Append(&LogRecord{Kind: LogBegin, Txn: 1})
	w.Flush()
	w.Append(&LogRecord{Kind: LogCommit, Txn: 1})
	w.DropUnflushed() // crash before the commit record was forced
	recs, _ := w.Records(0)
	if len(recs) != 1 || recs[0].Kind != LogBegin {
		t.Fatalf("after drop: %v", recs)
	}
}

func TestFileWALPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(&LogRecord{Kind: LogBegin, Txn: 7})
	w.Append(&LogRecord{Kind: LogCommit, Txn: 7})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs, err := w2.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Txn != 7 {
		t.Fatalf("reopened records: %v", recs)
	}
}

// crashAndRecover simulates a crash: drops unflushed WAL, keeps the pager
// as-is (whatever the buffer pool happened to flush), and reopens.
func crashAndRecover(t *testing.T, db *DB, pager Pager, wal *WAL) *DB {
	t.Helper()
	wal.DropUnflushed()
	re, err := Open(pager, wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	return re
}

func TestRecoveryCommittedSurvives(t *testing.T) {
	pager := NewMemPager()
	wal := NewMemWAL()
	db, err := Open(pager, wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})
	tx := db.Begin()
	var rids []RID
	for i := 0; i < 50; i++ {
		rid, err := tx.Insert("t", Tuple{NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash without checkpoint: committed data must survive via WAL redo.
	re := crashAndRecover(t, db, pager, wal)
	tx2 := re.Begin()
	n := 0
	sum := int64(0)
	tx2.Scan("t", func(_ RID, tup Tuple) bool { n++; sum += tup[0].I; return true })
	tx2.Commit()
	if n != 50 || sum != 49*50/2 {
		t.Fatalf("after recovery: n=%d sum=%d", n, sum)
	}
	// Specific rids still resolve.
	tx3 := re.Begin()
	got, live, _ := tx3.Get("t", rids[10])
	if !live || got[0].I != 10 {
		t.Fatalf("rid lookup after recovery: %v %v", got, live)
	}
	tx3.Commit()
}

func TestRecoveryUncommittedRolledBack(t *testing.T) {
	pager := NewMemPager()
	wal := NewMemWAL()
	db, _ := Open(pager, wal, Options{BufferPages: 8}) // tiny pool forces steals
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})

	// Committed baseline.
	tx := db.Begin()
	base, _ := tx.Insert("t", Tuple{NewInt(100)})
	tx.Commit()

	// In-flight transaction: inserts many rows (forcing dirty page steals
	// through the tiny buffer pool), updates and deletes the baseline row,
	// then "crashes" before commit.
	tx2 := db.Begin()
	for i := 0; i < 200; i++ {
		if _, err := tx2.Insert("t", Tuple{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx2.Update("t", base, Tuple{NewInt(999)}); err != nil {
		t.Fatal(err)
	}
	// Force everything to disk so the loser's changes are definitely in
	// the data file, then crash (losing the unflushed commit-less tail is
	// fine; flush WAL so the loser's records ARE durable, as the WAL rule
	// would have done).
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.bp.Flush(); err != nil {
		t.Fatal(err)
	}

	re := crashAndRecover(t, db, pager, wal)
	tx3 := re.Begin()
	n := 0
	tx3.Scan("t", func(_ RID, tup Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("after recovery expected only baseline row, got %d", n)
	}
	got, live, _ := tx3.Get("t", base)
	if !live || got[0].I != 100 {
		t.Fatalf("baseline row corrupted: %v live=%v", got, live)
	}
	tx3.Commit()
}

func TestRecoveryUnflushedCommitLost(t *testing.T) {
	// A transaction whose commit record never reached stable storage is a
	// loser: its changes must be rolled back.
	pager := NewMemPager()
	wal := NewMemWAL()
	db, _ := Open(pager, wal, Options{BufferPages: 64})
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})

	tx := db.Begin()
	tx.Insert("t", Tuple{NewInt(1)})
	// Flush WAL so BEGIN+INSERT are durable, then append COMMIT but crash
	// before flushing it.
	wal.Flush()
	db.wal.Append(&LogRecord{Kind: LogCommit, Txn: tx.ID()})
	// Crash now (commit record unflushed).
	re := crashAndRecover(t, db, pager, wal)
	tx2 := re.Begin()
	n := 0
	tx2.Scan("t", func(RID, Tuple) bool { n++; return true })
	tx2.Commit()
	if n != 0 {
		t.Fatalf("unflushed commit treated as durable: %d rows", n)
	}
}

func TestRecoveryAfterCheckpoint(t *testing.T) {
	pager := NewMemPager()
	wal := NewMemWAL()
	db, _ := Open(pager, wal, Options{BufferPages: 64})
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})
	tx := db.Begin()
	tx.Insert("t", Tuple{NewInt(1)})
	tx.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint committed work.
	tx2 := db.Begin()
	tx2.Insert("t", Tuple{NewInt(2)})
	tx2.Commit()
	re := crashAndRecover(t, db, pager, wal)
	tx3 := re.Begin()
	sum := int64(0)
	n := 0
	tx3.Scan("t", func(_ RID, tup Tuple) bool { n++; sum += tup[0].I; return true })
	tx3.Commit()
	if n != 2 || sum != 3 {
		t.Fatalf("after checkpointed recovery: n=%d sum=%d", n, sum)
	}
}

func TestRecoveryIndexRebuild(t *testing.T) {
	pager := NewMemPager()
	wal := NewMemWAL()
	db, _ := Open(pager, wal, Options{BufferPages: 64})
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})
	db.CreateIndex("t", "v")
	tx := db.Begin()
	for i := 0; i < 30; i++ {
		tx.Insert("t", Tuple{NewInt(int64(i % 10))})
	}
	tx.Commit()
	re := crashAndRecover(t, db, pager, wal)
	tx2 := re.Begin()
	rids, err := tx2.IndexLookup("t", "v", NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 {
		t.Fatalf("rebuilt index lookup: %d rids", len(rids))
	}
	tx2.Commit()
}

func TestRecoveryIdempotentDoubleCrash(t *testing.T) {
	pager := NewMemPager()
	wal := NewMemWAL()
	db, _ := Open(pager, wal, Options{BufferPages: 64})
	db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}})
	tx := db.Begin()
	tx.Insert("t", Tuple{NewInt(1)})
	tx.Commit()
	re := crashAndRecover(t, db, pager, wal)
	// Crash again immediately after recovery, then recover again.
	re2 := crashAndRecover(t, re, pager, wal)
	tx2 := re2.Begin()
	n := 0
	tx2.Scan("t", func(RID, Tuple) bool { n++; return true })
	tx2.Commit()
	if n != 1 {
		t.Fatalf("double recovery duplicated rows: %d", n)
	}
}

func TestFullFileBackedLifecycle(t *testing.T) {
	dir := t.TempDir()
	pagerPath := filepath.Join(dir, "data.db")
	walPath := filepath.Join(dir, "wal.log")

	pager, err := OpenFilePager(pagerPath)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := OpenFileWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TString}, {Name: "v", Type: TInt},
	}})
	tx := db.Begin()
	for i := 0; i < 100; i++ {
		tx.Insert("kv", Tuple{NewString(fmt.Sprintf("key%03d", i)), NewInt(int64(i))})
	}
	tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	pager2, err := OpenFilePager(pagerPath)
	if err != nil {
		t.Fatal(err)
	}
	wal2, err := OpenFileWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager2, wal2, Options{BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	n := 0
	sum := int64(0)
	tx2.Scan("kv", func(_ RID, tup Tuple) bool { n++; sum += tup[1].I; return true })
	tx2.Commit()
	if n != 100 || sum != 99*100/2 {
		t.Fatalf("file-backed reopen: n=%d sum=%d", n, sum)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	wal2.Close()
}
