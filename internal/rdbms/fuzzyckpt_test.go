package rdbms

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Fuzzy (non-quiescing) checkpoint tests: checkpoints run while
// transactions commit, bracket themselves with begin/end WAL records
// carrying the dirty-page table, and truncate the log at the
// min(recLSN, active-transaction firstLSN) horizon instead of resetting
// it.

// slowWriteDevice delays every WriteAt, stretching a checkpoint's page
// flush long enough that concurrent commits provably overlap it.
type slowWriteDevice struct {
	Device
	delay time.Duration
}

func (d *slowWriteDevice) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(d.delay)
	return d.Device.WriteAt(p, off)
}

// TestCommitProceedsDuringCheckpoint is the non-quiesce proof at test
// granularity (the DiskCommitDuringCheckpoint bench is the measured
// version): with page writes slowed to make the checkpoint take hundreds
// of milliseconds, a burst of commits must complete while the checkpoint
// is still in flight. Under the old quiesced protocol this test cannot
// pass — Checkpoint refused to run with active transactions at all, and
// its flush held the pool lock across the entire pass.
func TestCommitProceedsDuringCheckpoint(t *testing.T) {
	pageDev := &slowWriteDevice{Device: NewMemDevice(), delay: 2 * time.Millisecond}
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	// Dirty a few hundred pages so the checkpoint's flush takes ~2ms each.
	tx := db.Begin()
	for i := 0; i < 2000; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString(pad(400))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ckptDone := make(chan error, 1)
	go func() { ckptDone <- db.Checkpoint() }()

	// Commit while the checkpoint runs. Each commit needs only a WAL
	// append + sync (and occasionally a page pin), none of which the
	// fuzzy checkpoint blocks.
	const commits = 25
	start := time.Now()
	for i := 0; i < commits; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(100000 + i)), NewString("during")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d during checkpoint: %v", i, err)
		}
	}
	commitTime := time.Since(start)

	select {
	case err := <-ckptDone:
		// The checkpoint finished before all 25 commits did — with ~2000
		// dirty pages at 2ms per write that would mean the commits were
		// serialized behind it, which is exactly the stall this test
		// forbids.
		t.Fatalf("checkpoint finished before the commit burst (commits took %v, checkpoint err=%v): commits were stalled behind it", commitTime, err)
	default:
	}
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// All rows durable and consistent afterwards.
	tx2 := db.Begin()
	n := 0
	tx2.Scan("kv", func(RID, Tuple) bool { n++; return true })
	tx2.Commit()
	if n != 2000+commits {
		t.Fatalf("rows after concurrent checkpoint: %d, want %d", n, 2000+commits)
	}
}

// TestCheckpointRecordPairCarriesDPT: a checkpoint taken with an active
// transaction leaves its begin/end record pair in the log (the horizon
// cannot pass the active txn's BEGIN), the begin record's payload decodes
// to the dirty-page table and the active-transaction list, and the pair
// is properly bracketed.
func TestCheckpointRecordPairCarriesDPT(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	held := db.Begin()
	if _, err := held.Insert("cities", Tuple{NewString("x"), NewString("YY"), NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	recs, err := db.wal.Records(db.wal.Base())
	if err != nil {
		t.Fatal(err)
	}
	beginIdx, endIdx := -1, -1
	for i, r := range recs {
		switch r.Kind {
		case LogCheckpointBegin:
			beginIdx = i
			dpt, active, err := decodeCheckpointInfo(r.Data)
			if err != nil {
				t.Fatalf("begin-checkpoint payload: %v", err)
			}
			if _, ok := active[held.ID()]; !ok {
				t.Fatalf("active txn %d missing from checkpoint record (got %v)", held.ID(), active)
			}
			if len(dpt) == 0 {
				t.Fatal("expected a non-empty dirty-page table (held txn dirtied a page)")
			}
		case LogCheckpointEnd:
			endIdx = i
		}
	}
	if beginIdx < 0 || endIdx < 0 || endIdx < beginIdx {
		t.Fatalf("checkpoint records not bracketed: begin=%d end=%d", beginIdx, endIdx)
	}
	if err := held.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointHorizonBoundedByActiveTxn: the WAL keeps every record an
// active transaction might need for rollback; once the transaction
// resolves, the next checkpoint reclaims the log down to the header.
func TestCheckpointHorizonBoundedByActiveTxn(t *testing.T) {
	walDev := NewMemDevice()
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(NewMemPager(), wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	held := db.Begin()
	if _, err := held.Insert("t", Tuple{NewInt(-1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("t", Tuple{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if base := db.wal.Base(); base > held.firstLSN {
		t.Fatalf("horizon %d passed active txn firstLSN %d", base, held.firstLSN)
	}
	// The held txn's records must still be readable for rollback.
	recs, err := db.wal.Records(held.firstLSN)
	if err != nil {
		t.Fatal(err)
	}
	foundBegin := false
	for _, r := range recs {
		if r.Kind == LogBegin && r.Txn == held.ID() {
			foundBegin = true
		}
	}
	if !foundBegin {
		t.Fatal("active txn's BEGIN record truncated away")
	}
	if err := held.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if size, _ := walDev.Size(); size != walHeaderSize {
		t.Fatalf("idle checkpoint left %d WAL bytes, want %d (header only)", size, walHeaderSize)
	}
	// LSNs stay monotonic across the truncation: the next record's LSN
	// continues past everything ever logged.
	before := db.wal.FlushedLSN()
	tx := db.Begin()
	if tx.firstLSN < before {
		t.Fatalf("LSN rewound after truncation: %d < %d", tx.firstLSN, before)
	}
	tx.Commit()
}

// TestWALPrefixTruncationCrashSafety exercises TruncateTo's copy-down
// protocol directly at every interruption point: schedule a crash at
// each mutating I/O of a truncation with a live tail, then reopen and
// assert the surviving records are intact with their original LSNs —
// whether the open recovers under the old base, redoes the announced
// copy, or finds the finished log.
func TestWALPrefixTruncationCrashSafety(t *testing.T) {
	build := func() (*MemDevice, []LSN, LSN) {
		dev := NewMemDevice()
		w, err := NewWALOn(dev)
		if err != nil {
			t.Fatal(err)
		}
		var lsns []LSN
		for i := 0; i < 40; i++ {
			lsns = append(lsns, w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
				Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}}))
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return dev, lsns, lsns[30] // horizon: keep the last 10 records
	}
	// Count the truncation's I/O ops.
	dev, _, horizon := build()
	inj := NewFaultInjector()
	fw, err := NewWALOn(&FaultDevice{inner: dev, inj: inj, tearable: true})
	if err != nil {
		t.Fatal(err)
	}
	opsBefore := inj.Ops()
	if err := fw.TruncateTo(horizon); err != nil {
		t.Fatal(err)
	}
	total := inj.Ops() - opsBefore
	if total < 3 {
		t.Fatalf("truncation used only %d ops; protocol missing steps?", total)
	}
	verify := func(dev *MemDevice, lsns []LSN, horizon LSN, tag string) {
		w, err := NewWALOn(dev)
		if err != nil {
			t.Fatalf("%s: reopen: %v", tag, err)
		}
		recs, err := w.Records(horizon)
		if err != nil {
			t.Fatalf("%s: records: %v", tag, err)
		}
		if len(recs) != 10 {
			t.Fatalf("%s: %d surviving records, want 10", tag, len(recs))
		}
		for i, r := range recs {
			if r.LSN != lsns[30+i] || r.Txn != TxnID(30+i) {
				t.Fatalf("%s: record %d has LSN %d txn %d, want LSN %d txn %d",
					tag, i, r.LSN, r.Txn, lsns[30+i], 30+i)
			}
		}
		// The log must keep working: append + flush + read back.
		newLSN := w.Append(&LogRecord{Kind: LogCommit, Txn: 999})
		if newLSN < lsns[39] {
			t.Fatalf("%s: post-truncation LSN %d rewound below %d", tag, newLSN, lsns[39])
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("%s: flush after reopen: %v", tag, err)
		}
	}
	for op := int64(0); op < total; op++ {
		dev, lsns, horizon := build()
		inj := NewFaultInjector()
		fw, err := NewWALOn(&FaultDevice{inner: dev, inj: inj, tearable: true})
		if err != nil {
			t.Fatal(err)
		}
		skip := inj.Ops() // open may have consumed ops (none expected, but robust)
		inj.Schedule(skip+op, FaultCrash)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(CrashSignal); !ok {
						panic(r)
					}
				}
			}()
			fw.TruncateTo(horizon)
		}()
		dev.Crash(nil) // drop every unsynced write: the adversarial case
		verify(dev, lsns, horizon, fmt.Sprintf("crash@%d", op))
	}
}

// TestWALTruncationOverlapGuard: a truncation whose tail (plus the
// 8-byte terminator) does not fit strictly inside the discarded prefix
// must be skipped entirely — at the exact boundary the terminator would
// overwrite the source tail's first frame, and a crash mid-protocol
// would discard every surviving record.
func TestWALTruncationOverlapGuard(t *testing.T) {
	dev := NewMemDevice()
	w, err := NewWALOn(dev)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 8; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
			Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}}))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sizeBefore, _ := dev.Size()
	// Horizon at the midpoint: tail length == prefix length, which the
	// slack guard (tail + terminator < prefix) must reject.
	if err := w.TruncateTo(lsns[4]); err != nil {
		t.Fatal(err)
	}
	if base := w.Base(); base != 0 {
		t.Fatalf("overlapping truncation moved the base to %d; must skip", base)
	}
	if size, _ := dev.Size(); size != sizeBefore {
		t.Fatalf("overlapping truncation touched the device (%d -> %d bytes)", sizeBefore, size)
	}
	recs, err := w.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("%d records after skipped truncation, want 8", len(recs))
	}
	// Grow the prefix past the tail; now the truncation qualifies.
	for i := 8; i < 30; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogCommit, Txn: TxnID(i)}))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateTo(lsns[28]); err != nil {
		t.Fatal(err)
	}
	if base := w.Base(); base != lsns[28] {
		t.Fatalf("qualifying truncation did not advance the base: %d, want %d", base, lsns[28])
	}
	recs, err = w.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records after truncation, want 2", len(recs))
	}
}

// TestWALTruncationErrorPoisons: a clean device error once the
// truncation protocol has started mutating the header leaves the
// base/physical mapping unreliable — the WAL must refuse all further
// work (like a crash mid-flush) and a reopen must recover every record
// at or past the horizon.
func TestWALTruncationErrorPoisons(t *testing.T) {
	dev := NewMemDevice()
	inj := NewFaultInjector()
	w, err := NewWALOn(&FaultDevice{inner: dev, inj: inj, tearable: true})
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 40; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
			Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}}))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fail the first truncation I/O (the COPYING header write) cleanly.
	inj.Schedule(inj.Ops(), FaultError)
	if err := w.TruncateTo(lsns[30]); err == nil {
		t.Fatal("truncation with injected error must fail")
	}
	if err := w.Flush(); err != ErrWALPoisoned {
		t.Fatalf("WAL not poisoned after mid-truncation error: %v", err)
	}
	// A reopen (the only way out of poisoning) recovers the tail intact.
	w2, err := NewWALOn(dev)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := w2.Records(lsns[30])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[0].LSN != lsns[30] {
		t.Fatalf("surviving tail after poisoned truncation: %d records, first LSN %v", len(recs), recs[0].LSN)
	}
}

// TestDroppedTableRecordsDoNotReplayIntoNewIncarnation: with fuzzy
// checkpoints a long-running transaction holds the WAL-truncation
// horizon back across a DROP TABLE + CREATE TABLE of the same name, so
// the old incarnation's records survive in the log. Recovery must fence
// them out via the table's birth LSN — replaying them would write ghost
// rows into (and adopt the dropped incarnation's pages into) the new
// table.
func TestDroppedTableRecordsDoNotReplayIntoNewIncarnation(t *testing.T) {
	pageDev, walDev := NewMemDevice(), NewMemDevice()
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pin", "kv"} {
		if err := db.CreateTable(TableSchema{Name: name, Columns: []ColumnDef{
			{Name: "k", Type: TInt}, {Name: "v", Type: TString},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// The horizon holder: begins first, stays open across the DDL.
	holder := db.Begin()
	if _, err := holder.Insert("pin", Tuple{NewInt(0), NewString("pin")}); err != nil {
		t.Fatal(err)
	}
	// Old incarnation content, committed and durable.
	tx := db.Begin()
	for i := 0; i < 20; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString("old-incarnation")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	// The DDL checkpoints could not truncate past the holder's BEGIN, so
	// the old incarnation's records are still in the log.
	if base := db.wal.Base(); base > holder.firstLSN {
		t.Fatalf("precondition: horizon %d passed holder firstLSN %d", base, holder.firstLSN)
	}
	tx2 := db.Begin()
	if _, err := tx2.Insert("kv", Tuple{NewInt(100), NewString("new-incarnation")}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash with the holder unresolved; only synced bytes survive.
	pageDev.Crash(nil)
	walDev.Crash(nil)
	re, pager2 := reopenClean(t, pageDev, walDev)
	if err := pager2.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	got := scanKV(t, re)
	if len(got) != 1 || got[100] != "new-incarnation" {
		t.Fatalf("recreated table holds %v after recovery; old incarnation's records leaked past its birth LSN", got)
	}
	re.Close()
}

// TestCheckpointConcurrentWithCommitters hammers Checkpoint from one
// goroutine while committers run in others (race detector coverage for
// every fuzzy-checkpoint path), then verifies full consistency.
func TestCheckpointConcurrentWithCommitters(t *testing.T) {
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	const (
		workers       = 4
		txnsPerWorker = 30
	)
	stop := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	var ckptRuns int
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				t.Errorf("concurrent checkpoint: %v", err)
				return
			}
			ckptRuns++
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				k := int64(g*txnsPerWorker + i)
				tx := db.Begin()
				if _, err := tx.Insert("kv", Tuple{NewInt(k), NewString(fmt.Sprintf("w%d-%d", g, i))}); err != nil {
					errs <- err
					tx.Abort()
					return
				}
				if i%5 == 4 {
					tx.Abort() // aborts interleaved with checkpoints too
					continue
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	ckptWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ckptRuns == 0 {
		t.Fatal("checkpointer never ran")
	}
	want := workers * txnsPerWorker * 4 / 5
	got := scanKV(t, db)
	if len(got) != want {
		t.Fatalf("rows after concurrent checkpoints: %d, want %d", len(got), want)
	}
	verifyDerivedState(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d checkpoints interleaved with %d txns", ckptRuns, workers*txnsPerWorker)
}
