package rdbms

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Fuzzy (non-quiescing) checkpoint tests: checkpoints run while
// transactions commit, bracket themselves with begin/end WAL records
// carrying the dirty-page table, and truncate the log at the
// min(recLSN, active-transaction firstLSN) horizon instead of resetting
// it.

// slowWriteDevice delays every WriteAt, stretching a checkpoint's page
// flush long enough that concurrent commits provably overlap it.
type slowWriteDevice struct {
	Device
	delay time.Duration
}

func (d *slowWriteDevice) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(d.delay)
	return d.Device.WriteAt(p, off)
}

// TestCommitProceedsDuringCheckpoint is the non-quiesce proof at test
// granularity (the DiskCommitDuringCheckpoint bench is the measured
// version): with page writes slowed to make the checkpoint take hundreds
// of milliseconds, a burst of commits must complete while the checkpoint
// is still in flight. Under the old quiesced protocol this test cannot
// pass — Checkpoint refused to run with active transactions at all, and
// its flush held the pool lock across the entire pass.
func TestCommitProceedsDuringCheckpoint(t *testing.T) {
	pageDev := &slowWriteDevice{Device: NewMemDevice(), delay: 2 * time.Millisecond}
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(NewMemWALStore())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	// Dirty a few hundred pages so the checkpoint's flush takes ~2ms each.
	tx := db.Begin()
	for i := 0; i < 2000; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString(pad(400))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ckptDone := make(chan error, 1)
	go func() { ckptDone <- db.Checkpoint() }()

	// Commit while the checkpoint runs. Each commit needs only a WAL
	// append + sync (and occasionally a page pin), none of which the
	// fuzzy checkpoint blocks.
	const commits = 25
	start := time.Now()
	for i := 0; i < commits; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(100000 + i)), NewString("during")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d during checkpoint: %v", i, err)
		}
	}
	commitTime := time.Since(start)

	select {
	case err := <-ckptDone:
		// The checkpoint finished before all 25 commits did — with ~2000
		// dirty pages at 2ms per write that would mean the commits were
		// serialized behind it, which is exactly the stall this test
		// forbids.
		t.Fatalf("checkpoint finished before the commit burst (commits took %v, checkpoint err=%v): commits were stalled behind it", commitTime, err)
	default:
	}
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// All rows durable and consistent afterwards.
	tx2 := db.Begin()
	n := 0
	tx2.Scan("kv", func(RID, Tuple) bool { n++; return true })
	tx2.Commit()
	if n != 2000+commits {
		t.Fatalf("rows after concurrent checkpoint: %d, want %d", n, 2000+commits)
	}
}

// TestCheckpointRecordPairCarriesDPT: a checkpoint taken with an active
// transaction leaves its begin/end record pair in the log (the horizon
// cannot pass the active txn's BEGIN), the begin record's payload decodes
// to the dirty-page table and the active-transaction list, and the pair
// is properly bracketed.
func TestCheckpointRecordPairCarriesDPT(t *testing.T) {
	db := newTestDB(t)
	mustCreateCities(t, db)
	held := db.Begin()
	if _, err := held.Insert("cities", Tuple{NewString("x"), NewString("YY"), NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	recs, err := db.wal.Records(db.wal.Base())
	if err != nil {
		t.Fatal(err)
	}
	// Earlier checkpoints (the DDL fences) also left record pairs in the
	// log — segment-granular truncation keeps them until a whole prefix
	// segment seals — so only the LAST pair is the one taken with the held
	// transaction active.
	beginIdx, endIdx := -1, -1
	for i, r := range recs {
		switch r.Kind {
		case LogCheckpointBegin:
			beginIdx = i
		case LogCheckpointEnd:
			endIdx = i
		}
	}
	if beginIdx < 0 || endIdx < 0 || endIdx < beginIdx {
		t.Fatalf("checkpoint records not bracketed: begin=%d end=%d", beginIdx, endIdx)
	}
	dpt, active, err := decodeCheckpointInfo(recs[beginIdx].Data)
	if err != nil {
		t.Fatalf("begin-checkpoint payload: %v", err)
	}
	if _, ok := active[held.ID()]; !ok {
		t.Fatalf("active txn %d missing from checkpoint record (got %v)", held.ID(), active)
	}
	if len(dpt) == 0 {
		t.Fatal("expected a non-empty dirty-page table (held txn dirtied a page)")
	}
	if err := held.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointHorizonBoundedByActiveTxn: the WAL keeps every record an
// active transaction might need for rollback; once the transaction
// resolves, the next checkpoint reclaims every sealed prefix segment.
func TestCheckpointHorizonBoundedByActiveTxn(t *testing.T) {
	walDev := NewMemWALStore()
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny segments so the workload seals many and truncation has
	// segment boundaries to work with.
	wal.SetSegmentTarget(256)
	db, err := Open(NewMemPager(), wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "t", Columns: []ColumnDef{{Name: "v", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	held := db.Begin()
	if _, err := held.Insert("t", Tuple{NewInt(-1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("t", Tuple{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if base := db.wal.Base(); base > held.firstLSN {
		t.Fatalf("horizon %d passed active txn firstLSN %d", base, held.firstLSN)
	}
	// The held txn's records must still be readable for rollback.
	recs, err := db.wal.Records(held.firstLSN)
	if err != nil {
		t.Fatal(err)
	}
	foundBegin := false
	for _, r := range recs {
		if r.Kind == LogBegin && r.Txn == held.ID() {
			foundBegin = true
		}
	}
	if !foundBegin {
		t.Fatal("active txn's BEGIN record truncated away")
	}
	if err := held.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := wal.SegmentCount(); n != 1 {
		t.Fatalf("idle checkpoint left %d segments, want 1 (every sealed prefix segment reclaimed)", n)
	}
	// LSNs stay monotonic across the truncation: the next record's LSN
	// continues past everything ever logged.
	before := db.wal.FlushedLSN()
	tx := db.Begin()
	if tx.firstLSN < before {
		t.Fatalf("LSN rewound after truncation: %d < %d", tx.firstLSN, before)
	}
	tx.Commit()
}

// buildSegmentedWAL appends n records with a flush (and therefore a
// possible rotation) after each, so the log spans many small segments.
func buildSegmentedWAL(t *testing.T, target int64, n int) (*MemWALStore, *WAL, []LSN) {
	t.Helper()
	store := NewMemWALStore()
	w, err := NewWALOn(store)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSegmentTarget(target)
	var lsns []LSN
	for i := 0; i < n; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
			Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}}))
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return store, w, lsns
}

// TestWALSegmentTruncationCrashSafety exercises TruncateTo's
// manifest-swap protocol directly at every interruption point: schedule
// a crash at each I/O of a truncation over a many-segment log, then
// crash-rewind the store adversarially (every unsynced directory op
// lost) and assert the surviving records are intact with their original
// LSNs — whether the reopen finds the old manifest over intact files,
// the new manifest over not-yet-removed orphans, or the finished log.
func TestWALSegmentTruncationCrashSafety(t *testing.T) {
	const records = 40
	const keepFrom = 30
	// Count the truncation's I/O ops with a fault-free injector pass.
	store, _, lsns := buildSegmentedWAL(t, 128, records)
	horizon := lsns[keepFrom]
	inj := NewFaultInjector()
	fw, err := NewWALOn(NewFaultWALStore(store, inj))
	if err != nil {
		t.Fatal(err)
	}
	opsBefore := inj.Ops()
	if err := fw.TruncateTo(horizon); err != nil {
		t.Fatal(err)
	}
	total := inj.Ops() - opsBefore
	if total < 4 {
		t.Fatalf("truncation used only %d ops; protocol missing steps?", total)
	}
	verify := func(store *MemWALStore, lsns []LSN, horizon LSN, tag string) {
		w, err := NewWALOn(store)
		if err != nil {
			t.Fatalf("%s: reopen: %v", tag, err)
		}
		recs, err := w.Records(horizon)
		if err != nil {
			t.Fatalf("%s: records: %v", tag, err)
		}
		if len(recs) != records-keepFrom {
			t.Fatalf("%s: %d surviving records, want %d", tag, len(recs), records-keepFrom)
		}
		for i, r := range recs {
			if r.LSN != lsns[keepFrom+i] || r.Txn != TxnID(keepFrom+i) {
				t.Fatalf("%s: record %d has LSN %d txn %d, want LSN %d txn %d",
					tag, i, r.LSN, r.Txn, lsns[keepFrom+i], keepFrom+i)
			}
		}
		// The log must keep working: append + flush + read back.
		newLSN := w.Append(&LogRecord{Kind: LogCommit, Txn: 999})
		if newLSN < lsns[records-1] {
			t.Fatalf("%s: post-truncation LSN %d rewound below %d", tag, newLSN, lsns[records-1])
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("%s: flush after reopen: %v", tag, err)
		}
	}
	for op := int64(0); op < total; op++ {
		store, w, lsns := buildSegmentedWAL(t, 128, records)
		_ = w
		inj := NewFaultInjector()
		fw, err := NewWALOn(NewFaultWALStore(store, inj))
		if err != nil {
			t.Fatal(err)
		}
		skip := inj.Ops() // open may have consumed ops (none expected, but robust)
		inj.Schedule(skip+op, FaultCrash)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(CrashSignal); !ok {
						panic(r)
					}
				}
			}()
			fw.TruncateTo(lsns[keepFrom])
		}()
		store.Crash(nil) // drop every unsynced dir op and byte: the adversarial case
		verify(store, lsns, lsns[keepFrom], fmt.Sprintf("crash@%d", op))
	}
}

// TestWALSegmentGranularTruncation: deletion is whole-segment only. A
// horizon inside the only segment reclaims nothing (and must be a clean
// no-op); once the log spans segments, truncation advances the base to
// the greatest segment boundary at or below the horizon — never past it.
func TestWALSegmentGranularTruncation(t *testing.T) {
	store := NewMemWALStore()
	w, err := NewWALOn(store)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 8; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogInsert, Txn: TxnID(i), Table: "t",
			Row: RID{Page: 1, Slot: uint16(i)}, After: Tuple{NewInt(int64(i))}}))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := store.DiskBytes()
	// Mid-segment horizon with one segment: nothing to delete.
	if err := w.TruncateTo(lsns[4]); err != nil {
		t.Fatal(err)
	}
	if base := w.Base(); base != 0 {
		t.Fatalf("mid-segment truncation moved the base to %d; must be a no-op", base)
	}
	if size := store.DiskBytes(); size != sizeBefore {
		t.Fatalf("mid-segment truncation touched the store (%d -> %d bytes)", sizeBefore, size)
	}
	recs, err := w.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("%d records after no-op truncation, want 8", len(recs))
	}
	// Rotate into many small segments; now truncation has boundaries.
	w.SetSegmentTarget(128)
	for i := 8; i < 30; i++ {
		lsns = append(lsns, w.Append(&LogRecord{Kind: LogCommit, Txn: TxnID(i)}))
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 3 {
		t.Fatalf("rotation did not happen: %d segments", w.SegmentCount())
	}
	if err := w.TruncateTo(lsns[28]); err != nil {
		t.Fatal(err)
	}
	base := w.Base()
	if base == 0 || base > lsns[28] {
		t.Fatalf("truncation base %d not in (0, horizon %d]", base, lsns[28])
	}
	recs, err = w.Records(lsns[28])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records at or past the horizon, want 2", len(recs))
	}
	if recs[0].LSN != lsns[28] || recs[1].LSN != lsns[29] {
		t.Fatalf("surviving records carry LSNs %d,%d; want %d,%d", recs[0].LSN, recs[1].LSN, lsns[28], lsns[29])
	}
}

// TestWALTruncationErrorIsRecoverable: unlike the retired copy-down
// protocol (where a mid-protocol error left the base/physical mapping
// unreliable and poisoned the WAL), a clean error during the manifest
// swap leaves both the old and new manifest describing a consistent log
// — the WAL keeps serving, and a later truncation succeeds.
func TestWALTruncationErrorIsRecoverable(t *testing.T) {
	store, _, lsns := buildSegmentedWAL(t, 128, 40)
	inj := NewFaultInjector()
	w, err := NewWALOn(NewFaultWALStore(store, inj))
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first truncation I/O (the manifest swap) cleanly.
	inj.Schedule(inj.Ops(), FaultError)
	if err := w.TruncateTo(lsns[30]); err == nil {
		t.Fatal("truncation with injected error must fail")
	}
	if base := w.Base(); base != 0 {
		t.Fatalf("failed truncation advanced the base to %d", base)
	}
	// Not poisoned: appends, flushes, and reads keep working.
	w.Append(&LogRecord{Kind: LogCommit, Txn: 999})
	if err := w.Flush(); err != nil {
		t.Fatalf("WAL unusable after clean truncation error: %v", err)
	}
	recs, err := w.Records(lsns[30])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("%d records past the horizon after failed truncation, want 11", len(recs))
	}
	// The retry (no fault armed) reclaims the prefix.
	if err := w.TruncateTo(lsns[30]); err != nil {
		t.Fatal(err)
	}
	if base := w.Base(); base == 0 || base > lsns[30] {
		t.Fatalf("retried truncation base %d not in (0, horizon %d]", base, lsns[30])
	}
}

// TestDroppedTableRecordsDoNotReplayIntoNewIncarnation: with fuzzy
// checkpoints a long-running transaction holds the WAL-truncation
// horizon back across a DROP TABLE + CREATE TABLE of the same name, so
// the old incarnation's records survive in the log. Recovery must fence
// them out via the table's birth LSN — replaying them would write ghost
// rows into (and adopt the dropped incarnation's pages into) the new
// table.
func TestDroppedTableRecordsDoNotReplayIntoNewIncarnation(t *testing.T) {
	pageDev, walDev := NewMemDevice(), NewMemWALStore()
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pin", "kv"} {
		if err := db.CreateTable(TableSchema{Name: name, Columns: []ColumnDef{
			{Name: "k", Type: TInt}, {Name: "v", Type: TString},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// The horizon holder: begins first, stays open across the DDL.
	holder := db.Begin()
	if _, err := holder.Insert("pin", Tuple{NewInt(0), NewString("pin")}); err != nil {
		t.Fatal(err)
	}
	// Old incarnation content, committed and durable.
	tx := db.Begin()
	for i := 0; i < 20; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString("old-incarnation")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	// The DDL checkpoints could not truncate past the holder's BEGIN, so
	// the old incarnation's records are still in the log.
	if base := db.wal.Base(); base > holder.firstLSN {
		t.Fatalf("precondition: horizon %d passed holder firstLSN %d", base, holder.firstLSN)
	}
	tx2 := db.Begin()
	if _, err := tx2.Insert("kv", Tuple{NewInt(100), NewString("new-incarnation")}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash with the holder unresolved; only synced bytes survive.
	pageDev.Crash(nil)
	walDev.Crash(nil)
	re, pager2 := reopenClean(t, pageDev, walDev)
	if err := pager2.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	got := scanKV(t, re)
	if len(got) != 1 || got[100] != "new-incarnation" {
		t.Fatalf("recreated table holds %v after recovery; old incarnation's records leaked past its birth LSN", got)
	}
	re.Close()
}

// TestCheckpointConcurrentWithCommitters hammers Checkpoint from one
// goroutine while committers run in others (race detector coverage for
// every fuzzy-checkpoint path), then verifies full consistency.
func TestCheckpointConcurrentWithCommitters(t *testing.T) {
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(NewMemWALStore())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	const (
		workers       = 4
		txnsPerWorker = 30
	)
	stop := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	var ckptRuns int
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				t.Errorf("concurrent checkpoint: %v", err)
				return
			}
			ckptRuns++
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				k := int64(g*txnsPerWorker + i)
				tx := db.Begin()
				if _, err := tx.Insert("kv", Tuple{NewInt(k), NewString(fmt.Sprintf("w%d-%d", g, i))}); err != nil {
					errs <- err
					tx.Abort()
					return
				}
				if i%5 == 4 {
					tx.Abort() // aborts interleaved with checkpoints too
					continue
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	ckptWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ckptRuns == 0 {
		t.Fatal("checkpointer never ran")
	}
	want := workers * txnsPerWorker * 4 / 5
	got := scanKV(t, db)
	if len(got) != want {
		t.Fatalf("rows after concurrent checkpoints: %d, want %d", len(got), want)
	}
	verifyDerivedState(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d checkpoints interleaved with %d txns", ckptRuns, workers*txnsPerWorker)
}
