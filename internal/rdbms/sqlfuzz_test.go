package rdbms

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Randomized equivalence fuzz for the three ORDER BY execution paths:
// the full materialize + stable sort (ORDER BY without LIMIT), the
// bounded top-k heap (ORDER BY + LIMIT on an unindexed key), and the
// index-order scan (ORDER BY + LIMIT on an indexed key). Two databases
// with identical content — one fully indexed, one bare — answer random
// sorted queries over generated tables with heavy ties, empty-string
// sort keys, OFFSET, and interleaved deletes; every answer must match
// the reference produced by slicing the full sort.

func TestOrderByPathEquivalenceFuzz(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	indexUsed := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			bare := newTestDB(t)
			indexed := newTestDB(t)
			for _, db := range []*DB{bare, indexed} {
				mustExec(t, db, "CREATE TABLE fz (id INT, grp STRING, val FLOAT, label STRING)")
			}
			mustExec(t, indexed, "CREATE INDEX ON fz (id)")
			mustExec(t, indexed, "CREATE INDEX ON fz (grp)")
			mustExec(t, indexed, "CREATE INDEX ON fz (val)")

			rows := 60 + rng.Intn(300)
			for i := 0; i < rows; i++ {
				id := rng.Intn(1 + rows/8) // dense duplicates: tie fodder
				grp := fmt.Sprintf("g%d", rng.Intn(6))
				if rng.Intn(9) == 0 {
					grp = "" // NULL-ish empty sort key
				}
				val := float64(rng.Intn(40))
				stmt := fmt.Sprintf("INSERT INTO fz VALUES (%d, '%s', %g, 'row-%d')", id, grp, val, i)
				for _, db := range []*DB{bare, indexed} {
					mustExec(t, db, stmt)
				}
			}
			// Interleaved deletes, applied identically to both databases.
			for d := 0; d < 4+rng.Intn(6); d++ {
				stmt := fmt.Sprintf("DELETE FROM fz WHERE id = %d", rng.Intn(1+rows/8))
				for _, db := range []*DB{bare, indexed} {
					mustExec(t, db, stmt)
				}
			}

			cols := []string{"id", "grp", "val"}
			for q := 0; q < 40; q++ {
				colIdx := rng.Intn(len(cols))
				col := cols[colIdx]
				dir := ""
				if rng.Intn(2) == 0 {
					dir = " DESC"
				}
				where := ""
				if rng.Intn(3) == 0 {
					where = fmt.Sprintf(" WHERE val < %d", 5+rng.Intn(35))
				}
				base := fmt.Sprintf("SELECT id, grp, val, label FROM fz%s ORDER BY %s%s", where, col, dir)
				offset := 0
				if rng.Intn(2) == 0 {
					offset = rng.Intn(25)
				}
				limit := 1 + rng.Intn(30)
				sql := fmt.Sprintf("%s LIMIT %d", base, limit)
				if offset > 0 {
					sql += fmt.Sprintf(" OFFSET %d", offset)
				}

				// Each database's fast path (bounded top-k heap on the bare
				// one; index-order or index-filtered scans on the indexed
				// one) must byte-match that database's own full stable
				// sort, ties included. Across the two databases tie order
				// — and, when the LIMIT cuts inside a tie group, tie
				// membership — may legitimately differ with the access
				// path, so the cross-check asserts what layout cannot
				// change: the sort-key value at every result position.
				wantBare := refSorted(t, bare, base, offset, limit)
				topk := mustExec(t, bare, sql)
				assertSameRows(t, sql, topk, wantBare)
				wantIdx := refSorted(t, indexed, base, offset, limit)
				idx := mustExec(t, indexed, sql)
				assertSameRows(t, "[indexed] "+sql, idx, wantIdx)
				if len(wantBare) != len(wantIdx) {
					t.Fatalf("%s: result sizes diverge: bare %d, indexed %d", sql, len(wantBare), len(wantIdx))
				}
				for i := range wantBare {
					if wantBare[i][colIdx] != wantIdx[i][colIdx] {
						t.Fatalf("%s: sort key diverges at row %d: bare %q, indexed %q",
							sql, i, wantBare[i][colIdx], wantIdx[i][colIdx])
					}
				}
				if strings.Contains(idx.Plan, "index order scan") {
					indexUsed++
				}
			}
		})
	}
	if indexUsed == 0 {
		t.Fatal("index-order scan path never exercised by the fuzz")
	}
	t.Logf("index-order scans taken: %d", indexUsed)
}
