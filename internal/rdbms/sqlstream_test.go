package rdbms

import (
	"strings"
	"testing"
)

// indexedDB builds a table with an index on val and pop for access-path
// tests, including boundary rows for strict-bound regression checks.
func indexedDB(t *testing.T) *DB {
	t.Helper()
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE m (id INT, grp STRING, val INT)")
	mustExec(t, db, "CREATE INDEX ON m (val)")
	mustExec(t, db, `INSERT INTO m VALUES
		(1, 'a', 10), (2, 'a', 20), (3, 'b', 20), (4, 'b', 30), (5, 'c', 40)`)
	return db
}

// TestStrictBoundsUseResidualFilter is the regression test for the
// access-path contract: strict bounds (>, <) are widened to inclusive
// index ranges and the residual filter must drop the boundary rows.
func TestStrictBoundsUseResidualFilter(t *testing.T) {
	db := indexedDB(t)
	cases := []struct {
		sql  string
		want []int64
	}{
		{"SELECT id FROM m WHERE val > 20 ORDER BY id", []int64{4, 5}},
		{"SELECT id FROM m WHERE val >= 20 ORDER BY id", []int64{2, 3, 4, 5}},
		{"SELECT id FROM m WHERE val < 20 ORDER BY id", []int64{1}},
		{"SELECT id FROM m WHERE val <= 20 ORDER BY id", []int64{1, 2, 3}},
		{"SELECT id FROM m WHERE val > 10 AND val < 40 ORDER BY id", []int64{2, 3, 4}},
	}
	for _, c := range cases {
		rs := mustExec(t, db, c.sql)
		if !strings.Contains(rs.Plan, "index range scan") {
			t.Fatalf("%s: expected index range scan, got plan %q", c.sql, rs.Plan)
		}
		if len(rs.Rows) != len(c.want) {
			t.Fatalf("%s: got %d rows (%v), want %v", c.sql, len(rs.Rows), rs.Rows, c.want)
		}
		for i, w := range c.want {
			if rs.Rows[i][0].I != w {
				t.Fatalf("%s: row %d = %v, want %d", c.sql, i, rs.Rows[i], w)
			}
		}
	}
}

// TestAccessPathPrefersSelectiveEquality checks the cost-based equality
// choice: with two indexed equality conjuncts, the one matching fewer
// entries is chosen.
func TestAccessPathPrefersSelectiveEquality(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE eav (entity STRING, attribute STRING, value INT)")
	mustExec(t, db, "CREATE INDEX ON eav (entity)")
	mustExec(t, db, "CREATE INDEX ON eav (attribute)")
	tx := db.Begin()
	for i := 0; i < 50; i++ {
		ent := "e-narrow"
		if i >= 2 {
			ent = "e-broad"
		}
		if _, err := tx.Insert("eav", Tuple{NewString(ent), NewString("temp"), NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// attribute='temp' matches 50 rows, entity='e-narrow' matches 2: the
	// entity index must win regardless of conjunct order.
	for _, sql := range []string{
		"SELECT value FROM eav WHERE attribute = 'temp' AND entity = 'e-narrow'",
		"SELECT value FROM eav WHERE entity = 'e-narrow' AND attribute = 'temp'",
	} {
		rs := mustExec(t, db, sql)
		if !strings.Contains(rs.Plan, "index eq scan (entity") {
			t.Fatalf("%s: plan %q should use the entity index", sql, rs.Plan)
		}
		if len(rs.Rows) != 2 {
			t.Fatalf("%s: got %d rows", sql, len(rs.Rows))
		}
	}
}

// TestStreamingWhereMatchesMaterialized cross-checks the pushed-down
// filter against the same predicate evaluated the slow way (no index, all
// comparison shapes), including NULL handling.
func TestStreamingWhereMatchesMaterialized(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE s (id INT, name STRING, score FLOAT)")
	mustExec(t, db, `INSERT INTO s VALUES
		(1, 'x', 1.5), (2, 'y', NULL), (3, 'x', 3.5), (4, 'z', 0.5), (5, 'y', 3.5)`)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM s WHERE score > 1", 3},
		{"SELECT id FROM s WHERE score IS NULL", 1},
		{"SELECT id FROM s WHERE name = 'x' AND score > 2", 1},
		{"SELECT id FROM s WHERE name = 'x' OR score < 1", 3},
		{"SELECT id FROM s WHERE score BETWEEN 1 AND 4", 3},
	}
	for _, c := range cases {
		rs := mustExec(t, db, c.sql)
		if len(rs.Rows) != c.want {
			t.Fatalf("%s: got %d rows, want %d", c.sql, len(rs.Rows), c.want)
		}
	}
}

// TestEarlyLimitCorrectness: unordered LIMIT/OFFSET stops the scan early
// but must still honor OFFSET, and must NOT early-stop when ORDER BY,
// DISTINCT, grouping, or a join needs the full row set.
func TestEarlyLimitCorrectness(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (id INT, grp STRING)")
	mustExec(t, db, `INSERT INTO t VALUES
		(1, 'a'), (2, 'a'), (3, 'b'), (4, 'b'), (5, 'c'), (6, 'c')`)

	if rs := mustExec(t, db, "SELECT id FROM t LIMIT 2"); len(rs.Rows) != 2 {
		t.Fatalf("LIMIT 2: %d rows", len(rs.Rows))
	}
	if rs := mustExec(t, db, "SELECT id FROM t LIMIT 2 OFFSET 3"); len(rs.Rows) != 2 || rs.Rows[0][0].I != 4 {
		t.Fatalf("LIMIT 2 OFFSET 3: %+v", rs.Rows)
	}
	if rs := mustExec(t, db, "SELECT id FROM t WHERE grp = 'b' LIMIT 1"); len(rs.Rows) != 1 || rs.Rows[0][0].I != 3 {
		t.Fatalf("filtered LIMIT: %+v", rs.Rows)
	}
	if rs := mustExec(t, db, "SELECT id FROM t LIMIT 0"); len(rs.Rows) != 0 {
		t.Fatalf("LIMIT 0: %d rows", len(rs.Rows))
	}
	// ORDER BY needs all rows: highest id must win, not the first scanned.
	if rs := mustExec(t, db, "SELECT id FROM t ORDER BY id DESC LIMIT 1"); rs.Rows[0][0].I != 6 {
		t.Fatalf("ORDER BY DESC LIMIT 1: %+v", rs.Rows)
	}
	// DISTINCT needs all rows.
	if rs := mustExec(t, db, "SELECT DISTINCT grp FROM t LIMIT 3"); len(rs.Rows) != 3 {
		t.Fatalf("DISTINCT LIMIT: %+v", rs.Rows)
	}
	// Aggregation needs all rows.
	if rs := mustExec(t, db, "SELECT COUNT(*) FROM t LIMIT 1"); rs.Rows[0][0].I != 6 {
		t.Fatalf("COUNT LIMIT: %+v", rs.Rows)
	}
}

// TestKeyEncodingNoCollisions guards the prefix-free key writer: string
// tuples that concatenate identically must stay distinct, and int/float
// values that compare equal must collide (joins across numeric types).
func TestKeyEncodingNoCollisions(t *testing.T) {
	// ("ab","c") vs ("a","bc") — the old "+"-concatenated keys only
	// survived this because of a separator; length prefixes must too.
	k1 := appendTupleKey(nil, Tuple{NewString("ab"), NewString("c")})
	k2 := appendTupleKey(nil, Tuple{NewString("a"), NewString("bc")})
	if string(k1) == string(k2) {
		t.Fatal("string tuple keys collide")
	}
	// A string containing the old separator must not fold.
	k3 := appendTupleKey(nil, Tuple{NewString("a|b")})
	k4 := appendTupleKey(nil, Tuple{NewString("a"), NewString("b")})
	if string(k3) == string(k4) {
		t.Fatal("separator-bearing string collides with split tuple")
	}
	// Numeric cross-type equality must collide (hash join contract).
	if string(appendKey(nil, NewInt(5))) != string(appendKey(nil, NewFloat(5))) {
		t.Fatal("int 5 and float 5.0 should share a key")
	}
	if string(appendKey(nil, NewInt(5))) == string(appendKey(nil, NewFloat(5.5))) {
		t.Fatal("5 and 5.5 must not share a key")
	}
	// NULL, bool, and distinct types stay distinct.
	if string(appendKey(nil, Null())) == string(appendKey(nil, NewBool(false))) {
		t.Fatal("NULL and false collide")
	}

	// End to end: DISTINCT over adversarial strings.
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE d (a STRING, b STRING)")
	mustExec(t, db, `INSERT INTO d VALUES ('ab', 'c'), ('a', 'bc'), ('ab', 'c')`)
	if rs := mustExec(t, db, "SELECT DISTINCT a, b FROM d"); len(rs.Rows) != 2 {
		t.Fatalf("DISTINCT folded distinct tuples: %+v", rs.Rows)
	}
	// GROUP BY with numeric cross-type keys.
	mustExec(t, db, "CREATE TABLE g (k FLOAT, v INT)")
	mustExec(t, db, "INSERT INTO g VALUES (1.0, 10), (1.0, 20), (2.5, 30)")
	if rs := mustExec(t, db, "SELECT k, SUM(v) FROM g GROUP BY k"); len(rs.Rows) != 2 {
		t.Fatalf("GROUP BY: %+v", rs.Rows)
	}
}

// TestJoinWithFilteredBase ensures join queries still apply WHERE after
// the join (the filter may reference both sides) and still use an index
// on the FROM table when the predicate is sargable.
func TestJoinWithFilteredBase(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE l (id INT, rid INT)")
	mustExec(t, db, "CREATE INDEX ON l (id)")
	mustExec(t, db, "CREATE TABLE r (rid INT, tag STRING)")
	mustExec(t, db, "INSERT INTO l VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, db, "INSERT INTO r VALUES (10, 'x'), (20, 'y'), (30, 'x')")
	rs := mustExec(t, db, "SELECT l.id, r.tag FROM l JOIN r ON l.rid = r.rid WHERE l.id = 2 AND r.tag = 'y'")
	if !strings.Contains(rs.Plan, "index eq scan (id") {
		t.Fatalf("join base should use index: plan %q", rs.Plan)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 2 || rs.Rows[0][1].S != "y" {
		t.Fatalf("join rows: %+v", rs.Rows)
	}
	// A cross-side predicate with no sargable FROM conjunct: seq scan, all
	// filtering post-join.
	rs = mustExec(t, db, "SELECT l.id FROM l JOIN r ON l.rid = r.rid WHERE r.tag = 'x'")
	if len(rs.Rows) != 2 {
		t.Fatalf("post-join filter rows: %+v", rs.Rows)
	}
}
