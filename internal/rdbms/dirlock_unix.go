//go:build unix

package rdbms

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDBDir takes an exclusive advisory lock on dir's lock file, so two
// processes (or two OpenDir calls in one process) cannot operate on the
// same database files concurrently — each would maintain its own page
// count and WAL offset over shared bytes and corrupt both. The lock is
// released when the returned file closes (DB.Close) or the process dies,
// so a crash never leaves a stale lock behind.
func lockDBDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("rdbms: database %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
