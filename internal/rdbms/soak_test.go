package rdbms

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Seed-reproducible soak: a randomized workload runs against an
// in-memory shadow model while a background goroutine checkpoints
// continuously, and the database is closed and reopened between phases.
// After every phase the full ORDER BY query result must be byte-for-byte
// identical to what the shadow predicts, and the derived state (index,
// content hash) must agree with the heap. Every failure message carries
// the seed: rerun with that seed to reproduce the exact op sequence.

func TestSoakCheckpointerReopen(t *testing.T) {
	seeds := []int64{21, 22, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSoak(t, seed)
		})
	}
}

func runSoak(t *testing.T, seed int64) {
	pageDev, walDev := NewMemDevice(), NewMemWALStore()
	shadow := map[int64]string{}
	rids := map[int64]RID{}
	rng := rand.New(rand.NewSource(seed))

	const phases = 5
	for phase := 0; phase < phases; phase++ {
		pager, err := NewDevicePager(pageDev)
		if err != nil {
			t.Fatalf("seed %d phase %d: pager: %v", seed, phase, err)
		}
		wal, err := NewWALOn(walDev)
		if err != nil {
			t.Fatalf("seed %d phase %d: wal: %v", seed, phase, err)
		}
		db, err := Open(pager, wal, Options{BufferPages: 12 + int(seed%7)})
		if err != nil {
			t.Fatalf("seed %d phase %d: open: %v", seed, phase, err)
		}
		if phase == 0 {
			if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
				{Name: "k", Type: TInt}, {Name: "v", Type: TString},
			}}); err != nil {
				t.Fatalf("seed %d: create: %v", seed, err)
			}
			if err := db.CreateIndex("kv", "k"); err != nil {
				t.Fatalf("seed %d: index: %v", seed, err)
			}
			if err := db.EnableContentHash("kv", []string{"k", "v"}); err != nil {
				t.Fatalf("seed %d: hash: %v", seed, err)
			}
		}

		// Background checkpointer: fuzzy checkpoints race the workload.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.Checkpoint(); err != nil {
					t.Errorf("seed %d phase %d: background checkpoint: %v", seed, phase, err)
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()

		nTxns := 25 + rng.Intn(20)
		for i := 0; i < nTxns; i++ {
			tx := db.Begin()
			local := map[int64]*string{}
			localRIDs := map[int64]RID{}
			ops := 1 + rng.Intn(6)
			for j := 0; j < ops; j++ {
				k := int64(rng.Intn(40))
				live := func() bool {
					if v, ok := local[k]; ok {
						return v != nil
					}
					_, ok := shadow[k]
					return ok
				}()
				rid, haveRID := localRIDs[k]
				if !haveRID {
					rid, haveRID = rids[k]
				}
				switch {
				case live && rng.Intn(3) == 0: // delete
					if err := tx.Delete("kv", rid); err != nil {
						t.Fatalf("seed %d phase %d txn %d: delete: %v", seed, phase, i, err)
					}
					local[k] = nil
				case live: // update
					v := fmt.Sprintf("s%d-p%d-t%d-o%d-%s", seed, phase, i, j, pad(rng.Intn(250)))
					newRID, err := tx.Update("kv", rid, Tuple{NewInt(k), NewString(v)})
					if err != nil {
						t.Fatalf("seed %d phase %d txn %d: update: %v", seed, phase, i, err)
					}
					localRIDs[k] = newRID
					vv := v
					local[k] = &vv
				default: // insert
					v := fmt.Sprintf("s%d-p%d-t%d-o%d-%s", seed, phase, i, j, pad(rng.Intn(250)))
					newRID, err := tx.Insert("kv", Tuple{NewInt(k), NewString(v)})
					if err != nil {
						t.Fatalf("seed %d phase %d txn %d: insert: %v", seed, phase, i, err)
					}
					localRIDs[k] = newRID
					vv := v
					local[k] = &vv
				}
			}
			if rng.Intn(5) == 0 {
				if err := tx.Abort(); err != nil {
					t.Fatalf("seed %d phase %d txn %d: abort: %v", seed, phase, i, err)
				}
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("seed %d phase %d txn %d: commit: %v", seed, phase, i, err)
			}
			for k, v := range local {
				if v == nil {
					delete(shadow, k)
					delete(rids, k)
				} else {
					shadow[k] = *v
					rids[k] = localRIDs[k]
				}
			}
		}
		close(stop)
		wg.Wait()

		// Byte-identical query results against the shadow model, through
		// the SQL path (index-order scan or sort — both must agree).
		rs, err := db.Exec("SELECT k, v FROM kv ORDER BY k")
		if err != nil {
			t.Fatalf("seed %d phase %d: query: %v", seed, phase, err)
		}
		keys := make([]int64, 0, len(shadow))
		for k := range shadow {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(rs.Rows) != len(keys) {
			t.Fatalf("seed %d phase %d: query returned %d rows, shadow has %d", seed, phase, len(rs.Rows), len(keys))
		}
		for i, k := range keys {
			row := rs.Rows[i]
			if row[0].I != k || row[1].S != shadow[k] {
				t.Fatalf("seed %d phase %d row %d: got (%d,%q), shadow (%d,%q)",
					seed, phase, i, row[0].I, row[1].S, k, shadow[k])
			}
		}
		verifyDerivedState(t, db)
		if err := db.Close(); err != nil {
			t.Fatalf("seed %d phase %d: close: %v", seed, phase, err)
		}
		if err := pager.VerifyChecksums(); err != nil {
			t.Fatalf("seed %d phase %d: checksums: %v", seed, phase, err)
		}
	}
}
