// Package rdbms is a from-scratch miniature relational engine: slotted
// pages, a buffer pool, heap files, B+tree indexes, a write-ahead log with
// crash recovery, strict two-phase-locking transactions, and a SQL subset
// (DDL, INSERT/UPDATE/DELETE, SELECT with filters, joins, grouping,
// ordering). It is the "RDBMS" box in the paper's storage layer: the
// final extracted structure lives here so that many users can edit it
// concurrently with correct concurrency control.
package rdbms

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates column types.
type Type uint8

const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBool:
		return "BOOL"
	case TNull:
		return "NULL"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType parses a SQL type name.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return TFloat, nil
	case "STRING", "TEXT", "VARCHAR":
		return TString, nil
	case "BOOL", "BOOLEAN":
		return TBool, nil
	}
	return TNull, fmt.Errorf("rdbms: unknown type %q", s)
}

// Value is a dynamically typed SQL value.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
	B    bool
}

// Convenience constructors.
func NewInt(i int64) Value     { return Value{Type: TInt, I: i} }
func NewFloat(f float64) Value { return Value{Type: TFloat, F: f} }
func NewString(s string) Value { return Value{Type: TString, S: s} }
func NewBool(b bool) Value     { return Value{Type: TBool, B: b} }
func Null() Value              { return Value{Type: TNull} }
func (v Value) IsNull() bool   { return v.Type == TNull }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Type {
	case TInt:
		return float64(v.I), true
	case TFloat:
		return v.F, true
	}
	return 0, false
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values. NULL sorts before everything; numeric types
// compare by value across TInt/TFloat; otherwise types must match.
// It returns -1, 0, or +1, and false when the values are incomparable.
func Compare(a, b Value) (int, bool) {
	if a.Type == TNull || b.Type == TNull {
		switch {
		case a.Type == TNull && b.Type == TNull:
			return 0, true
		case a.Type == TNull:
			return -1, true
		default:
			return 1, true
		}
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok2 := b.AsFloat(); ok2 {
			switch {
			case af < bf:
				return -1, true
			case af > bf:
				return 1, true
			default:
				return 0, true
			}
		}
		return 0, false
	}
	if a.Type != b.Type {
		return 0, false
	}
	switch a.Type {
	case TString:
		return strings.Compare(a.S, b.S), true
	case TBool:
		switch {
		case a.B == b.B:
			return 0, true
		case !a.B:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// Equal reports comparable equality.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// encodeValue appends a self-describing encoding of v to buf.
func encodeValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Type))
	switch v.Type {
	case TNull:
	case TInt:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
		buf = append(buf, tmp[:]...)
	case TFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		buf = append(buf, tmp[:]...)
	case TString:
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(v.S)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, v.S...)
	case TBool:
		if v.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// decodeValue reads one value from buf, returning it and the bytes consumed.
func decodeValue(buf []byte) (Value, int, error) {
	if len(buf) < 1 {
		return Value{}, 0, fmt.Errorf("rdbms: empty value encoding")
	}
	t := Type(buf[0])
	switch t {
	case TNull:
		return Null(), 1, nil
	case TInt:
		if len(buf) < 9 {
			return Value{}, 0, fmt.Errorf("rdbms: short int encoding")
		}
		return NewInt(int64(binary.LittleEndian.Uint64(buf[1:9]))), 9, nil
	case TFloat:
		if len(buf) < 9 {
			return Value{}, 0, fmt.Errorf("rdbms: short float encoding")
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[1:9]))), 9, nil
	case TString:
		if len(buf) < 5 {
			return Value{}, 0, fmt.Errorf("rdbms: short string header")
		}
		n := int(binary.LittleEndian.Uint32(buf[1:5]))
		if len(buf) < 5+n {
			return Value{}, 0, fmt.Errorf("rdbms: short string body")
		}
		return NewString(string(buf[5 : 5+n])), 5 + n, nil
	case TBool:
		if len(buf) < 2 {
			return Value{}, 0, fmt.Errorf("rdbms: short bool encoding")
		}
		return NewBool(buf[1] == 1), 2, nil
	}
	return Value{}, 0, fmt.Errorf("rdbms: bad type tag %d", buf[0])
}

// Tuple is an ordered list of values conforming to a table schema.
type Tuple []Value

// EncodeTuple serializes a tuple.
func EncodeTuple(t Tuple) []byte {
	var buf []byte
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(t)))
	buf = append(buf, hdr[:]...)
	for _, v := range t {
		buf = encodeValue(buf, v)
	}
	return buf
}

// DecodeTuple parses a tuple serialized by EncodeTuple.
func DecodeTuple(buf []byte) (Tuple, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("rdbms: short tuple header")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if n > 1<<20 {
		return nil, fmt.Errorf("rdbms: implausible tuple arity %d", n)
	}
	out := make(Tuple, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		v, used, err := decodeValue(buf[off:])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		off += used
	}
	return out, nil
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (a, b, c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
