package rdbms

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The concurrency-aware fault suite: committers AND a background fuzzy
// checkpointer run together against fault-injected devices, and the
// process is killed at every mutating I/O index in turn — so kill points
// land inside every window of the fuzzy checkpoint (page flushes, chain
// writes, the catalog write, each step of the WAL prefix truncation)
// while commits are genuinely in flight. After the kill, every other
// goroutine's next I/O also crashes (the injector models the whole
// process dying), the devices drop a random subset of unsynced writes,
// and a clean reopen is checked against a per-transaction oracle:
//
//   - acknowledged commits are fully visible, byte for byte;
//   - unacknowledged transactions are all-or-nothing (keys are unique
//     per transaction, so atomicity is directly observable);
//   - rows a transaction deleted before committing never resurface;
//   - no row the workload never wrote exists;
//   - the index and the content hash agree with the heap (the
//     index-vs-heap and content-hash oracles), page checksums verify,
//     and a second close/reopen round-trips the state.
//
// The CI crash-recovery job runs this file with -race -count=2.

// ckptFaultOutcome is the oracle's record of one transaction.
type ckptFaultOutcome struct {
	rows  map[int64]string // final state if the txn wins
	dead  []int64          // keys the txn inserted then deleted: never visible
	acked bool             // Commit returned nil before the kill
}

// ckptFaultTxn derives transaction t of worker g deterministically from
// the seed: two fresh keys, optionally an in-txn update of the first and
// an in-txn delete of the second.
func ckptFaultTxn(seed int64, g, t int) (keys [2]int64, vals [2]string, update, del bool) {
	rng := rand.New(rand.NewSource(seed<<20 ^ int64(g)<<10 ^ int64(t)))
	base := int64(g*1000+t) * 2
	keys = [2]int64{base, base + 1}
	vals = [2]string{
		fmt.Sprintf("s%d-w%d-t%d-a-%s", seed, g, t, pad(rng.Intn(220))),
		fmt.Sprintf("s%d-w%d-t%d-b-%s", seed, g, t, pad(rng.Intn(220))),
	}
	update = rng.Intn(3) == 0
	del = !update && rng.Intn(3) == 0
	return
}

// runCkptFaultWorkload executes the concurrent workload against the
// injected devices, returning the recorded outcomes. Scheduled crashes
// panic in whichever goroutine draws the fated I/O; each recovers its
// own CrashSignal and stops, modelling the process dying mid-flight.
func runCkptFaultWorkload(t *testing.T, seed int64, pageDev Device, walDev WALStore, inj *FaultInjector) []*ckptFaultOutcome {
	t.Helper()
	const (
		workers       = 3
		txnsPerWorker = 7
	)
	var mu sync.Mutex
	var outcomes []*ckptFaultOutcome

	db := func() (db *DB) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(CrashSignal); !ok {
					panic(r)
				}
				db = nil
			}
		}()
		pager, err := NewFaultPager(pageDev, inj)
		if err != nil {
			return nil
		}
		wal, err := NewFaultWAL(walDev, inj)
		if err != nil {
			return nil
		}
		d, err := Open(pager, wal, Options{BufferPages: 16})
		if err != nil {
			return nil // the kill (or its aftermath) landed in Open
		}
		if err := d.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
			{Name: "k", Type: TInt}, {Name: "v", Type: TString},
		}}); err != nil {
			return nil
		}
		if err := d.CreateIndex("kv", "k"); err != nil {
			return nil
		}
		if err := d.EnableContentHash("kv", []string{"k", "v"}); err != nil {
			return nil
		}
		return d
	}()
	if db == nil {
		return nil // crash predated the schema; nothing can have committed
	}

	stopCkpt := make(chan struct{})
	var wg, ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() { // the background fuzzy checkpointer
		defer ckptWG.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(CrashSignal); !ok {
					panic(r)
				}
			}
		}()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				if _, dead := inj.Crashed(); !dead && !errors.Is(err, ErrInjected) && !errors.Is(err, ErrWALPoisoned) {
					t.Errorf("seed %d: checkpoint failed without a crash: %v", seed, err)
				}
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(CrashSignal); !ok {
						panic(r)
					}
				}
			}()
			for i := 0; i < txnsPerWorker; i++ {
				keys, vals, update, del := ckptFaultTxn(seed, g, i)
				o := &ckptFaultOutcome{rows: map[int64]string{}}
				tx := db.Begin()
				rids := [2]RID{}
				ok := true
				for j := 0; j < 2; j++ {
					rid, err := tx.Insert("kv", Tuple{NewInt(keys[j]), NewString(vals[j])})
					if err != nil {
						tx.Abort()
						ok = false
						break
					}
					rids[j] = rid
					o.rows[keys[j]] = vals[j]
				}
				if ok && update {
					v2 := vals[0] + "-v2"
					if _, err := tx.Update("kv", rids[0], Tuple{NewInt(keys[0]), NewString(v2)}); err != nil {
						tx.Abort()
						ok = false
					} else {
						o.rows[keys[0]] = v2
					}
				}
				if ok && del {
					if err := tx.Delete("kv", rids[1]); err != nil {
						tx.Abort()
						ok = false
					} else {
						delete(o.rows, keys[1])
						o.dead = append(o.dead, keys[1])
					}
				}
				if !ok {
					continue // error-aborted: not acked, all-or-nothing still holds
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
				if err := tx.Commit(); err != nil {
					return // in doubt (poisoned WAL / injected aftermath)
				}
				mu.Lock()
				o.acked = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stopCkpt)
	ckptWG.Wait()
	return outcomes
}

// verifyCkptFaultRun reopens cleanly and checks the oracle.
func verifyCkptFaultRun(t *testing.T, tag string, outcomes []*ckptFaultOutcome, pageDev Device, walDev WALStore) {
	t.Helper()
	db, pager := reopenClean(t, pageDev, walDev)
	if err := pager.VerifyChecksums(); err != nil {
		t.Fatalf("%s: checksums after recovery: %v", tag, err)
	}
	if db.Table("kv") == nil {
		for _, o := range outcomes {
			if o.acked {
				t.Fatalf("%s: table lost but txn %v was acknowledged", tag, o.rows)
			}
		}
		return
	}
	got := scanKV(t, db)
	known := map[int64]bool{}
	for _, o := range outcomes {
		present, total := 0, len(o.rows)
		for k, v := range o.rows {
			known[k] = true
			if gv, ok := got[k]; ok {
				if gv != v {
					t.Fatalf("%s: key %d recovered %q, want %q", tag, k, gv, v)
				}
				present++
			}
		}
		for _, k := range o.dead {
			known[k] = true
			if _, ok := got[k]; ok {
				t.Fatalf("%s: deleted key %d resurfaced after recovery", tag, k)
			}
		}
		if present != 0 && present != total {
			t.Fatalf("%s: transaction torn after recovery: %d of %d rows present (%v)", tag, present, total, o.rows)
		}
		if o.acked && present != total {
			t.Fatalf("%s: acknowledged transaction lost: %d of %d rows (%v)", tag, present, total, o.rows)
		}
	}
	for k := range got {
		if !known[k] {
			t.Fatalf("%s: key %d exists but no transaction wrote it", tag, k)
		}
	}
	verifyDerivedState(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("%s: close after recovery: %v", tag, err)
	}
	db2, pager2 := reopenClean(t, pageDev, walDev)
	if err := pager2.VerifyChecksums(); err != nil {
		t.Fatalf("%s: checksums after second reopen: %v", tag, err)
	}
	if got2 := scanKV(t, db2); !kvEqual(got2, got) {
		t.Fatalf("%s: state changed across clean close/reopen", tag)
	}
	verifyDerivedState(t, db2)
	db2.Close()
}

// TestFuzzyCheckpointCrashSuite kills the concurrent workload at every
// mutating I/O index (the count is taken from a fault-free dry run of
// the same seed) and verifies the oracle each time. Concurrency makes
// the op ordering nondeterministic run to run — which is the point: each
// kill index is a randomized-but-reproducible-in-spirit cut through the
// interleaving of commits and checkpoint I/O, and indexes drawn during a
// checkpoint's page flush, chain write, catalog write, or WAL truncation
// kill the process exactly there. Runs where the schedule ends before
// the fated index simply verify the completed-workload state.
func TestFuzzyCheckpointCrashSuite(t *testing.T) {
	seeds := []int64{11, 12}
	if testing.Short() {
		seeds = seeds[:1]
	}
	runs := 0
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dryInj := NewFaultInjector()
			dryPage, dryWAL := NewMemDevice(), NewMemWALStore()
			outcomes := runCkptFaultWorkload(t, seed, dryPage, dryWAL, dryInj)
			if _, dead := dryInj.Crashed(); dead {
				t.Fatal("dry run crashed with no fault scheduled")
			}
			verifyCkptFaultRun(t, "dry", outcomes, dryPage, dryWAL)
			total := dryInj.Ops()
			if total < 40 {
				t.Fatalf("dry run produced only %d injection points", total)
			}
			kindRNG := rand.New(rand.NewSource(seed * 6151))
			for op := int64(0); op < total; op++ {
				kind := FaultCrash
				if kindRNG.Intn(3) == 0 {
					kind = FaultTornWrite
				}
				inj := NewFaultInjector()
				inj.Schedule(op, kind)
				pageDev, walDev := NewMemDevice(), NewMemWALStore()
				outcomes := runCkptFaultWorkload(t, seed, pageDev, walDev, inj)
				crashRNG := rand.New(rand.NewSource(seed<<22 ^ op))
				pageDev.Crash(crashRNG)
				walDev.Crash(crashRNG)
				verifyCkptFaultRun(t, fmt.Sprintf("seed=%d op=%d", seed, op), outcomes, pageDev, walDev)
				runs++
			}
			t.Logf("seed %d: %d concurrent-checkpoint kill points", seed, total)
		})
	}
	if !testing.Short() && runs < 150 {
		t.Fatalf("concurrent checkpoint fault suite executed %d runs, want >= 150", runs)
	}
	t.Logf("fuzzy-checkpoint crash suite: %d injection runs with live committers", runs)
}
