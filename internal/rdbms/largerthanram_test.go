package rdbms

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Larger-than-RAM serving oracles: a heap an order of magnitude bigger
// than the buffer pool must serve point reads, full scans, and ORDER BY
// byte-identically to an uncapped pool, inside the frame cap, with the
// scan-resistant (segmented-LRU) replacement keeping a hot working set
// cached through scan interference — which a flat LRU demonstrably does
// not.

// buildLTRRows makes n distinct ~200-byte rows so the heap spans many
// pages (roughly 17 rows per 4 KiB page).
func buildLTRRows(n int) []Tuple {
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple{NewInt(int64(i)), NewString(fmt.Sprintf("v%06d-%s", i, pad(180)))}
	}
	return rows
}

// openLTRDB builds a DB over in-memory devices with the given frame cap
// and replacement policy and bulk-loads rows into table kv.
func openLTRDB(t *testing.T, pages int, flat bool, rows []Tuple) *DB {
	t.Helper()
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(NewMemWALStore())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: pages, FlatLRU: flat})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BulkLoad(context.Background(), "kv", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestLargerThanRAMServing: the memory-bounded oracle. A 16-frame pool
// serves a heap >= 10x its capacity; every query answer is byte-identical
// to an effectively-uncapped pool over the same data; the pool never
// holds more frames than its cap; and repeated full scans do not grow the
// process heap (the working set is the pool, not the table).
func TestLargerThanRAMServing(t *testing.T) {
	const frames = 16
	rows := buildLTRRows(4000)
	capped := openLTRDB(t, frames, false, rows)
	defer capped.Close()
	uncapped := openLTRDB(t, 4096, false, rows)
	defer uncapped.Close()

	if np := capped.bp.NumPages(); int(np) < 10*frames {
		t.Fatalf("heap spans %d pages, want >= %d (10x the %d-frame pool)", np, 10*frames, frames)
	}

	queries := []string{
		"SELECT k, v FROM kv WHERE k = 0",
		"SELECT k, v FROM kv WHERE k = 137",
		"SELECT k, v FROM kv WHERE k = 3891",
		"SELECT k FROM kv ORDER BY k LIMIT 25",
		"SELECT k, v FROM kv ORDER BY k DESC LIMIT 7",
		"SELECT k FROM kv WHERE k = 2048",
	}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			want, err := uncapped.Exec(q)
			if err != nil {
				t.Fatalf("uncapped %q: %v", q, err)
			}
			got, err := capped.Exec(q)
			if err != nil {
				t.Fatalf("capped %q: %v", q, err)
			}
			if got.String() != want.String() {
				t.Fatalf("round %d query %q diverged under the frame cap:\ncapped:\n%s\nuncapped:\n%s",
					round, q, got.String(), want.String())
			}
			if st := capped.BufferStats(); st.Resident > st.Capacity || st.Capacity != frames {
				t.Fatalf("pool overran its cap: %d resident of %d", st.Resident, st.Capacity)
			}
		}
		// A full scan between rounds: the next round's answers must not
		// change, and the cap must hold through it.
		n := 0
		if err := capped.Table("kv").Heap.Scan(func(RID, Tuple) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != len(rows) {
			t.Fatalf("full scan saw %d rows, want %d", n, len(rows))
		}
	}
	st := capped.BufferStats()
	if st.ScanBypass == 0 {
		t.Fatal("sequential scans never took the scan-hinted admission path")
	}
	if st.Evictions == 0 {
		t.Fatal("a 10x-pool workload evicted nothing; cap not enforced?")
	}

	// Bounded memory: repeated full scans over the 10x heap must not
	// accumulate — post-GC heap growth stays far below the table size.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 5; i++ {
		if err := capped.Table("kv").Heap.Scan(func(RID, Tuple) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 4<<20 {
		t.Fatalf("5 full scans grew the post-GC heap by %d bytes; scans are accumulating state", grew)
	}
}

// TestLargerThanRAMScanResistance: the replacement-policy oracle. A hot
// set of 8 pages is point-read between full-table scans on a 16-frame
// pool. The segmented LRU holds the hot set in its protected queue
// through every scan (point-read hit rate near 1); the flat LRU is wiped
// by each scan (hit rate near 0). Run on both policies via Options so
// the flat baseline demonstrably fails the same oracle.
func TestLargerThanRAMScanResistance(t *testing.T) {
	const (
		frames  = 16
		hotSize = 8
		rounds  = 10
	)
	rows := buildLTRRows(3000)
	rates := map[string]float64{}
	for _, mode := range []struct {
		name string
		flat bool
	}{{"slru", false}, {"flat", true}} {
		db := openLTRDB(t, frames, mode.flat, rows)
		h := db.Table("kv").Heap

		// Pick hot RIDs spread across the heap so they land on distinct
		// pages.
		var all []RID
		if err := h.Scan(func(rid RID, _ Tuple) bool { all = append(all, rid); return true }); err != nil {
			t.Fatal(err)
		}
		hot := make([]RID, hotSize)
		seen := map[PageID]bool{}
		for i := range hot {
			rid := all[i*len(all)/hotSize]
			if seen[rid.Page] {
				t.Fatalf("hot set not page-distinct: page %d twice", rid.Page)
			}
			seen[rid.Page] = true
			hot[i] = rid
		}
		// Warm the hot set: the re-reference promotes it to protected
		// under SLRU.
		for pass := 0; pass < 3; pass++ {
			for _, rid := range hot {
				if _, ok, err := h.Get(rid); err != nil || !ok {
					t.Fatalf("warm get %v: ok=%v err=%v", rid, ok, err)
				}
			}
		}

		var pointHits, pointTotal int64
		for r := 0; r < rounds; r++ {
			if err := h.Scan(func(RID, Tuple) bool { return true }); err != nil {
				t.Fatal(err)
			}
			before := db.BufferStats()
			for _, rid := range hot {
				if _, ok, err := h.Get(rid); err != nil || !ok {
					t.Fatalf("hot get %v: ok=%v err=%v", rid, ok, err)
				}
			}
			after := db.BufferStats()
			pointHits += after.Hits - before.Hits
			pointTotal += hotSize
		}
		rates[mode.name] = float64(pointHits) / float64(pointTotal)
		st := db.BufferStats()
		if mode.flat && st.Promotions != 0 {
			t.Fatalf("flat LRU recorded %d promotions", st.Promotions)
		}
		if !mode.flat && st.Promotions == 0 {
			t.Fatal("SLRU never promoted a re-referenced page")
		}
		db.Close()
	}
	t.Logf("hot point-read hit rate under scan interference: slru=%.2f flat=%.2f", rates["slru"], rates["flat"])
	if rates["slru"] < 0.75 {
		t.Fatalf("scan-resistant pool hot hit rate %.2f, want >= 0.75", rates["slru"])
	}
	if rates["flat"] > 0.25 {
		t.Fatalf("flat LRU hot hit rate %.2f under scans; expected it to thrash (<= 0.25) — oracle can't discriminate", rates["flat"])
	}
	if rates["slru"] <= rates["flat"] {
		t.Fatalf("SLRU (%.2f) not better than flat LRU (%.2f)", rates["slru"], rates["flat"])
	}
}

// TestPoolExhaustedSentinelOnEviction: when every frame is pinned, Pin
// fails with an error that wraps ErrPoolExhausted — callers (and the
// server's error mapper) classify it with errors.Is, not string
// matching.
func TestPoolExhaustedSentinelOnEviction(t *testing.T) {
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(pager, nil, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _, err := bp.NewPage()
		if i < 2 {
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			continue
		}
		// Third page with both frames pinned: must refuse, typed.
		if err == nil {
			t.Fatal("NewPage succeeded with every frame pinned")
		}
		if !errors.Is(err, ErrPoolExhausted) {
			t.Fatalf("error %v does not wrap ErrPoolExhausted", err)
		}
	}
	// Releasing one pin clears the condition.
	bp.Unpin(ids[0], false)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatalf("NewPage after Unpin: %v", err)
	}
	bp.Unpin(id, false)
	bp.Unpin(ids[1], false)
	if _, err := bp.Pin(ids[0]); err != nil {
		t.Fatalf("Pin after pressure released: %v", err)
	}
}

// flakyWriteDevice injects a deterministic write failure every Nth write
// while enabled — eviction write-backs fail sporadically mid-storm.
type flakyWriteDevice struct {
	Device
	enabled atomic.Bool
	writes  atomic.Int64
}

var errFlakyWrite = errors.New("injected write failure")

func (d *flakyWriteDevice) WriteAt(p []byte, off int64) (int, error) {
	if d.enabled.Load() && d.writes.Add(1)%13 == 0 {
		return 0, errFlakyWrite
	}
	return d.Device.WriteAt(p, off)
}

// TestConcurrentPinEvictRaceSuite: 8 goroutines hammer a capacity-2 pool
// (run under -race by the CI crash job) with shared read pins, scan
// pins, and private dirty pages, while eviction write-backs sporadically
// fail. Invariants: a pinned frame is never evicted out from under its
// holder (the buffer keeps serving that page's bytes), pin failures are
// only the typed exhaustion/injected errors, and after the storm every
// page's last stamped LSN and payload survive a full flush — the recLSN
// bookkeeping lost nothing.
func TestConcurrentPinEvictRaceSuite(t *testing.T) {
	const (
		workers     = 8
		sharedPages = 6
		iters       = 1500
		markerOff   = 64
	)
	flaky := &flakyWriteDevice{Device: NewMemDevice()}
	pager, err := NewDevicePager(flaky)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(NewMemWALStore())
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(pager, wal, 2)

	// Seed shared pages 0..5 (read-only in the storm) and one private
	// page per worker, each stamped with its id at markerOff.
	total := sharedPages + workers
	pageIDs := make([]PageID, total)
	for i := 0; i < total; i++ {
		id, data, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(data[markerOff:], uint64(id))
		bp.Unpin(id, true)
		pageIDs[i] = id
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}

	flaky.enabled.Store(true)
	lastLSN := make([]LSN, workers) // final stamped LSN of each private page
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			private := pageIDs[sharedPages+g]
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1: // shared read, point-read path
					pid := pageIDs[(g+i)%sharedPages]
					data, err := bp.Pin(pid)
					if err != nil {
						if !errors.Is(err, ErrPoolExhausted) && !errors.Is(err, errFlakyWrite) {
							errCh <- fmt.Errorf("worker %d: pin %d: unexpected error %w", g, pid, err)
							return
						}
						continue
					}
					if got := PageID(binary.LittleEndian.Uint64(data[markerOff:])); got != pid {
						errCh <- fmt.Errorf("worker %d: pinned page %d but frame holds page %d's bytes", g, pid, got)
						bp.Unpin(pid, false)
						return
					}
					runtime.Gosched() // widen the window for a racing eviction
					if got := PageID(binary.LittleEndian.Uint64(data[markerOff:])); got != pid {
						errCh <- fmt.Errorf("worker %d: page %d's frame was stolen while pinned", g, pid)
						bp.Unpin(pid, false)
						return
					}
					bp.Unpin(pid, false)
				case 2: // shared read, scan-hinted path
					pid := pageIDs[(g*3+i)%sharedPages]
					data, err := bp.PinScan(pid)
					if err != nil {
						if !errors.Is(err, ErrPoolExhausted) && !errors.Is(err, errFlakyWrite) {
							errCh <- fmt.Errorf("worker %d: pinscan %d: unexpected error %w", g, pid, err)
							return
						}
						continue
					}
					if got := PageID(binary.LittleEndian.Uint64(data[markerOff:])); got != pid {
						errCh <- fmt.Errorf("worker %d: scan-pinned page %d but frame holds page %d's bytes", g, pid, got)
						bp.Unpin(pid, false)
						return
					}
					bp.Unpin(pid, false)
				case 3: // private logged mutation: append, stamp, dirty
					data, err := bp.Pin(private)
					if err != nil {
						if !errors.Is(err, ErrPoolExhausted) && !errors.Is(err, errFlakyWrite) {
							errCh <- fmt.Errorf("worker %d: pin private %d: unexpected error %w", g, private, err)
							return
						}
						continue
					}
					lsn := wal.Append(&LogRecord{Kind: LogUpdate, Txn: TxnID(g + 1),
						Row: RID{Page: private, Slot: uint16(i)}})
					binary.LittleEndian.PutUint64(data[8:16], uint64(lsn))
					binary.LittleEndian.PutUint64(data[markerOff:], uint64(private))
					binary.LittleEndian.PutUint64(data[markerOff+8:], uint64(i))
					lastLSN[g] = lsn
					bp.Unpin(private, true)
				}
				if i%97 == 0 {
					// Exercise the recLSN surfaces under contention.
					bp.MinRecLSN()
					bp.DirtyPageTable()
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Storm over: with faults off, everything must flush, and each
	// private page's durable image must carry its LAST stamped LSN and
	// marker — eviction failures along the way lost no dirty state and
	// never dropped a recLSN early.
	flaky.enabled.Store(false)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := bp.MinRecLSN(); ok {
		t.Fatalf("dirty recLSN %d survives a successful full flush", got)
	}
	buf := make([]byte, PageSize)
	for g := 0; g < workers; g++ {
		pid := pageIDs[sharedPages+g]
		if err := pager.ReadPage(pid, buf); err != nil {
			t.Fatal(err)
		}
		if got := pageLSNOf(buf); got != lastLSN[g] {
			t.Fatalf("private page %d durable at LSN %d, want last stamped %d", pid, got, lastLSN[g])
		}
		if got := PageID(binary.LittleEndian.Uint64(buf[markerOff:])); got != pid {
			t.Fatalf("private page %d holds page %d's bytes on disk", pid, got)
		}
	}
	for i := 0; i < sharedPages; i++ {
		if err := pager.ReadPage(pageIDs[i], buf); err != nil {
			t.Fatal(err)
		}
		if got := PageID(binary.LittleEndian.Uint64(buf[markerOff:])); got != pageIDs[i] {
			t.Fatalf("shared page %d corrupted: marker %d", pageIDs[i], got)
		}
	}
}
