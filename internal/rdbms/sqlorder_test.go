package rdbms

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The sorted-query equivalence suite: every fast path (bounded top-k heap,
// index-order scan) must return exactly what the full stable sort
// produces — same rows, same order, including tie order — across ties,
// OFFSET, DESC, and empty-string ("NULL-ish") values.

// orderedDB builds a table exercising duplicates and empty values. id is
// indexed (for index-order scans), val is not (for heap top-k), and grp
// has heavy duplication for tie-order checks.
func orderedDB(t *testing.T, rows int, indexID bool) *DB {
	t.Helper()
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE ord (id INT, grp STRING, val FLOAT, label STRING)")
	if indexID {
		mustExec(t, db, "CREATE INDEX ON ord (id)")
		mustExec(t, db, "CREATE INDEX ON ord (grp)")
	}
	tx := db.Begin()
	for i := 0; i < rows; i++ {
		grp := fmt.Sprintf("g%d", i%5)
		if i%11 == 0 {
			grp = "" // NULL-ish empty value in the sort key
		}
		if _, err := tx.Insert("ord", Tuple{
			NewInt(int64(i % 17)), // duplicated ids: tie fodder for the index path
			NewString(grp),
			NewFloat(float64(i % 23)),
			NewString(fmt.Sprintf("row-%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// refSorted executes the query WITHOUT its LIMIT/OFFSET — which takes the
// classic full-materialize + stable-sort path — and applies OFFSET/LIMIT
// by slicing. That is the semantics every fast path must reproduce.
func refSorted(t *testing.T, db *DB, sqlNoLimit string, offset, limit int) [][]string {
	t.Helper()
	rs := mustExec(t, db, sqlNoLimit)
	rows := rs.Rows
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return renderRows(rows)
}

func renderRows(rows []Tuple) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			out[i][j] = v.String()
		}
	}
	return out
}

func assertSameRows(t *testing.T, sql string, got *ResultSet, want [][]string) {
	t.Helper()
	g := renderRows(got.Rows)
	if !reflect.DeepEqual(g, want) {
		t.Fatalf("%s (plan %q):\ngot  %v\nwant %v", sql, got.Plan, g, want)
	}
}

func TestTopKOrderByEquivalence(t *testing.T) {
	db := orderedDB(t, 300, false)
	cases := []struct {
		base          string // query without LIMIT/OFFSET
		offset, limit int
	}{
		{"SELECT label, val FROM ord ORDER BY val", 0, 10},
		{"SELECT label, val FROM ord ORDER BY val DESC", 0, 10},
		{"SELECT label, grp FROM ord ORDER BY grp", 0, 25},         // empty-string keys sort first
		{"SELECT label, grp FROM ord ORDER BY grp DESC", 5, 25},    // ... and last under DESC
		{"SELECT label FROM ord ORDER BY val, id DESC", 0, 40},     // multi-key
		{"SELECT label FROM ord ORDER BY grp, val DESC, id", 7, 9}, // multi-key + offset
		{"SELECT label, val FROM ord ORDER BY val", 295, 20},       // offset near the end
		{"SELECT label, val FROM ord ORDER BY val", 400, 5},        // offset past the end
		{"SELECT label, val FROM ord ORDER BY val", 0, 0},          // LIMIT 0
		{"SELECT label, val FROM ord ORDER BY val", 0, 1000},       // LIMIT > rows (no bound)
		{"SELECT label, val AS v FROM ord ORDER BY v DESC", 0, 12}, // alias key
		{"SELECT label FROM ord WHERE val >= 5 ORDER BY val", 3, 8},
	}
	for _, c := range cases {
		sql := c.base + fmt.Sprintf(" LIMIT %d", c.limit)
		if c.offset > 0 {
			sql += fmt.Sprintf(" OFFSET %d", c.offset)
		}
		want := refSorted(t, db, c.base, c.offset, c.limit)
		got := mustExec(t, db, sql)
		assertSameRows(t, sql, got, want)
	}
}

func TestIndexOrderScanEquivalence(t *testing.T) {
	db := orderedDB(t, 300, true)
	cases := []struct {
		base          string
		offset, limit int
		wantPlan      string
	}{
		{"SELECT label, id FROM ord ORDER BY id", 0, 10, "index order scan (id)"},
		{"SELECT label, id FROM ord ORDER BY id DESC", 0, 10, "index order scan (id desc)"},
		{"SELECT label, id FROM ord ORDER BY id", 12, 10, "index order scan (id)"},
		{"SELECT label, grp FROM ord ORDER BY grp", 0, 30, "index order scan (grp)"}, // empty strings first
		{"SELECT label, grp FROM ord ORDER BY grp DESC", 0, 30, "index order scan (grp desc)"},
		// Ties: ids repeat every 17 rows; tie order must match the stable sort.
		{"SELECT label FROM ord ORDER BY id", 0, 60, "index order scan (id)"},
		{"SELECT label FROM ord ORDER BY id DESC", 0, 60, "index order scan (id desc)"},
		// Residual (non-sargable) WHERE evaluated during the ordered scan.
		{"SELECT label, id FROM ord WHERE label LIKE 'row-1%' ORDER BY id", 0, 15, "index order scan (id)"},
		// Sargable range on the sort column folds into the scan bounds.
		{"SELECT label, id FROM ord WHERE id >= 3 AND id < 9 ORDER BY id", 0, 20, "index order scan (id)"},
		{"SELECT label, id FROM ord WHERE id > 3 AND id <= 9 ORDER BY id DESC", 2, 20, "index order scan (id desc)"},
		// Alias resolves to the indexed column.
		{"SELECT id AS k, label FROM ord ORDER BY k", 0, 10, "index order scan (id)"},
	}
	for _, c := range cases {
		sql := c.base + fmt.Sprintf(" LIMIT %d", c.limit)
		if c.offset > 0 {
			sql += fmt.Sprintf(" OFFSET %d", c.offset)
		}
		want := refSorted(t, db, c.base, c.offset, c.limit)
		got := mustExec(t, db, sql)
		if got.Plan != c.wantPlan {
			t.Fatalf("%s: plan %q, want %q", sql, got.Plan, c.wantPlan)
		}
		assertSameRows(t, sql, got, want)
	}
}

// TestIndexOrderYieldsToSelectiveEquality: an equality predicate on an
// indexed column must keep the selective eq access path (plus top-k sort)
// rather than walking the whole sort-column index.
func TestIndexOrderYieldsToSelectiveEquality(t *testing.T) {
	db := orderedDB(t, 300, true)
	base := "SELECT label, id FROM ord WHERE grp = 'g3' ORDER BY id"
	sql := base + " LIMIT 10"
	got := mustExec(t, db, sql)
	if !strings.Contains(got.Plan, "index eq scan (grp") {
		t.Fatalf("plan %q should use the grp equality index", got.Plan)
	}
	assertSameRows(t, sql, got, refSorted(t, db, base, 0, 10))
}

// TestIndexOrderSkipsUnsupportedShapes: grouping, DISTINCT, joins,
// multi-key ordering, and missing LIMIT must all take the classic path.
func TestIndexOrderSkipsUnsupportedShapes(t *testing.T) {
	db := orderedDB(t, 100, true)
	for _, sql := range []string{
		"SELECT id, COUNT(*) FROM ord GROUP BY id ORDER BY id LIMIT 5",
		"SELECT DISTINCT id FROM ord ORDER BY id LIMIT 5",
		"SELECT id FROM ord ORDER BY id, val LIMIT 5",
		"SELECT id FROM ord ORDER BY id",
	} {
		rs := mustExec(t, db, sql)
		if strings.Contains(rs.Plan, "index order scan") {
			t.Fatalf("%s: unexpected index order scan (plan %q)", sql, rs.Plan)
		}
	}
}

// TestIndexOrderYieldsToRangeOnOtherColumn: a sargable range on a
// different indexed column bounds the candidate set; the planner must
// keep that range path (plus top-k) instead of walking the whole sort
// index and filtering (regression for a review finding).
func TestIndexOrderYieldsToRangeOnOtherColumn(t *testing.T) {
	db := orderedDB(t, 300, true)
	base := "SELECT label, id FROM ord WHERE grp >= 'g4' ORDER BY id"
	sql := base + " LIMIT 10"
	got := mustExec(t, db, sql)
	if !strings.Contains(got.Plan, "index range scan (grp") {
		t.Fatalf("plan %q should use the grp range index", got.Plan)
	}
	assertSameRows(t, sql, got, refSorted(t, db, base, 0, 10))
}

// TestIndexOrderSeesUncommittedWrites: the ordered scan runs inside the
// statement's own transaction and must see rows inserted earlier in it —
// and deleted rows must not resurface via stale index postings.
func TestIndexOrderAfterDeletes(t *testing.T) {
	db := orderedDB(t, 120, true)
	mustExec(t, db, "DELETE FROM ord WHERE id = 2")
	mustExec(t, db, "DELETE FROM ord WHERE label = 'row-40'")
	base := "SELECT label, id FROM ord ORDER BY id"
	sql := base + " LIMIT 30"
	got := mustExec(t, db, sql)
	if got.Plan != "index order scan (id)" {
		t.Fatalf("plan %q", got.Plan)
	}
	assertSameRows(t, sql, got, refSorted(t, db, base, 0, 30))
}

// TestGroupedTopKEquivalence: grouped queries with ORDER BY + LIMIT use the
// bounded heap over groups; output must match the full sort.
func TestGroupedTopKEquivalence(t *testing.T) {
	db := orderedDB(t, 300, false)
	base := "SELECT grp, COUNT(*), AVG(val) FROM ord GROUP BY grp ORDER BY grp DESC"
	sql := base + " LIMIT 3"
	got := mustExec(t, db, sql)
	assertSameRows(t, sql, got, refSorted(t, db, base, 0, 3))

	base = "SELECT id, SUM(val) AS s FROM ord GROUP BY id ORDER BY s DESC, id"
	sql = base + " LIMIT 4 OFFSET 2"
	got = mustExec(t, db, sql)
	assertSameRows(t, sql, got, refSorted(t, db, base, 2, 4))
}

func TestBTreeGroupedRange(t *testing.T) {
	bt := NewBTreeOrder(4) // tiny order forces splits and deep structure
	const n = 200
	for i := 0; i < n; i++ {
		bt.Insert(NewInt(int64(i%37)), RID{Page: PageID(i / 10), Slot: uint16(i % 10)})
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	collect := func(lo, hi *Value, desc bool) ([]int64, int) {
		var keys []int64
		total := 0
		bt.GroupedRange(lo, hi, desc, func(k Value, rids []RID) bool {
			keys = append(keys, k.I)
			total += len(rids)
			return true
		})
		return keys, total
	}
	keys, total := collect(nil, nil, false)
	if len(keys) != 37 || total != n {
		t.Fatalf("asc full: %d keys, %d entries", len(keys), total)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("asc order violated: %v", keys)
		}
	}
	dkeys, dtotal := collect(nil, nil, true)
	if len(dkeys) != 37 || dtotal != n {
		t.Fatalf("desc full: %d keys, %d entries", len(dkeys), dtotal)
	}
	for i := range dkeys {
		if dkeys[i] != keys[len(keys)-1-i] {
			t.Fatalf("desc is not the reverse of asc: %v vs %v", dkeys, keys)
		}
	}
	lo, hi := NewInt(5), NewInt(11)
	bkeys, _ := collect(&lo, &hi, false)
	if want := []int64{5, 6, 7, 8, 9, 10, 11}; !reflect.DeepEqual(bkeys, want) {
		t.Fatalf("asc bounded: %v, want %v", bkeys, want)
	}
	bdkeys, _ := collect(&lo, &hi, true)
	if want := []int64{11, 10, 9, 8, 7, 6, 5}; !reflect.DeepEqual(bdkeys, want) {
		t.Fatalf("desc bounded: %v, want %v", bdkeys, want)
	}
	// Early stop.
	stops := 0
	bt.GroupedRange(nil, nil, true, func(k Value, _ []RID) bool {
		stops++
		return stops < 3
	})
	if stops != 3 {
		t.Fatalf("early stop after %d callbacks", stops)
	}
}

// TestTopKCollector exercises the bounded heap directly: stable tie order
// and strict bounding.
func TestTopKCollector(t *testing.T) {
	order := []OrderKey{{Expr: ColumnRef{Column: "k"}, Desc: false}}
	tk := newTopK(3, order)
	vals := []int64{5, 1, 5, 2, 5, 0, 5}
	for seq, v := range vals {
		keys := Tuple{NewInt(v)}
		if !tk.accepts(keys) {
			continue
		}
		tk.add(&keyedRow{keys: keys, row: Tuple{NewInt(int64(seq))}, seq: seq})
	}
	got := tk.sorted()
	if len(got) != 3 {
		t.Fatalf("retained %d rows", len(got))
	}
	// Sorted by key: 0 (seq 5), 1 (seq 1), 2 (seq 3).
	wantSeqs := []int64{5, 1, 3}
	for i, kr := range got {
		if kr.row[0].I != wantSeqs[i] {
			t.Fatalf("row %d: seq %d, want %d", i, kr.row[0].I, wantSeqs[i])
		}
	}
}
