package rdbms

import (
	"fmt"
	"math/rand"
	"testing"
)

// Page-LSN property tests: every logged mutation stamps its page, stamps
// are monotonic per page and track the log exactly, and redo is
// idempotent — replaying the same WAL tail twice over recovered pages is
// a no-op.

// lsnWorkload drives a seeded mix of committed and aborted transactions
// and returns the db plus its storage.
func lsnWorkload(t *testing.T, seed int64) (*DB, *DevicePager, *MemDevice, *MemWALStore) {
	t.Helper()
	pageDev, walDev := NewMemDevice(), NewMemWALStore()
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 8}) // tiny pool: steals mid-txn
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rids := map[int64]RID{}
	for i := 0; i < 12; i++ {
		tx := db.Begin()
		for j := 0; j < 1+rng.Intn(6); j++ {
			k := int64(rng.Intn(20))
			if rid, ok := rids[k]; ok && rng.Intn(2) == 0 {
				if _, _, err := tx.db.Table("kv").Heap.Get(rid); err == nil {
					if newRID, err := tx.Update("kv", rid, Tuple{NewInt(k), NewString(pad(rng.Intn(300)))}); err == nil {
						rids[k] = newRID
					}
				}
			} else {
				rid, err := tx.Insert("kv", Tuple{NewInt(k), NewString(pad(rng.Intn(300)))})
				if err != nil {
					t.Fatal(err)
				}
				rids[k] = rid
			}
		}
		if rng.Intn(4) == 0 {
			tx.Abort()
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return db, pager, pageDev, walDev
}

// TestPageLSNTracksLog: after flushing everything, each heap page's
// stamped LSN equals the LSN of the LAST log record targeting that page
// — the stamping discipline (mutate + stamp under one pin, appends in
// mutation order) that redo gating's soundness rests on. Monotonicity
// per page follows: records enumerate in LSN order, so "last" is "max".
func TestPageLSNTracksLog(t *testing.T) {
	db, pager, _, _ := lsnWorkload(t, 7)
	if err := db.wal.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.bp.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := db.wal.Records(db.wal.Base())
	if err != nil {
		t.Fatal(err)
	}
	wantLSN := map[PageID]LSN{}
	for _, r := range recs {
		if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
			continue
		}
		if prev, ok := wantLSN[r.Row.Page]; ok && r.LSN < prev {
			t.Fatalf("page %d records out of LSN order: %d after %d", r.Row.Page, r.LSN, prev)
		}
		wantLSN[r.Row.Page] = r.LSN
	}
	if len(wantLSN) == 0 {
		t.Fatal("workload logged nothing")
	}
	buf := make([]byte, PageSize)
	for pid, want := range wantLSN {
		if err := pager.ReadPage(pid, buf); err != nil {
			t.Fatal(err)
		}
		if got := pageLSNOf(buf); got != want {
			t.Fatalf("page %d stamped %d, want last record LSN %d", pid, got, want)
		}
	}
}

// TestRedoIdempotent: crash, recover, then force-replay the pre-crash
// tail a second time over the recovered pages — every record must be
// gated out by the page LSNs and no page byte may change.
func TestRedoIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db, _, pageDev, walDev := lsnWorkload(t, seed)
			// Flush the WAL (not the pages), then crash: pages are a mix of
			// behind-the-log and (whatever eviction wrote) ahead-of-nothing.
			if err := db.wal.Flush(); err != nil {
				t.Fatal(err)
			}
			tail, err := db.wal.Records(db.checkpointLSN)
			if err != nil {
				t.Fatal(err)
			}
			crashRNG := rand.New(rand.NewSource(seed * 31))
			pageDev.Crash(crashRNG)
			walDev.Crash(crashRNG)

			re, pager := reopenClean(t, pageDev, walDev)
			// Snapshot every page after recovery.
			before := make([][]byte, pager.NumPages())
			for pid := PageID(0); pid < pager.NumPages(); pid++ {
				before[pid] = make([]byte, PageSize)
				if err := pager.ReadPage(pid, before[pid]); err != nil {
					t.Fatal(err)
				}
			}
			// Replay the same tail again, through the same gated redo the
			// recovery used.
			applied := 0
			for _, r := range tail {
				if r.Kind != LogInsert && r.Kind != LogDelete && r.Kind != LogUpdate {
					continue
				}
				tbl := re.Table(r.Table)
				if tbl == nil {
					continue
				}
				sc := SlotContent{}
				if r.Kind != LogDelete {
					sc = SlotContent{Live: true, Tup: r.After}
				}
				did, err := tbl.Heap.RedoSlot(r.Row, sc, r.LSN)
				if err != nil {
					t.Fatalf("re-redo %v @%d: %v", r.Row, r.LSN, err)
				}
				if did {
					applied++
				}
			}
			if applied != 0 {
				t.Fatalf("second replay applied %d records; redo is not idempotent", applied)
			}
			if err := re.bp.Flush(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, PageSize)
			for pid := PageID(0); pid < pager.NumPages(); pid++ {
				if err := pager.ReadPage(pid, buf); err != nil {
					t.Fatal(err)
				}
				if string(buf) != string(before[pid]) {
					t.Fatalf("page %d changed under second replay", pid)
				}
			}
			re.Close()
		})
	}
}

// TestGroupCommitZeroWindowSoloCommit: Options.GroupCommitWindow set to
// zero disables the leader's straggler wait — commits degenerate to
// solo-commit flushing. Concurrency stays correct (followers still ride
// batches that were already buffered), the window simply never opens.
func TestGroupCommitZeroWindowSoloCommit(t *testing.T) {
	pager, err := NewDevicePager(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	walMem := NewMemWALStore()
	wal, err := NewWALOn(walMem)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	db, err := Open(pager, wal, Options{BufferPages: 256, GroupCommitWindow: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				tx := db.Begin()
				if _, err := tx.Insert("kv", Tuple{NewInt(int64(g*100 + i)), NewString("v")}); err != nil {
					done <- err
					return
				}
				if err := tx.Commit(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if opens := db.wal.windowOpens; opens != 0 {
		t.Fatalf("zero window still opened the group wait %d times", opens)
	}
	// Every acknowledged commit durable, exactly as with the window on.
	walMem.Crash(nil)
	db2, _ := reopenClean(t, pager.dev, walMem)
	if got := scanKV(t, db2); len(got) != 80 {
		t.Fatalf("recovered %d rows, want 80", len(got))
	}
}
