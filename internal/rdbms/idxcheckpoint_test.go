package rdbms

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// The reopen matrix: index state on disk can be fresh (checkpoint chains
// plus a WAL tail to replay), checkpointed (the happy bulk-load path),
// stale (a chain stamped by another checkpoint generation), or torn
// (chain bytes corrupted). Loads must succeed only in the first two
// cases; the others must fall back to a heap rebuild — and in every case
// queries answered through the index must match a from-scratch rebuild.

// buildKVDir creates an on-disk db with an indexed kv table of n rows
// and closes it cleanly.
func buildKVDir(t *testing.T, dir string, n int) {
	t.Helper()
	db, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(i % 97)), NewString(fmt.Sprintf("row-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// verifyIndexedDB asserts index integrity and query correctness against
// both the heap and the index-order path, then closes the db.
func verifyIndexedDB(t *testing.T, db *DB, wantRows int) {
	t.Helper()
	idx := db.Table("kv").Indexes["k"]
	if err := idx.CheckInvariants(); err != nil {
		t.Fatalf("index invariants: %v", err)
	}
	if idx.Len() != wantRows {
		t.Fatalf("index has %d entries, want %d", idx.Len(), wantRows)
	}
	// Index lookups must agree with a heap scan, key by key.
	byKey := map[int64]map[RID]bool{}
	total := 0
	tx := db.Begin()
	err := tx.Scan("kv", func(rid RID, tup Tuple) bool {
		if byKey[tup[0].I] == nil {
			byKey[tup[0].I] = map[RID]bool{}
		}
		byKey[tup[0].I][rid] = true
		total++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range byKey {
		rids, err := tx.IndexLookup("kv", "k", NewInt(k))
		if err != nil {
			t.Fatal(err)
		}
		got := map[RID]bool{}
		for _, r := range rids {
			got[r] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d: index rids %v, heap rids %v", k, got, want)
		}
	}
	tx.Commit()
	if total != wantRows {
		t.Fatalf("heap has %d rows, want %d", total, wantRows)
	}
	// An index-order query must produce exactly what the full sort does.
	ordered := mustExec(t, db, "SELECT k, v FROM kv ORDER BY k LIMIT 25")
	reference := mustExec(t, db, "SELECT k, v FROM kv ORDER BY k")
	ref := reference.Rows
	if len(ref) > 25 {
		ref = ref[:25]
	}
	if !reflect.DeepEqual(renderRows(ordered.Rows), renderRows(ref)) {
		t.Fatalf("index-order query diverges from full sort (plan %q)", ordered.Plan)
	}
}

func TestReopenMatrixCheckpointed(t *testing.T) {
	dir := t.TempDir()
	buildKVDir(t, dir, 500)
	db, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if st := db.LastOpenStats(); st.IndexesLoaded != 1 || st.IndexesRebuilt != 0 {
		t.Fatalf("happy reopen should load the checkpointed index, got %+v", st)
	}
	verifyIndexedDB(t, db, 500)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenMatrixRebuildOption(t *testing.T) {
	dir := t.TempDir()
	buildKVDir(t, dir, 300)
	db, err := OpenDir(dir, Options{BufferPages: 512, RebuildIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := db.LastOpenStats(); st.IndexesLoaded != 0 || st.IndexesRebuilt != 1 {
		t.Fatalf("RebuildIndexes should force the fallback, got %+v", st)
	}
	verifyIndexedDB(t, db, 300)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenMatrixFreshTail: chains exist from the last checkpoint but
// the process died with committed work in the WAL tail. The index loads
// from its chain and the tail's deltas are applied on top — no rebuild —
// and the result matches the committed state.
func TestReopenMatrixFreshTail(t *testing.T) {
	pageDev, walDev := NewMemDevice(), NewMemWALStore()
	pager, err := NewDevicePager(pageDev)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := NewWALOn(walDev)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pager, wal, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{Name: "kv", Columns: []ColumnDef{
		{Name: "k", Type: TInt}, {Name: "v", Type: TString},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "k"); err != nil {
		t.Fatal(err)
	}
	var rids []RID
	tx := db.Begin()
	for i := 0; i < 200; i++ {
		rid, err := tx.Insert("kv", Tuple{NewInt(int64(i % 31)), NewString(fmt.Sprintf("pre-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // chains now cover 200 rows
		t.Fatal(err)
	}
	// Post-checkpoint tail: inserts, deletes, and an update, all committed
	// (WAL-durable) but not checkpointed; plus one in-flight loser.
	tx = db.Begin()
	for i := 0; i < 40; i++ {
		if _, err := tx.Insert("kv", Tuple{NewInt(int64(100 + i)), NewString(fmt.Sprintf("tail-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Delete("kv", rids[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Update("kv", rids[7], Tuple{NewInt(999), NewString("moved")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	loser := db.Begin()
	if _, err := loser.Insert("kv", Tuple{NewInt(5000), NewString("loser")}); err != nil {
		t.Fatal(err)
	}
	db.wal.Flush() // the loser's records reach disk, but no verdict

	// Crash: keep only synced bytes.
	pageDev.Crash(nil)
	walDev.Crash(nil)
	re, pager2 := reopenClean(t, pageDev, walDev)
	if err := pager2.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	if st := re.LastOpenStats(); st.IndexesLoaded != 1 || st.IndexesRebuilt != 0 {
		t.Fatalf("tail reopen should load the chain and replay, got %+v", st)
	}
	verifyIndexedDB(t, re, 200+40-1) // 200 pre + 40 tail - 1 delete (the update keeps its row)
	re.Close()
}

// tamperDataFile opens the closed database's data file raw, lets fn
// mutate catalog+pages, and persists the result.
func tamperDataFile(t *testing.T, dir string, fn func(p *DevicePager, cat *catalogData)) {
	t.Helper()
	p, err := OpenFilePager(filepath.Join(dir, DataFileName))
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	if err := p.ReadPage(0, page); err != nil {
		t.Fatal(err)
	}
	cat, err := decodeCatalog(page)
	if err != nil {
		t.Fatal(err)
	}
	fn(p, cat)
	enc, err := encodeCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(0, enc); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenMatrixStaleChain: the catalog names a stamp the chain does
// not carry (simulating a crash that left catalog and chain in different
// checkpoint generations). The load must reject the chain and rebuild —
// never serve index results from another generation's contents.
func TestReopenMatrixStaleChain(t *testing.T) {
	dir := t.TempDir()
	buildKVDir(t, dir, 400)
	tamperDataFile(t, dir, func(p *DevicePager, cat *catalogData) {
		for ti := range cat.tables {
			for ii := range cat.tables[ti].indexes {
				cat.tables[ti].indexes[ii].stamp++ // catalog now expects a generation the chain never saw
			}
		}
	})
	db, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if st := db.LastOpenStats(); st.IndexesRebuilt != 1 || st.IndexesLoaded != 0 {
		t.Fatalf("stale chain must rebuild, got %+v", st)
	}
	verifyIndexedDB(t, db, 400)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The healing checkpoint must leave the next reopen loadable again.
	db2, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if st := db2.LastOpenStats(); st.IndexesLoaded != 1 {
		t.Fatalf("reopen after heal should load, got %+v", st)
	}
	verifyIndexedDB(t, db2, 400)
	db2.Close()
}

// TestReopenMatrixTornChain: flip a byte inside the chain's entry bytes
// (with a valid page frame, as a misdirected or partial write would
// leave after the frame checksum was recomputed). The stream CRC must
// reject it and the index rebuild from the heap.
func TestReopenMatrixTornChain(t *testing.T) {
	dir := t.TempDir()
	buildKVDir(t, dir, 400)
	tamperDataFile(t, dir, func(p *DevicePager, cat *catalogData) {
		first := cat.tables[0].indexes[0].firstPage
		page := make([]byte, PageSize)
		if err := p.ReadPage(first, page); err != nil {
			t.Fatal(err)
		}
		page[idxChainHeader+idxStreamHdr+8] ^= 0xFF
		if err := p.WritePage(first, page); err != nil {
			t.Fatal(err)
		}
	})
	db, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if st := db.LastOpenStats(); st.IndexesRebuilt != 1 || st.IndexesLoaded != 0 {
		t.Fatalf("torn chain must rebuild, got %+v", st)
	}
	verifyIndexedDB(t, db, 400)
	db.Close()
}

// TestReopenMatrixTruncatedChain: break the chain's link structure (next
// pointer into the void) — the reassembly must fail cleanly and rebuild.
func TestReopenMatrixTruncatedChain(t *testing.T) {
	dir := t.TempDir()
	buildKVDir(t, dir, 2000) // enough rows for a multi-page chain
	tamperDataFile(t, dir, func(p *DevicePager, cat *catalogData) {
		first := cat.tables[0].indexes[0].firstPage
		page := make([]byte, PageSize)
		if err := p.ReadPage(first, page); err != nil {
			t.Fatal(err)
		}
		if PageID(binary.LittleEndian.Uint32(page[0:4])) == InvalidPage {
			t.Fatal("test needs a multi-page chain; raise the row count")
		}
		binary.LittleEndian.PutUint32(page[0:4], uint32(InvalidPage)) // chain now ends mid-stream
		if err := p.WritePage(first, page); err != nil {
			t.Fatal(err)
		}
	})
	db, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if st := db.LastOpenStats(); st.IndexesRebuilt != 1 || st.IndexesLoaded != 0 {
		t.Fatalf("truncated chain must rebuild, got %+v", st)
	}
	verifyIndexedDB(t, db, 2000)
	db.Close()
}

// TestIndexChainShrinkReusesPages: a chain that shrinks must keep its
// surplus pages linked so later checkpoints reuse them — repeated
// shrink/grow cycles may not grow the page file.
func TestIndexChainShrinkReusesPages(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE kv (k INT, v STRING)")
	mustExec(t, db, "CREATE INDEX ON kv (k)")
	insert := func(lo, hi int) {
		tx := db.Begin()
		for i := lo; i < hi; i++ {
			if _, err := tx.Insert("kv", Tuple{NewInt(int64(i)), NewString(fmt.Sprintf("v%d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	insert(0, 3000) // multi-page chain
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "DELETE FROM kv WHERE k >= 100") // shrink
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := db.pager.NumPages()
	for cycle := 0; cycle < 3; cycle++ {
		insert(3000+cycle*2900, 3000+cycle*2900+2900) // regrow to the old size
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, "DELETE FROM kv WHERE k >= 100")
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if grown := db.pager.NumPages() - base; grown > 4 {
		t.Fatalf("shrink/grow cycles leaked %d pages (chain pages not reused)", grown)
	}
}

// TestBTreeBulkLoadMatchesInserts: the checkpoint loader's O(n) bulk
// build must produce a tree observationally identical to insert-built.
func TestBTreeBulkLoadMatchesInserts(t *testing.T) {
	ref := NewBTreeOrder(8)
	var keys []Value
	var postings [][]RID
	for i := 0; i < 500; i++ {
		k := NewInt(int64(i * 3))
		rids := []RID{{Page: PageID(i), Slot: 0}}
		if i%7 == 0 {
			rids = append(rids, RID{Page: PageID(i), Slot: 1})
		}
		for _, r := range rids {
			ref.Insert(k, r)
		}
		keys = append(keys, k)
		postings = append(postings, rids)
	}
	bulk, err := newBTreeFromSorted(8, keys, postings)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != ref.Len() {
		t.Fatalf("bulk len %d, ref len %d", bulk.Len(), ref.Len())
	}
	var got, want [][2]any
	bulk.Range(nil, nil, func(k Value, r RID) bool { got = append(got, [2]any{k, r}); return true })
	ref.Range(nil, nil, func(k Value, r RID) bool { want = append(want, [2]any{k, r}); return true })
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bulk-loaded range differs from insert-built")
	}
	// Bulk-loaded trees must keep absorbing inserts and deletes.
	bulk.Insert(NewInt(1), RID{Page: 9999})
	if !bulk.Delete(NewInt(0), RID{Page: 0, Slot: 0}) {
		t.Fatal("delete after bulk load")
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Out-of-order input must be rejected (loader falls back to rebuild).
	if _, err := newBTreeFromSorted(8, []Value{NewInt(2), NewInt(1)}, [][]RID{{{}}, {{}}}); err == nil {
		t.Fatal("out-of-order bulk load must fail")
	}
}

// TestIndexCheckpointSkipsUnchanged: a checkpoint whose indexes did not
// change since the last serialization must not rewrite their chains.
func TestIndexCheckpointSkipsUnchanged(t *testing.T) {
	dir := t.TempDir()
	buildKVDir(t, dir, 100)
	db, err := OpenDir(dir, Options{BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	ip := db.Table("kv").idx["k"]
	stampBefore := ip.stamp
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ip.stamp != stampBefore {
		t.Fatalf("unchanged index was re-serialized (stamp %d -> %d)", stampBefore, ip.stamp)
	}
	// After a write it must be rewritten with a fresh stamp.
	tx := db.Begin()
	if _, err := tx.Insert("kv", Tuple{NewInt(7), NewString("new")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ip.stamp == stampBefore {
		t.Fatal("changed index kept its old chain stamp")
	}
	db.Close()
}
