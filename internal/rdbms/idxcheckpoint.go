package rdbms

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Persistent B+tree index checkpoints.
//
// Indexes used to be rebuilt from a full heap scan at every open — the
// bulk of a reopen's cost. A checkpoint now serializes each index's
// contents (keys in ascending order, posting lists in stored order) into
// a chain of pages through the ordinary pager, stamps the chain with the
// checkpoint's identity, and records the chain head and stamp in the
// catalog. Open loads the index back with an O(n) comparison-free bulk
// build and applies only the WAL tail, instead of rebuilding from the
// heap.
//
// Safety is by validation, not by write ordering: the chain carries the
// checkpoint stamp and a CRC over its entry bytes, and the catalog names
// the stamp it expects. A crash anywhere around a checkpoint leaves
// either a catalog pointing at a fully matching chain (loadable) or some
// mismatch — an old catalog naming a stamp the rewritten chain no longer
// carries, a new catalog whose chain pages never became durable, torn or
// lost pages breaking the CRC — and every mismatch falls back to the
// heap rebuild that was previously unconditional. A stale or torn chain
// can therefore never surface through a query; at worst it costs the old
// rebuild price. Chains are rewritten in place (reusing their pages)
// only when the index actually changed since the last serialization.
//
// Chain page layout: [next PageID u32 | payload (PageSize-4 bytes)].
// Stream layout (spanning the chain payloads):
//   magic "UIX1" | stamp u64 | payloadLen u32 | crc32(payload) u32 |
//   payload: nEntries u32 | per entry: key (value encoding) |
//            nRIDs u32 | (page u32, slot u16)*

const (
	idxChainHeader = 4
	idxChainCap    = PageSize - idxChainHeader
	idxStreamHdr   = 4 + 8 + 4 + 4
	// idxMaxChainPages bounds chain walks against corrupt next pointers
	// (cycles or runaway chains): 1<<18 pages is a 1 GiB index, far past
	// anything this engine stores.
	idxMaxChainPages = 1 << 18
)

var idxMagic = [4]byte{'U', 'I', 'X', '1'}

// serializeIndex renders the tree's entries as a checkpoint stream
// payload (without the stream header).
func serializeIndex(bt *BTree) []byte {
	buf := make([]byte, 4, 1024)
	entries := uint32(0)
	var tmp [6]byte
	bt.GroupedRange(nil, nil, false, func(key Value, rids []RID) bool {
		buf = encodeValue(buf, key)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(rids)))
		buf = append(buf, n[:]...)
		for _, rid := range rids {
			binary.LittleEndian.PutUint32(tmp[0:4], uint32(rid.Page))
			binary.LittleEndian.PutUint16(tmp[4:6], rid.Slot)
			buf = append(buf, tmp[:]...)
		}
		entries++
		return true
	})
	binary.LittleEndian.PutUint32(buf[0:4], entries)
	return buf
}

// indexFromStream parses a checkpoint payload and bulk-builds the tree.
func indexFromStream(payload []byte) (*BTree, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("rdbms: short index stream")
	}
	n := int(binary.LittleEndian.Uint32(payload[0:4]))
	off := 4
	if n < 0 || n > len(payload) {
		return nil, fmt.Errorf("rdbms: implausible index entry count %d", n)
	}
	keys := make([]Value, 0, n)
	postings := make([][]RID, 0, n)
	for i := 0; i < n; i++ {
		key, used, err := decodeValue(payload[off:])
		if err != nil {
			return nil, err
		}
		off += used
		if len(payload) < off+4 {
			return nil, fmt.Errorf("rdbms: truncated index posting count")
		}
		nr := int(binary.LittleEndian.Uint32(payload[off : off+4]))
		off += 4
		if nr <= 0 || len(payload) < off+6*nr {
			return nil, fmt.Errorf("rdbms: truncated index posting list")
		}
		rids := make([]RID, nr)
		for j := 0; j < nr; j++ {
			rids[j] = RID{
				Page: PageID(binary.LittleEndian.Uint32(payload[off : off+4])),
				Slot: binary.LittleEndian.Uint16(payload[off+4 : off+6]),
			}
			off += 6
		}
		keys = append(keys, key)
		postings = append(postings, rids)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("rdbms: %d trailing bytes in index stream", len(payload)-off)
	}
	return newBTreeFromSorted(defaultBTreeOrder, keys, postings)
}

// chainPages walks an existing chain from first, returning its page ids
// in order. The walk stops at the first unreadable page or invalid link;
// the caller reuses whatever prefix survives and allocates the rest.
//
// Reuse safety: chain pages carry no per-page ownership tag, so this
// walk must never hand back a page that belongs to a heap. That holds
// because a dangling or stale next pointer can only exist after a
// failed load — and every failed load forces savedMut=-1, which makes
// the same recover() rewrite the chain (closing checkpoint) before any
// post-open allocation could claim the pointed-to page id. Changes that
// defer or skip that rewrite after a failed load would break this
// invariant; see the allLoaded condition in recover().
func (db *DB) chainPages(first PageID) []PageID {
	var chain []PageID
	buf := make([]byte, PageSize)
	seen := map[PageID]bool{}
	id := first
	for id != InvalidPage && id != 0 && id < db.pager.NumPages() && len(chain) < idxMaxChainPages {
		if seen[id] {
			break
		}
		if err := db.pager.ReadPage(id, buf); err != nil {
			// A torn chain page: it is still a usable page slot (the next
			// write re-frames it), but its link is garbage — stop here.
			chain = append(chain, id)
			break
		}
		seen[id] = true
		chain = append(chain, id)
		id = PageID(binary.LittleEndian.Uint32(buf[:4]))
	}
	return chain
}

// writeIndexChain serializes stream across the chain rooted at first
// (InvalidPage: no chain yet), reusing its pages and allocating more as
// needed, and returns the (possibly new) chain head. Durability rides on
// the catalog write's sync that follows every checkpoint: if any chain
// page fails to persist, the CRC or stamp check at load rejects the
// chain and the index is rebuilt.
func (db *DB) writeIndexChain(first PageID, stamp uint64, payload []byte) (PageID, error) {
	stream := make([]byte, idxStreamHdr, idxStreamHdr+len(payload))
	copy(stream[0:4], idxMagic[:])
	binary.LittleEndian.PutUint64(stream[4:12], stamp)
	binary.LittleEndian.PutUint32(stream[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(stream[16:20], crc32.ChecksumIEEE(payload))
	stream = append(stream, payload...)

	chain := db.chainPages(first)
	need := (len(stream) + idxChainCap - 1) / idxChainCap
	if need == 0 {
		need = 1
	}
	for len(chain) < need {
		id, err := db.pager.Allocate()
		if err != nil {
			return InvalidPage, err
		}
		chain = append(chain, id)
	}
	page := make([]byte, PageSize)
	for i := 0; i < need; i++ {
		for j := range page {
			page[j] = 0
		}
		// The last written page still links to any surplus pages from a
		// longer previous chain: readers stop at the stream's declared
		// length, and keeping the link lets the next checkpoint reuse
		// those pages instead of leaking them on every shrink/regrow
		// cycle (there is no free list to reclaim them otherwise).
		next := InvalidPage
		if i+1 < len(chain) {
			next = chain[i+1]
		}
		binary.LittleEndian.PutUint32(page[0:4], uint32(next))
		lo := i * idxChainCap
		hi := lo + idxChainCap
		if hi > len(stream) {
			hi = len(stream)
		}
		copy(page[idxChainHeader:], stream[lo:hi])
		if err := db.pager.WritePage(chain[i], page); err != nil {
			return InvalidPage, err
		}
	}
	return chain[0], nil
}

// readIndexChain reassembles a chain's stream, validating magic, length,
// and CRC, and returns the stamp and entry payload. Any anomaly — a torn
// page, a broken link, a checksum mismatch — is an error; the caller
// falls back to rebuilding the index from the heap.
func (db *DB) readIndexChain(first PageID) (uint64, []byte, error) {
	if first == InvalidPage || first >= db.pager.NumPages() {
		return 0, nil, fmt.Errorf("rdbms: index chain head %d out of range", first)
	}
	buf := make([]byte, PageSize)
	if err := db.pager.ReadPage(first, buf); err != nil {
		return 0, nil, err
	}
	body := buf[idxChainHeader:]
	if [4]byte(body[0:4]) != idxMagic {
		return 0, nil, fmt.Errorf("rdbms: bad index chain magic at page %d", first)
	}
	stamp := binary.LittleEndian.Uint64(body[4:12])
	plen := int(binary.LittleEndian.Uint32(body[12:16]))
	wantCRC := binary.LittleEndian.Uint32(body[16:20])
	if plen < 0 || plen > idxMaxChainPages*idxChainCap {
		return 0, nil, fmt.Errorf("rdbms: implausible index stream length %d", plen)
	}
	total := idxStreamHdr + plen
	stream := make([]byte, 0, total)
	stream = append(stream, body[:min(len(body), total)]...)
	next := PageID(binary.LittleEndian.Uint32(buf[0:4]))
	pages := 1
	for len(stream) < total {
		if next == InvalidPage || next == 0 || next >= db.pager.NumPages() || pages >= idxMaxChainPages {
			return 0, nil, fmt.Errorf("rdbms: index chain truncated after %d pages", pages)
		}
		if err := db.pager.ReadPage(next, buf); err != nil {
			return 0, nil, err
		}
		body = buf[idxChainHeader:]
		stream = append(stream, body[:min(len(body), total-len(stream))]...)
		next = PageID(binary.LittleEndian.Uint32(buf[0:4]))
		pages++
	}
	payload := stream[idxStreamHdr:]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, nil, fmt.Errorf("rdbms: index chain checksum mismatch at page %d", first)
	}
	return stamp, payload, nil
}

// loadIndexCheckpoint attempts to restore one index from its chain,
// returning nil (fall back to rebuild) on any validation failure: no
// chain, unreadable or torn pages, a stamp from another checkpoint
// generation, a checksum mismatch, or a malformed stream.
func (db *DB) loadIndexCheckpoint(ci catalogIndex) *BTree {
	if db.rebuildIndexes || ci.firstPage == InvalidPage {
		return nil
	}
	stamp, payload, err := db.readIndexChain(ci.firstPage)
	if err != nil || stamp != ci.stamp {
		return nil
	}
	bt, err := indexFromStream(payload)
	if err != nil {
		return nil
	}
	return bt
}
