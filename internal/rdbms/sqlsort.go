package rdbms

import (
	"container/heap"
	"fmt"
)

// Sorted-query machinery: a bounded top-k collector for ORDER BY + LIMIT
// (O(n log k) instead of a full O(n log n) sort) and an index-assisted
// order path that scans the sort column's B+tree in key order so LIMIT
// terminates the scan without any sort at all.
//
// Both paths reproduce exactly what the full stable sort produces,
// including tie order: the top-k collector breaks key ties by the row's
// original sequence number (what sort.SliceStable preserves), and the
// index path emits rows with equal keys in heap order (ascending RID),
// which is the base-row order a sequential scan feeds the stable sort.

// keyedRow pairs a row with its evaluated ORDER BY keys and its position
// in the pre-sort row order (the stable-sort tiebreak).
type keyedRow struct {
	keys Tuple
	row  Tuple
	seq  int
}

// keyedLess is the total order of the stable sort: ORDER BY keys first,
// original sequence among equal keys.
func keyedLess(a, b *keyedRow, keys []OrderKey) bool {
	for i, k := range keys {
		c, ok := Compare(a.keys[i], b.keys[i])
		if !ok || c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return a.seq < b.seq
}

// keysLess orders two key tuples alone (no tiebreak); used to test whether
// a fresh row can displace the collector's current worst without cloning
// its keys first.
func keysLess(a, b Tuple, keys []OrderKey) bool {
	for i, k := range keys {
		c, ok := Compare(a[i], b[i])
		if !ok || c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// topK retains the n rows that sort first under the stable ORDER BY
// ordering, in O(log n) per offered row and O(n) space. The heap is a
// max-heap by keyedLess: the root is the worst retained row, displaced
// when a strictly better row arrives. A row tying the root on keys never
// displaces it (the newcomer has a larger seq, so it sorts after).
type topK struct {
	n     int
	order []OrderKey
	items []*keyedRow
}

func newTopK(n int, order []OrderKey) *topK {
	return &topK{n: n, order: order}
}

func (t *topK) Len() int { return len(t.items) }
func (t *topK) Less(i, j int) bool {
	return keyedLess(t.items[j], t.items[i], t.order) // max-heap
}
func (t *topK) Swap(i, j int) { t.items[i], t.items[j] = t.items[j], t.items[i] }
func (t *topK) Push(x any)    { t.items = append(t.items, x.(*keyedRow)) }
func (t *topK) Pop() any {
	old := t.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	t.items = old[:n-1]
	return it
}

// accepts reports whether a row with the given keys would enter the
// collector, letting callers skip cloning scratch keys for rejected rows.
func (t *topK) accepts(keys Tuple) bool {
	if len(t.items) < t.n {
		return true
	}
	return keysLess(keys, t.items[0].keys, t.order)
}

// add offers a row. The keys tuple must be owned by the caller-built
// keyedRow (not a reused scratch buffer).
func (t *topK) add(kr *keyedRow) {
	if t.n <= 0 {
		return
	}
	if len(t.items) < t.n {
		heap.Push(t, kr)
		return
	}
	if keyedLess(kr, t.items[0], t.order) {
		t.items[0] = kr
		heap.Fix(t, 0)
	}
}

// sorted drains the collector in ORDER BY order (best first).
func (t *topK) sorted() []*keyedRow {
	out := make([]*keyedRow, len(t.items))
	for i := len(t.items) - 1; i >= 0; i-- {
		out[i] = heap.Pop(t).(*keyedRow)
	}
	return out
}

// orderPath is a chosen index-order strategy: the single ORDER BY key is
// an indexed column of the FROM table, so scanning the index in key order
// yields rows already sorted and OFFSET+LIMIT stops the scan early.
// Sargable range bounds on the same column fold into the scan.
type orderPath struct {
	column string
	desc   bool
	lo, hi *Value
}

func (op *orderPath) describe() string {
	d := "index order scan (" + op.column
	if op.desc {
		d += " desc"
	}
	return d + ")"
}

// chooseOrderPath decides whether a SELECT can be served in index order.
// Requirements: single-table, ungrouped, non-distinct, a LIMIT to bound
// the scan, exactly one ORDER BY key that resolves (through select-list
// aliases) to an indexed column of the FROM table. A usable equality
// access path wins instead — it fetches a small posting list and the
// bounded top-k sort handles ordering — but a range access path on the
// sort column folds its bounds into the order scan.
func chooseOrderPath(s SelectStmt, t *Table, fromName string, b *binding, grouped bool) *orderPath {
	if s.Join != nil || grouped || s.Distinct || s.Limit < 0 ||
		len(s.OrderBy) != 1 || len(t.Indexes) == 0 {
		return nil
	}
	cr, ok := resolveOrderColumn(s.OrderBy[0].Expr, s, b)
	if !ok || (cr.Table != "" && cr.Table != fromName) {
		return nil
	}
	if _, indexed := t.Indexes[cr.Column]; !indexed {
		return nil
	}
	op := &orderPath{column: cr.Column, desc: s.OrderBy[0].Desc}
	if ap := chooseAccessPath(s.Where, t, fromName); ap != nil {
		if ap.column != op.column {
			// A usable access path on another column (equality or range)
			// fetches a bounded candidate set; the top-k sort over it beats
			// walking the sort column's entire index and heap-fetching every
			// row until LIMIT predicates happen to qualify.
			return nil
		}
		if ap.eq != nil {
			return nil // equality pins the sort key: posting fetch + top-k is cheaper
		}
		op.lo, op.hi = ap.lo, ap.hi
	}
	return op
}

// resolveOrderColumn reduces an ORDER BY expression to a column reference,
// following one level of select-list aliasing (ORDER BY v where the list
// has `val AS v`), mirroring evalOrderKey's alias resolution.
func resolveOrderColumn(e Expr, s SelectStmt, b *binding) (ColumnRef, bool) {
	cr, ok := e.(ColumnRef)
	if !ok {
		return ColumnRef{}, false
	}
	if cr.Table == "" {
		cols, exprs := expandSelect(s, b)
		for i, c := range cols {
			if c == cr.Column {
				inner, ok := exprs[i].(ColumnRef)
				return inner, ok
			}
		}
	}
	return cr, true
}

// indexOrderRows fetches up to stopAfter rows satisfying filter by walking
// the order path's index in key order. Rows with equal keys are emitted in
// ascending RID order — the order a heap scan feeds them to the stable
// sort — so the result is byte-for-byte what full-sort produces.
func (tx *Txn) indexOrderRows(s SelectStmt, t *Table, op *orderPath, b *binding, stopAfter int) ([]Tuple, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	idx := t.Indexes[op.column]
	if idx == nil {
		return nil, fmt.Errorf("rdbms: no index on %s.%s", s.From, op.column)
	}
	if err := tx.db.lm.Acquire(tx.id, TableLock(s.From), LockShared); err != nil {
		return nil, err
	}
	var rows []Tuple
	var ridBuf []RID
	var evalErr error
	var seen int
	idx.GroupedRange(op.lo, op.hi, op.desc, func(_ Value, rids []RID) bool {
		seen++
		if seen%ctxCheckInterval == 0 {
			if evalErr = tx.ctxErr(); evalErr != nil {
				return false
			}
		}
		ridBuf = append(ridBuf[:0], rids...)
		sortRIDs(ridBuf)
		for _, rid := range ridBuf {
			tup, live, err := t.Heap.Get(rid)
			if err != nil {
				evalErr = err
				return false
			}
			if !live {
				continue
			}
			if s.Where != nil {
				v, err := evalExpr(s.Where, b, tup)
				if err != nil {
					evalErr = err
					return false
				}
				if !truthy(v) {
					continue
				}
			}
			rows = append(rows, tup)
			if stopAfter >= 0 && len(rows) >= stopAfter {
				return false
			}
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return rows, nil
}

// sortRIDs orders RIDs by (page, slot) — heap scan order, given that heap
// pages are chained in allocation order.
func sortRIDs(rids []RID) {
	for i := 1; i < len(rids); i++ {
		for j := i; j > 0 && ridLess(rids[j], rids[j-1]); j-- {
			rids[j], rids[j-1] = rids[j-1], rids[j]
		}
	}
}

func ridLess(a, b RID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}
