package rdbms

import (
	"fmt"
	"testing"
)

// Regression for the tombstone-reuse concurrency gap: an insert must not
// reuse a tombstoned slot whose row lock is still held by the deleting
// transaction. If it did, the deleter's abort would try to restore its
// row at the reused RID and collide with the newcomer.
func TestInsertSkipsLockedTombstoneSlot(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE kv (k INT, v STRING)")

	// Seed one committed row; remember its RID.
	seed := db.Begin()
	rid0, err := seed.Insert("kv", Tuple{NewInt(1), NewString("original")})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// Txn A deletes the row and stays open: its X lock on rid0 outlives
	// the tombstone.
	txA := db.Begin()
	if err := txA.Delete("kv", rid0); err != nil {
		t.Fatal(err)
	}

	// Txn B inserts concurrently. Without the slot filter it would grab
	// rid0 (the only tombstone on a page with plenty of free space).
	txB := db.Begin()
	ridB, err := txB.Insert("kv", Tuple{NewInt(2), NewString("newcomer")})
	if err != nil {
		t.Fatal(err)
	}
	if ridB == rid0 {
		t.Fatalf("insert reused tombstoned slot %v still row-locked by the deleting txn", rid0)
	}
	if err := txB.Commit(); err != nil {
		t.Fatal(err)
	}

	// A aborts: its undo must restore the original row at rid0.
	if err := txA.Abort(); err != nil {
		t.Fatalf("abort after concurrent insert: %v", err)
	}
	got := map[int64]string{}
	tx := db.Begin()
	if err := tx.Scan("kv", func(_ RID, tup Tuple) bool {
		got[tup[0].I] = tup[1].S
		return true
	}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	want := map[int64]string{1: "original", 2: "newcomer"}
	if len(got) != len(want) || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("after abort: got %v, want %v", got, want)
	}
}

// TestInsertReusesTombstoneAfterRelease: once the deleting transaction
// commits (releasing its locks), the tombstoned slot is fair game again —
// the filter must not permanently retire slots.
func TestInsertReusesTombstoneAfterRelease(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE kv (k INT, v STRING)")
	seed := db.Begin()
	rid0, err := seed.Insert("kv", Tuple{NewInt(1), NewString("gone")})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	del := db.Begin()
	if err := del.Delete("kv", rid0); err != nil {
		t.Fatal(err)
	}
	if err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	ins := db.Begin()
	rid1, err := ins.Insert("kv", Tuple{NewInt(2), NewString("recycled")})
	if err != nil {
		t.Fatal(err)
	}
	if rid1 != rid0 {
		t.Fatalf("expected tombstone reuse of %v, got %v", rid0, rid1)
	}
	if err := ins.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDeleteInsertChurn hammers the delete/insert interleaving
// under -race: each round a deleter holds its lock across a concurrent
// inserter's slot choice, then aborts. No abort may fail and the final
// state must contain exactly the survivors.
func TestConcurrentDeleteInsertChurn(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE kv (k INT, v STRING)")
	rids := map[int64]RID{}
	seed := db.Begin()
	for i := int64(0); i < 20; i++ {
		rid, err := seed.Insert("kv", Tuple{NewInt(i), NewString(fmt.Sprintf("seed-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	for round := int64(0); round < 20; round++ {
		victim := round % 20
		txA := db.Begin()
		if err := txA.Delete("kv", rids[victim]); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			txB := db.Begin()
			if _, err := txB.Insert("kv", Tuple{NewInt(100 + round), NewString("churn")}); err != nil {
				txB.Abort()
				done <- err
				return
			}
			done <- txB.Commit()
		}()
		if err := <-done; err != nil {
			t.Fatalf("round %d: concurrent insert: %v", round, err)
		}
		if err := txA.Abort(); err != nil {
			t.Fatalf("round %d: abort: %v", round, err)
		}
	}
	n := 0
	tx := db.Begin()
	if err := tx.Scan("kv", func(RID, Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if n != 40 { // 20 seeds (all aborts restored) + 20 churn inserts
		t.Fatalf("final row count %d, want 40", n)
	}
}
