package rdbms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// TxnID identifies a transaction.
type TxnID uint64

// LogKind enumerates WAL record types.
type LogKind uint8

const (
	LogBegin LogKind = iota + 1
	LogCommit
	LogAbort
	LogInsert
	LogDelete
	LogUpdate
	LogCheckpoint
)

func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogInsert:
		return "INSERT"
	case LogDelete:
		return "DELETE"
	case LogUpdate:
		return "UPDATE"
	case LogCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one WAL entry. Insert carries After; Delete carries Before;
// Update carries both. Table names the affected table.
type LogRecord struct {
	LSN    LSN
	Kind   LogKind
	Txn    TxnID
	Table  string
	Row    RID
	Before Tuple
	After  Tuple
}

func encodeLogRecord(r *LogRecord) []byte {
	var body []byte
	body = append(body, byte(r.Kind))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Txn))
	body = append(body, tmp[:]...)
	body = appendString(body, r.Table)
	var rid [8]byte
	binary.LittleEndian.PutUint32(rid[0:4], uint32(r.Row.Page))
	binary.LittleEndian.PutUint16(rid[4:6], r.Row.Slot)
	body = append(body, rid[:6]...)
	body = appendBytes(body, encodeMaybeTuple(r.Before))
	body = appendBytes(body, encodeMaybeTuple(r.After))
	// Frame: len + crc + body.
	out := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func decodeLogRecord(body []byte) (*LogRecord, error) {
	if len(body) < 9 {
		return nil, fmt.Errorf("rdbms: short log body")
	}
	r := &LogRecord{Kind: LogKind(body[0])}
	r.Txn = TxnID(binary.LittleEndian.Uint64(body[1:9]))
	off := 9
	tbl, n, err := readString(body[off:])
	if err != nil {
		return nil, err
	}
	r.Table = tbl
	off += n
	if len(body) < off+6 {
		return nil, fmt.Errorf("rdbms: short log rid")
	}
	r.Row.Page = PageID(binary.LittleEndian.Uint32(body[off : off+4]))
	r.Row.Slot = binary.LittleEndian.Uint16(body[off+4 : off+6])
	off += 6
	beforeRaw, n, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	afterRaw, _, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	if r.Before, err = decodeMaybeTuple(beforeRaw); err != nil {
		return nil, err
	}
	if r.After, err = decodeMaybeTuple(afterRaw); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeMaybeTuple(t Tuple) []byte {
	if t == nil {
		return nil
	}
	return EncodeTuple(t)
}

func decodeMaybeTuple(b []byte) (Tuple, error) {
	if len(b) == 0 {
		return nil, nil
	}
	return DecodeTuple(b)
}

func appendString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, int, error) {
	b, n, err := readBytes(buf)
	return string(b), n, err
}

func appendBytes(buf, b []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	buf = append(buf, tmp[:]...)
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("rdbms: short length prefix")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if len(buf) < 4+n {
		return nil, 0, fmt.Errorf("rdbms: short payload")
	}
	return buf[4 : 4+n], 4 + n, nil
}

// ErrWALPoisoned is returned to committers whose flush target was in
// flight when a simulated crash (CrashSignal panic) interrupted the
// group-commit leader: the log's durable boundary is unknowable from
// inside the dying process, so the WAL refuses all further work. Only
// reopening the device (a fresh WAL) resolves the in-doubt commits.
var ErrWALPoisoned = errors.New("rdbms: wal unusable after crash during flush")

// WAL is an append-only write-ahead log over a Device. Append buffers the
// record; Flush forces buffered records to stable storage (device write +
// sync). Commit durability is achieved by flushing before acknowledging.
//
// Flushing uses a group-commit sequencer (leader/follower): the first
// committer to need durability becomes the leader, takes ownership of
// every buffered record — its own and any that concurrent committers
// appended before it won the role — and performs one device write + sync
// for the whole batch outside the WAL lock. Committers arriving while
// that I/O is in flight append their records and wait; when the leader
// finishes, one of them becomes the next leader and flushes the entire
// accumulated batch with a single fsync. A lone committer pays exactly
// the old one-fsync latency; N concurrent committers pay ~2 fsyncs total
// (the in-flight one plus one batch), amortizing the dominant cost of
// durable commit.
//
// Opening a WAL scans the durable log for a torn tail — a frame whose
// length prefix overruns the device or whose checksum fails, left by a
// crash mid-flush — and truncates the device back to the last whole
// record, so post-crash appends never land after garbage bytes that a
// recovery scan would refuse to read past.
type WAL struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals flush completion to waiting committers
	buf     []byte     // unflushed tail, starts at LSN `flushed`
	flushed LSN        // bytes durably stored
	next    LSN        // next LSN to assign (= flushed + len(inflight) + len(buf))
	dev     Device

	flushing   bool   // a leader's write+sync is in flight (outside mu)
	poisoned   bool   // a crash panic escaped mid-flush; see ErrWALPoisoned
	syncs      int64  // completed device syncs (group-commit diagnostics)
	spare      []byte // a flushed batch's buffer, recycled for appends
	committers int    // commits between AppendEnd and durable: potential batch-mates
}

// NewMemWAL returns a WAL over an in-memory device; Flush makes records
// durable against the simulated crash model (MemDevice.Crash keeps only
// synced bytes).
func NewMemWAL() *WAL {
	w, err := NewWALOn(NewMemDevice())
	if err != nil {
		// A fresh MemDevice cannot fail to open.
		panic(err)
	}
	return w
}

// OpenFileWAL opens or creates a file-backed WAL.
func OpenFileWAL(path string) (*WAL, error) {
	dev, err := OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWALOn(dev)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return w, nil
}

// NewWALOn opens a WAL over dev, truncating any torn tail left by a crash.
func NewWALOn(dev Device) (*WAL, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := dev.ReadAt(data, 0); err != nil {
			return nil, err
		}
	}
	end := int64(validLogEnd(data))
	if end < size {
		if err := dev.Truncate(end); err != nil {
			return nil, err
		}
	}
	w := &WAL{dev: dev, flushed: LSN(end), next: LSN(end)}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// walkLogFrames iterates the whole, checksum-clean frames in data
// starting at off, calling fn (when non-nil; a false return stops early)
// with each frame's offset and body, and returns the offset where the
// last valid frame ends. It is the single definition of the torn-tail
// boundary: open-time truncation and Records both use it, so the bytes
// truncation keeps are exactly the bytes a recovery scan will read.
func walkLogFrames(data []byte, off int, fn func(off int, body []byte) bool) int {
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) || crc32.ChecksumIEEE(data[off+8:off+8+n]) != want {
			break
		}
		if fn != nil && !fn(off, data[off+8:off+8+n]) {
			return off
		}
		off += 8 + n
	}
	return off
}

// validLogEnd returns the torn-tail truncation boundary.
func validLogEnd(data []byte) int { return walkLogFrames(data, 0, nil) }

// Append adds a record, assigning and returning its LSN.
func (w *WAL) Append(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(r)
	return r.LSN
}

// AppendEnd adds a commit record and returns the LSN just past it — the
// FlushCommit target that makes the record durable. Commit uses it so
// that each committer waits only for the batch containing its own
// record, not for records appended after it. The caller is counted as a
// committer in flight until its FlushCommit returns; that count is what
// decides whether a flush leader opens the group window.
func (w *WAL) AppendEnd(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(r)
	w.committers++
	return w.next
}

func (w *WAL) appendLocked(r *LogRecord) {
	r.LSN = w.next
	enc := encodeLogRecord(r)
	if w.buf == nil && w.spare != nil {
		w.buf, w.spare = w.spare[:0], nil
	}
	w.buf = append(w.buf, enc...)
	w.next += LSN(len(enc))
}

// Flush forces every record appended so far to stable storage.
func (w *WAL) Flush() error {
	w.mu.Lock()
	return w.flushToLocked(w.next, false)
}

// FlushCommit forces the log up to target (an AppendEnd result) to
// stable storage, participating in group commit: if another committer's
// flush is already in flight, the caller waits for it (and, if that
// batch did not cover target, one waiter becomes the next leader and
// flushes everything accumulated since — one fsync for the whole
// group). When more than one committer is in flight, the leader briefly
// yields before capturing the batch, so stragglers a few microseconds
// behind join this fsync instead of founding the next one; a lone
// committer — regardless of how many idle transactions are open —
// flushes immediately at single-commit latency.
func (w *WAL) FlushCommit(target LSN) error {
	w.mu.Lock()
	err := w.flushToLocked(target, true)
	w.mu.Lock()
	w.committers--
	w.mu.Unlock()
	return err
}

// flushToLocked implements the leader/follower protocol. The caller must
// hold w.mu; it is released on return. window permits the leader's
// group wait, which still only happens when other committers are in
// flight (w.committers > 1).
func (w *WAL) flushToLocked(target LSN, window bool) error {
	for {
		if w.poisoned {
			w.mu.Unlock()
			return ErrWALPoisoned
		}
		if w.flushed >= target {
			w.mu.Unlock()
			return nil
		}
		if !w.flushing {
			break // become the leader
		}
		w.cond.Wait()
	}
	// Leader: flushing blocks rival leaders, but the buffer stays open —
	// the batch is captured only after the (optional) group window, so
	// everything appended up to that moment rides this fsync.
	w.flushing = true
	window = window && w.committers > 1
	w.mu.Unlock()
	if window {
		w.awaitStragglers()
	}
	w.mu.Lock()
	chunk := w.buf
	base := w.flushed
	w.buf = nil
	w.mu.Unlock()

	var err error
	completed := false
	synced := false
	defer func() {
		w.mu.Lock()
		w.flushing = false
		if synced {
			w.syncs++
		}
		switch {
		case !completed:
			// A panic (the fault harness's simulated crash) interrupted the
			// I/O: the durable boundary is unknown, so poison the WAL; every
			// waiter and future committer gets ErrWALPoisoned and the
			// in-doubt records are resolved by post-crash recovery.
			w.poisoned = true
		case err != nil:
			// The device reported the failure cleanly: restore the batch at
			// the front of the buffer so a later flush (or a follower
			// retrying as leader) rewrites the same bytes at the same
			// offsets. flushed is unchanged — nothing was acknowledged.
			w.buf = append(chunk, w.buf...)
		default:
			w.flushed = base + LSN(len(chunk))
			if w.spare == nil || cap(chunk) > cap(w.spare) {
				w.spare = chunk[:0] // recycle the batch buffer
			}
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}()
	if len(chunk) > 0 {
		if _, werr := w.dev.WriteAt(chunk, int64(base)); werr != nil {
			err = werr
		} else if serr := w.dev.Sync(); serr != nil {
			err = serr
		} else {
			synced = true
		}
	}
	completed = true
	// On success the batch covered target (the chunk held everything
	// buffered at leader election, and target predates it).
	return err
}

// awaitStragglers is the group-commit window: a bounded busy-yield that
// ends as soon as appends quiesce (two consecutive checks with no growth)
// or the iteration budget runs out. Concurrent committers run in real
// time on other cores during the yield, so a few microseconds is enough
// for a committer already past its WAL append to land in this batch; the
// cost is orders of magnitude below the fsync it saves. The leader only
// opens the window when other committers are in flight (commit records
// appended but not yet durable), so an uncontended commit — even with
// idle transactions open — never pays it.
func (w *WAL) awaitStragglers() {
	last := w.peekNext()
	stable := 0
	for i := 0; i < 512 && stable < 2; i++ {
		runtime.Gosched()
		if i%16 == 15 {
			cur := w.peekNext()
			if cur == last {
				stable++
			} else {
				stable = 0
				last = cur
			}
		}
	}
}

func (w *WAL) peekNext() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Syncs returns the number of completed WAL device syncs — the measure of
// how well group commit amortizes fsyncs across concurrent committers.
func (w *WAL) Syncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// quiesceLocked waits until no flush is in flight. Callers that mutate
// flushed/next/buf wholesale (Reset, DropUnflushed) must not interleave
// with a leader's I/O.
func (w *WAL) quiesceLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// Reset discards the entire log: a checkpoint has made every logged
// change durable in the data pages, so no record is needed for recovery.
// The truncation is durable before Reset returns (Device.Truncate syncs),
// which guarantees records from the previous log generation cannot
// reappear after a crash and be replayed into the new one.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	if err := w.dev.Truncate(0); err != nil {
		return err
	}
	w.flushed = 0
	w.next = 0
	w.buf = w.buf[:0]
	return nil
}

// FlushedLSN returns the durable boundary.
func (w *WAL) FlushedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}

// DropUnflushed discards buffered records, simulating a crash where only
// flushed bytes survive. Test/experiment hook.
func (w *WAL) DropUnflushed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	w.next = w.flushed
	w.buf = w.buf[:0]
}

// Records reads all durable records starting at from. Records with bad
// checksums or truncated frames terminate the scan (torn tail).
func (w *WAL) Records(from LSN) ([]*LogRecord, error) {
	w.mu.Lock()
	data := make([]byte, w.flushed)
	if w.flushed > 0 {
		if _, err := w.dev.ReadAt(data, 0); err != nil {
			w.mu.Unlock()
			return nil, err
		}
	}
	w.mu.Unlock()

	var out []*LogRecord
	var decodeErr error
	walkLogFrames(data, int(from), func(off int, body []byte) bool {
		r, err := decodeLogRecord(body)
		if err != nil {
			decodeErr = err
			return false
		}
		r.LSN = LSN(off)
		out = append(out, r)
		return true
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}

// Close releases the underlying device.
func (w *WAL) Close() error { return w.dev.Close() }
