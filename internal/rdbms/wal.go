package rdbms

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// TxnID identifies a transaction.
type TxnID uint64

// LogKind enumerates WAL record types.
type LogKind uint8

const (
	LogBegin LogKind = iota + 1
	LogCommit
	LogAbort
	LogInsert
	LogDelete
	LogUpdate
	LogCheckpoint
)

func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogInsert:
		return "INSERT"
	case LogDelete:
		return "DELETE"
	case LogUpdate:
		return "UPDATE"
	case LogCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one WAL entry. Insert carries After; Delete carries Before;
// Update carries both. Table names the affected table.
type LogRecord struct {
	LSN    LSN
	Kind   LogKind
	Txn    TxnID
	Table  string
	Row    RID
	Before Tuple
	After  Tuple
}

func encodeLogRecord(r *LogRecord) []byte {
	var body []byte
	body = append(body, byte(r.Kind))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Txn))
	body = append(body, tmp[:]...)
	body = appendString(body, r.Table)
	var rid [8]byte
	binary.LittleEndian.PutUint32(rid[0:4], uint32(r.Row.Page))
	binary.LittleEndian.PutUint16(rid[4:6], r.Row.Slot)
	body = append(body, rid[:6]...)
	body = appendBytes(body, encodeMaybeTuple(r.Before))
	body = appendBytes(body, encodeMaybeTuple(r.After))
	// Frame: len + crc + body.
	out := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func decodeLogRecord(body []byte) (*LogRecord, error) {
	if len(body) < 9 {
		return nil, fmt.Errorf("rdbms: short log body")
	}
	r := &LogRecord{Kind: LogKind(body[0])}
	r.Txn = TxnID(binary.LittleEndian.Uint64(body[1:9]))
	off := 9
	tbl, n, err := readString(body[off:])
	if err != nil {
		return nil, err
	}
	r.Table = tbl
	off += n
	if len(body) < off+6 {
		return nil, fmt.Errorf("rdbms: short log rid")
	}
	r.Row.Page = PageID(binary.LittleEndian.Uint32(body[off : off+4]))
	r.Row.Slot = binary.LittleEndian.Uint16(body[off+4 : off+6])
	off += 6
	beforeRaw, n, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	afterRaw, _, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	if r.Before, err = decodeMaybeTuple(beforeRaw); err != nil {
		return nil, err
	}
	if r.After, err = decodeMaybeTuple(afterRaw); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeMaybeTuple(t Tuple) []byte {
	if t == nil {
		return nil
	}
	return EncodeTuple(t)
}

func decodeMaybeTuple(b []byte) (Tuple, error) {
	if len(b) == 0 {
		return nil, nil
	}
	return DecodeTuple(b)
}

func appendString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, int, error) {
	b, n, err := readBytes(buf)
	return string(b), n, err
}

func appendBytes(buf, b []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	buf = append(buf, tmp[:]...)
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("rdbms: short length prefix")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if len(buf) < 4+n {
		return nil, 0, fmt.Errorf("rdbms: short payload")
	}
	return buf[4 : 4+n], 4 + n, nil
}

// WAL is an append-only write-ahead log over a Device. Append buffers the
// record; Flush forces buffered records to stable storage (device write +
// sync). Commit durability is achieved by flushing before acknowledging.
//
// Opening a WAL scans the durable log for a torn tail — a frame whose
// length prefix overruns the device or whose checksum fails, left by a
// crash mid-flush — and truncates the device back to the last whole
// record, so post-crash appends never land after garbage bytes that a
// recovery scan would refuse to read past.
type WAL struct {
	mu      sync.Mutex
	buf     []byte // unflushed tail
	flushed LSN    // bytes durably stored
	next    LSN    // next LSN to assign (= flushed + len(buf))
	dev     Device
}

// NewMemWAL returns a WAL over an in-memory device; Flush makes records
// durable against the simulated crash model (MemDevice.Crash keeps only
// synced bytes).
func NewMemWAL() *WAL {
	w, err := NewWALOn(NewMemDevice())
	if err != nil {
		// A fresh MemDevice cannot fail to open.
		panic(err)
	}
	return w
}

// OpenFileWAL opens or creates a file-backed WAL.
func OpenFileWAL(path string) (*WAL, error) {
	dev, err := OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWALOn(dev)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return w, nil
}

// NewWALOn opens a WAL over dev, truncating any torn tail left by a crash.
func NewWALOn(dev Device) (*WAL, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := dev.ReadAt(data, 0); err != nil {
			return nil, err
		}
	}
	end := int64(validLogEnd(data))
	if end < size {
		if err := dev.Truncate(end); err != nil {
			return nil, err
		}
	}
	return &WAL{dev: dev, flushed: LSN(end), next: LSN(end)}, nil
}

// walkLogFrames iterates the whole, checksum-clean frames in data
// starting at off, calling fn (when non-nil; a false return stops early)
// with each frame's offset and body, and returns the offset where the
// last valid frame ends. It is the single definition of the torn-tail
// boundary: open-time truncation and Records both use it, so the bytes
// truncation keeps are exactly the bytes a recovery scan will read.
func walkLogFrames(data []byte, off int, fn func(off int, body []byte) bool) int {
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) || crc32.ChecksumIEEE(data[off+8:off+8+n]) != want {
			break
		}
		if fn != nil && !fn(off, data[off+8:off+8+n]) {
			return off
		}
		off += 8 + n
	}
	return off
}

// validLogEnd returns the torn-tail truncation boundary.
func validLogEnd(data []byte) int { return walkLogFrames(data, 0, nil) }

// Append adds a record, assigning and returning its LSN.
func (w *WAL) Append(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.next
	r.LSN = lsn
	enc := encodeLogRecord(r)
	w.buf = append(w.buf, enc...)
	w.next += LSN(len(enc))
	return lsn
}

// Flush forces buffered records to stable storage.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.dev.WriteAt(w.buf, int64(w.flushed)); err != nil {
		return err
	}
	if err := w.dev.Sync(); err != nil {
		return err
	}
	w.flushed += LSN(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Reset discards the entire log: a checkpoint has made every logged
// change durable in the data pages, so no record is needed for recovery.
// The truncation is durable before Reset returns (Device.Truncate syncs),
// which guarantees records from the previous log generation cannot
// reappear after a crash and be replayed into the new one.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.dev.Truncate(0); err != nil {
		return err
	}
	w.flushed = 0
	w.next = 0
	w.buf = w.buf[:0]
	return nil
}

// FlushedLSN returns the durable boundary.
func (w *WAL) FlushedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}

// DropUnflushed discards buffered records, simulating a crash where only
// flushed bytes survive. Test/experiment hook.
func (w *WAL) DropUnflushed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.next = w.flushed
	w.buf = w.buf[:0]
}

// Records reads all durable records starting at from. Records with bad
// checksums or truncated frames terminate the scan (torn tail).
func (w *WAL) Records(from LSN) ([]*LogRecord, error) {
	w.mu.Lock()
	data := make([]byte, w.flushed)
	if w.flushed > 0 {
		if _, err := w.dev.ReadAt(data, 0); err != nil {
			w.mu.Unlock()
			return nil, err
		}
	}
	w.mu.Unlock()

	var out []*LogRecord
	var decodeErr error
	walkLogFrames(data, int(from), func(off int, body []byte) bool {
		r, err := decodeLogRecord(body)
		if err != nil {
			decodeErr = err
			return false
		}
		r.LSN = LSN(off)
		out = append(out, r)
		return true
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}

// Close releases the underlying device.
func (w *WAL) Close() error { return w.dev.Close() }
