package rdbms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
)

// LSN is a log sequence number: the logical byte offset of a record in
// the log. LSNs are monotonic across the whole life of a database — the
// WAL header records the logical offset of the file's first physical
// byte (its base), and truncating the log's prefix at a checkpoint
// advances the base instead of restarting LSNs at zero. Page LSNs stay
// comparable with log records forever, which is what makes recovery's
// redo gating (pageLSN < rec.LSN) sound.
type LSN uint64

// TxnID identifies a transaction.
type TxnID uint64

// LogKind enumerates WAL record types.
type LogKind uint8

const (
	LogBegin LogKind = iota + 1
	LogCommit
	LogAbort
	LogInsert
	LogDelete
	LogUpdate
	// LogCheckpointBegin and LogCheckpointEnd bracket a fuzzy checkpoint:
	// Begin carries the dirty-page table and active-transaction list in
	// Data (diagnostics and property tests; recovery's replay origin is
	// the catalog's checkpointLSN, not these records), End marks that
	// every step up to the catalog write completed.
	LogCheckpointBegin
	LogCheckpointEnd
	// LogBatchInsert and LogBatchDelete are the COPY-style bulk-load
	// records: one record covers a whole chunk of rows, carried in Data as
	// a count-prefixed sequence of (RID, encoded tuple) pairs (see
	// encodeBatchRows). BatchInsert rows are after-images, BatchDelete rows
	// before-images (the compensation record a failed batch logs while
	// rolling back). Recovery normalizes both into per-row Insert/Delete
	// records stamped with the batch record's LSN (expandBatchRecords), so
	// redo gating, undo, and the derived-state delta walk treat a batch
	// exactly like the equivalent row-at-a-time sequence.
	LogBatchInsert
	LogBatchDelete
)

func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogInsert:
		return "INSERT"
	case LogDelete:
		return "DELETE"
	case LogUpdate:
		return "UPDATE"
	case LogCheckpointBegin:
		return "CKPT-BEGIN"
	case LogCheckpointEnd:
		return "CKPT-END"
	case LogBatchInsert:
		return "BATCH-INSERT"
	case LogBatchDelete:
		return "BATCH-DELETE"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one WAL entry. Insert carries After; Delete carries Before;
// Update carries both. Table names the affected table. Data is an opaque
// payload used by checkpoint records (the serialized dirty-page table).
type LogRecord struct {
	LSN    LSN
	Kind   LogKind
	Txn    TxnID
	Table  string
	Row    RID
	Before Tuple
	After  Tuple
	Data   []byte
}

func encodeLogRecord(r *LogRecord) []byte {
	var body []byte
	body = append(body, byte(r.Kind))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Txn))
	body = append(body, tmp[:]...)
	body = appendString(body, r.Table)
	var rid [8]byte
	binary.LittleEndian.PutUint32(rid[0:4], uint32(r.Row.Page))
	binary.LittleEndian.PutUint16(rid[4:6], r.Row.Slot)
	body = append(body, rid[:6]...)
	body = appendBytes(body, encodeMaybeTuple(r.Before))
	body = appendBytes(body, encodeMaybeTuple(r.After))
	body = appendBytes(body, r.Data)
	// Frame: len + crc + body.
	out := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func decodeLogRecord(body []byte) (*LogRecord, error) {
	if len(body) < 9 {
		return nil, fmt.Errorf("rdbms: short log body")
	}
	r := &LogRecord{Kind: LogKind(body[0])}
	r.Txn = TxnID(binary.LittleEndian.Uint64(body[1:9]))
	off := 9
	tbl, n, err := readString(body[off:])
	if err != nil {
		return nil, err
	}
	r.Table = tbl
	off += n
	if len(body) < off+6 {
		return nil, fmt.Errorf("rdbms: short log rid")
	}
	r.Row.Page = PageID(binary.LittleEndian.Uint32(body[off : off+4]))
	r.Row.Slot = binary.LittleEndian.Uint16(body[off+4 : off+6])
	off += 6
	beforeRaw, n, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	afterRaw, n, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	dataRaw, _, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	if len(dataRaw) > 0 {
		r.Data = append([]byte(nil), dataRaw...)
	}
	if r.Before, err = decodeMaybeTuple(beforeRaw); err != nil {
		return nil, err
	}
	if r.After, err = decodeMaybeTuple(afterRaw); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeMaybeTuple(t Tuple) []byte {
	if t == nil {
		return nil
	}
	return EncodeTuple(t)
}

func decodeMaybeTuple(b []byte) (Tuple, error) {
	if len(b) == 0 {
		return nil, nil
	}
	return DecodeTuple(b)
}

func appendString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, int, error) {
	b, n, err := readBytes(buf)
	return string(b), n, err
}

func appendBytes(buf, b []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	buf = append(buf, tmp[:]...)
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("rdbms: short length prefix")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if len(buf) < 4+n {
		return nil, 0, fmt.Errorf("rdbms: short payload")
	}
	return buf[4 : 4+n], 4 + n, nil
}

// ErrWALPoisoned is returned to committers whose flush target was in
// flight when a simulated crash (CrashSignal panic) interrupted the
// group-commit leader: the log's durable boundary is unknowable from
// inside the dying process, so the WAL refuses all further work. Only
// reopening the device (a fresh WAL) resolves the in-doubt commits.
var ErrWALPoisoned = errors.New("rdbms: wal unusable after crash during flush")

// WAL header. The first walHeaderSize bytes of the device hold two
// 32-byte header slots; the valid slot with the higher sequence number is
// authoritative. A slot records the log's base (the logical LSN of
// physical offset walHeaderSize), the previous base (needed to finish an
// interrupted prefix truncation), a monotonic sequence number, and a
// state (clean, or mid-copy during TruncateTo). Slot updates always
// target the inactive slot, so a torn header write can never destroy the
// authoritative one (a 32-byte aligned write is covered by the same
// sector-atomicity assumption page frames already rely on).
const (
	walSlotSize   = 32
	walHeaderSize = 2 * walSlotSize

	walStateClean   = 0
	walStateCopying = 1
)

var walMagic = [4]byte{'U', 'W', 'L', '1'}

type walHeaderSlot struct {
	base     LSN
	prevBase LSN
	seq      uint32
	state    uint32
}

func encodeWALSlot(s walHeaderSlot) []byte {
	buf := make([]byte, walSlotSize)
	copy(buf[0:4], walMagic[:])
	binary.LittleEndian.PutUint64(buf[4:12], uint64(s.base))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(s.prevBase))
	binary.LittleEndian.PutUint32(buf[20:24], s.seq)
	binary.LittleEndian.PutUint32(buf[24:28], s.state)
	binary.LittleEndian.PutUint32(buf[28:32], crc32.ChecksumIEEE(buf[:28]))
	return buf
}

func decodeWALSlot(buf []byte) (walHeaderSlot, bool) {
	if len(buf) < walSlotSize || [4]byte(buf[0:4]) != walMagic {
		return walHeaderSlot{}, false
	}
	if crc32.ChecksumIEEE(buf[:28]) != binary.LittleEndian.Uint32(buf[28:32]) {
		return walHeaderSlot{}, false
	}
	return walHeaderSlot{
		base:     LSN(binary.LittleEndian.Uint64(buf[4:12])),
		prevBase: LSN(binary.LittleEndian.Uint64(buf[12:20])),
		seq:      binary.LittleEndian.Uint32(buf[20:24]),
		state:    binary.LittleEndian.Uint32(buf[24:28]),
	}, true
}

// DefaultGroupCommitWindow is the group-commit leader's straggler-wait
// budget in scheduler-yield iterations when Options does not override it.
const DefaultGroupCommitWindow = 512

// WAL is an append-only write-ahead log over a Device. Append buffers the
// record; Flush forces buffered records to stable storage (device write +
// sync). Commit durability is achieved by flushing before acknowledging.
//
// Flushing uses a group-commit sequencer (leader/follower): the first
// committer to need durability becomes the leader, takes ownership of
// every buffered record — its own and any that concurrent committers
// appended before it won the role — and performs one device write + sync
// for the whole batch outside the WAL lock. Committers arriving while
// that I/O is in flight append their records and wait; when the leader
// finishes, one of them becomes the next leader and flushes the entire
// accumulated batch with a single fsync. A lone committer pays exactly
// the old one-fsync latency; N concurrent committers pay ~2 fsyncs total
// (the in-flight one plus one batch), amortizing the dominant cost of
// durable commit.
//
// Opening a WAL reads the header for the log's base LSN (finishing an
// interrupted prefix truncation if the header says one was in flight),
// then scans the durable log for a torn tail — a frame whose length
// prefix overruns the device or whose checksum fails, left by a crash
// mid-flush — and truncates the device back to the last whole record, so
// post-crash appends never land after garbage bytes that a recovery scan
// would refuse to read past.
type WAL struct {
	mu      sync.Mutex
	cond    *sync.Cond    // signals flush completion to waiting committers
	buf     []byte        // unflushed tail, starts at LSN `flushed`
	base    LSN           // logical LSN of physical offset walHeaderSize
	seq     uint32        // header sequence of the authoritative slot
	slot    int           // which header slot (0/1) is authoritative
	flushed LSN           // bytes durably stored (logical)
	next    LSN           // next LSN to assign (= flushed + len(inflight) + len(buf))
	nextA   atomic.Uint64 // lock-free mirror of next (buffer-pool recLSN capture)
	dev     Device

	flushing   bool   // a leader's write+sync is in flight (outside mu)
	poisoned   bool   // a crash panic escaped mid-flush; see ErrWALPoisoned
	syncs      int64  // completed device syncs (group-commit diagnostics)
	spare      []byte // a flushed batch's buffer, recycled for appends
	committers int    // commits between AppendEnd and durable: potential batch-mates

	window      int   // straggler-wait budget (yields); 0 = solo-commit
	windowOpens int64 // times a leader opened the group window (tests)
}

// phys maps a logical LSN to its physical device offset.
func (w *WAL) phys(lsn LSN) int64 { return int64(lsn-w.base) + walHeaderSize }

// writeHeaderSlot writes the next header state into the inactive slot and
// syncs, making it authoritative.
func (w *WAL) writeHeaderSlot(s walHeaderSlot) error {
	s.seq = w.seq + 1
	target := 1 - w.slot
	if _, err := w.dev.WriteAt(encodeWALSlot(s), int64(target*walSlotSize)); err != nil {
		return err
	}
	if err := w.dev.Sync(); err != nil {
		return err
	}
	w.seq = s.seq
	w.slot = target
	w.base = s.base
	return nil
}

// NewMemWAL returns a WAL over an in-memory device; Flush makes records
// durable against the simulated crash model (MemDevice.Crash keeps only
// synced bytes).
func NewMemWAL() *WAL {
	w, err := NewWALOn(NewMemDevice())
	if err != nil {
		// A fresh MemDevice cannot fail to open.
		panic(err)
	}
	return w
}

// OpenFileWAL opens or creates a file-backed WAL.
func OpenFileWAL(path string) (*WAL, error) {
	dev, err := OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWALOn(dev)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return w, nil
}

// NewWALOn opens a WAL over dev: reads (or initializes) the header,
// finishes an interrupted prefix truncation, and truncates any torn tail
// left by a crash.
func NewWALOn(dev Device) (*WAL, error) {
	w := &WAL{dev: dev, window: DefaultGroupCommitWindow}
	w.cond = sync.NewCond(&w.mu)
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	if size < walHeaderSize {
		// Fresh log (or one whose header init never became durable, in
		// which case no record was ever written either): write both slots
		// in one aligned write, slot 0 authoritative.
		hdr := make([]byte, walHeaderSize)
		copy(hdr, encodeWALSlot(walHeaderSlot{base: 0, seq: 1, state: walStateClean}))
		if _, err := dev.WriteAt(hdr, 0); err != nil {
			return nil, err
		}
		if err := dev.Sync(); err != nil {
			return nil, err
		}
		w.seq, w.slot = 1, 0
		return w, nil
	}
	hdr := make([]byte, walHeaderSize)
	if _, err := dev.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	s0, ok0 := decodeWALSlot(hdr[:walSlotSize])
	s1, ok1 := decodeWALSlot(hdr[walSlotSize:])
	var active walHeaderSlot
	switch {
	case ok0 && (!ok1 || s0.seq >= s1.seq):
		active, w.slot = s0, 0
	case ok1:
		active, w.slot = s1, 1
	default:
		return nil, fmt.Errorf("rdbms: wal header corrupt (both slots invalid)")
	}
	w.seq, w.base = active.seq, active.base
	if active.state == walStateCopying {
		if err := w.finishTruncation(active, size); err != nil {
			return nil, err
		}
		size, err = dev.Size()
		if err != nil {
			return nil, err
		}
	}
	data := make([]byte, size)
	if _, err := dev.ReadAt(data, 0); err != nil {
		return nil, err
	}
	end := int64(walkLogFrames(data, walHeaderSize, nil))
	if end < size {
		if err := dev.Truncate(end); err != nil {
			return nil, err
		}
	}
	w.flushed = w.base + LSN(end-walHeaderSize)
	w.next = w.flushed
	w.nextA.Store(uint64(w.next))
	return w, nil
}

// finishTruncation completes a prefix truncation that a crash interrupted
// mid-copy: the authoritative slot says the log's base is moving from
// prevBase to base, and the tail (records >= base) is intact at its
// pre-copy position because TruncateTo only copies when source and
// destination cannot overlap. Redoing the copy is therefore idempotent.
func (w *WAL) finishTruncation(s walHeaderSlot, size int64) error {
	srcOff := walHeaderSize + int64(s.base-s.prevBase)
	if srcOff > size {
		return fmt.Errorf("rdbms: wal truncation source %d beyond device size %d", srcOff, size)
	}
	data := make([]byte, size)
	if _, err := w.dev.ReadAt(data, 0); err != nil {
		return err
	}
	validEnd := int64(walkLogFrames(data, int(srcOff), nil))
	tailLen := validEnd - srcOff
	if tailLen > 0 {
		if _, err := w.dev.WriteAt(data[srcOff:validEnd], walHeaderSize); err != nil {
			return err
		}
	}
	// The terminator may only be written where it cannot touch the source
	// region (TruncateTo's slack guard ensures this on the first attempt;
	// keep the invariant on re-runs too, where it protects against this
	// very copy being interrupted again).
	if walHeaderSize+tailLen+8 <= srcOff {
		if err := w.writeTerminator(walHeaderSize+tailLen, size); err != nil {
			return err
		}
	}
	if err := w.dev.Sync(); err != nil {
		return err
	}
	if err := w.writeHeaderSlot(walHeaderSlot{base: s.base, prevBase: s.base, state: walStateClean}); err != nil {
		return err
	}
	return w.dev.Truncate(walHeaderSize + tailLen)
}

// writeTerminator stamps an impossible frame header (length 0xFFFFFFFF)
// right after a copied tail, so stale frames from the pre-copy log that
// happen to sit at a frame boundary can never be parsed as fresh records
// in the crash window before the file is physically truncated.
func (w *WAL) writeTerminator(at, size int64) error {
	if at+8 > size {
		return nil // nothing beyond the tail to mis-parse
	}
	term := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	_, err := w.dev.WriteAt(term, at)
	return err
}

// walkLogFrames iterates the whole, checksum-clean frames in data
// starting at off, calling fn (when non-nil; a false return stops early)
// with each frame's offset and body, and returns the offset where the
// last valid frame ends. It is the single definition of the torn-tail
// boundary: open-time truncation and Records both use it, so the bytes
// truncation keeps are exactly the bytes a recovery scan will read.
func walkLogFrames(data []byte, off int, fn func(off int, body []byte) bool) int {
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) || crc32.ChecksumIEEE(data[off+8:off+8+n]) != want {
			break
		}
		if fn != nil && !fn(off, data[off+8:off+8+n]) {
			return off
		}
		off += 8 + n
	}
	return off
}

// Append adds a record, assigning and returning its LSN.
func (w *WAL) Append(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(r)
	return r.LSN
}

// AppendEnd adds a commit record and returns the LSN just past it — the
// FlushCommit target that makes the record durable. Commit uses it so
// that each committer waits only for the batch containing its own
// record, not for records appended after it. The caller is counted as a
// committer in flight until its FlushCommit returns; that count is what
// decides whether a flush leader opens the group window.
func (w *WAL) AppendEnd(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(r)
	w.committers++
	return w.next
}

func (w *WAL) appendLocked(r *LogRecord) {
	r.LSN = w.next
	enc := encodeLogRecord(r)
	if w.buf == nil && w.spare != nil {
		w.buf, w.spare = w.spare[:0], nil
	}
	w.buf = append(w.buf, enc...)
	w.next += LSN(len(enc))
	w.nextA.Store(uint64(w.next))
}

// Flush forces every record appended so far to stable storage.
func (w *WAL) Flush() error {
	w.mu.Lock()
	return w.flushToLocked(w.next, false)
}

// FlushTo forces the log up to target to stable storage without opening
// the group-commit window. The buffer pool uses it before writing a dirty
// page back: flushing to the page's LSN (plus one byte, so the record
// starting there is covered whole) is the precise WAL rule — later
// records need not be forced. Targets beyond the append horizon clamp to
// it.
func (w *WAL) FlushTo(target LSN) error {
	w.mu.Lock()
	return w.flushToLocked(target, false)
}

// NextLSN returns the next LSN the WAL will assign, without taking the
// WAL lock (an atomic mirror). The buffer pool samples it at pin time to
// derive a conservative recLSN for pages that pin dirties.
func (w *WAL) NextLSN() LSN { return LSN(w.nextA.Load()) }

// FlushCommit forces the log up to target (an AppendEnd result) to
// stable storage, participating in group commit: if another committer's
// flush is already in flight, the caller waits for it (and, if that
// batch did not cover target, one waiter becomes the next leader and
// flushes everything accumulated since — one fsync for the whole
// group). When more than one committer is in flight, the leader briefly
// yields before capturing the batch, so stragglers a few microseconds
// behind join this fsync instead of founding the next one; a lone
// committer — regardless of how many idle transactions are open —
// flushes immediately at single-commit latency.
func (w *WAL) FlushCommit(target LSN) error {
	w.mu.Lock()
	err := w.flushToLocked(target, true)
	w.mu.Lock()
	w.committers--
	w.mu.Unlock()
	return err
}

// flushToLocked implements the leader/follower protocol. The caller must
// hold w.mu; it is released on return. window permits the leader's
// group wait, which still only happens when other committers are in
// flight (w.committers > 1).
func (w *WAL) flushToLocked(target LSN, window bool) error {
	if target > w.next {
		target = w.next
	}
	for {
		if w.poisoned {
			w.mu.Unlock()
			return ErrWALPoisoned
		}
		if w.flushed >= target {
			w.mu.Unlock()
			return nil
		}
		if !w.flushing {
			break // become the leader
		}
		w.cond.Wait()
	}
	// Leader: flushing blocks rival leaders, but the buffer stays open —
	// the batch is captured only after the (optional) group window, so
	// everything appended up to that moment rides this fsync.
	w.flushing = true
	window = window && w.committers > 1 && w.window > 0
	if window {
		w.windowOpens++
	}
	w.mu.Unlock()
	if window {
		w.awaitStragglers()
	}
	w.mu.Lock()
	chunk := w.buf
	base := w.flushed
	w.buf = nil
	w.mu.Unlock()

	var err error
	completed := false
	synced := false
	defer func() {
		w.mu.Lock()
		w.flushing = false
		if synced {
			w.syncs++
		}
		switch {
		case !completed:
			// A panic (the fault harness's simulated crash) interrupted the
			// I/O: the durable boundary is unknown, so poison the WAL; every
			// waiter and future committer gets ErrWALPoisoned and the
			// in-doubt records are resolved by post-crash recovery.
			w.poisoned = true
		case err != nil:
			// The device reported the failure cleanly: restore the batch at
			// the front of the buffer so a later flush (or a follower
			// retrying as leader) rewrites the same bytes at the same
			// offsets. flushed is unchanged — nothing was acknowledged.
			w.buf = append(chunk, w.buf...)
		default:
			w.flushed = base + LSN(len(chunk))
			if w.spare == nil || cap(chunk) > cap(w.spare) {
				w.spare = chunk[:0] // recycle the batch buffer
			}
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}()
	if len(chunk) > 0 {
		if _, werr := w.dev.WriteAt(chunk, w.phys(base)); werr != nil {
			err = werr
		} else if serr := w.dev.Sync(); serr != nil {
			err = serr
		} else {
			synced = true
		}
	}
	completed = true
	// On success the batch covered target (the chunk held everything
	// buffered at leader election, and target predates it).
	return err
}

// awaitStragglers is the group-commit window: a bounded busy-yield that
// ends as soon as appends quiesce (two consecutive checks with no growth)
// or the iteration budget (Options.GroupCommitWindow, default
// DefaultGroupCommitWindow) runs out. Concurrent committers run in real
// time on other cores during the yield, so a few microseconds is enough
// for a committer already past its WAL append to land in this batch; the
// cost is orders of magnitude below the fsync it saves. The leader only
// opens the window when other committers are in flight (commit records
// appended but not yet durable) and the budget is nonzero — a zero
// budget degenerates to solo-commit flushing: each leader captures only
// what is already buffered.
func (w *WAL) awaitStragglers() {
	last := w.peekNext()
	stable := 0
	for i := 0; i < w.window && stable < 2; i++ {
		runtime.Gosched()
		if i%16 == 15 {
			cur := w.peekNext()
			if cur == last {
				stable++
			} else {
				stable = 0
				last = cur
			}
		}
	}
}

func (w *WAL) peekNext() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Syncs returns the number of completed WAL device syncs — the measure of
// how well group commit amortizes fsyncs across concurrent committers.
func (w *WAL) Syncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// quiesceLocked waits until no flush is in flight. Callers that mutate
// flushed/next/buf wholesale (Reset, DropUnflushed) must not interleave
// with a leader's I/O.
func (w *WAL) quiesceLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// TruncateTo discards the durable log before horizon, advancing the
// header's base so LSNs stay monotonic. A checkpoint calls it with the
// min(recLSN, first LSN of any active transaction) horizon: everything
// before it is redundant (durably in the data pages and owned by
// resolved transactions), everything at or after it must survive for
// redo and undo.
//
// Two modes, both crash-safe against the caller's catalog (which must
// already record horizon as the replay origin BEFORE TruncateTo runs):
//
//   - Empty tail (horizon == durable end): truncate the device to the
//     header, then flip the header slot to the new base. A crash between
//     the two leaves an empty log under the old base — recovery reads
//     from the catalog's horizon, past the old base, and finds nothing,
//     which is exactly right.
//
//   - Live tail: copy the surviving records down to the header boundary,
//     but only when the copy's destination cannot overlap its source
//     (tail length <= discarded prefix length) — otherwise skip this
//     round; the log simply keeps its prefix until a later checkpoint
//     qualifies. The copy is announced in the header (state COPYING, with
//     the previous base) and synced before any byte moves, so a crash at
//     any point either replays under the old base (copy bytes land only
//     in the discarded region) or finds the COPYING slot and redoes the
//     idempotent copy at open. A terminator frame after the copied tail
//     keeps stale frames from parsing as fresh records before the final
//     physical truncation.
func (w *WAL) TruncateTo(horizon LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	if w.poisoned {
		return ErrWALPoisoned
	}
	if horizon > w.flushed {
		horizon = w.flushed
	}
	if horizon <= w.base {
		return nil // nothing durable before the horizon
	}
	tailLen := int64(w.flushed - horizon)
	if tailLen+8 > int64(horizon-w.base) {
		// The copied tail PLUS its 8-byte terminator must fit strictly
		// inside the discarded prefix: at tailLen == horizon-base the
		// terminator would land exactly on the source tail's first frame,
		// and a crash before the CLEAN slot became durable would make the
		// redo-copy read the terminator as the tail start and discard the
		// surviving records. Skip this round; reclaim when the prefix has
		// grown past the tail again.
		return nil
	}
	tail := make([]byte, tailLen)
	if tailLen > 0 {
		if _, err := w.dev.ReadAt(tail, w.phys(horizon)); err != nil {
			return err
		}
	}
	// Announce the move first: from here on, a crash at any point either
	// recovers under the COPYING slot (redoing the idempotent copy at
	// open — the source region is never overwritten) or under a CLEAN
	// slot describing a fully consistent log. LSNs never rewind: every
	// header state derives the durable end from the NEW base, so a
	// post-crash append can never reuse an LSN some page was stamped with.
	//
	// Once the header mutation begins, any failure — a clean device error
	// as much as a crash panic — leaves the in-memory base/physical
	// mapping unreliable relative to the device (the announced copy may
	// not have happened), so the WAL is poisoned: continuing to append
	// and flush could overwrite the source tail the reopen-time redo
	// still needs. Only reopening the device resolves it, exactly as for
	// a crash mid-flush.
	if err := w.truncateProtocol(horizon, tail, tailLen); err != nil {
		w.poisoned = true
		return err
	}
	return nil
}

// truncateProtocol runs TruncateTo's device protocol; the caller holds
// w.mu and poisons the WAL if it fails partway.
func (w *WAL) truncateProtocol(horizon LSN, tail []byte, tailLen int64) error {
	size, err := w.dev.Size()
	if err != nil {
		return err
	}
	if err := w.writeHeaderSlot(walHeaderSlot{base: horizon, prevBase: w.base, state: walStateCopying}); err != nil {
		return err
	}
	// writeHeaderSlot updated w.base; physical offsets below are absolute.
	if tailLen > 0 {
		if _, err := w.dev.WriteAt(tail, walHeaderSize); err != nil {
			return err
		}
	}
	if err := w.writeTerminator(walHeaderSize+tailLen, size); err != nil {
		return err
	}
	if err := w.dev.Sync(); err != nil {
		return err
	}
	if err := w.writeHeaderSlot(walHeaderSlot{base: horizon, prevBase: horizon, state: walStateClean}); err != nil {
		return err
	}
	return w.dev.Truncate(walHeaderSize + tailLen)
}

// Base returns the logical LSN of the log's first physical byte — the
// oldest record still on the device (diagnostics and tests).
func (w *WAL) Base() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// Empty reports whether the log holds nothing at all: no durable record
// (flushed == base) and no buffered append. A checkpoint over an empty
// log with nothing else to do is a no-op.
func (w *WAL) Empty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed == w.base && w.next == w.flushed
}

// FlushedLSN returns the durable boundary.
func (w *WAL) FlushedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}

// DropUnflushed discards buffered records, simulating a crash where only
// flushed bytes survive. Test/experiment hook.
func (w *WAL) DropUnflushed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	w.next = w.flushed
	w.nextA.Store(uint64(w.next))
	w.buf = w.buf[:0]
}

// Records reads all durable records starting at from (clamped to the
// log's base). Records with bad checksums or truncated frames terminate
// the scan (torn tail).
func (w *WAL) Records(from LSN) ([]*LogRecord, error) {
	w.mu.Lock()
	base := w.base
	span := int64(w.flushed - base)
	data := make([]byte, walHeaderSize+span)
	if span > 0 {
		if _, err := w.dev.ReadAt(data, 0); err != nil {
			w.mu.Unlock()
			return nil, err
		}
	}
	w.mu.Unlock()

	if from < base {
		from = base
	}
	var out []*LogRecord
	var decodeErr error
	walkLogFrames(data, int(int64(from-base)+walHeaderSize), func(off int, body []byte) bool {
		r, err := decodeLogRecord(body)
		if err != nil {
			decodeErr = err
			return false
		}
		r.LSN = base + LSN(off-walHeaderSize)
		out = append(out, r)
		return true
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}

// Close releases the underlying device.
func (w *WAL) Close() error { return w.dev.Close() }
